// Bucketed sorted ring index: the live-peer id -> slot map of ChordNetwork.
//
// The seed kept the ring as std::map<ChordId, PeerIndex>. At a million
// peers every successor query walks ~20 pointer-chased tree levels and
// every churn event rebalances red-black nodes — the dominant cache-miss
// source of the overlay hot path. Ids are uniform in [0, 2^m) by
// construction (they are FNV-1a hashes), so a radix-bucketed structure
// gives the same ordered-map operations with O(1) expected cost and
// contiguous memory:
//
//   bucket(id) = id >> shift_     (kept so the mean load is 2..8 entries)
//
// Each bucket is a small sorted array; insert/erase memmove a handful of
// 16-byte entries, successor(key) binary-searches one bucket and then
// scans forward (wrapping) to the next non-empty one. The whole structure
// rebuilds (amortized O(1)) when the population doubles or quarters.
//
// Iteration order is ascending id — identical to the std::map it replaces,
// which is what keeps protocol-mode rng draw order (and therefore event
// traces) byte-stable across the swap.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace lsds::p2p {

class RingIndex {
 public:
  using Id = std::uint64_t;
  using Slot = std::uint32_t;

  struct Entry {
    Id id;
    Slot slot;
  };

  /// `m` is the identifier-space width in bits (ids live in [0, 2^m)).
  explicit RingIndex(std::uint32_t m = 32) : m_(m) { rebuild(1); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(Id id) const {
    const auto& b = buckets_[bucket_of(id)];
    const auto it = std::lower_bound(b.begin(), b.end(), id, id_less);
    return it != b.end() && it->id == id;
  }

  /// Insert a (unique) id. Grows the bucket array when the mean load
  /// leaves the [1, 8] band.
  void insert(Id id, Slot slot) {
    auto& b = buckets_[bucket_of(id)];
    const auto it = std::lower_bound(b.begin(), b.end(), id, id_less);
    assert(it == b.end() || it->id != id);
    b.insert(it, Entry{id, slot});
    ++size_;
    if (size_ > buckets_.size() * 8) rebuild(buckets_.size() * 2);
  }

  /// Erase an id. Returns false when absent.
  bool erase(Id id) {
    auto& b = buckets_[bucket_of(id)];
    const auto it = std::lower_bound(b.begin(), b.end(), id, id_less);
    if (it == b.end() || it->id != id) return false;
    b.erase(it);
    --size_;
    if (buckets_.size() > 1 && size_ < buckets_.size()) rebuild(buckets_.size() / 2);
    return true;
  }

  /// First entry with id >= key, wrapping past 2^m to the smallest id.
  /// Precondition: !empty().
  Entry successor(Id key) const {
    assert(size_ > 0);
    std::size_t bi = bucket_of(key);
    {
      const auto& b = buckets_[bi];
      const auto it = std::lower_bound(b.begin(), b.end(), key, id_less);
      if (it != b.end()) return *it;
    }
    // Scan forward (wrapping) for the next non-empty bucket. Expected O(1):
    // mean bucket load is kept >= 1, so runs of empty buckets are short.
    for (std::size_t step = 1; step <= buckets_.size(); ++step) {
      const auto& b = buckets_[(bi + step) & (buckets_.size() - 1)];
      if (!b.empty()) return b.front();
    }
    return buckets_[bi].front();  // unreachable: size_ > 0
  }

  /// Visit every entry in ascending id order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& b : buckets_) {
      for (const Entry& e : b) fn(e.id, e.slot);
    }
  }

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  static bool id_less(const Entry& e, Id id) { return e.id < id; }

  std::size_t bucket_of(Id id) const { return static_cast<std::size_t>(id >> shift_); }

  void rebuild(std::size_t n_buckets) {
    // n_buckets is a power of two <= 2^m.
    std::uint32_t bits = 0;
    while ((std::size_t{1} << (bits + 1)) <= n_buckets && bits + 1 <= m_) ++bits;
    std::vector<std::vector<Entry>> next(std::size_t{1} << bits);
    const std::uint32_t shift = m_ - bits;
    for (const auto& b : buckets_) {
      for (const Entry& e : b) next[static_cast<std::size_t>(e.id >> shift)].push_back(e);
    }
    buckets_ = std::move(next);
    shift_ = shift;
    // Per-bucket order is preserved by the ascending outer walk; no sort
    // needed: old bucket ranges map to contiguous new bucket ranges.
  }

  std::uint32_t m_;
  std::uint32_t shift_ = 0;
  std::size_t size_ = 0;
  std::vector<std::vector<Entry>> buckets_;
};

}  // namespace lsds::p2p
