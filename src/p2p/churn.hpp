// Lifetime-model churn and synthetic lookup traffic for the P2P overlays.
//
// OverSim-style churn (PAPERS.md): each peer draws a session *lifetime*
// when it comes up and a *downtime* when it dies; after the downtime the
// peer rejoins (Chord: protocol join via a random live bootstrap;
// Gnutella: rewire to random live neighbors) on the same topology node.
// Lifetimes are exponential (memoryless baseline) or Weibull (heavy-tailed
// session lengths, shape < 1, or aging, shape > 1 — the shape measured
// studies report). All draws come from named core/rng substreams, so a
// churn schedule is a pure function of the scenario seed, independent of
// the event-queue kind.
//
// The traffic generators are the measurement probes of experiment E16:
// Poisson lookup/search arrivals from random live origins, results folded
// into hop/latency accumulators through the overlays' allocation-free
// tagged-handler path. Every driver stops scheduling at its horizon, so
// Engine::run() terminates.
#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "p2p/chord.hpp"
#include "p2p/gnutella.hpp"
#include "stats/summary.hpp"

namespace lsds::p2p {

struct ChurnSpec {
  enum class Lifetime { kExponential, kWeibull };

  Lifetime lifetime_model = Lifetime::kExponential;
  double mean_lifetime = 300;  // mean session length (sim seconds)
  double weibull_shape = 1.5;  // Weibull only
  double mean_downtime = 30;   // mean off-time before rejoin
  double horizon = 0;          // no deaths or rebirths at/after this time

  /// Throws std::invalid_argument on non-positive / non-finite parameters.
  void validate() const;
  /// Weibull scale such that the mean equals mean_lifetime.
  double weibull_scale() const;
};

/// Drives lifetime churn on a ChordNetwork in protocol mode: fail_peer on
/// death, join_via(random live bootstrap) on rebirth.
class ChordChurn {
 public:
  ChordChurn(core::Engine& engine, ChordNetwork& chord, const ChurnSpec& spec);

  /// Draw a lifetime for every currently-live peer. Call once, after
  /// enable_protocol_mode.
  void start();

  std::uint64_t deaths() const { return deaths_; }
  std::uint64_t rebirths() const { return rebirths_; }

 private:
  void schedule_death(PeerIndex peer);
  void on_death(std::uint32_t slot, std::uint32_t gen);
  void on_rebirth(net::NodeId node);
  double draw_lifetime();

  core::Engine& engine_;
  ChordNetwork& chord_;
  ChurnSpec spec_;
  core::RngStream& lifetime_rng_;
  core::RngStream& downtime_rng_;
  core::RngStream& bootstrap_rng_;
  std::uint64_t deaths_ = 0;
  std::uint64_t rebirths_ = 0;
};

/// Same lifetime model for the unstructured overlay: remove_peer on death,
/// add_peer + connect_random(degree) on rebirth.
class GnutellaChurn {
 public:
  GnutellaChurn(core::Engine& engine, GnutellaNetwork& net, const ChurnSpec& spec,
                std::size_t rejoin_degree);

  void start();

  std::uint64_t deaths() const { return deaths_; }
  std::uint64_t rebirths() const { return rebirths_; }

 private:
  void schedule_death(GnutellaNetwork::PeerIndex peer);
  void on_death(std::uint32_t slot, std::uint32_t gen);
  void on_rebirth(net::NodeId node);
  double draw_lifetime();

  core::Engine& engine_;
  GnutellaNetwork& net_;
  ChurnSpec spec_;
  std::size_t rejoin_degree_;
  core::RngStream& lifetime_rng_;
  core::RngStream& downtime_rng_;
  core::RngStream& rewire_rng_;
  std::uint64_t deaths_ = 0;
  std::uint64_t rebirths_ = 0;
};

struct TrafficSpec {
  double rate = 100;   // arrivals per sim second, network-wide (Poisson)
  double horizon = 0;  // no arrivals at/after this time
  std::size_t ttl = 6; // Gnutella floods only

  /// Throws std::invalid_argument on non-positive / non-finite parameters.
  void validate() const;
};

/// Poisson lookup workload over a ChordNetwork: uniform random keys from
/// random live origins, results folded through the tagged-handler path
/// (installs itself as the network's lookup handler).
class ChordLookupTraffic {
 public:
  ChordLookupTraffic(core::Engine& engine, ChordNetwork& chord, const TrafficSpec& spec);

  void start();

  std::uint64_t issued() const { return issued_; }
  std::uint64_t succeeded() const { return succeeded_; }
  std::uint64_t failed() const { return failed_; }
  double failure_rate() const {
    const std::uint64_t n = succeeded_ + failed_;
    return n == 0 ? 0.0 : static_cast<double>(failed_) / static_cast<double>(n);
  }
  /// Hop count / origin-observed latency of *successful* lookups.
  const stats::Accumulator& hops() const { return hops_; }
  const stats::Accumulator& latency() const { return latency_; }
  /// Max Engine::pending() observed at arrival instants.
  std::size_t peak_pending() const { return peak_pending_; }

 private:
  static void dispatch(void* user, std::uint64_t tag, const ChordNetwork::LookupResult& r);
  void on_tick();
  void schedule_next();

  core::Engine& engine_;
  ChordNetwork& chord_;
  TrafficSpec spec_;
  core::RngStream& arrival_rng_;
  core::RngStream& origin_rng_;
  core::RngStream& key_rng_;
  std::uint64_t issued_ = 0;
  std::uint64_t succeeded_ = 0;
  std::uint64_t failed_ = 0;
  stats::Accumulator hops_;
  stats::Accumulator latency_;
  std::size_t peak_pending_ = 0;
};

/// Poisson flooding-search workload over a GnutellaNetwork. Targets are
/// drawn from a fixed catalog of object-name hashes (the facade places
/// "obj-<i>" objects and hands the hashes over).
class GnutellaSearchTraffic {
 public:
  GnutellaSearchTraffic(core::Engine& engine, GnutellaNetwork& net, const TrafficSpec& spec,
                        std::vector<std::uint64_t> catalog);

  void start();

  std::uint64_t issued() const { return issued_; }
  std::uint64_t found() const { return found_; }
  std::uint64_t missed() const { return missed_; }
  double failure_rate() const {
    const std::uint64_t n = found_ + missed_;
    return n == 0 ? 0.0 : static_cast<double>(missed_) / static_cast<double>(n);
  }
  const stats::Accumulator& hops() const { return hops_; }
  const stats::Accumulator& latency() const { return latency_; }
  const stats::Accumulator& messages() const { return messages_; }
  std::size_t peak_pending() const { return peak_pending_; }

 private:
  static void dispatch(void* user, std::uint64_t tag, const GnutellaNetwork::SearchResult& r);
  void on_tick();
  void schedule_next();

  core::Engine& engine_;
  GnutellaNetwork& net_;
  TrafficSpec spec_;
  std::vector<std::uint64_t> catalog_;
  core::RngStream& arrival_rng_;
  core::RngStream& origin_rng_;
  core::RngStream& target_rng_;
  std::uint64_t issued_ = 0;
  std::uint64_t found_ = 0;
  std::uint64_t missed_ = 0;
  stats::Accumulator hops_;
  stats::Accumulator latency_;
  stats::Accumulator messages_;
  std::size_t peak_pending_ = 0;
};

}  // namespace lsds::p2p
