#include "p2p/gnutella.hpp"

#include <algorithm>
#include <cassert>

namespace lsds::p2p {

GnutellaNetwork::GnutellaNetwork(core::Engine& engine, net::RouteProvider& routing)
    : engine_(engine), routing_(routing) {}

GnutellaNetwork::PeerIndex GnutellaNetwork::add_peer(net::NodeId node) {
  peers_.push_back(Peer{node, {}, {}});
  return peers_.size() - 1;
}

void GnutellaNetwork::build_random_overlay(std::size_t degree, core::RngStream& rng) {
  const std::size_t n = peers_.size();
  assert(n >= 2);
  degree = std::min(degree, n - 1);
  for (PeerIndex p = 0; p < n; ++p) {
    while (peers_[p].neighbors.size() < degree) {
      auto q = static_cast<PeerIndex>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      if (q >= p) ++q;
      auto& np = peers_[p].neighbors;
      if (std::find(np.begin(), np.end(), q) != np.end()) continue;
      np.push_back(q);
      peers_[q].neighbors.push_back(p);  // symmetric (q may exceed degree)
    }
  }
}

void GnutellaNetwork::place_object(PeerIndex peer, const std::string& name) {
  peers_[peer].objects.insert(name);
}

bool GnutellaNetwork::has_object(PeerIndex peer, const std::string& name) const {
  return peers_[peer].objects.count(name) > 0;
}

double GnutellaNetwork::link_latency(PeerIndex a, PeerIndex b) {
  if (a == b) return 0;
  const auto& route = routing_.route(peers_[a].node, peers_[b].node);
  return route.valid ? route.total_latency : 0.001;
}

void GnutellaNetwork::search(PeerIndex origin, const std::string& name, std::size_t ttl,
                             SearchFn done) {
  const std::uint64_t qid = next_query_++;
  Query& q = queries_[qid];
  q.name = name;
  q.origin = origin;
  q.started = engine_.now();
  q.done = std::move(done);
  q.in_flight = 1;
  deliver(qid, origin, ttl, 0);
}

void GnutellaNetwork::deliver(std::uint64_t query_id, PeerIndex at, std::size_t ttl,
                              std::size_t hops) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  Query& q = it->second;
  --q.in_flight;

  const bool first_visit = q.visited.insert(at).second;
  if (first_visit && peers_[at].objects.count(q.name) && !q.result.found) {
    // First hit: the response travels back to the origin; record the
    // latency including that reply leg.
    q.result.found = true;
    q.result.holder = at;
    q.result.hops = hops;
    q.result.latency = (engine_.now() - q.started) + link_latency(at, q.origin);
  }

  if (first_visit && ttl > 0) {
    for (PeerIndex nb : peers_[at].neighbors) {
      if (q.visited.count(nb)) continue;  // cheap suppression of known dupes
      ++q.result.messages;
      ++q.in_flight;
      const double lat = link_latency(at, nb);
      engine_.schedule_in(lat, [this, query_id, nb, ttl, hops] {
        deliver(query_id, nb, ttl - 1, hops + 1);
      });
    }
  }
  finish_if_drained(query_id);
}

void GnutellaNetwork::finish_if_drained(std::uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end() || it->second.in_flight > 0) return;
  Query q = std::move(it->second);
  queries_.erase(it);
  q.done(q.result);
}

}  // namespace lsds::p2p
