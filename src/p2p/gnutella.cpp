#include "p2p/gnutella.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/hash.hpp"
#include "core/rng.hpp"

namespace lsds::p2p {

// --- VisitSet -----------------------------------------------------------

bool GnutellaNetwork::VisitSet::insert(PeerSlot s) {
  if (table_.empty() || size_ * 4 >= table_.size() * 3) grow();
  const std::size_t mask = table_.size() - 1;
  std::size_t i = (std::uint64_t{s} * 0x9e3779b97f4a7c15ull >> 32) & mask;
  while (table_[i] != kEmpty) {
    if (table_[i] == s) return false;
    i = (i + 1) & mask;
  }
  table_[i] = s;
  ++size_;
  return true;
}

bool GnutellaNetwork::VisitSet::contains(PeerSlot s) const {
  if (table_.empty()) return false;
  const std::size_t mask = table_.size() - 1;
  std::size_t i = (std::uint64_t{s} * 0x9e3779b97f4a7c15ull >> 32) & mask;
  while (table_[i] != kEmpty) {
    if (table_[i] == s) return true;
    i = (i + 1) & mask;
  }
  return false;
}

void GnutellaNetwork::VisitSet::clear() {
  std::fill(table_.begin(), table_.end(), kEmpty);
  size_ = 0;
}

void GnutellaNetwork::VisitSet::grow() {
  const std::size_t cap = table_.empty() ? 16 : table_.size() * 2;
  std::vector<PeerSlot> old = std::move(table_);
  table_.assign(cap, kEmpty);
  size_ = 0;
  for (PeerSlot s : old) {
    if (s != kEmpty) insert(s);
  }
}

// --- peers --------------------------------------------------------------

GnutellaNetwork::GnutellaNetwork(core::Engine& engine, net::RouteProvider& routing)
    : engine_(engine), routing_(routing) {}

void GnutellaNetwork::reserve(std::size_t peers) {
  node_.reserve(peers);
  gen_.reserve(peers);
  live_.reserve(peers);
  neighbors_.reserve(peers);
  objects_.reserve(peers);
}

GnutellaNetwork::PeerIndex GnutellaNetwork::add_peer(net::NodeId node) {
  PeerSlot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    node_[slot] = node;
    live_[slot] = 1;
    // neighbors_/objects_ were cleared on retirement; capacity is kept.
  } else {
    slot = static_cast<PeerSlot>(node_.size());
    node_.push_back(node);
    gen_.push_back(0);
    live_.push_back(1);
    neighbors_.emplace_back();
    objects_.emplace_back();
  }
  ++live_count_;
  return slot;
}

void GnutellaNetwork::remove_peer(PeerIndex peer) {
  if (peer >= node_.size() || live_[peer] == 0) {
    throw std::invalid_argument("GnutellaNetwork::remove_peer: peer " + std::to_string(peer) +
                                " is not live");
  }
  const PeerSlot p = static_cast<PeerSlot>(peer);
  for (PeerSlot nb : neighbors_[p]) {
    auto& back = neighbors_[nb];
    const auto it = std::find(back.begin(), back.end(), p);
    if (it != back.end()) back.erase(it);  // keep order: flood order stays stable
  }
  neighbors_[p].clear();
  objects_[p].clear();
  live_[p] = 0;
  ++gen_[p];  // flood messages in flight to this slot become stale
  --live_count_;
  free_slots_.push_back(p);
}

void GnutellaNetwork::build_random_overlay(std::size_t degree, core::RngStream& rng) {
  const std::size_t n = node_.size();
  assert(n >= 2 && free_slots_.empty());
  degree = std::min(degree, n - 1);
  for (PeerSlot p = 0; p < n; ++p) {
    while (neighbors_[p].size() < degree) {
      auto q = static_cast<PeerSlot>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      if (q >= p) ++q;
      auto& np = neighbors_[p];
      if (std::find(np.begin(), np.end(), q) != np.end()) continue;
      np.push_back(q);
      neighbors_[q].push_back(p);  // symmetric (q may exceed degree)
    }
  }
}

void GnutellaNetwork::connect_random(PeerIndex peer, std::size_t degree, core::RngStream& rng) {
  if (peer >= node_.size() || live_[peer] == 0) {
    throw std::invalid_argument("GnutellaNetwork::connect_random: peer " +
                                std::to_string(peer) + " is not live");
  }
  const PeerSlot p = static_cast<PeerSlot>(peer);
  if (live_count_ < 2) return;
  degree = std::min(degree, live_count_ - 1);
  // Rejection-sample live neighbors; the attempt cap keeps this O(degree)
  // even when the slot space is mostly dead or the peer is near-saturated.
  std::size_t attempts = 16 * (degree + 1);
  auto& np = neighbors_[p];
  while (np.size() < degree && attempts-- > 0) {
    const auto q = static_cast<PeerSlot>(
        rng.uniform_int(0, static_cast<std::int64_t>(node_.size()) - 1));
    if (q == p || live_[q] == 0) continue;
    if (std::find(np.begin(), np.end(), q) != np.end()) continue;
    np.push_back(q);
    neighbors_[q].push_back(p);
  }
}

GnutellaNetwork::PeerIndex GnutellaNetwork::random_live_peer(core::RngStream& rng) const {
  assert(live_count_ > 0);
  for (int i = 0; i < 64; ++i) {
    const auto s = static_cast<PeerSlot>(
        rng.uniform_int(0, static_cast<std::int64_t>(node_.size()) - 1));
    if (live_[s] != 0) return s;
  }
  // Pathological occupancy (< ~2^-64 when any live fraction remains after
  // 64 draws): deterministic fallback scan.
  for (std::size_t s = 0; s < node_.size(); ++s) {
    if (live_[s] != 0) return s;
  }
  return 0;
}

// --- objects ------------------------------------------------------------

std::uint64_t GnutellaNetwork::hash_name(const std::string& name) { return core::fnv1a(name); }

void GnutellaNetwork::place_object(PeerIndex peer, const std::string& name) {
  auto& objs = objects_[peer];
  const std::uint64_t h = hash_name(name);
  const auto it = std::lower_bound(objs.begin(), objs.end(), h);
  if (it == objs.end() || *it != h) objs.insert(it, h);
}

bool GnutellaNetwork::has_object(PeerIndex peer, const std::string& name) const {
  const auto& objs = objects_[peer];
  return std::binary_search(objs.begin(), objs.end(), hash_name(name));
}

double GnutellaNetwork::link_latency(PeerSlot a, PeerSlot b) {
  if (a == b) return 0;
  const auto& route = routing_.route(node_[a], node_[b]);
  return route.valid ? route.total_latency : 0.001;
}

// --- search -------------------------------------------------------------

std::uint32_t GnutellaNetwork::allocate_query(PeerIndex origin, std::uint64_t name_hash) {
  std::uint32_t qs;
  if (query_free_ != kNilIdx) {
    qs = query_free_;
    query_free_ = queries_[qs].next_free;
  } else {
    qs = static_cast<std::uint32_t>(queries_.size());
    queries_.emplace_back();
  }
  ++queries_live_;
  Query& q = queries_[qs];
  q.name_hash = name_hash;
  q.origin = static_cast<PeerSlot>(origin);
  q.started = engine_.now();
  q.result = SearchResult{};
  q.in_flight = 1;
  return qs;
}

void GnutellaNetwork::search(PeerIndex origin, const std::string& name, std::size_t ttl,
                             SearchFn done) {
  const std::uint32_t qs = allocate_query(origin, hash_name(name));
  Query& q = queries_[qs];
  q.done = std::move(done);
  q.tagged = false;
  const PeerSlot o = static_cast<PeerSlot>(origin);
  deliver(qs, q.gen, o, gen_[o], static_cast<std::uint32_t>(ttl), 0);
}

void GnutellaNetwork::search_tagged(PeerIndex origin, std::uint64_t name_hash, std::size_t ttl,
                                    std::uint64_t tag) {
  const std::uint32_t qs = allocate_query(origin, name_hash);
  Query& q = queries_[qs];
  q.tag = tag;
  q.tagged = true;
  const PeerSlot o = static_cast<PeerSlot>(origin);
  deliver(qs, q.gen, o, gen_[o], static_cast<std::uint32_t>(ttl), 0);
}

void GnutellaNetwork::deliver(std::uint32_t qs, std::uint32_t q_gen, PeerSlot at,
                              std::uint32_t at_gen, std::uint32_t ttl, std::uint32_t hops) {
  Query& q = queries_[qs];
  if (q.gen != q_gen) return;  // query finished; late flood message
  --q.in_flight;

  // A dead (or recycled) peer swallows the message: it still drains the
  // flood but neither answers nor forwards.
  if (gen_[at] == at_gen && live_[at] != 0) {
    const bool first_visit = q.visited.insert(at);
    if (first_visit && !q.result.found &&
        std::binary_search(objects_[at].begin(), objects_[at].end(), q.name_hash)) {
      // First hit: the response travels back to the origin; record the
      // latency including that reply leg.
      q.result.found = true;
      q.result.holder = at;
      q.result.hops = hops;
      q.result.latency = (engine_.now() - q.started) + link_latency(at, q.origin);
    }

    if (first_visit && ttl > 0) {
      for (PeerSlot nb : neighbors_[at]) {
        if (q.visited.contains(nb)) continue;  // cheap suppression of known dupes
        ++q.result.messages;
        ++q.in_flight;
        const double lat = link_latency(at, nb);
        const std::uint32_t nb_gen = gen_[nb];
        engine_.schedule_in(lat, [this, qs, q_gen, nb, nb_gen, ttl, hops] {
          deliver(qs, q_gen, nb, nb_gen, ttl - 1, hops + 1);
        });
      }
    }
  }
  finish_if_drained(qs);
}

void GnutellaNetwork::finish_if_drained(std::uint32_t qs) {
  Query& q = queries_[qs];
  if (q.in_flight > 0) return;
  const SearchResult result = q.result;
  const bool tagged = q.tagged;
  const std::uint64_t tag = q.tag;
  SearchFn done;
  if (!tagged) done = std::move(q.done);

  // Release the slot *before* dispatch: the continuation may start new
  // searches that reuse it. The visit table keeps its allocation.
  ++q.gen;
  q.done = nullptr;
  q.visited.clear();
  q.next_free = query_free_;
  query_free_ = qs;
  --queries_live_;

  if (tagged) {
    if (handler_ != nullptr) handler_(handler_user_, tag, result);
  } else {
    done(result);
  }
}

// --- digest -------------------------------------------------------------

std::uint64_t GnutellaNetwork::state_digest() const {
  core::StateHash h;
  h.mix(std::uint64_t{live_count_});
  for (std::size_t s = 0; s < node_.size(); ++s) {
    if (live_[s] == 0) continue;
    h.mix(static_cast<std::uint64_t>(s));
    h.mix(std::uint64_t{node_[s]});
    h.mix(static_cast<std::uint64_t>(neighbors_[s].size()));
    for (PeerSlot nb : neighbors_[s]) h.mix(std::uint64_t{nb});
    for (std::uint64_t obj : objects_[s]) h.mix(obj);
  }
  return h.value();
}

}  // namespace lsds::p2p
