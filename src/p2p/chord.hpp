// Chord distributed hash table over the network substrate.
//
// The taxonomy's scope axis includes "P2P networks", and the paper groups
// "Grid and/or P2P simulation instruments" as the family under study; this
// module makes the P2P scope a real code path. Chord (Stoica et al. 2001)
// is the canonical structured overlay: peers own 2^m-space arcs, lookups
// route greedily through finger tables in O(log n) hops.
//
// Simulation model: peers sit on topology nodes; protocol messages are
// latency-only (DHT control traffic is tiny next to link capacity), using
// the shortest-path latency between peer nodes. Lookups are *recursive*:
// forwarded hop by hop, answered directly to the origin. Finger tables are
// built from the global ring (the steady state a stabilization protocol
// converges to); joins and leaves rebuild affected state, so churn can be
// modeled at the fidelity these experiments need.
//
// Scale engineering (million-peer churn, experiment E16):
//   * the live ring is a bucketed sorted array (p2p/ring_index.hpp), not a
//     std::map — successor queries and churn updates are O(1) expected and
//     contiguous;
//   * per-peer protocol state lives in struct-of-arrays slabs (ids,
//     successors, a flat m-wide finger slab, fixed-width successor lists)
//     indexed by a 32-bit slot. Churned-out slots are recycled through a
//     free list; every stored reference (successor, predecessor, successor
//     list, fingers) and every in-flight message carries the target's
//     generation alongside the slot, so a reference to a dead peer stays
//     dead even after its slot is recycled — references name peer
//     *incarnations*, exactly like the append-only indices they replace.
//     The successor's id and node are cached at store time because the
//     protocol reads them even when the successor has died (failure
//     detection runs on the next stabilize round, not at read time);
//   * the lookup hot path performs zero heap allocation: lookup state sits
//     in a recycled slot pool and every hop/answer event captures only
//     (slot, generation) integers, so the closures stay inside EventFn's
//     inline buffer and move through the event queue as memcpys. The
//     std::function callback API survives for tests and examples; bulk
//     drivers use the tagged handler path (set_lookup_handler +
//     lookup_tagged);
//   * maintenance is event-driven (two tiny events per round per peer)
//     instead of one coroutine frame per peer — at 1M peers the per-frame
//     heap allocation alone would dominate. The event schedule reproduces
//     the coroutine version's timing draw for draw, so small-scenario
//     traces are unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "net/routing.hpp"
#include "p2p/ring_index.hpp"

namespace lsds::p2p {

using ChordId = std::uint64_t;
using PeerIndex = std::size_t;

class ChordNetwork {
 public:
  /// `m` is the identifier-space width in bits (ids live in [0, 2^m)).
  /// Throws std::invalid_argument unless 1 <= m <= 63.
  ChordNetwork(core::Engine& engine, net::RouteProvider& routing, std::uint32_t m = 32);

  /// Pre-size the per-peer slabs (bulk builds at 100k+ peers).
  void reserve(std::size_t peers);

  /// Add a peer attached to a topology node. Returns the peer's index
  /// (a recycled slot when churned-out peers exist).
  /// Call build() after the initial population (or after churn).
  PeerIndex add_peer(net::NodeId node);
  /// Remove a peer (churn). Lookups started before removal may fail.
  /// Throws std::invalid_argument on an out-of-range or dead peer.
  void remove_peer(PeerIndex peer);
  /// (Re)build successors + finger tables from the current population.
  void build();

  // --- protocol mode (self-maintaining overlay) ---------------------------
  //
  // Instead of the omniscient build(), run Chord's own maintenance:
  // periodic *stabilization* repairs successor/predecessor pointers after
  // churn and *fix-fingers* refreshes one finger per round via a real
  // lookup. With maintenance running, peers may crash (fail_peer) or join
  // (join_via) without any global rebuild; lookups degrade and then heal —
  // the behavior a churn study measures.

  /// Spawn maintenance on every live peer. Maintenance runs until the
  /// horizon (no events are scheduled past it, so Engine::run terminates).
  /// Throws std::invalid_argument on stabilize_period <= 0 or non-finite,
  /// or a non-finite horizon.
  void enable_protocol_mode(double stabilize_period, double horizon);
  /// Crash-stop a peer: no goodbye messages; neighbors discover the death
  /// through stabilization timeouts. Throws like remove_peer.
  void fail_peer(PeerIndex peer);
  /// Protocol join: the newcomer finds its successor through `bootstrap`
  /// and is integrated by subsequent stabilization rounds.
  PeerIndex join_via(net::NodeId node, PeerIndex bootstrap);

  std::uint64_t stabilize_rounds() const { return stabilize_rounds_; }

  std::size_t size() const { return live_count_; }
  ChordId id_of(PeerIndex peer) const { return id_[peer]; }
  net::NodeId node_of(PeerIndex peer) const { return node_[peer]; }
  bool is_live(PeerIndex peer) const { return peer < live_.size() && live_[peer] != 0; }
  /// Generation counter of a slot; bumped when the peer dies, so stale
  /// references can detect slot reuse.
  std::uint32_t generation(PeerIndex peer) const { return gen_[peer]; }
  ChordId id_mask() const { return mask_; }
  /// Ground truth: the live peer whose arc contains `key`.
  PeerIndex responsible_peer(ChordId key) const;
  /// A live peer drawn via the ring (arc-length weighted; uniform enough
  /// for workload generation, O(1), deterministic given the stream).
  PeerIndex random_live_peer(core::RngStream& rng) const;
  /// Visit every live peer in ascending id order.
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    ring_.for_each([&](ChordId, RingIndex::Slot s) { fn(static_cast<PeerIndex>(s)); });
  }
  /// Hash helper for arbitrary keys.
  ChordId hash_key(const std::string& s) const;

  struct LookupResult {
    bool ok = false;
    PeerIndex home = 0;   // peer responsible for the key
    std::size_t hops = 0; // forwarding steps (0 = origin owned it)
    double latency = 0;   // simulated seconds until the origin learned it
  };
  using LookupFn = std::function<void(const LookupResult&)>;

  /// Asynchronous recursive lookup from `origin`.
  void lookup(PeerIndex origin, ChordId key, LookupFn done);

  // Allocation-free bulk path: results are delivered to the installed
  // handler with the caller's tag. One handler per network (the churn /
  // traffic drivers own it).
  using LookupHandler = void (*)(void* user, std::uint64_t tag, const LookupResult& result);
  void set_lookup_handler(LookupHandler handler, void* user) {
    handler_ = handler;
    handler_user_ = user;
  }
  /// Like lookup(), but the result goes to the lookup handler. No heap
  /// allocation on any path.
  void lookup_tagged(PeerIndex origin, ChordId key, std::uint64_t tag);

  // --- statistics -----------------------------------------------------------

  std::uint64_t messages_sent() const { return messages_; }
  std::size_t finger_count(PeerIndex peer) const { return finger_len_[peer]; }
  /// Total slots ever allocated (bounded by peak live population, not by
  /// cumulative churn — the slot-reuse regression hook).
  std::size_t slot_count() const { return node_.size(); }
  /// Lookup pool size (bounded by peak in-flight lookups).
  std::size_t lookup_pool_size() const { return pending_.size(); }
  std::size_t lookups_in_flight() const { return pending_live_; }

  /// FNV-1a digest of the live overlay (ids, successors, predecessors,
  /// fingers — folded by id, not slot) + message counters. Equal digests
  /// across event-queue kinds are the E16 determinism self-check.
  std::uint64_t state_digest() const;

 private:
  using PeerSlot = std::uint32_t;
  /// (generation << 32 | slot): names one peer *incarnation*. A ref to a
  /// dead incarnation never resurrects, even when the slot is recycled.
  using PeerRef = std::uint64_t;
  static constexpr PeerSlot kNilSlot = 0xffffffffu;
  static constexpr std::uint32_t kNilIdx = 0xffffffffu;
  static constexpr PeerRef kNilRef = ~PeerRef{0};
  static constexpr int kSuccListLen = 3;

  static PeerRef make_ref(PeerSlot slot, std::uint32_t gen) {
    return (PeerRef{gen} << 32) | slot;
  }
  static PeerSlot ref_slot(PeerRef r) { return static_cast<PeerSlot>(r); }
  static std::uint32_t ref_gen(PeerRef r) { return static_cast<std::uint32_t>(r >> 32); }
  /// The current incarnation of a slot.
  PeerRef ref_of(PeerSlot slot) const { return make_ref(slot, gen_[slot]); }
  /// True iff the incarnation the ref names is still alive. kNilRef's slot
  /// is out of range, so nil is dead without a separate check.
  bool ref_alive(PeerRef r) const {
    const PeerSlot s = ref_slot(r);
    return s < gen_.size() && gen_[s] == ref_gen(r) && live_[s] != 0;
  }

  enum class LookupKind : std::uint8_t { kCallback, kTagged, kFixFinger, kJoin };

  /// One in-flight lookup. Hop events carry only (pool index, generation);
  /// everything else lives here, in a recycled slot. The origin's node is
  /// captured at start: the answer latency must use the origin incarnation
  /// that issued the lookup, not whatever occupies its slot later.
  struct Pending {
    ChordId key = 0;
    double started = 0;
    std::uint64_t tag = 0;
    LookupFn done;                  // kCallback only
    PeerRef origin_ref = kNilRef;
    net::NodeId origin_node = net::kInvalidNode;
    PeerSlot aux = kNilSlot;        // kFixFinger: the peer; kJoin: the newcomer
    std::uint32_t aux_gen = 0;
    std::uint32_t aux_k = 0;        // kFixFinger: finger index
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilIdx;
    LookupKind kind = LookupKind::kCallback;
  };

  std::uint32_t allocate_pending();
  void start_lookup(std::uint32_t lk);
  /// One recursive-routing step at peer `at` (generation-checked).
  void hop(std::uint32_t lk, std::uint32_t lk_gen, PeerSlot at, std::uint32_t at_gen,
           std::uint32_t hops);
  /// Resolve + release the lookup slot, then dispatch by kind. `home` is
  /// the answering incarnation with its store-time id/node (it may already
  /// be dead — the seed semantics a join inherits).
  void finish(std::uint32_t lk, bool ok, PeerRef home, ChordId home_id,
              net::NodeId home_node, std::uint32_t hops);

  void retire_peer(PeerIndex peer, const char* what);
  void start_maintenance(PeerSlot self);
  void maint_begin(PeerSlot self, std::uint32_t gen);
  void maint_work(PeerSlot self, std::uint32_t gen);
  void stabilize(PeerSlot self);
  void fix_one_finger(PeerSlot self);
  void refresh_succ_list(PeerSlot self);
  /// Point `self` at a *live* successor (or itself), caching id + node.
  void set_successor(PeerSlot self, PeerRef succ);

  /// True iff x is in the half-open arc (a, b] on the ring.
  bool in_arc(ChordId x, ChordId a, ChordId b) const;
  PeerRef closest_preceding(PeerSlot from, ChordId key, net::NodeId& node_out) const;
  /// Latency from live peer `from` to the incarnation `to` whose node was
  /// captured at store time (`to` may be dead; its node is immutable).
  double link_latency(PeerSlot from, PeerRef to, net::NodeId to_node);

  core::Engine& engine_;
  net::RouteProvider& routing_;
  std::uint32_t m_;
  ChordId mask_;

  // Per-peer state, struct-of-arrays; index = slot.
  std::vector<net::NodeId> node_;
  std::vector<ChordId> id_;
  std::vector<std::uint32_t> gen_;
  std::vector<std::uint8_t> live_;
  std::vector<PeerRef> succ_;
  std::vector<ChordId> succ_id_;          // successor's id at store time
  std::vector<net::NodeId> succ_node_;    // successor's node at store time
  std::vector<PeerRef> pred_;             // protocol mode
  std::vector<std::uint8_t> succ_len_;    // protocol mode: backup successors
  std::vector<PeerRef> succ_list_;        // kSuccListLen per slot
  std::vector<std::uint8_t> finger_len_;  // 0 before build/join, m_ after
  std::vector<PeerRef> finger_;           // m_ per slot; [k] ~ successor(id + 2^k)
  std::vector<std::uint32_t> next_finger_;  // fix-fingers round-robin cursor
  std::vector<PeerSlot> free_slots_;
  std::uint64_t added_ = 0;  // cumulative add counter: stable id derivation

  RingIndex ring_;  // live peers by id (ground truth)
  std::size_t live_count_ = 0;

  // Lookup pool (recycled slots, free-listed).
  std::vector<Pending> pending_;
  std::uint32_t pending_free_ = kNilIdx;
  std::size_t pending_live_ = 0;

  LookupHandler handler_ = nullptr;
  void* handler_user_ = nullptr;

  std::uint64_t messages_ = 0;
  std::uint64_t stabilize_rounds_ = 0;
  bool protocol_mode_ = false;
  double stabilize_period_ = 1.0;
  double horizon_ = 0;
};

}  // namespace lsds::p2p
