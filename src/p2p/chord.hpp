// Chord distributed hash table over the network substrate.
//
// The taxonomy's scope axis includes "P2P networks", and the paper groups
// "Grid and/or P2P simulation instruments" as the family under study; this
// module makes the P2P scope a real code path. Chord (Stoica et al. 2001)
// is the canonical structured overlay: peers own 2^m-space arcs, lookups
// route greedily through finger tables in O(log n) hops.
//
// Simulation model: peers sit on topology nodes; protocol messages are
// latency-only (DHT control traffic is tiny next to link capacity), using
// the shortest-path latency between peer nodes. Lookups are *recursive*:
// forwarded hop by hop, answered directly to the origin. Finger tables are
// built from the global ring (the steady state a stabilization protocol
// converges to); joins and leaves rebuild affected state, so churn can be
// modeled at the fidelity these experiments need.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "core/process.hpp"
#include "net/routing.hpp"

namespace lsds::p2p {

using ChordId = std::uint64_t;
using PeerIndex = std::size_t;

class ChordNetwork {
 public:
  /// `m` is the identifier-space width in bits (ids live in [0, 2^m)).
  ChordNetwork(core::Engine& engine, net::RouteProvider& routing, std::uint32_t m = 32);

  /// Add a peer attached to a topology node. Returns the peer's index.
  /// Call build() after the initial population (or after churn).
  PeerIndex add_peer(net::NodeId node);
  /// Remove a peer (churn). Lookups started before removal may fail.
  void remove_peer(PeerIndex peer);
  /// (Re)build successors + finger tables from the current population.
  void build();

  // --- protocol mode (self-maintaining overlay) ---------------------------
  //
  // Instead of the omniscient build(), run Chord's own maintenance:
  // periodic *stabilization* repairs successor/predecessor pointers after
  // churn and *fix-fingers* refreshes one finger per round via a real
  // lookup. With maintenance running, peers may crash (fail_peer) or join
  // (join_via) without any global rebuild; lookups degrade and then heal —
  // the behavior a churn study measures.

  /// Spawn maintenance processes on every live peer. Maintenance runs
  /// until the horizon (processes end there, so Engine::run terminates).
  void enable_protocol_mode(double stabilize_period, double horizon);
  /// Crash-stop a peer: no goodbye messages; neighbors discover the death
  /// through stabilization timeouts.
  void fail_peer(PeerIndex peer);
  /// Protocol join: the newcomer finds its successor through `bootstrap`
  /// and is integrated by subsequent stabilization rounds.
  PeerIndex join_via(net::NodeId node, PeerIndex bootstrap);

  std::uint64_t stabilize_rounds() const { return stabilize_rounds_; }

  std::size_t size() const { return live_count_; }
  ChordId id_of(PeerIndex peer) const { return peers_[peer].id; }
  /// Ground truth: the live peer whose arc contains `key`.
  PeerIndex responsible_peer(ChordId key) const;
  /// Hash helper for arbitrary keys.
  ChordId hash_key(const std::string& s) const;

  struct LookupResult {
    bool ok = false;
    PeerIndex home = 0;   // peer responsible for the key
    std::size_t hops = 0; // forwarding steps (0 = origin owned it)
    double latency = 0;   // simulated seconds until the origin learned it
  };
  using LookupFn = std::function<void(const LookupResult&)>;

  /// Asynchronous recursive lookup from `origin`.
  void lookup(PeerIndex origin, ChordId key, LookupFn done);

  // --- statistics -----------------------------------------------------------

  std::uint64_t messages_sent() const { return messages_; }
  std::size_t finger_count(PeerIndex peer) const { return peers_[peer].fingers.size(); }

 private:
  struct Peer {
    net::NodeId node = net::kInvalidNode;
    ChordId id = 0;
    bool live = false;
    PeerIndex successor = 0;
    PeerIndex predecessor = kNoPeer;     // protocol mode
    std::vector<PeerIndex> succ_list;    // protocol mode: backup successors
    std::vector<PeerIndex> fingers;      // fingers[k] ~ successor(id + 2^k)
    std::uint32_t next_finger = 0;       // fix-fingers round-robin cursor
  };

  static constexpr PeerIndex kNoPeer = static_cast<PeerIndex>(-1);

  core::Process maintenance_loop(core::Engine& eng, PeerIndex self, double period,
                                 double horizon);
  void stabilize(PeerIndex self);
  void fix_one_finger(PeerIndex self);
  void refresh_succ_list(PeerIndex self);

  /// True iff x is in the half-open arc (a, b] on the ring.
  bool in_arc(ChordId x, ChordId a, ChordId b) const;
  PeerIndex closest_preceding(PeerIndex from, ChordId key) const;
  void forward(PeerIndex origin, PeerIndex current, ChordId key, std::size_t hops,
               double started, LookupFn done);
  double link_latency(PeerIndex a, PeerIndex b);

  core::Engine& engine_;
  net::RouteProvider& routing_;
  std::uint32_t m_;
  ChordId mask_;
  std::vector<Peer> peers_;
  std::map<ChordId, PeerIndex> ring_;  // live peers by id (ground truth)
  std::size_t live_count_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t stabilize_rounds_ = 0;
  bool protocol_mode_ = false;
  double stabilize_period_ = 1.0;
  double horizon_ = 0;
};

}  // namespace lsds::p2p
