#include "p2p/churn.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace lsds::p2p {

// --- specs --------------------------------------------------------------

void ChurnSpec::validate() const {
  auto positive_finite = [](double v, const char* what) {
    if (!(v > 0) || !std::isfinite(v)) {
      throw std::invalid_argument("ChurnSpec: " + std::string(what) +
                                  " must be positive and finite, got " + std::to_string(v));
    }
  };
  positive_finite(mean_lifetime, "mean_lifetime");
  positive_finite(mean_downtime, "mean_downtime");
  if (lifetime_model == Lifetime::kWeibull) positive_finite(weibull_shape, "weibull_shape");
  if (!std::isfinite(horizon) || horizon < 0) {
    throw std::invalid_argument("ChurnSpec: horizon must be finite and >= 0, got " +
                                std::to_string(horizon));
  }
}

double ChurnSpec::weibull_scale() const {
  // E[Weibull(shape, scale)] = scale * Gamma(1 + 1/shape).
  return mean_lifetime / std::tgamma(1.0 + 1.0 / weibull_shape);
}

void TrafficSpec::validate() const {
  if (!(rate > 0) || !std::isfinite(rate)) {
    throw std::invalid_argument("TrafficSpec: rate must be positive and finite, got " +
                                std::to_string(rate));
  }
  if (!std::isfinite(horizon) || horizon < 0) {
    throw std::invalid_argument("TrafficSpec: horizon must be finite and >= 0, got " +
                                std::to_string(horizon));
  }
}

// --- ChordChurn ---------------------------------------------------------

ChordChurn::ChordChurn(core::Engine& engine, ChordNetwork& chord, const ChurnSpec& spec)
    : engine_(engine),
      chord_(chord),
      spec_(spec),
      lifetime_rng_(engine.rng("p2p.churn.lifetime")),
      downtime_rng_(engine.rng("p2p.churn.downtime")),
      bootstrap_rng_(engine.rng("p2p.churn.bootstrap")) {
  spec_.validate();
}

double ChordChurn::draw_lifetime() {
  return spec_.lifetime_model == ChurnSpec::Lifetime::kWeibull
             ? lifetime_rng_.weibull(spec_.weibull_shape, spec_.weibull_scale())
             : lifetime_rng_.exponential(spec_.mean_lifetime);
}

void ChordChurn::start() {
  chord_.for_each_live([&](PeerIndex p) { schedule_death(p); });
}

void ChordChurn::schedule_death(PeerIndex peer) {
  const double life = draw_lifetime();
  const auto slot = static_cast<std::uint32_t>(peer);
  const std::uint32_t gen = chord_.generation(peer);
  engine_.schedule_in(life, [this, slot, gen] { on_death(slot, gen); });
}

void ChordChurn::on_death(std::uint32_t slot, std::uint32_t gen) {
  if (engine_.now() >= spec_.horizon) return;
  if (chord_.generation(slot) != gen || !chord_.is_live(slot)) return;  // already churned
  if (chord_.size() <= 2) {
    // Never reap the overlay down to nothing: there must remain a live
    // bootstrap for rebirths. Redraw this peer's remaining lifetime.
    schedule_death(slot);
    return;
  }
  const net::NodeId node = chord_.node_of(slot);
  chord_.fail_peer(slot);
  ++deaths_;
  const double down = downtime_rng_.exponential(spec_.mean_downtime);
  engine_.schedule_in(down, [this, node] { on_rebirth(node); });
}

void ChordChurn::on_rebirth(net::NodeId node) {
  if (engine_.now() >= spec_.horizon) return;
  if (chord_.size() == 0) return;  // nobody left to bootstrap from
  const PeerIndex bootstrap = chord_.random_live_peer(bootstrap_rng_);
  const PeerIndex newcomer = chord_.join_via(node, bootstrap);
  ++rebirths_;
  schedule_death(newcomer);
}

// --- GnutellaChurn ------------------------------------------------------

GnutellaChurn::GnutellaChurn(core::Engine& engine, GnutellaNetwork& net, const ChurnSpec& spec,
                             std::size_t rejoin_degree)
    : engine_(engine),
      net_(net),
      spec_(spec),
      rejoin_degree_(rejoin_degree),
      lifetime_rng_(engine.rng("p2p.churn.lifetime")),
      downtime_rng_(engine.rng("p2p.churn.downtime")),
      rewire_rng_(engine.rng("p2p.churn.rewire")) {
  spec_.validate();
}

double GnutellaChurn::draw_lifetime() {
  return spec_.lifetime_model == ChurnSpec::Lifetime::kWeibull
             ? lifetime_rng_.weibull(spec_.weibull_shape, spec_.weibull_scale())
             : lifetime_rng_.exponential(spec_.mean_lifetime);
}

void GnutellaChurn::start() {
  for (std::size_t s = 0; s < net_.slot_count(); ++s) {
    if (net_.is_live(s)) schedule_death(s);
  }
}

void GnutellaChurn::schedule_death(GnutellaNetwork::PeerIndex peer) {
  const double life = draw_lifetime();
  const auto slot = static_cast<std::uint32_t>(peer);
  const std::uint32_t gen = net_.generation(peer);
  engine_.schedule_in(life, [this, slot, gen] { on_death(slot, gen); });
}

void GnutellaChurn::on_death(std::uint32_t slot, std::uint32_t gen) {
  if (engine_.now() >= spec_.horizon) return;
  if (net_.generation(slot) != gen || !net_.is_live(slot)) return;  // already churned
  if (net_.size() <= 2) {
    schedule_death(slot);
    return;
  }
  const net::NodeId node = net_.node_of(slot);
  net_.remove_peer(slot);
  ++deaths_;
  const double down = downtime_rng_.exponential(spec_.mean_downtime);
  engine_.schedule_in(down, [this, node] { on_rebirth(node); });
}

void GnutellaChurn::on_rebirth(net::NodeId node) {
  if (engine_.now() >= spec_.horizon) return;
  if (net_.size() == 0) return;
  const auto newcomer = net_.add_peer(node);
  net_.connect_random(newcomer, rejoin_degree_, rewire_rng_);
  ++rebirths_;
  schedule_death(newcomer);
}

// --- ChordLookupTraffic -------------------------------------------------

ChordLookupTraffic::ChordLookupTraffic(core::Engine& engine, ChordNetwork& chord,
                                       const TrafficSpec& spec)
    : engine_(engine),
      chord_(chord),
      spec_(spec),
      arrival_rng_(engine.rng("p2p.traffic.arrival")),
      origin_rng_(engine.rng("p2p.traffic.origin")),
      key_rng_(engine.rng("p2p.traffic.key")) {
  spec_.validate();
  chord_.set_lookup_handler(&ChordLookupTraffic::dispatch, this);
}

void ChordLookupTraffic::dispatch(void* user, std::uint64_t /*tag*/,
                                  const ChordNetwork::LookupResult& r) {
  auto* self = static_cast<ChordLookupTraffic*>(user);
  if (r.ok) {
    ++self->succeeded_;
    self->hops_.add(static_cast<double>(r.hops));
    self->latency_.add(r.latency);
  } else {
    ++self->failed_;
  }
}

void ChordLookupTraffic::start() { schedule_next(); }

void ChordLookupTraffic::schedule_next() {
  const double dt = arrival_rng_.exponential(1.0 / spec_.rate);
  engine_.schedule_in(dt, [this] { on_tick(); });
}

void ChordLookupTraffic::on_tick() {
  if (engine_.now() >= spec_.horizon) return;
  if (chord_.size() > 0) {
    const PeerIndex origin = chord_.random_live_peer(origin_rng_);
    const ChordId key = key_rng_.next_u64() & chord_.id_mask();
    ++issued_;
    chord_.lookup_tagged(origin, key, issued_);
  }
  if (engine_.pending() > peak_pending_) peak_pending_ = engine_.pending();
  schedule_next();
}

// --- GnutellaSearchTraffic ----------------------------------------------

GnutellaSearchTraffic::GnutellaSearchTraffic(core::Engine& engine, GnutellaNetwork& net,
                                             const TrafficSpec& spec,
                                             std::vector<std::uint64_t> catalog)
    : engine_(engine),
      net_(net),
      spec_(spec),
      catalog_(std::move(catalog)),
      arrival_rng_(engine.rng("p2p.traffic.arrival")),
      origin_rng_(engine.rng("p2p.traffic.origin")),
      target_rng_(engine.rng("p2p.traffic.target")) {
  spec_.validate();
  if (catalog_.empty()) {
    throw std::invalid_argument("GnutellaSearchTraffic: empty object catalog");
  }
  net_.set_search_handler(&GnutellaSearchTraffic::dispatch, this);
}

void GnutellaSearchTraffic::dispatch(void* user, std::uint64_t /*tag*/,
                                     const GnutellaNetwork::SearchResult& r) {
  auto* self = static_cast<GnutellaSearchTraffic*>(user);
  self->messages_.add(static_cast<double>(r.messages));
  if (r.found) {
    ++self->found_;
    self->hops_.add(static_cast<double>(r.hops));
    self->latency_.add(r.latency);
  } else {
    ++self->missed_;
  }
}

void GnutellaSearchTraffic::start() { schedule_next(); }

void GnutellaSearchTraffic::schedule_next() {
  const double dt = arrival_rng_.exponential(1.0 / spec_.rate);
  engine_.schedule_in(dt, [this] { on_tick(); });
}

void GnutellaSearchTraffic::on_tick() {
  if (engine_.now() >= spec_.horizon) return;
  if (net_.size() > 0) {
    const auto origin = net_.random_live_peer(origin_rng_);
    const auto target = static_cast<std::size_t>(
        target_rng_.uniform_int(0, static_cast<std::int64_t>(catalog_.size()) - 1));
    ++issued_;
    net_.search_tagged(origin, catalog_[target], spec_.ttl, issued_);
  }
  if (engine_.pending() > peak_pending_) peak_pending_ = engine_.pending();
  schedule_next();
}

}  // namespace lsds::p2p
