#include "p2p/chord.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "core/hash.hpp"
#include "core/rng.hpp"

namespace lsds::p2p {

ChordNetwork::ChordNetwork(core::Engine& engine, net::RouteProvider& routing, std::uint32_t m)
    : engine_(engine), routing_(routing), m_(m), ring_(m) {
  if (m_ < 1 || m_ > 63) {
    throw std::invalid_argument("ChordNetwork: m must be in [1, 63], got " + std::to_string(m_));
  }
  mask_ = (ChordId{1} << m_) - 1;
}

ChordId ChordNetwork::hash_key(const std::string& s) const { return core::fnv1a(s) & mask_; }

void ChordNetwork::reserve(std::size_t peers) {
  node_.reserve(peers);
  id_.reserve(peers);
  gen_.reserve(peers);
  live_.reserve(peers);
  succ_.reserve(peers);
  succ_id_.reserve(peers);
  succ_node_.reserve(peers);
  pred_.reserve(peers);
  succ_len_.reserve(peers);
  succ_list_.reserve(peers * kSuccListLen);
  finger_len_.reserve(peers);
  finger_.reserve(peers * m_);
  next_finger_.reserve(peers);
}

PeerIndex ChordNetwork::add_peer(net::NodeId node) {
  // Peer id: hash of the cumulative add counter — uniform, deterministic,
  // and stable across runs (and across slot reuse: the counter never
  // repeats, so a recycled slot still gets a fresh id). Collisions are
  // resolved by probing (vanishingly rare for m >= 32).
  char buf[40];
  std::snprintf(buf, sizeof buf, "chord-peer-%zu",
                static_cast<std::size_t>(added_));
  ++added_;
  ChordId id = core::fnv1a(buf) & mask_;
  while (ring_.contains(id)) id = (id + 1) & mask_;

  PeerSlot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    // New incarnation: refs minted against the dead interval (a lookup
    // issued from an already-dead peer, say) must not alias the newcomer.
    ++gen_[slot];
  } else {
    slot = static_cast<PeerSlot>(node_.size());
    node_.emplace_back();
    id_.emplace_back();
    gen_.push_back(0);
    live_.push_back(0);
    succ_.push_back(kNilRef);
    succ_id_.push_back(0);
    succ_node_.push_back(net::kInvalidNode);
    pred_.push_back(kNilRef);
    succ_len_.push_back(0);
    succ_list_.resize(succ_list_.size() + kSuccListLen, kNilRef);
    finger_len_.push_back(0);
    finger_.resize(finger_.size() + m_, kNilRef);
    next_finger_.push_back(0);
  }
  node_[slot] = node;
  id_[slot] = id;
  live_[slot] = 1;
  succ_[slot] = make_ref(slot, gen_[slot]);  // own successor until built/joined
  succ_id_[slot] = id;
  succ_node_[slot] = node;
  pred_[slot] = kNilRef;
  succ_len_[slot] = 0;
  finger_len_[slot] = 0;
  next_finger_[slot] = 0;

  ring_.insert(id, slot);
  ++live_count_;
  return slot;
}

void ChordNetwork::retire_peer(PeerIndex peer, const char* what) {
  if (peer >= node_.size() || live_[peer] == 0) {
    throw std::invalid_argument(std::string("ChordNetwork::") + what +
                                ": peer " + std::to_string(peer) + " is not live");
  }
  live_[peer] = 0;
  ++gen_[peer];  // in-flight messages and stored refs to this slot go stale
  ring_.erase(id_[peer]);
  --live_count_;
  free_slots_.push_back(static_cast<PeerSlot>(peer));
}

void ChordNetwork::remove_peer(PeerIndex peer) { retire_peer(peer, "remove_peer"); }

void ChordNetwork::fail_peer(PeerIndex peer) {
  // Crash-stop: no state on other peers is touched; their stale refs
  // are exactly what stabilization must repair.
  retire_peer(peer, "fail_peer");
}

void ChordNetwork::set_successor(PeerSlot self, PeerRef succ) {
  const PeerSlot s = ref_slot(succ);
  succ_[self] = succ;
  succ_id_[self] = id_[s];
  succ_node_[self] = node_[s];
}

void ChordNetwork::build() {
  assert(!ring_.empty());
  // Successor pointers + finger tables from the global ring view.
  ring_.for_each([&](ChordId, RingIndex::Slot s) {
    set_successor(s, ref_of(ring_.successor((id_[s] + 1) & mask_).slot));
    finger_len_[s] = static_cast<std::uint8_t>(m_);
    PeerRef* fingers = &finger_[std::size_t{s} * m_];
    for (std::uint32_t k = 0; k < m_; ++k) {
      const ChordId start = (id_[s] + (ChordId{1} << k)) & mask_;
      fingers[k] = ref_of(ring_.successor(start).slot);
    }
  });
}

bool ChordNetwork::in_arc(ChordId x, ChordId a, ChordId b) const {
  // (a, b] on the ring; a == b means the full ring (single peer).
  if (a == b) return true;
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped arc
}

PeerIndex ChordNetwork::responsible_peer(ChordId key) const {
  return ring_.successor(key).slot;
}

PeerIndex ChordNetwork::random_live_peer(core::RngStream& rng) const {
  assert(!ring_.empty());
  return ring_.successor(rng.next_u64() & mask_).slot;
}

ChordNetwork::PeerRef ChordNetwork::closest_preceding(PeerSlot from, ChordId key,
                                                      net::NodeId& node_out) const {
  const ChordId from_id = id_[from];
  const PeerRef* fingers = &finger_[std::size_t{from} * m_];
  for (std::size_t k = finger_len_[from]; k-- > 0;) {
    const PeerRef f = fingers[k];
    if (!ref_alive(f) || ref_slot(f) == from) continue;
    const ChordId f_id = id_[ref_slot(f)];
    // finger strictly inside (from_id, key): safe to jump.
    if (in_arc(f_id, from_id, (key - 1) & mask_) && f_id != key) {
      node_out = node_[ref_slot(f)];
      return f;
    }
  }
  node_out = succ_node_[from];
  return succ_[from];
}

double ChordNetwork::link_latency(PeerSlot from, PeerRef to, net::NodeId to_node) {
  if (to == ref_of(from)) return 0;
  const auto& route = routing_.route(node_[from], to_node);
  return route.valid ? route.total_latency : 0.001;
}

// --- lookup hot path ----------------------------------------------------
//
// Lookup state lives in a recycled Pending slot; the hop/answer events
// capture only (slot, generation) integers so they stay inside EventFn's
// inline buffer — no allocation per hop, no allocation per lookup on the
// tagged path (the std::function member of a recycled Pending keeps its
// capture buffer across reuse on the callback path).

std::uint32_t ChordNetwork::allocate_pending() {
  std::uint32_t lk;
  if (pending_free_ != kNilIdx) {
    lk = pending_free_;
    pending_free_ = pending_[lk].next_free;
  } else {
    lk = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
  }
  ++pending_live_;
  return lk;
}

void ChordNetwork::lookup(PeerIndex origin, ChordId key, LookupFn done) {
  const std::uint32_t lk = allocate_pending();
  Pending& p = pending_[lk];
  p.key = key;
  p.started = engine_.now();
  p.done = std::move(done);
  p.origin_ref = ref_of(static_cast<PeerSlot>(origin));
  p.origin_node = node_[origin];
  p.kind = LookupKind::kCallback;
  start_lookup(lk);
}

void ChordNetwork::lookup_tagged(PeerIndex origin, ChordId key, std::uint64_t tag) {
  const std::uint32_t lk = allocate_pending();
  Pending& p = pending_[lk];
  p.key = key;
  p.started = engine_.now();
  p.tag = tag;
  p.origin_ref = ref_of(static_cast<PeerSlot>(origin));
  p.origin_node = node_[origin];
  p.kind = LookupKind::kTagged;
  start_lookup(lk);
}

void ChordNetwork::start_lookup(std::uint32_t lk) {
  const PeerRef o = pending_[lk].origin_ref;
  hop(lk, pending_[lk].gen, ref_slot(o), ref_gen(o), 0);
}

void ChordNetwork::hop(std::uint32_t lk, std::uint32_t lk_gen, PeerSlot at, std::uint32_t at_gen,
                       std::uint32_t hops) {
  if (pending_[lk].gen != lk_gen) return;  // lookup already resolved (stale event)
  if (gen_[at] != at_gen || live_[at] == 0) {
    // Hop target churned away mid-lookup.
    finish(lk, /*ok=*/false, kNilRef, 0, net::kInvalidNode, hops);
    return;
  }
  const ChordId key = pending_[lk].key;
  const ChordId at_id = id_[at];
  // Am I (exclusive) the predecessor of the key's owner? Owner = successor.
  // The stored successor id is read even when the successor has died: a
  // peer only learns of the death on its next stabilize round.
  if (in_arc(key, at_id, succ_id_[at])) {
    // Answer travels straight back to the origin.
    const double back = link_latency(at, pending_[lk].origin_ref, pending_[lk].origin_node);
    ++messages_;
    const PeerRef home = succ_[at];
    const ChordId home_id = succ_id_[at];
    const net::NodeId home_node = succ_node_[at];
    engine_.schedule_in(back, [this, lk, lk_gen, home, home_id, home_node, hops] {
      if (pending_[lk].gen != lk_gen) return;
      finish(lk, /*ok=*/true, home, home_id, home_node, hops);
    });
    return;
  }
  if (in_arc(key, (at_id + mask_) & mask_, at_id) || at_id == key) {
    // The key maps to this peer itself (rare direct hit).
    finish(lk, /*ok=*/true, ref_of(at), at_id, node_[at], hops);
    return;
  }
  net::NodeId next_node = net::kInvalidNode;
  const PeerRef next = closest_preceding(at, key, next_node);
  const double lat = link_latency(at, next, next_node);
  ++messages_;
  const PeerSlot next_slot = ref_slot(next);
  const std::uint32_t next_gen = ref_gen(next);
  engine_.schedule_in(lat, [this, lk, lk_gen, next_slot, next_gen, hops] {
    hop(lk, lk_gen, next_slot, next_gen, hops + 1);
  });
}

void ChordNetwork::finish(std::uint32_t lk, bool ok, PeerRef home, ChordId home_id,
                          net::NodeId home_node, std::uint32_t hops) {
  Pending& p = pending_[lk];
  LookupResult res;
  res.ok = ok;
  res.home = (home == kNilRef) ? 0 : ref_slot(home);
  res.hops = hops;
  res.latency = engine_.now() - p.started;

  const LookupKind kind = p.kind;
  const std::uint64_t tag = p.tag;
  const PeerSlot aux = p.aux;
  const std::uint32_t aux_gen = p.aux_gen;
  const std::uint32_t aux_k = p.aux_k;
  LookupFn done;
  if (kind == LookupKind::kCallback) done = std::move(p.done);

  // Release the slot *before* dispatch: the continuation may start new
  // lookups (fix-fingers chains, traffic generators) that reuse it.
  ++p.gen;
  p.done = nullptr;
  p.aux = kNilSlot;
  p.next_free = pending_free_;
  pending_free_ = lk;
  --pending_live_;

  switch (kind) {
    case LookupKind::kCallback:
      done(res);
      break;
    case LookupKind::kTagged:
      if (handler_ != nullptr) handler_(handler_user_, tag, res);
      break;
    case LookupKind::kFixFinger:
      // The answer names an incarnation; if it died in transit the stored
      // finger is stale-on-arrival and gets skipped, never resurrected.
      if (res.ok && gen_[aux] == aux_gen && live_[aux] != 0) {
        finger_[std::size_t{aux} * m_ + aux_k] = home;
      }
      break;
    case LookupKind::kJoin:
      if (res.ok && gen_[aux] == aux_gen && live_[aux] != 0) {
        // Adopt the answering incarnation with its store-time id/node even
        // if it already died: the next stabilize round detects and repairs.
        succ_[aux] = home;
        succ_id_[aux] = home_id;
        succ_node_[aux] = home_node;
        refresh_succ_list(aux);
      }
      break;
  }
}

// --- protocol mode -----------------------------------------------------

void ChordNetwork::enable_protocol_mode(double stabilize_period, double horizon) {
  if (!(stabilize_period > 0) || !std::isfinite(stabilize_period)) {
    throw std::invalid_argument("ChordNetwork::enable_protocol_mode: stabilize_period must be "
                                "positive and finite, got " + std::to_string(stabilize_period));
  }
  if (!std::isfinite(horizon)) {
    throw std::invalid_argument("ChordNetwork::enable_protocol_mode: horizon must be finite");
  }
  protocol_mode_ = true;
  stabilize_period_ = stabilize_period;
  horizon_ = horizon;
  // Seed predecessor pointers and successor lists from the current ring so
  // the protocol starts converged; churn will perturb them.
  ring_.for_each([&](ChordId, RingIndex::Slot s) { refresh_succ_list(s); });
  ring_.for_each([&](ChordId, RingIndex::Slot s) { pred_[ref_slot(succ_[s])] = ref_of(s); });
  ring_.for_each([&](ChordId, RingIndex::Slot s) { start_maintenance(s); });
}

PeerIndex ChordNetwork::join_via(net::NodeId node, PeerIndex bootstrap) {
  const PeerIndex newcomer = add_peer(node);
  const PeerSlot nc = static_cast<PeerSlot>(newcomer);
  const PeerRef boot = ref_of(static_cast<PeerSlot>(bootstrap));
  finger_len_[nc] = static_cast<std::uint8_t>(m_);
  PeerRef* fingers = &finger_[std::size_t{nc} * m_];
  for (std::uint32_t k = 0; k < m_; ++k) fingers[k] = boot;
  succ_len_[nc] = 0;
  pred_[nc] = kNilRef;
  succ_[nc] = boot;  // provisional, replaced below
  succ_id_[nc] = id_[bootstrap];
  succ_node_[nc] = node_[bootstrap];
  ++messages_;
  // If the join lookup fails (or the newcomer dies first), the provisional
  // successor stands and the next stabilize round retries implicitly.
  const std::uint32_t lk = allocate_pending();
  Pending& p = pending_[lk];
  p.key = (id_[nc] + 1) & mask_;
  p.started = engine_.now();
  p.origin_ref = boot;
  p.origin_node = node_[bootstrap];
  p.kind = LookupKind::kJoin;
  p.aux = nc;
  p.aux_gen = gen_[nc];
  start_lookup(lk);
  if (protocol_mode_) start_maintenance(nc);
  return newcomer;
}

void ChordNetwork::refresh_succ_list(PeerSlot self) {
  // Backup successors: walk the *local view* successor chain.
  PeerRef* list = &succ_list_[std::size_t{self} * kSuccListLen];
  std::uint8_t len = 0;
  const PeerRef self_ref = ref_of(self);
  PeerRef cur = succ_[self];
  for (int i = 0; i < kSuccListLen; ++i) {
    if (cur == self_ref || !ref_alive(cur)) break;
    list[len++] = cur;
    cur = succ_[ref_slot(cur)];
  }
  succ_len_[self] = len;
}

void ChordNetwork::stabilize(PeerSlot self) {
  ++stabilize_rounds_;
  const PeerRef self_ref = ref_of(self);

  // 1. Successor failure detection: fall back through the successor list,
  //    then to the first live finger (last resort: self).
  if (!ref_alive(succ_[self]) || succ_[self] == self_ref) {
    PeerRef replacement = self_ref;
    const PeerRef* list = &succ_list_[std::size_t{self} * kSuccListLen];
    for (std::uint8_t i = 0; i < succ_len_[self]; ++i) {
      const PeerRef s = list[i];
      if (ref_alive(s) && s != self_ref) {
        replacement = s;
        break;
      }
    }
    if (replacement == self_ref) {
      const PeerRef* fingers = &finger_[std::size_t{self} * m_];
      for (std::uint8_t k = 0; k < finger_len_[self]; ++k) {
        const PeerRef f = fingers[k];
        if (ref_alive(f) && f != self_ref) {
          replacement = f;
          break;
        }
      }
    }
    set_successor(self, replacement);
  }
  if (succ_[self] == self_ref) return;  // isolated; nothing to stabilize against

  // 2. Classic stabilize: adopt successor's predecessor when it sits
  //    between us; then notify. The successor is live past step 1.
  const PeerSlot succ = ref_slot(succ_[self]);
  const PeerRef x = pred_[succ];
  if (ref_alive(x) && x != self_ref &&
      in_arc(id_[ref_slot(x)], id_[self], (id_[succ] + mask_) & mask_)) {
    set_successor(self, x);
  }
  const PeerSlot new_succ = ref_slot(succ_[self]);
  const PeerRef cur_pred = pred_[new_succ];
  if (!ref_alive(cur_pred) ||
      in_arc(id_[self], id_[ref_slot(cur_pred)], (id_[new_succ] + mask_) & mask_)) {
    pred_[new_succ] = self_ref;
  }
  refresh_succ_list(self);
  messages_ += 2;  // predecessor query + notify
}

void ChordNetwork::fix_one_finger(PeerSlot self) {
  const std::uint32_t k = next_finger_[self];
  next_finger_[self] = (k + 1) % m_;
  const ChordId start = (id_[self] + (ChordId{1} << k)) & mask_;
  const std::uint32_t lk = allocate_pending();
  Pending& p = pending_[lk];
  p.key = start;
  p.started = engine_.now();
  p.origin_ref = ref_of(self);
  p.origin_node = node_[self];
  p.kind = LookupKind::kFixFinger;
  p.aux = self;
  p.aux_gen = gen_[self];
  p.aux_k = k;
  start_lookup(lk);
}

// Maintenance is a two-event chain per round, not a coroutine: at 1M peers
// the per-frame allocation and liveness bookkeeping of a coroutine per peer
// dominate. The chain reproduces the coroutine's schedule exactly —
//   spawn: jitter ~ U(0, period)            -> begin
//   begin: now < horizon? wait successor RTT -> work
//   work:  stabilize + fix a finger; wait period -> begin
// — same rng draws, same event times, so small-scenario traces are
// byte-identical to the coroutine version.

void ChordNetwork::start_maintenance(PeerSlot self) {
  auto& rng = engine_.rng("chord.maintenance");
  // Desynchronize rounds across peers.
  const double jitter = rng.uniform(0, stabilize_period_);
  const std::uint32_t gen = gen_[self];
  engine_.schedule_in(jitter, [this, self, gen] { maint_begin(self, gen); });
}

void ChordNetwork::maint_begin(PeerSlot self, std::uint32_t gen) {
  if (gen_[self] != gen || live_[self] == 0) return;  // peer churned away
  if (engine_.now() >= horizon_) return;              // maintenance horizon reached
  // One round costs a successor RTT; charged before the state update. A
  // dead successor still costs the full (timed-out) round trip.
  const double rtt = 2.0 * link_latency(self, succ_[self], succ_node_[self]);
  engine_.schedule_in(rtt, [this, self, gen] { maint_work(self, gen); });
}

void ChordNetwork::maint_work(PeerSlot self, std::uint32_t gen) {
  if (gen_[self] != gen || live_[self] == 0) return;
  stabilize(self);
  fix_one_finger(self);
  engine_.schedule_in(stabilize_period_, [this, self, gen] { maint_begin(self, gen); });
}

// --- digest -------------------------------------------------------------

std::uint64_t ChordNetwork::state_digest() const {
  core::StateHash h;
  h.mix(std::uint64_t{live_count_});
  ring_.for_each([&](ChordId id, RingIndex::Slot s) {
    h.mix(id);
    h.mix(std::uint64_t{node_[s]});
    h.mix(succ_id_[s]);
    h.mix(ref_alive(pred_[s]) ? id_[ref_slot(pred_[s])] : ~std::uint64_t{0});
    const PeerRef* fingers = &finger_[std::size_t{s} * m_];
    for (std::uint8_t k = 0; k < finger_len_[s]; ++k) {
      h.mix(ref_alive(fingers[k]) ? id_[ref_slot(fingers[k])] : ~std::uint64_t{0});
    }
  });
  h.mix(messages_);
  h.mix(stabilize_rounds_);
  return h.value();
}

}  // namespace lsds::p2p
