#include "p2p/chord.hpp"

#include <cassert>

#include "core/rng.hpp"
#include "util/strings.hpp"

namespace lsds::p2p {

ChordNetwork::ChordNetwork(core::Engine& engine, net::RouteProvider& routing, std::uint32_t m)
    : engine_(engine), routing_(routing), m_(m) {
  assert(m_ >= 1 && m_ <= 63);
  mask_ = (ChordId{1} << m_) - 1;
}

ChordId ChordNetwork::hash_key(const std::string& s) const { return core::fnv1a(s) & mask_; }

PeerIndex ChordNetwork::add_peer(net::NodeId node) {
  Peer p;
  p.node = node;
  // Peer id: hash of the peer index — uniform, deterministic, and stable
  // across runs. Collisions are resolved by probing (vanishingly rare for
  // m >= 32).
  const auto index = peers_.size();
  ChordId id = core::fnv1a(util::strformat("chord-peer-%zu", index)) & mask_;
  while (ring_.count(id)) id = (id + 1) & mask_;
  p.id = id;
  p.live = true;
  peers_.push_back(p);
  ring_[id] = index;
  ++live_count_;
  return index;
}

void ChordNetwork::remove_peer(PeerIndex peer) {
  assert(peer < peers_.size() && peers_[peer].live);
  peers_[peer].live = false;
  ring_.erase(peers_[peer].id);
  --live_count_;
}

void ChordNetwork::build() {
  assert(!ring_.empty());
  // Successor pointers + finger tables from the global ring view.
  auto successor_of = [&](ChordId key) -> PeerIndex {
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();  // wrap
    return it->second;
  };
  for (auto& [id, idx] : ring_) {
    Peer& p = peers_[idx];
    p.successor = successor_of((p.id + 1) & mask_);
    p.fingers.assign(m_, 0);
    for (std::uint32_t k = 0; k < m_; ++k) {
      const ChordId start = (p.id + (ChordId{1} << k)) & mask_;
      p.fingers[k] = successor_of(start);
    }
  }
}

bool ChordNetwork::in_arc(ChordId x, ChordId a, ChordId b) const {
  // (a, b] on the ring; a == b means the full ring (single peer).
  if (a == b) return true;
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped arc
}

PeerIndex ChordNetwork::responsible_peer(ChordId key) const {
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

PeerIndex ChordNetwork::closest_preceding(PeerIndex from, ChordId key) const {
  const Peer& p = peers_[from];
  for (std::size_t k = p.fingers.size(); k-- > 0;) {
    const PeerIndex f = p.fingers[k];
    if (!peers_[f].live || f == from) continue;
    // finger strictly inside (p.id, key): safe to jump.
    if (in_arc(peers_[f].id, p.id, (key - 1) & mask_) && peers_[f].id != key) return f;
  }
  return p.successor;
}

double ChordNetwork::link_latency(PeerIndex a, PeerIndex b) {
  if (a == b) return 0;
  const auto& route = routing_.route(peers_[a].node, peers_[b].node);
  return route.valid ? route.total_latency : 0.001;
}

// --- protocol mode -----------------------------------------------------

void ChordNetwork::enable_protocol_mode(double stabilize_period, double horizon) {
  protocol_mode_ = true;
  stabilize_period_ = stabilize_period;
  horizon_ = horizon;
  // Seed predecessor pointers and successor lists from the current ring so
  // the protocol starts converged; churn will perturb them.
  for (auto& [id, idx] : ring_) {
    refresh_succ_list(idx);
  }
  for (auto& [id, idx] : ring_) {
    peers_[peers_[idx].successor].predecessor = idx;
  }
  for (auto& [id, idx] : ring_) {
    maintenance_loop(engine_, idx, stabilize_period, horizon);
  }
}

void ChordNetwork::fail_peer(PeerIndex peer) {
  assert(peer < peers_.size() && peers_[peer].live);
  peers_[peer].live = false;
  ring_.erase(peers_[peer].id);
  --live_count_;
  // Crash-stop: no state on other peers is touched; their stale pointers
  // are exactly what stabilization must repair.
}

PeerIndex ChordNetwork::join_via(net::NodeId node, PeerIndex bootstrap) {
  const PeerIndex newcomer = add_peer(node);
  Peer& p = peers_[newcomer];
  p.fingers.assign(m_, bootstrap);  // coarse: fix-fingers will refine
  p.succ_list.clear();
  p.predecessor = kNoPeer;
  p.successor = bootstrap;  // provisional, replaced by the lookup below
  ++messages_;
  lookup(bootstrap, (p.id + 1) & mask_, [this, newcomer](const LookupResult& r) {
    if (!r.ok) return;  // retried implicitly by the next stabilize round
    peers_[newcomer].successor = r.home;
    refresh_succ_list(newcomer);
  });
  if (protocol_mode_) maintenance_loop(engine_, newcomer, stabilize_period_, horizon_);
  return newcomer;
}

void ChordNetwork::refresh_succ_list(PeerIndex self) {
  // Backup successors: walk the *local view* successor chain.
  Peer& p = peers_[self];
  p.succ_list.clear();
  PeerIndex cur = p.successor;
  for (int i = 0; i < 3; ++i) {
    if (cur == self || !peers_[cur].live) break;
    p.succ_list.push_back(cur);
    cur = peers_[cur].successor;
  }
}

void ChordNetwork::stabilize(PeerIndex self) {
  Peer& p = peers_[self];
  ++stabilize_rounds_;

  // 1. Successor failure detection: fall back through the successor list,
  //    then to the first live finger (last resort: self).
  if (!peers_[p.successor].live || p.successor == self) {
    PeerIndex replacement = self;
    for (PeerIndex s : p.succ_list) {
      if (peers_[s].live && s != self) {
        replacement = s;
        break;
      }
    }
    if (replacement == self) {
      for (PeerIndex f : p.fingers) {
        if (peers_[f].live && f != self) {
          replacement = f;
          break;
        }
      }
    }
    p.successor = replacement;
  }
  if (p.successor == self) return;  // isolated; nothing to stabilize against

  // 2. Classic stabilize: adopt successor's predecessor when it sits
  //    between us; then notify.
  Peer& succ = peers_[p.successor];
  const PeerIndex x = succ.predecessor;
  if (x != kNoPeer && peers_[x].live && x != self &&
      in_arc(peers_[x].id, p.id, (succ.id + mask_) & mask_)) {
    p.successor = x;
  }
  Peer& new_succ = peers_[p.successor];
  const PeerIndex cur_pred = new_succ.predecessor;
  if (cur_pred == kNoPeer || !peers_[cur_pred].live ||
      in_arc(p.id, peers_[cur_pred].id, (new_succ.id + mask_) & mask_)) {
    new_succ.predecessor = self;
  }
  refresh_succ_list(self);
  messages_ += 2;  // predecessor query + notify
}

void ChordNetwork::fix_one_finger(PeerIndex self) {
  Peer& p = peers_[self];
  const std::uint32_t k = p.next_finger;
  p.next_finger = (p.next_finger + 1) % m_;
  const ChordId start = (p.id + (ChordId{1} << k)) & mask_;
  lookup(self, start, [this, self, k](const LookupResult& r) {
    if (r.ok && peers_[self].live) peers_[self].fingers[k] = r.home;
  });
}

core::Process ChordNetwork::maintenance_loop(core::Engine& eng, PeerIndex self, double period,
                                             double horizon) {
  auto& rng = eng.rng("chord.maintenance");
  // Desynchronize rounds across peers.
  co_await core::delay(eng, rng.uniform(0, period));
  while (eng.now() < horizon && peers_[self].live) {
    // One round costs a successor RTT; charged before the state update.
    co_await core::delay(eng, 2.0 * link_latency(self, peers_[self].successor));
    if (!peers_[self].live) co_return;
    stabilize(self);
    fix_one_finger(self);
    co_await core::delay(eng, period);
  }
}

void ChordNetwork::lookup(PeerIndex origin, ChordId key, LookupFn done) {
  forward(origin, origin, key, 0, engine_.now(), std::move(done));
}

void ChordNetwork::forward(PeerIndex origin, PeerIndex current, ChordId key, std::size_t hops,
                           double started, LookupFn done) {
  if (!peers_[current].live) {  // hop target churned away mid-lookup
    LookupResult res;
    res.ok = false;
    res.hops = hops;
    res.latency = engine_.now() - started;
    done(res);
    return;
  }
  const Peer& p = peers_[current];
  // Am I (exclusive) the predecessor of the key's owner? Owner = successor.
  const Peer& succ = peers_[p.successor];
  if (in_arc(key, p.id, succ.id)) {
    // Answer travels straight back to the origin.
    const double back = link_latency(current, origin);
    ++messages_;
    const PeerIndex home = p.successor;
    engine_.schedule_in(back, [this, done = std::move(done), home, hops, started] {
      LookupResult res;
      res.ok = true;
      res.home = home;
      res.hops = hops;
      res.latency = engine_.now() - started;
      done(res);
    });
    return;
  }
  if (in_arc(key, (p.id + mask_) & mask_, p.id) || p.id == key) {
    // The key maps to this peer itself (rare direct hit).
    LookupResult res;
    res.ok = true;
    res.home = current;
    res.hops = hops;
    res.latency = engine_.now() - started;
    done(res);
    return;
  }
  const PeerIndex next = closest_preceding(current, key);
  const double lat = link_latency(current, next);
  ++messages_;
  engine_.schedule_in(lat, [this, origin, next, key, hops, started,
                            done = std::move(done)]() mutable {
    forward(origin, next, key, hops + 1, started, std::move(done));
  });
}

}  // namespace lsds::p2p
