// Unstructured (Gnutella-style) overlay with TTL-limited flooding search.
//
// The baseline the structured-DHT literature measures against: each peer
// keeps `degree` random neighbors; a query floods hop by hop with a TTL,
// duplicate-suppressed per query id. Search cost grows with the flooded
// frontier (O(n) messages to cover the network) where Chord pays O(log n)
// hops — the comparison examples/p2p_overlay.cpp reproduces.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/rng.hpp"
#include "net/routing.hpp"

namespace lsds::p2p {

class GnutellaNetwork {
 public:
  using PeerIndex = std::size_t;

  GnutellaNetwork(core::Engine& engine, net::RouteProvider& routing);

  PeerIndex add_peer(net::NodeId node);
  /// Wire each peer to `degree` distinct random neighbors (symmetric).
  void build_random_overlay(std::size_t degree, core::RngStream& rng);

  /// Place a named object at a peer.
  void place_object(PeerIndex peer, const std::string& name);
  bool has_object(PeerIndex peer, const std::string& name) const;

  std::size_t size() const { return peers_.size(); }
  std::size_t degree_of(PeerIndex peer) const { return peers_[peer].neighbors.size(); }

  struct SearchResult {
    bool found = false;
    PeerIndex holder = 0;      // first responder
    std::size_t hops = 0;      // overlay hops to the first hit
    std::size_t messages = 0;  // total query messages flooded
    double latency = 0;        // time until the origin got the first hit
  };
  using SearchFn = std::function<void(const SearchResult&)>;

  /// Flood a query with the given TTL. `done` fires when the flood dies
  /// out (all in-flight messages processed), with the first hit if any.
  void search(PeerIndex origin, const std::string& name, std::size_t ttl, SearchFn done);

 private:
  struct Peer {
    net::NodeId node = net::kInvalidNode;
    std::vector<PeerIndex> neighbors;
    std::set<std::string> objects;
  };

  struct Query {
    std::string name;
    PeerIndex origin = 0;
    std::size_t in_flight = 0;
    std::set<PeerIndex> visited;
    SearchResult result;
    double started = 0;
    SearchFn done;
  };

  void deliver(std::uint64_t query_id, PeerIndex at, std::size_t ttl, std::size_t hops);
  void finish_if_drained(std::uint64_t query_id);
  double link_latency(PeerIndex a, PeerIndex b);

  core::Engine& engine_;
  net::RouteProvider& routing_;
  std::vector<Peer> peers_;
  std::map<std::uint64_t, Query> queries_;
  std::uint64_t next_query_ = 1;
};

}  // namespace lsds::p2p
