// Unstructured (Gnutella-style) overlay with TTL-limited flooding search.
//
// The baseline the structured-DHT literature measures against: each peer
// keeps `degree` random neighbors; a query floods hop by hop with a TTL,
// duplicate-suppressed per query id. Search cost grows with the flooded
// frontier (O(n) messages to cover the network) where Chord pays O(log n)
// hops — the comparison examples/p2p_overlay.cpp reproduces.
//
// Scale engineering (million-peer churn, experiment E16): the seed kept
// queries in a std::map<id, Query> with a std::set visit tracker and a
// std::string object name per query — three allocation sources per search
// plus a table that only shrank when a flood drained. Queries now live in
// a recycled slot pool (generation-counted, so late flood messages for a
// finished query are dropped in O(1)), the visit tracker is a reusable
// open-addressing set of peer slots, and object names are stored as FNV-1a
// hashes (sorted per-peer arrays). The query table is bounded by the peak
// number of *concurrent* floods, not by cumulative traffic. Peer state is
// struct-of-arrays with generation counters and slot reuse, mirroring
// ChordNetwork, so lifetime-model churn runs allocation-light.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/rng.hpp"
#include "net/routing.hpp"

namespace lsds::p2p {

class GnutellaNetwork {
 public:
  using PeerIndex = std::size_t;

  GnutellaNetwork(core::Engine& engine, net::RouteProvider& routing);

  /// Pre-size the per-peer slabs (bulk builds at 100k+ peers).
  void reserve(std::size_t peers);

  /// Add a peer attached to a topology node (recycles churned-out slots).
  PeerIndex add_peer(net::NodeId node);
  /// Remove a peer (churn): unlink it from every neighbor and recycle the
  /// slot. Floods in flight may lose frontier. Throws std::invalid_argument
  /// on an out-of-range or dead peer.
  void remove_peer(PeerIndex peer);
  /// Wire each peer to `degree` distinct random neighbors (symmetric).
  void build_random_overlay(std::size_t degree, core::RngStream& rng);
  /// Wire one (re)joining peer to up to `degree` random live neighbors —
  /// the incremental counterpart of build_random_overlay for churn.
  void connect_random(PeerIndex peer, std::size_t degree, core::RngStream& rng);

  /// Place a named object at a peer. Names are stored hashed (FNV-1a);
  /// distinct names collide with probability ~n^2 / 2^64 — negligible for
  /// any catalog this simulator hosts.
  void place_object(PeerIndex peer, const std::string& name);
  bool has_object(PeerIndex peer, const std::string& name) const;
  static std::uint64_t hash_name(const std::string& name);

  std::size_t size() const { return live_count_; }
  bool is_live(PeerIndex peer) const { return peer < live_.size() && live_[peer] != 0; }
  net::NodeId node_of(PeerIndex peer) const { return node_[peer]; }
  /// Generation counter of a slot; bumped when the peer dies, so stale
  /// references can detect slot reuse.
  std::uint32_t generation(PeerIndex peer) const { return gen_[peer]; }
  std::size_t degree_of(PeerIndex peer) const { return neighbors_[peer].size(); }
  PeerIndex neighbor(PeerIndex peer, std::size_t k) const { return neighbors_[peer][k]; }
  /// A live peer drawn uniformly (rejection over slots; O(1) expected).
  PeerIndex random_live_peer(core::RngStream& rng) const;

  struct SearchResult {
    bool found = false;
    PeerIndex holder = 0;      // first responder
    std::size_t hops = 0;      // overlay hops to the first hit
    std::size_t messages = 0;  // total query messages flooded
    double latency = 0;        // time until the origin got the first hit
  };
  using SearchFn = std::function<void(const SearchResult&)>;

  /// Flood a query with the given TTL. `done` fires when the flood dies
  /// out (all in-flight messages processed), with the first hit if any.
  void search(PeerIndex origin, const std::string& name, std::size_t ttl, SearchFn done);

  // Allocation-free bulk path: results go to the installed handler with the
  // caller's tag (one handler per network; the traffic driver owns it).
  using SearchHandler = void (*)(void* user, std::uint64_t tag, const SearchResult& result);
  void set_search_handler(SearchHandler handler, void* user) {
    handler_ = handler;
    handler_user_ = user;
  }
  void search_tagged(PeerIndex origin, std::uint64_t name_hash, std::size_t ttl,
                     std::uint64_t tag);

  // --- statistics ---------------------------------------------------------

  /// Query slots ever allocated — bounded by peak *concurrent* floods (the
  /// regression hook for the old unbounded-table bug).
  std::size_t query_table_capacity() const { return queries_.size(); }
  std::size_t searches_in_flight() const { return queries_live_; }
  /// Total slots ever allocated (bounded by peak live population).
  std::size_t slot_count() const { return node_.size(); }

  /// FNV-1a digest of the live overlay (walked in slot order): adjacency,
  /// objects, liveness. Equal digests across event-queue kinds are the E16
  /// determinism self-check.
  std::uint64_t state_digest() const;

 private:
  using PeerSlot = std::uint32_t;
  static constexpr std::uint32_t kNilIdx = 0xffffffffu;

  /// Reusable open-addressing set of peer slots (the per-flood visit
  /// tracker). clear() keeps the table allocation, so a recycled query
  /// slot floods without touching the heap once warmed up.
  class VisitSet {
   public:
    bool insert(PeerSlot s);
    bool contains(PeerSlot s) const;
    void clear();

   private:
    static constexpr PeerSlot kEmpty = 0xffffffffu;
    void grow();
    std::vector<PeerSlot> table_;
    std::size_t size_ = 0;
  };

  struct Query {
    std::uint64_t name_hash = 0;
    std::uint64_t tag = 0;
    double started = 0;
    SearchFn done;  // callback path only
    SearchResult result;
    VisitSet visited;
    PeerSlot origin = 0;
    std::uint32_t in_flight = 0;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilIdx;
    bool tagged = false;
  };

  std::uint32_t allocate_query(PeerIndex origin, std::uint64_t name_hash);
  void deliver(std::uint32_t qs, std::uint32_t q_gen, PeerSlot at, std::uint32_t at_gen,
               std::uint32_t ttl, std::uint32_t hops);
  void finish_if_drained(std::uint32_t qs);
  double link_latency(PeerSlot a, PeerSlot b);

  core::Engine& engine_;
  net::RouteProvider& routing_;

  // Per-peer state, struct-of-arrays; index = slot.
  std::vector<net::NodeId> node_;
  std::vector<std::uint32_t> gen_;
  std::vector<std::uint8_t> live_;
  std::vector<std::vector<PeerSlot>> neighbors_;
  std::vector<std::vector<std::uint64_t>> objects_;  // sorted name hashes
  std::vector<PeerSlot> free_slots_;
  std::size_t live_count_ = 0;

  // Query pool (recycled slots, free-listed).
  std::vector<Query> queries_;
  std::uint32_t query_free_ = kNilIdx;
  std::size_t queries_live_ = 0;

  SearchHandler handler_ = nullptr;
  void* handler_user_ = nullptr;
};

}  // namespace lsds::p2p
