// GridSim facade: computational-economy resource brokering.
//
// "GridSim focuses on Grid economy, where the scheduling involves the
// notions of producers (resource owners), consumers (end-users) and brokers
// discovering and allocating resources to users … dealing with deadline and
// budget constraints." The facade builds a pool of priced heterogeneous
// resources (fast ones cost more, the classic economy setup) and runs a
// deadline-and-budget-constrained broker over a task-farming workload.
// Experiment E8 sweeps the budget to show the time-opt / cost-opt
// trade-off.
#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "middleware/broker.hpp"
#include "stats/summary.hpp"

namespace lsds::obs {
class RunReport;
}

namespace lsds::sim::gridsim {

struct Config {
  std::size_t num_resources = 5;
  unsigned cores_each = 2;
  /// Speeds interpolate from speed_min to speed_max; price scales
  /// super-linearly with speed (fast resources are disproportionately
  /// expensive): price_i = base_price * (speed_i/speed_min)^price_exponent.
  double speed_min = 500;
  double speed_max = 2500;
  double base_price = 1.0;
  double price_exponent = 1.5;
  bool time_shared = false;  // space-shared by default (batch resources)

  std::size_t num_jobs = 60;
  double mean_ops = 2000;

  middleware::DbcStrategy strategy = middleware::DbcStrategy::kCostOptimization;
  double budget = 1e18;    // effectively unconstrained by default
  double deadline = 1e18;  // absolute simulation time
};

struct Result {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  double cost = 0;      // actually spent
  double makespan = 0;  // actual
  stats::SampleSet response_times;
  bool deadline_met = false;

  /// Fill the report's "result" section (shared names + economy extras).
  void to_report(obs::RunReport& report) const;
};

Result run(core::Engine& engine, const Config& cfg);

}  // namespace lsds::sim::gridsim
