#include "sim/gridsim/gridsim.hpp"

#include "obs/report.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "hosts/cpu.hpp"
#include "util/strings.hpp"

namespace lsds::sim::gridsim {

Result run(core::Engine& engine, const Config& cfg) {
  // Priced heterogeneous resource pool.
  std::vector<std::unique_ptr<hosts::CpuResource>> cpus;
  std::vector<middleware::EconomyResource> pool;
  for (std::size_t r = 0; r < cfg.num_resources; ++r) {
    const double f = cfg.num_resources > 1
                         ? static_cast<double>(r) / static_cast<double>(cfg.num_resources - 1)
                         : 0.0;
    const double speed = cfg.speed_min + f * (cfg.speed_max - cfg.speed_min);
    const double price =
        cfg.base_price * std::pow(speed / cfg.speed_min, cfg.price_exponent);
    cpus.push_back(std::make_unique<hosts::CpuResource>(
        engine, util::strformat("res%zu", r), cfg.cores_each, speed,
        cfg.time_shared ? hosts::SharingPolicy::kTimeShared
                        : hosts::SharingPolicy::kSpaceShared));
    pool.push_back(middleware::EconomyResource{cpus.back().get(), price});
  }

  middleware::EconomyBroker broker(engine, pool, cfg.strategy);
  auto& rng = engine.rng("gridsim.jobs");
  for (std::size_t i = 0; i < cfg.num_jobs; ++i) {
    hosts::Job job;
    job.id = static_cast<hosts::JobId>(i + 1);
    job.ops = rng.exponential(cfg.mean_ops);
    job.budget = cfg.budget;
    job.deadline = cfg.deadline;
    broker.submit(std::move(job));
  }

  Result res;
  const auto plan = broker.run(cfg.budget, cfg.deadline, [&](const hosts::Job& job) {
    res.response_times.add(job.response_time());
  });
  engine.run();

  res.accepted = plan.accepted;
  res.rejected = plan.rejected;
  res.completed = broker.completed();
  res.cost = broker.actual_cost();
  res.makespan = broker.makespan();
  res.deadline_met = res.makespan <= cfg.deadline;
  return res;
}


void Result::to_report(obs::RunReport& report) const {
  report.set_result_core(completed, makespan, 0);
  auto& r = report.result();
  r.set("accepted", accepted);
  r.set("rejected", rejected);
  r.set("cost", cost);
  r.set("deadline_met", deadline_met);
  r.set("mean_response_s", response_times.mean());
}

}  // namespace lsds::sim::gridsim
