// MONARC-style LHC tier model on ParallelGrid — the parallel execution
// opt-in for the monarc facade.
//
// Same study as sim/monarc (T0 production, replication agents pushing every
// raw file to each T1, analysis activities at T1 and optionally T2), but
// built callback-style on hosts::ParallelGrid so T0, the T1 regional
// centers and their T2 children are partitioned across LPs and every
// replication transfer and analysis dispatch crosses partitions through the
// deterministic cross-LP message path.
//
// All randomness (submit jitter, job service demands, the T2 file subsets)
// is drawn at setup time from streams derived only from the master seed —
// never from per-LP streams — so a given seed produces bit-identical
// results for ANY (lps, threads, partition) choice, including the serial
// reference (exec.parallel = false). tests/parallel_grid_test.cpp holds the
// model to that.
//
// Unsupported relative to the serial facade: failure injection (chaos needs
// the serial engine's global injector; request it and run_tier throws).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hosts/parallel_grid.hpp"
#include "sim/monarc/monarc.hpp"
#include "stats/summary.hpp"

namespace lsds::obs {
class RunReport;
}

namespace lsds::sim::parallel {

/// One completed analysis job (T1 or T2).
struct JobRecord {
  std::uint64_t id = 0;
  std::uint32_t site = 0;   // executing site
  double submit = 0;        // activity submit time
  double completion = 0;
  double ops = 0;
};

/// One delivered replica.
struct TransferRecord {
  std::uint64_t file = 0;
  std::uint32_t dst_site = 0;
  double produced_at = 0;
  double arrival = 0;
};

struct TierResult {
  std::uint64_t files_produced = 0;
  std::uint64_t replicas_delivered = 0;
  std::uint64_t files_archived = 0;
  /// Deterministically ordered (file, dst) / job-id records — the payload
  /// the differential determinism suite compares across LP counts.
  std::vector<TransferRecord> transfers;
  std::vector<JobRecord> jobs;
  /// Per ordered site pair (from, to, bytes) — transfer byte accounting.
  std::vector<std::tuple<hosts::SiteId, hosts::SiteId, double>> channel_bytes;
  stats::SampleSet replication_lag;
  stats::SampleSet analysis_delays;
  stats::SampleSet t2_delays;
  double backlog_at_production_end = 0;
  double makespan = 0;
  hosts::ExecutionReport exec;

  /// Canonical text serialization of every record (%.17g timestamps). Two
  /// runs are equivalent iff their traces are byte-identical — used by the
  /// parallel-run-twice and serial-vs-parallel checks.
  std::string trace() const;

  /// Fill the report's "result" section (shared names; bytes_moved sums
  /// channel_bytes) and the "execution" footprint.
  void to_report(obs::RunReport& report) const;
};

/// Run the tier model under the given execution spec. Throws
/// std::runtime_error when cfg requests features the parallel model does
/// not support (failure injection).
TierResult run_tier(const monarc::Config& cfg, const hosts::ExecutionSpec& exec);

}  // namespace lsds::sim::parallel

namespace lsds::sim::monarc {
/// Parallel-execution opt-in for the MONARC facade ([execution] section in
/// scenario files): the tier study partitioned across LPs.
inline parallel::TierResult run_parallel(const Config& cfg, const hosts::ExecutionSpec& exec) {
  return parallel::run_tier(cfg, exec);
}
}  // namespace lsds::sim::monarc
