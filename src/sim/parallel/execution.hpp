// The `[execution]` scenario section: serial vs parallel model execution.
//
//   [execution]
//   mode = parallel          ; serial (default) | parallel
//   threads = 4
//   lps = 0                  ; 0 = one LP per thread
//   partition = metis-ish    ; metis-ish (topology-aware, default) | round-robin
//   lookahead = 0            ; optional override FLOOR (duration); 0 = derive
//                            ; from the topology (min cross-partition latency)
//
// The section configures hosts::ParallelGrid; the facade-specific models
// (tier_model.hpp, bag_model.hpp) run on top of it. When the derived
// lookahead is <= 0 the run falls back to serial with a logged reason —
// `describe()` prints it.
#pragma once

#include <string>

#include "hosts/parallel_grid.hpp"
#include "util/ini.hpp"

namespace lsds::sim::parallel {

/// Parse the `[execution]` section. `seed` and `queue` come from the
/// `[scenario]` section (one source of truth for determinism knobs).
hosts::ExecutionSpec parse_execution(const util::IniConfig& ini, std::uint64_t seed,
                                     core::QueueKind queue);

/// One-paragraph human-readable execution report: mode, LPs/threads,
/// partition scheme, effective lookahead, window/message counters and the
/// per-LP load balance rolled up from Stats::per_lp_events.
std::string describe(const hosts::ExecutionReport& rep);

}  // namespace lsds::sim::parallel
