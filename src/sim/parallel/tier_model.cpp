#include "sim/parallel/tier_model.hpp"

#include "obs/report.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/rng.hpp"
#include "util/strings.hpp"

namespace lsds::sim::parallel {

namespace {

constexpr std::uint64_t kT2IdBase = 1000000;

/// Everything one analysis activity needs; precomputed at setup from
/// master-seed streams so the draws are independent of the partitioning.
struct JobPlan {
  std::uint64_t id = 0;
  std::size_t file = 0;
  double submit = 0;
  double ops = 0;
};

/// Per-T1 state, touched only by events on the owning LP.
struct T1Local {
  std::map<std::size_t, double> arrived;          // file -> arrival time
  std::map<std::size_t, const JobPlan*> waiting;  // file -> submitted-but-waiting job
  std::vector<hosts::SiteId> children;            // T2 sites under this T1
};

/// Per-T2 state, touched only by events on the owning LP.
struct T2Local {
  hosts::SiteId parent = 0;
  std::map<std::size_t, bool> avail;              // parent replica landed
  std::map<std::size_t, const JobPlan*> waiting;  // file -> waiting pull
};

struct Ctx {
  const monarc::Config* cfg = nullptr;
  hosts::ParallelGrid* grid = nullptr;
  // Counters are only ever touched from T0's LP.
  std::uint64_t files_produced = 0;
  std::uint64_t files_archived = 0;
  std::vector<T1Local> t1;                         // by T1 index
  std::map<hosts::SiteId, T2Local> t2;             // by T2 site id
  // Records appended only by the owner LP of the indexing site.
  std::vector<std::vector<TransferRecord>> site_transfers;  // by T1 index
  std::vector<std::vector<JobRecord>> site_jobs;            // by site id
};

void start_compute(Ctx& ctx, std::size_t t1_idx, const JobPlan& plan) {
  const auto site_id = static_cast<hosts::SiteId>(1 + t1_idx);
  auto& site = ctx.grid->site(site_id);
  site.cpu().submit(static_cast<hosts::JobId>(plan.id), plan.ops,
                    [&ctx, site_id, &plan](hosts::JobId) {
                      ctx.site_jobs[site_id].push_back(
                          {plan.id, site_id, plan.submit, ctx.grid->now_of(site_id), plan.ops});
                    });
}

/// T1 -> T2 pull: request travels up, the file comes back over the
/// (t1, t2) channel, then the T2 analysis runs — three cross-site hops,
/// each through the deterministic cross-LP message path.
void start_pull(Ctx& ctx, hosts::SiteId t2_site, const JobPlan& plan) {
  T2Local& t2 = ctx.t2[t2_site];
  const hosts::SiteId parent = t2.parent;
  const double bytes = ctx.cfg->file_bytes;
  const double req_at = ctx.grid->now_of(t2_site) + ctx.grid->path_latency(t2_site, parent);
  ctx.grid->post(t2_site, parent, req_at, [&ctx, parent, t2_site, bytes, &plan] {
    ctx.grid->transfer(parent, t2_site, bytes, [&ctx, t2_site, &plan] {
      auto& site = ctx.grid->site(t2_site);
      site.disk().store(util::strformat("raw%05zu", plan.file), ctx.cfg->file_bytes);
      site.cpu().submit(static_cast<hosts::JobId>(plan.id), plan.ops,
                        [&ctx, t2_site, &plan](hosts::JobId) {
                          ctx.site_jobs[t2_site].push_back({plan.id, t2_site, plan.submit,
                                                            ctx.grid->now_of(t2_site), plan.ops});
                        });
    });
  });
}

}  // namespace

TierResult run_tier(const monarc::Config& cfg, const hosts::ExecutionSpec& exec) {
  if (cfg.failures.enabled) {
    throw std::runtime_error(
        "tier_model: failure injection requires serial execution (facade = monarc, "
        "mode = serial)");
  }

  hosts::ParallelGrid grid(exec);

  // --- sites & topology (the shape of sim/monarc) -------------------------
  hosts::SiteSpec t0spec;
  t0spec.name = "T0";
  t0spec.cores = 32;
  t0spec.cpu_speed = 2000;
  t0spec.disk_capacity = cfg.t0_disk;
  t0spec.has_mass_storage = true;
  t0spec.tape_bandwidth = cfg.tape_bandwidth;
  t0spec.tape_mount_latency = cfg.tape_mount_latency;
  t0spec.storage_sharing = cfg.storage_sharing;
  const hosts::SiteId t0 = grid.add_site(t0spec);

  std::vector<hosts::SiteId> t1_sites;
  for (std::size_t i = 0; i < cfg.num_t1; ++i) {
    hosts::SiteSpec s;
    s.name = util::strformat("T1_%zu", i);
    s.cores = cfg.t1_cores;
    s.cpu_speed = cfg.analysis_cpu_speed;
    s.disk_capacity = cfg.t1_disk;
    s.storage_sharing = cfg.storage_sharing;
    t1_sites.push_back(grid.add_site(s));
  }
  std::vector<std::vector<hosts::SiteId>> t2_sites(cfg.num_t1);
  for (std::size_t i = 0; i < cfg.num_t1; ++i) {
    for (std::size_t j = 0; j < cfg.t2_per_t1; ++j) {
      hosts::SiteSpec s;
      s.name = util::strformat("T2_%zu_%zu", i, j);
      s.cores = cfg.t2_cores;
      s.cpu_speed = cfg.analysis_cpu_speed;
      s.disk_capacity = cfg.t2_disk;
      s.storage_sharing = cfg.storage_sharing;
      t2_sites[i].push_back(grid.add_site(s));
    }
  }
  auto& topo = grid.topology();
  for (std::size_t i = 0; i < cfg.num_t1; ++i) {
    topo.add_link(0, static_cast<net::NodeId>(1 + i), cfg.t0_t1_bandwidth, cfg.t0_t1_latency,
                  util::strformat("T0--T1_%zu", i));
  }
  for (std::size_t i = 0; i < cfg.num_t1; ++i) {
    for (hosts::SiteId t2 : t2_sites[i]) {
      topo.add_link(static_cast<net::NodeId>(1 + i), static_cast<net::NodeId>(t2),
                    cfg.t1_t2_bandwidth, cfg.t1_t2_latency);
    }
  }
  grid.finalize();

  // --- plans: every random draw happens HERE, in a fixed order, from
  // master-seed streams — partitioning can never perturb them. ------------
  std::vector<std::vector<JobPlan>> t1_plans(cfg.num_t1);   // [t1][file]
  std::map<hosts::SiteId, std::vector<JobPlan>> t2_plans;   // per T2 site
  if (cfg.run_analysis) {
    core::RngStream submits(grid.master_seed(), "tier.analysis");
    for (std::size_t i = 0; i < cfg.num_t1; ++i) {
      t1_plans[i].resize(cfg.num_files);
      for (std::size_t f = 0; f < cfg.num_files; ++f) {
        const double produced_at = cfg.production_interval * static_cast<double>(f + 1);
        t1_plans[i][f] = {1 + i * cfg.num_files + f, f,
                          produced_at + submits.exponential(10.0),
                          submits.exponential(cfg.analysis_mean_ops)};
      }
    }
    core::RngStream t2rng(grid.master_seed(), "tier.t2");
    for (std::size_t i = 0; i < cfg.num_t1; ++i) {
      for (hosts::SiteId t2 : t2_sites[i]) {
        for (std::size_t f = 0; f < cfg.num_files; ++f) {
          if (!t2rng.bernoulli(cfg.t2_fraction)) continue;
          const double produced_at = cfg.production_interval * static_cast<double>(f + 1);
          t2_plans[t2].push_back({kT2IdBase + t2 * cfg.num_files + f, f,
                                  produced_at + t2rng.exponential(20.0),
                                  t2rng.exponential(cfg.analysis_mean_ops)});
        }
      }
    }
  }

  Ctx ctx;
  ctx.cfg = &cfg;
  ctx.grid = &grid;
  ctx.t1.resize(cfg.num_t1);
  for (std::size_t i = 0; i < cfg.num_t1; ++i) ctx.t1[i].children = t2_sites[i];
  for (std::size_t i = 0; i < cfg.num_t1; ++i) {
    for (hosts::SiteId t2 : t2_sites[i]) {
      ctx.t2[t2].parent = t1_sites[i];
    }
  }
  ctx.site_transfers.resize(cfg.num_t1);
  ctx.site_jobs.resize(grid.site_count());

  // --- production + replication at T0 -------------------------------------
  for (std::size_t f = 0; f < cfg.num_files; ++f) {
    const double produced_at = cfg.production_interval * static_cast<double>(f + 1);
    grid.at(t0, produced_at, [&ctx, &grid, &cfg, t0, f, produced_at] {
      grid.site(t0).disk().store(util::strformat("raw%05zu", f), cfg.file_bytes, true);
      ++ctx.files_produced;
      for (std::size_t i = 0; i < cfg.num_t1; ++i) {
        const auto dst = static_cast<hosts::SiteId>(1 + i);
        grid.transfer(t0, dst, cfg.file_bytes, [&ctx, &grid, i, dst, f, produced_at] {
          const double now = grid.now_of(dst);
          grid.site(dst).disk().store(util::strformat("raw%05zu", f), ctx.cfg->file_bytes);
          T1Local& t1 = ctx.t1[i];
          t1.arrived[f] = now;
          ctx.site_transfers[i].push_back({f, dst, produced_at, now});
          if (auto it = t1.waiting.find(f); it != t1.waiting.end()) {
            start_compute(ctx, i, *it->second);
            t1.waiting.erase(it);
          }
          // Tell interested T2 children the replica landed (one path
          // latency away — the GIS-style availability notice).
          for (hosts::SiteId t2 : t1.children) {
            const auto pit = ctx.t2.find(t2);
            if (pit == ctx.t2.end()) continue;
            grid.post(dst, t2, now + grid.path_latency(dst, t2), [&ctx, t2, f] {
              T2Local& local = ctx.t2[t2];
              local.avail[f] = true;
              if (auto wit = local.waiting.find(f); wit != local.waiting.end()) {
                const JobPlan* plan = wit->second;
                local.waiting.erase(wit);
                start_pull(ctx, t2, *plan);
              }
            });
          }
        });
      }
      if (cfg.archive_to_tape) {
        grid.site(t0).tape().write(util::strformat("tape-raw%05zu", f), cfg.file_bytes,
                                   [&ctx] { ++ctx.files_archived; });
      }
    });
  }

  // --- analysis activities --------------------------------------------------
  if (cfg.run_analysis) {
    for (std::size_t i = 0; i < cfg.num_t1; ++i) {
      for (std::size_t f = 0; f < cfg.num_files; ++f) {
        const JobPlan& plan = t1_plans[i][f];
        grid.at(t1_sites[i], plan.submit, [&ctx, i, &plan] {
          T1Local& t1 = ctx.t1[i];
          if (t1.arrived.count(plan.file)) {
            start_compute(ctx, i, plan);
          } else {
            t1.waiting[plan.file] = &plan;
          }
        });
      }
    }
    for (auto& [t2, plans] : t2_plans) {
      for (const JobPlan& plan : plans) {
        const hosts::SiteId t2_site = t2;
        grid.at(t2_site, plan.submit, [&ctx, t2_site, &plan] {
          T2Local& local = ctx.t2[t2_site];
          if (local.avail.count(plan.file)) {
            start_pull(ctx, t2_site, plan);
          } else {
            local.waiting[plan.file] = &plan;
          }
        });
      }
    }
  }

  // --- run -----------------------------------------------------------------
  TierResult res;
  res.exec = grid.run(cfg.horizon > 0 ? cfg.horizon : core::kInfTime);

  // --- deterministic merge (site order, then sorted) ----------------------
  res.files_produced = ctx.files_produced;
  res.files_archived = ctx.files_archived;
  for (auto& v : ctx.site_transfers) {
    res.transfers.insert(res.transfers.end(), v.begin(), v.end());
  }
  std::sort(res.transfers.begin(), res.transfers.end(),
            [](const TransferRecord& a, const TransferRecord& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.dst_site < b.dst_site;
            });
  res.replicas_delivered = res.transfers.size();
  for (const auto& t : res.transfers) {
    res.replication_lag.add(t.arrival - t.produced_at);
    res.makespan = std::max(res.makespan, t.arrival);
  }
  for (auto& v : ctx.site_jobs) {
    res.jobs.insert(res.jobs.end(), v.begin(), v.end());
  }
  std::sort(res.jobs.begin(), res.jobs.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.id < b.id; });
  for (const auto& j : res.jobs) {
    (j.id >= kT2IdBase ? res.t2_delays : res.analysis_delays).add(j.completion - j.submit);
    res.makespan = std::max(res.makespan, j.completion);
  }
  res.channel_bytes = grid.channel_bytes();

  const double production_end =
      cfg.production_interval * static_cast<double>(cfg.num_files);
  double delivered_by_end = 0;
  for (const auto& t : res.transfers) {
    if (t.dst_site <= cfg.num_t1 && t.arrival <= production_end) {
      delivered_by_end += cfg.file_bytes;
    }
  }
  res.backlog_at_production_end =
      static_cast<double>(res.files_produced) * cfg.file_bytes *
          static_cast<double>(cfg.num_t1) -
      delivered_by_end;
  return res;
}

std::string TierResult::trace() const {
  std::string out;
  out += util::strformat("produced %llu delivered %llu archived %llu makespan %.17g\n",
                         static_cast<unsigned long long>(files_produced),
                         static_cast<unsigned long long>(replicas_delivered),
                         static_cast<unsigned long long>(files_archived), makespan);
  for (const auto& t : transfers) {
    out += util::strformat("file %llu dst %u produced %.17g arrival %.17g\n",
                           static_cast<unsigned long long>(t.file), t.dst_site, t.produced_at,
                           t.arrival);
  }
  for (const auto& j : jobs) {
    out += util::strformat("job %llu site %u submit %.17g completion %.17g ops %.17g\n",
                           static_cast<unsigned long long>(j.id), j.site, j.submit,
                           j.completion, j.ops);
  }
  for (const auto& [from, to, bytes] : channel_bytes) {
    out += util::strformat("chan %u %u %.17g\n", from, to, bytes);
  }
  return out;
}


void TierResult::to_report(obs::RunReport& report) const {
  double moved = 0;
  for (const auto& [from, to, bytes] : channel_bytes) moved += bytes;
  report.set_result_core(jobs.size(), makespan, moved);
  auto& r = report.result();
  r.set("files_produced", files_produced);
  r.set("replicas_delivered", replicas_delivered);
  r.set("files_archived", files_archived);
  r.set("backlog_at_production_end_bytes", backlog_at_production_end);
  r.set("mean_replication_lag_s", replication_lag.mean());
  report.add_execution(exec);
}

}  // namespace lsds::sim::parallel
