#include "sim/parallel/execution.hpp"

#include "util/strings.hpp"

namespace lsds::sim::parallel {

hosts::ExecutionSpec parse_execution(const util::IniConfig& ini, std::uint64_t seed,
                                     core::QueueKind queue) {
  hosts::ExecutionSpec spec;
  spec.seed = seed;
  spec.queue = queue;
  const std::string mode = ini.get_string("execution", "mode", "serial");
  if (mode == "parallel") {
    spec.parallel = true;
  } else if (mode != "serial") {
    throw util::ConfigError("unknown execution mode: " + mode + " (serial|parallel)");
  }
  spec.threads = static_cast<unsigned>(ini.get_int("execution", "threads", 4));
  spec.lps = static_cast<unsigned>(ini.get_int("execution", "lps", 0));
  const std::string part = ini.get_string("execution", "partition", "metis-ish");
  if (part == "metis-ish" || part == "topology") {
    spec.partition = net::PartitionScheme::kTopology;
  } else if (part == "round-robin") {
    spec.partition = net::PartitionScheme::kRoundRobin;
  } else {
    throw util::ConfigError("unknown partition scheme: " + part + " (metis-ish|round-robin)");
  }
  spec.lookahead_override = ini.get_duration("execution", "lookahead", 0);
  return spec;
}

std::string describe(const hosts::ExecutionReport& rep) {
  if (!rep.parallel) {
    std::string s = "execution: serial";
    if (!rep.fallback_reason.empty()) s += " (fallback: " + rep.fallback_reason + ")";
    s += util::strformat(", %llu events",
                         static_cast<unsigned long long>(rep.engine.events));
    return s + "\n";
  }
  return util::strformat(
      "execution: parallel, %u LPs on %u threads, partition=%s, lookahead=%.4g s\n"
      "  %llu windows, %llu events, %llu cross-LP msgs, %llu lookahead violations, "
      "%llu past clamps\n"
      "  per-LP events: mean %.0f, min %.0f, max %.0f (imbalance %.2f)\n",
      rep.lps, rep.threads, net::to_string(rep.partition), rep.lookahead,
      static_cast<unsigned long long>(rep.engine.windows),
      static_cast<unsigned long long>(rep.engine.events),
      static_cast<unsigned long long>(rep.engine.cross_messages),
      static_cast<unsigned long long>(rep.engine.lookahead_violations),
      static_cast<unsigned long long>(rep.engine.past_clamped), rep.lp_events.mean(),
      rep.lp_events.min(), rep.lp_events.max(), rep.imbalance());
}

}  // namespace lsds::sim::parallel
