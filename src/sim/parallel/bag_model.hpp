// GridSim-style priced bag-of-tasks on ParallelGrid — the parallel
// execution opt-in for the gridsim facade.
//
// Same economy study as sim/gridsim (heterogeneous priced resources, a
// deadline-and-budget-constrained broker farming out independent tasks),
// but run on hosts::ParallelGrid: the broker host and every resource are
// sites partitioned across LPs, and each dispatch / completion ack is a
// cross-LP message over the star topology. The DBC schedule itself is
// computed *statically at setup* from the (deterministic) resource
// completion-time estimates, so the plan — and therefore every event — is
// independent of the partitioning; the differential determinism suite
// compares the resulting traces across LP counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hosts/parallel_grid.hpp"
#include "sim/gridsim/gridsim.hpp"
#include "stats/summary.hpp"

namespace lsds::obs {
class RunReport;
}

namespace lsds::sim::parallel {

/// One completed task with its broker-side accounting.
struct BagJobRecord {
  std::uint64_t id = 0;
  std::uint32_t site = 0;     // executing resource site
  double submit = 0;          // broker dispatch time
  double completion = 0;      // resource-side finish
  double acked = 0;           // broker-side ack arrival
  double ops = 0;
  double cost = 0;
};

struct BagResult {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;   // over budget / past deadline at plan time
  std::uint64_t completed = 0;
  double cost = 0;
  double makespan = 0;          // last broker ack
  bool deadline_met = false;
  stats::SampleSet response_times;
  std::vector<BagJobRecord> jobs;  // sorted by id
  std::vector<std::tuple<hosts::SiteId, hosts::SiteId, double>> channel_bytes;
  hosts::ExecutionReport exec;

  /// Canonical %.17g serialization for byte-identical comparison.
  std::string trace() const;

  /// Fill the report's "result" section (shared names; bytes_moved sums
  /// channel_bytes) and the "execution" footprint.
  void to_report(obs::RunReport& report) const;
};

/// Run the bag-of-tasks study under the given execution spec.
BagResult run_bag(const gridsim::Config& cfg, const hosts::ExecutionSpec& exec);

}  // namespace lsds::sim::parallel

namespace lsds::sim::gridsim {
/// Parallel-execution opt-in for the GridSim facade ([execution] section in
/// scenario files): the priced bag run across LPs.
inline parallel::BagResult run_parallel(const Config& cfg, const hosts::ExecutionSpec& exec) {
  return parallel::run_bag(cfg, exec);
}
}  // namespace lsds::sim::gridsim
