#include "sim/parallel/bag_model.hpp"

#include "obs/report.hpp"

#include <algorithm>
#include <cmath>

#include "core/rng.hpp"
#include "util/strings.hpp"

namespace lsds::sim::parallel {

namespace {

// Star links broker <-> resource. The latency doubles as the derived
// lookahead, the bandwidth only matters for the (tiny) dispatch payloads.
constexpr double kLinkBandwidth = 1e9 / 8;
constexpr double kLinkLatency = 0.02;
constexpr double kDispatchBytes = 1e4;  // job description payload

struct Assignment {
  std::uint64_t id = 0;
  std::uint32_t site = 0;  // resource site (1-based; 0 is the broker)
  double dispatch = 0;     // broker-side send time
  double ops = 0;
  double cost = 0;
};

}  // namespace

BagResult run_bag(const gridsim::Config& cfg, const hosts::ExecutionSpec& exec) {
  hosts::ParallelGrid grid(exec);

  // --- sites: broker (no compute) + priced heterogeneous resources --------
  hosts::SiteSpec broker_spec;
  broker_spec.name = "broker";
  broker_spec.cores = 1;
  const hosts::SiteId broker = grid.add_site(broker_spec);

  std::vector<double> speed(cfg.num_resources), price(cfg.num_resources);
  std::vector<unsigned> cores(cfg.num_resources, cfg.cores_each);
  for (std::size_t i = 0; i < cfg.num_resources; ++i) {
    const double t = cfg.num_resources > 1
                         ? static_cast<double>(i) / static_cast<double>(cfg.num_resources - 1)
                         : 0.0;
    speed[i] = cfg.speed_min + t * (cfg.speed_max - cfg.speed_min);
    price[i] = cfg.base_price * std::pow(speed[i] / cfg.speed_min, cfg.price_exponent);
    hosts::SiteSpec s;
    s.name = util::strformat("resource%zu", i);
    s.cores = cfg.cores_each;
    s.cpu_speed = speed[i];
    s.policy = cfg.time_shared ? hosts::SharingPolicy::kTimeShared
                               : hosts::SharingPolicy::kSpaceShared;
    s.price_per_cpu_second = price[i];
    const hosts::SiteId id = grid.add_site(s);
    grid.topology().add_link(static_cast<net::NodeId>(broker), static_cast<net::NodeId>(id),
                             kLinkBandwidth, kLinkLatency,
                             util::strformat("broker--resource%zu", i));
  }
  grid.finalize();

  // --- static DBC-ish plan (all draws + all decisions at setup) -----------
  //
  // Service demands come from a master-seed stream; the broker's estimated
  // completion time per resource is tracked per core (earliest-free-core,
  // the space-shared estimate sim/gridsim's broker uses). Cost optimization
  // walks resources cheapest-first and takes the first that can still meet
  // the deadline; time optimization takes the earliest estimated finish.
  core::RngStream ops_rng(grid.master_seed(), "bag.ops");
  std::vector<double> ops(cfg.num_jobs);
  for (std::size_t j = 0; j < cfg.num_jobs; ++j) ops[j] = ops_rng.exponential(cfg.mean_ops);

  std::vector<std::size_t> by_price(cfg.num_resources);
  for (std::size_t i = 0; i < cfg.num_resources; ++i) by_price[i] = i;
  std::sort(by_price.begin(), by_price.end(), [&](std::size_t a, std::size_t b) {
    if (price[a] != price[b]) return price[a] < price[b];
    return a < b;
  });

  std::vector<std::vector<double>> core_free(cfg.num_resources);
  for (std::size_t i = 0; i < cfg.num_resources; ++i) {
    core_free[i].assign(cores[i], kLinkLatency);  // dispatch can't land before one hop
  }
  auto estimate = [&](std::size_t r, double work) {
    const auto it = std::min_element(core_free[r].begin(), core_free[r].end());
    return *it + work / speed[r];
  };

  BagResult res;
  std::vector<Assignment> plan;
  double spent = 0;
  // Small deterministic stagger so no two dispatches tie in time.
  const double stagger = 1e-3;
  for (std::size_t j = 0; j < cfg.num_jobs; ++j) {
    std::size_t pick = static_cast<std::size_t>(-1);
    if (cfg.strategy == middleware::DbcStrategy::kCostOptimization) {
      for (std::size_t r : by_price) {
        if (estimate(r, ops[j]) + kLinkLatency <= cfg.deadline) {
          pick = r;
          break;
        }
      }
    } else {
      double best = core::kInfTime;
      for (std::size_t r = 0; r < cfg.num_resources; ++r) {
        const double fin = estimate(r, ops[j]);
        if (fin < best) {
          best = fin;
          pick = r;
        }
      }
      if (pick != static_cast<std::size_t>(-1) && best + kLinkLatency > cfg.deadline) {
        pick = static_cast<std::size_t>(-1);
      }
    }
    const double job_cost =
        pick != static_cast<std::size_t>(-1) ? ops[j] / speed[pick] * price[pick] : 0;
    if (pick == static_cast<std::size_t>(-1) || spent + job_cost > cfg.budget) {
      ++res.rejected;
      continue;
    }
    spent += job_cost;
    auto it = std::min_element(core_free[pick].begin(), core_free[pick].end());
    *it = std::max(*it, kLinkLatency) + ops[j] / speed[pick];
    plan.push_back({j + 1, static_cast<std::uint32_t>(1 + pick),
                    static_cast<double>(plan.size()) * stagger, ops[j], job_cost});
  }
  res.accepted = plan.size();

  // --- execution: dispatch -> compute -> ack, all cross-LP ----------------
  struct Done {
    std::uint64_t id;
    std::uint32_t site;
    double submit, completion, ops, cost;
  };
  std::vector<std::vector<Done>> site_done(grid.site_count());  // by resource site
  std::vector<BagJobRecord> acked;                              // broker-local
  acked.reserve(plan.size());

  for (const Assignment& a : plan) {
    grid.at(broker, a.dispatch, [&grid, &site_done, &acked, &a, broker] {
      grid.transfer(broker, a.site, kDispatchBytes, [&grid, &site_done, &acked, &a, broker] {
        grid.site(a.site).cpu().submit(
            a.id, a.ops, [&grid, &site_done, &acked, &a, broker](hosts::JobId) {
              const double done_at = grid.now_of(a.site);
              site_done[a.site].push_back({a.id, a.site, a.dispatch, done_at, a.ops, a.cost});
              grid.post(a.site, broker, done_at + grid.path_latency(a.site, broker),
                        [&grid, &acked, &a, broker] {
                          acked.push_back({a.id, a.site, a.dispatch, 0, grid.now_of(broker),
                                           a.ops, a.cost});
                        });
            });
      });
    });
  }

  res.exec = grid.run();

  // --- deterministic merge -------------------------------------------------
  std::vector<BagJobRecord> jobs;
  for (const auto& v : site_done) {
    for (const Done& d : v) {
      jobs.push_back({d.id, d.site, d.submit, d.completion, 0, d.ops, d.cost});
    }
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const BagJobRecord& a, const BagJobRecord& b) { return a.id < b.id; });
  std::sort(acked.begin(), acked.end(),
            [](const BagJobRecord& a, const BagJobRecord& b) { return a.id < b.id; });
  for (std::size_t i = 0, k = 0; i < jobs.size(); ++i) {
    while (k < acked.size() && acked[k].id < jobs[i].id) ++k;
    if (k < acked.size() && acked[k].id == jobs[i].id) jobs[i].acked = acked[k].acked;
  }
  res.jobs = std::move(jobs);
  for (const auto& j : res.jobs) {
    if (j.acked <= 0) continue;  // horizon cut before the ack landed
    ++res.completed;
    res.cost += j.cost;
    res.response_times.add(j.acked - j.submit);
    res.makespan = std::max(res.makespan, j.acked);
  }
  res.deadline_met = res.completed == res.accepted && res.makespan <= cfg.deadline;
  res.channel_bytes = grid.channel_bytes();
  return res;
}

std::string BagResult::trace() const {
  std::string out = util::strformat(
      "accepted %llu rejected %llu completed %llu cost %.17g makespan %.17g\n",
      static_cast<unsigned long long>(accepted), static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(completed), cost, makespan);
  for (const auto& j : jobs) {
    out += util::strformat(
        "job %llu site %u submit %.17g completion %.17g acked %.17g ops %.17g cost %.17g\n",
        static_cast<unsigned long long>(j.id), j.site, j.submit, j.completion, j.acked, j.ops,
        j.cost);
  }
  for (const auto& [from, to, bytes] : channel_bytes) {
    out += util::strformat("chan %u %u %.17g\n", from, to, bytes);
  }
  return out;
}


void BagResult::to_report(obs::RunReport& report) const {
  double moved = 0;
  for (const auto& [from, to, bytes] : channel_bytes) moved += bytes;
  report.set_result_core(completed, makespan, moved);
  auto& r = report.result();
  r.set("accepted", accepted);
  r.set("rejected", rejected);
  r.set("cost", cost);
  r.set("deadline_met", deadline_met);
  r.set("mean_response_s", response_times.mean());
  report.add_execution(exec);
}

}  // namespace lsds::sim::parallel
