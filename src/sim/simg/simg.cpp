#include "sim/simg/simg.hpp"

#include "obs/report.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/process.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/common.hpp"

namespace lsds::sim::simg {

const char* to_string(SchedulingMode m) {
  switch (m) {
    case SchedulingMode::kCompileTime: return "compile-time";
    case SchedulingMode::kRuntime: return "runtime";
  }
  return "?";
}

namespace {

struct Task {
  std::int64_t id = -1;  // -1 is the shutdown sentinel
  double ops = 0;
  double nominal_ops = 0;
};

struct Ctx {
  const Config* cfg;
  net::FlowNetwork* net;
  net::NodeId master_node;
  std::vector<net::NodeId> worker_nodes;
  std::vector<double> speeds;
  std::vector<std::unique_ptr<core::Channel<Task>>> task_ch;  // master -> worker
  std::unique_ptr<core::Channel<std::size_t>> idle_ch;        // worker -> master
  Result* res;
};

// Worker agent: receive a task over the channel, pull its input data from
// the master, compute, report idle. A sentinel task terminates the agent.
core::Process worker_agent(core::Engine& eng, Ctx& ctx, std::size_t w) {
  ctx.idle_ch->send(w);  // announce readiness
  for (;;) {
    const Task task = co_await ctx.task_ch[w]->receive();
    if (task.id < 0) co_return;
    const double t0 = eng.now();
    co_await transfer(*ctx.net, ctx.master_node, ctx.worker_nodes[w], ctx.cfg->task_input_bytes);
    co_await core::delay(eng, task.ops / ctx.speeds[w]);
    ctx.res->task_times.add(eng.now() - t0);
    ctx.res->makespan = std::max(ctx.res->makespan, eng.now());
    ++ctx.res->per_worker[w];
    ++ctx.res->tasks;
    ctx.idle_ch->send(w);
  }
}

// Runtime master: self-scheduling — dispatch the next task to whichever
// worker reports idle.
core::Process runtime_master(core::Engine& eng, Ctx& ctx, std::vector<Task> tasks) {
  (void)eng;
  std::size_t next = 0;
  std::size_t alive = ctx.cfg->num_workers;
  while (alive > 0) {
    const std::size_t w = co_await ctx.idle_ch->receive();
    if (next < tasks.size()) {
      ctx.task_ch[w]->send(tasks[next++]);
    } else {
      ctx.task_ch[w]->send(Task{});  // sentinel (id = -1)
      --alive;
    }
  }
}

// Compile-time master: min-ECT list schedule using *nominal* lengths, then
// ship every worker its whole list up front.
core::Process compile_time_master(core::Engine& eng, Ctx& ctx, std::vector<Task> tasks) {
  (void)eng;
  const std::size_t n_workers = ctx.cfg->num_workers;
  std::vector<double> ready(n_workers, 0);
  // Longest (nominal) task first, each to the worker with min ECT.
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const Task& a, const Task& b) { return a.nominal_ops > b.nominal_ops; });
  std::vector<std::vector<Task>> plan(n_workers);
  for (const Task& t : tasks) {
    std::size_t best = 0;
    double best_ect = 0;
    for (std::size_t w = 0; w < n_workers; ++w) {
      const double ect = ready[w] + t.nominal_ops / ctx.speeds[w];
      if (w == 0 || ect < best_ect) {
        best = w;
        best_ect = ect;
      }
    }
    ready[best] = best_ect;
    plan[best].push_back(t);
  }
  for (std::size_t w = 0; w < n_workers; ++w) {
    co_await ctx.idle_ch->receive();  // consume initial readiness tokens
  }
  for (std::size_t w = 0; w < n_workers; ++w) {
    for (const Task& t : plan[w]) ctx.task_ch[w]->send(t);
    ctx.task_ch[w]->send(Task{});  // sentinel
  }
  // Drain idle reports so the channel does not accumulate.
  for (std::size_t i = 0; i < tasks.size(); ++i) co_await ctx.idle_ch->receive();
}

}  // namespace

Result run(core::Engine& engine, const Config& cfg) {
  // Star topology: master at the hub side.
  net::Topology topo;
  const net::NodeId master = topo.add_node("master");
  const net::NodeId hub = topo.add_node("hub", net::NodeKind::kRouter);
  topo.add_link(master, hub, cfg.worker_bw * static_cast<double>(cfg.num_workers),
                cfg.worker_latency);
  std::vector<net::NodeId> workers;
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    const auto n = topo.add_node("worker" + std::to_string(w));
    topo.add_link(n, hub, cfg.worker_bw, cfg.worker_latency);
    workers.push_back(n);
  }
  net::Routing routing(topo);
  net::FlowNetwork fnet(engine, routing, cfg.network);

  Result res;
  res.per_worker.assign(cfg.num_workers, 0);

  Ctx ctx;
  ctx.cfg = &cfg;
  ctx.net = &fnet;
  ctx.master_node = master;
  ctx.worker_nodes = workers;
  ctx.res = &res;
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    const double f = cfg.num_workers > 1
                         ? static_cast<double>(w) / static_cast<double>(cfg.num_workers - 1)
                         : 0.0;
    ctx.speeds.push_back(cfg.speed_max - f * (cfg.speed_max - cfg.speed_min));
    ctx.task_ch.push_back(std::make_unique<core::Channel<Task>>(engine));
  }
  ctx.idle_ch = std::make_unique<core::Channel<std::size_t>>(engine);

  // Task list with noisy nominal estimates.
  auto& rng = engine.rng("simg.tasks");
  std::vector<Task> tasks;
  tasks.reserve(cfg.num_tasks);
  for (std::size_t i = 0; i < cfg.num_tasks; ++i) {
    Task t;
    t.id = static_cast<std::int64_t>(i);
    t.ops = rng.exponential(cfg.mean_ops);
    const double noise = 1.0 + rng.uniform(-cfg.estimate_error, cfg.estimate_error);
    t.nominal_ops = std::max(1.0, t.ops * noise);
    tasks.push_back(t);
  }

  for (std::size_t w = 0; w < cfg.num_workers; ++w) worker_agent(engine, ctx, w);
  if (cfg.mode == SchedulingMode::kRuntime) {
    runtime_master(engine, ctx, std::move(tasks));
  } else {
    compile_time_master(engine, ctx, std::move(tasks));
  }
  engine.run();
  return res;
}


void Result::to_report(obs::RunReport& report) const {
  report.set_result_core(tasks, makespan, 0);
  report.result().set("mean_task_time_s", task_times.mean());
}

}  // namespace lsds::sim::simg
