// SimGrid facade: agents, channels, and compile-time vs runtime scheduling.
//
// "SimGrid describes scheduling algorithms in terms of agent entities that
// make scheduling decisions. These agents interact by sending and receiving
// events via communication channels. … SimGrid can be used to simulate
// compile time and running scheduling algorithms. In the first category,
// all scheduling decisions are taken before the execution. In the second
// category some decision are taken during the execution."
//
// The facade evaluates both categories on the same heterogeneous
// master/worker scenario:
//   * kCompileTime — a static mapping (min-ECT list schedule) computed from
//     nominal task lengths before execution; workers receive their full
//     task list up front over channels.
//   * kRuntime     — a master agent dispatches tasks one-at-a-time to
//     whichever worker reports idle (self-scheduling), adapting to actual
//     completion order.
// Tasks carry input payloads shipped over the network, so scheduling
// interacts with communication — the SimGrid problem shape.
#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "net/flow.hpp"
#include "stats/summary.hpp"

namespace lsds::obs {
class RunReport;
}

namespace lsds::sim::simg {

enum class SchedulingMode { kCompileTime, kRuntime };

const char* to_string(SchedulingMode m);

struct Config {
  std::size_t num_workers = 4;
  std::size_t num_tasks = 64;
  double mean_ops = 1000;
  /// Relative error of the nominal task lengths the compile-time scheduler
  /// sees (0 = perfect estimates; 0.5 = +/-50% uniform noise).
  double estimate_error = 0.3;
  double task_input_bytes = 1e6;
  /// Flow-network solver selection (`[network] incremental` toggle).
  net::FlowNetwork::Config network;
  /// Worker speeds interpolate linearly from fastest to slowest:
  /// speed_i in [speed_min, speed_max].
  double speed_min = 500;
  double speed_max = 2000;
  double worker_bw = 125e6;
  double worker_latency = 0.005;
  SchedulingMode mode = SchedulingMode::kRuntime;
};

struct Result {
  std::uint64_t tasks = 0;
  double makespan = 0;
  stats::SampleSet task_times;
  /// Tasks executed per worker.
  std::vector<std::uint64_t> per_worker;

  /// Fill the report's "result" section (shared names; bytes_moved = 0, the
  /// facade measures scheduling, not data movement).
  void to_report(obs::RunReport& report) const;
};

Result run(core::Engine& engine, const Config& cfg);

}  // namespace lsds::sim::simg
