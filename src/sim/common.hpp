// Awaitable adapters shared by the simulator facades.
//
// The facades model jobs as coroutine processes (MONARC-style); these
// adapters turn the callback APIs of the substrates into awaitables:
//
//   co_await sim::transfer(net, src, dst, bytes);   // flow completes
//   co_await sim::compute(cpu, job_id, ops);        // CPU work finishes
//   co_await sim::disk_read(disk, lfn);             // head finishes
//   co_await sim::disk_write(disk, lfn, bytes);
#pragma once

#include <coroutine>
#include <memory>
#include <string>

#include "core/engine.hpp"
#include "core/process.hpp"
#include "hosts/cpu.hpp"
#include "hosts/site.hpp"
#include "hosts/storage.hpp"
#include "middleware/failures.hpp"
#include "net/flow.hpp"

namespace lsds::sim {

/// Wire a FailureSpec onto every site CPU (and, optionally, every link) of
/// a finalized Grid and start the fail/repair cycles. Returns the running
/// injector — keep it alive for the whole run — or nullptr when the spec is
/// disabled. Facades model *transparent* (fail-resume) chaos: outages delay
/// work but never lose it; fail-stop crash recovery is the domain of
/// middleware::FaultTolerantScheduler.
inline std::unique_ptr<middleware::FailureInjector> inject_failures(
    hosts::Grid& grid, const middleware::FailureSpec& spec) {
  if (!spec.enabled) return nullptr;
  auto inject = std::make_unique<middleware::FailureInjector>(grid.engine());
  for (std::size_t s = 0; s < grid.site_count(); ++s) {
    inject->add_cpu(grid.site(static_cast<hosts::SiteId>(s)).cpu());
  }
  if (spec.include_links) {
    for (std::size_t l = 0; l < grid.topology().link_count(); ++l) {
      inject->add_link(grid.net(), static_cast<net::LinkId>(l));
    }
  }
  const double horizon = spec.horizon > 0 ? spec.horizon : 1e5;
  if (spec.weibull_shape > 0) {
    inject->start_weibull(spec.weibull_shape, spec.mtbf, spec.mttr, horizon);
  } else {
    inject->start(spec.mtbf, spec.mttr, horizon);
  }
  return inject;
}

struct TransferAwaiter {
  net::FlowNetwork& net;
  net::NodeId src, dst;
  double bytes;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    net.start_flow(src, dst, bytes, [h](net::FlowId) { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline TransferAwaiter transfer(net::FlowNetwork& net, net::NodeId src, net::NodeId dst,
                                double bytes) {
  return {net, src, dst, bytes};
}

struct ComputeAwaiter {
  hosts::CpuResource& cpu;
  hosts::JobId id;
  double ops;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    cpu.submit(id, ops, [h](hosts::JobId) { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline ComputeAwaiter compute(hosts::CpuResource& cpu, hosts::JobId id, double ops) {
  return {cpu, id, ops};
}

struct DiskReadAwaiter {
  hosts::StorageDevice& disk;
  const std::string& lfn;
  /// Missing files complete immediately (ready) — callers check has() when
  /// the distinction matters.
  bool await_ready() const noexcept { return !disk.has(lfn); }
  void await_suspend(std::coroutine_handle<> h) const {
    disk.read(lfn, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline DiskReadAwaiter disk_read(hosts::StorageDevice& disk, const std::string& lfn) {
  return {disk, lfn};
}

struct DiskWriteAwaiter {
  hosts::StorageDevice& disk;
  std::string lfn;
  double bytes;
  bool ok = false;
  bool await_ready() noexcept {
    // Attempted in await_suspend; nothing to do if write is rejected.
    return false;
  }
  bool await_suspend(std::coroutine_handle<> h) {
    ok = disk.write(lfn, bytes, [h] { h.resume(); });
    return ok;  // rejected -> resume immediately (do not suspend)
  }
  /// True when the write was accepted and completed.
  bool await_resume() const noexcept { return ok; }
};

inline DiskWriteAwaiter disk_write(hosts::StorageDevice& disk, std::string lfn, double bytes) {
  return {disk, std::move(lfn), bytes, false};
}

}  // namespace lsds::sim
