#include "sim/facade_registry.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/ini.hpp"
#include "util/strings.hpp"

namespace lsds::sim {

void FacadeRegistry::add(Entry e) {
  if (entries_.count(e.name)) {
    throw std::invalid_argument("facade already registered: " + e.name);
  }
  const std::string name = e.name;
  entries_.emplace(name, std::move(e));
}

const FacadeRegistry::Entry* FacadeRegistry::find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> FacadeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);  // map = sorted
  return out;
}

FacadeRegistry& FacadeRegistry::global() {
  static FacadeRegistry reg;
  return reg;
}

void register_builtin_facades() {
  static const bool once = [] {
    auto& reg = FacadeRegistry::global();
    register_bricks_facade(reg);
    register_optorsim_facade(reg);
    register_monarc_facade(reg);
    register_gridsim_facade(reg);
    register_chicsim_facade(reg);
    register_simg_facade(reg);
    register_chaos_facade(reg);
    register_explore_facade(reg);
    register_platform_facade(reg);
    register_p2p_facade(reg);
    return true;
  }();
  (void)once;
}

void validate_scenario_keys(const util::IniConfig& ini, const FacadeRegistry::Entry& entry) {
  // Runner-owned sections, known to every scenario.
  static const std::map<std::string, std::vector<std::string>> kRunnerKeys = {
      {"scenario", {"facade", "seed", "queue", "strict"}},
      {"observability", {"enabled", "report", "trace", "sample_interval", "trace_events"}},
      {"campaign",
       {"replications", "warmup", "confidence", "workers", "timing", "distribute", "shard_size",
        "timeout", "retries", "partial_dir", "hosts", "keep_partials"}},
  };

  for (const std::string& section : ini.sections()) {
    if (section == "sweep") {
      // Sweep keys are `section.key` references; each must resolve to a key
      // the facade (or the runner) declares — a sweep over a typo'd key
      // would silently run the base scenario N times.
      for (const std::string& name : ini.keys("sweep")) {
        const auto dot = name.find('.');
        if (dot == std::string::npos || dot == 0 || dot + 1 == name.size()) {
          throw util::ConfigError("[sweep] " + name +
                                  ": sweep keys must be of the form section.key");
        }
        const std::string tsec = name.substr(0, dot);
        const std::string tkey = name.substr(dot + 1);
        if (tsec == "scenario" || tsec == "campaign" || tsec == "sweep" ||
            tsec == "observability") {
          throw util::ConfigError("[sweep] " + name + ": cannot sweep the runner-owned [" +
                                  tsec + "] section (seeds and queue are campaign-controlled)");
        }
        auto it = entry.keys.find(tsec);
        if (it == entry.keys.end()) {
          throw util::ConfigError("[sweep] " + name + ": facade '" + entry.name +
                                  "' declares no [" + tsec + "] section (strict mode)");
        }
        const auto& tknown = it->second;
        if (std::find(tknown.begin(), tknown.end(), tkey) == tknown.end()) {
          throw util::ConfigError("[sweep] " + name + ": unknown key '" + tkey + "' in [" +
                                  tsec + "] (strict mode)");
        }
      }
      continue;
    }
    const std::vector<std::string>* known = nullptr;
    if (auto it = kRunnerKeys.find(section); it != kRunnerKeys.end()) known = &it->second;
    if (auto it = entry.keys.find(section); it != entry.keys.end()) known = &it->second;
    if (!known) {
      throw util::ConfigError("[" + section + "]: unknown section for facade '" + entry.name +
                              "' (strict mode)");
    }
    for (const std::string& key : ini.keys(section)) {
      if (std::find(known->begin(), known->end(), key) != known->end()) continue;
      // Near-miss suggestion: closest declared key within edit distance 2.
      std::string best;
      std::size_t best_d = std::numeric_limits<std::size_t>::max();
      for (const std::string& cand : *known) {
        const std::size_t d = util::edit_distance(key, cand);
        if (d < best_d) {
          best_d = d;
          best = cand;
        }
      }
      std::string msg = "[" + section + "] " + key + ": unknown key (strict mode)";
      if (best_d <= 2) msg += " — did you mean '" + best + "'?";
      throw util::ConfigError(msg);
    }
  }
}

}  // namespace lsds::sim
