// The `explore` study: exhaustive event-ordering verification of the
// recovery layer.
//
// Where every other facade *samples* one trajectory per seed, this one
// *enumerates*: for each requested recovery policy it runs mc::Explorer
// over the shipped RecoveryScenario, visiting every ordering of
// simultaneous events (and, optionally, every candidate fault timing), and
// checks the registered invariants after every event of every
// interleaving. The outcome per policy is either "verified" — with the
// exploration's size and pruning statistics — or a minimized, replayable
// counterexample schedule.
//
// Unlike the other studies this one ignores the runner-provided engine:
// replay-based backtracking needs a fresh engine per interleaving, so the
// explorer constructs its own from the same [scenario] queue + seed.
#pragma once

#include <iterator>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "mc/explorer.hpp"
#include "mc/recovery_model.hpp"
#include "obs/report.hpp"

namespace lsds::sim::explore {

struct Config {
  /// Scenario template; `scenario.recovery.policy` is overridden per entry
  /// of `policies`.
  mc::RecoveryScenario scenario;
  /// Policies to verify, in order (default: all four).
  std::vector<middleware::RecoveryPolicyKind> policies{
      std::begin(middleware::kAllRecoveryPolicies), std::end(middleware::kAllRecoveryPolicies)};
  /// Built-in invariant names to check (mc::Invariants::builtin_names()).
  std::vector<std::string> invariants = mc::Invariants::builtin_names();
  mc::ExploreConfig explore;
  /// Queue kind + seed for every constructed engine.
  core::Engine::Config engine;
};

struct PolicyOutcome {
  middleware::RecoveryPolicyKind policy;
  mc::ExploreResult result;
};

struct Result {
  std::vector<PolicyOutcome> policies;

  bool ok() const {
    for (const auto& p : policies) {
      if (!p.result.ok()) return false;
    }
    return true;
  }

  /// Fill the report's "result" section (tools/check_exploration.py
  /// validates the emitted schema).
  void to_report(obs::RunReport& report, const Config& cfg) const;
};

Result run(const Config& cfg);

}  // namespace lsds::sim::explore
