#include "sim/explore/explore.hpp"

#include <cstdio>

namespace lsds::sim::explore {

Result run(const Config& cfg) {
  Result out;
  for (middleware::RecoveryPolicyKind policy : cfg.policies) {
    mc::RecoveryScenario scn = cfg.scenario;
    scn.recovery.policy = policy;

    mc::Invariants inv;
    for (const std::string& name : cfg.invariants) inv.add_builtin(name);

    mc::Explorer explorer(mc::RecoveryModel::factory(scn), cfg.engine, std::move(inv),
                          cfg.explore);
    PolicyOutcome po;
    po.policy = policy;
    po.result = explorer.run();

    const auto& r = po.result;
    std::printf("explore(%s): %llu executions, %llu choice points, %llu states "
                "(%llu hash-pruned, %llu sleep-pruned), depth %llu — %s%s\n",
                middleware::to_string(policy), static_cast<unsigned long long>(r.executions),
                static_cast<unsigned long long>(r.choice_points),
                static_cast<unsigned long long>(r.states_hashed),
                static_cast<unsigned long long>(r.hash_pruned),
                static_cast<unsigned long long>(r.sleep_pruned),
                static_cast<unsigned long long>(r.max_depth_seen),
                r.ok() ? "verified" : "VIOLATED",
                r.complete ? " (complete)" : r.ok() ? " (capped)" : "");
    for (const auto& v : r.violations) {
      std::string sched;
      for (core::EventId id : v.schedule) {
        if (!sched.empty()) sched += ",";
        sched += std::to_string(id);
      }
      std::printf("  counterexample [%s] at t=%.6g (execution %llu): %s\n"
                  "    schedule: [%s] (%zu decisions, %zu events)\n",
                  v.invariant.c_str(), v.time, static_cast<unsigned long long>(v.execution),
                  v.message.c_str(), sched.c_str(), v.schedule.size(), v.trace.size());
    }
    out.policies.push_back(std::move(po));
  }
  return out;
}

void Result::to_report(obs::RunReport& report, const Config& cfg) const {
  report.set_result_core(static_cast<std::uint64_t>(cfg.scenario.job_ops.size()), 0, 0);
  auto& r = report.result();
  r.set("verified", ok());
  auto policies_json = obs::Json::array();
  for (const auto& p : policies) {
    auto pj = obs::Json::object();
    pj.set("policy", middleware::to_string(p.policy));
    pj.set("executions", p.result.executions);
    pj.set("choice_points", p.result.choice_points);
    pj.set("states_hashed", p.result.states_hashed);
    pj.set("hash_pruned", p.result.hash_pruned);
    pj.set("sleep_pruned", p.result.sleep_pruned);
    pj.set("max_depth_seen", p.result.max_depth_seen);
    pj.set("complete", p.result.complete);
    pj.set("ok", p.result.ok());
    auto violations = obs::Json::array();
    for (const auto& v : p.result.violations) {
      auto vj = obs::Json::object();
      vj.set("invariant", v.invariant);
      vj.set("message", v.message);
      vj.set("time", v.time);
      vj.set("execution", v.execution);
      auto sched = obs::Json::array();
      for (core::EventId id : v.schedule) sched.push(static_cast<std::uint64_t>(id));
      vj.set("schedule", std::move(sched));
      auto trace = obs::Json::array();
      for (const auto& [t, id] : v.trace) {
        auto ev = obs::Json::array();
        ev.push(t);
        ev.push(static_cast<std::uint64_t>(id));
        trace.push(std::move(ev));
      }
      vj.set("trace", std::move(trace));
      violations.push(std::move(vj));
    }
    pj.set("violations", std::move(violations));
    policies_json.push(std::move(pj));
  }
  r.set("policies", std::move(policies_json));
}

}  // namespace lsds::sim::explore
