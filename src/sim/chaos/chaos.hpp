// Chaos facade: fail-stop bag-of-tasks under a recovery policy — the
// dependability layer exercised end-to-end.
//
// A farm of identical hosts runs an exponential bag while the failure
// injector takes hosts down with fail-stop semantics (progress lost, queued
// work bounced). The FaultTolerantScheduler re-drives the work under the
// configured recovery policy (retry / resubmit / checkpoint / replicate)
// and keeps the dependability ledger the report prints: goodput vs raw
// throughput, waste fraction, attempts, per-host availability.
#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "middleware/failures.hpp"
#include "middleware/recovery.hpp"
#include "middleware/scheduler.hpp"
#include "stats/dependability.hpp"
#include "stats/summary.hpp"

namespace lsds::obs {
class RunReport;
}

namespace lsds::sim::chaos {

struct Config {
  std::size_t num_hosts = 8;
  unsigned cores = 1;
  double cpu_speed = 1000;

  std::size_t num_jobs = 1000;
  double mean_ops = 2000;  // exponential job length
  middleware::Heuristic heuristic = middleware::Heuristic::kFifo;

  /// Injector knobs. `enabled` is ignored — facade = chaos implies chaos;
  /// a non-positive horizon defaults to 1e6 s.
  middleware::FailureSpec failures;
  middleware::RecoveryConfig recovery;
};

struct Result {
  std::uint64_t completed = 0;
  std::uint64_t lost = 0;   // abandoned after max_attempts
  std::uint64_t kills = 0;  // fail-stop kills (attempt granularity)
  double makespan = 0;
  stats::SampleSet response_times;
  stats::DependabilityTracker dependability;  // availability rows included

  /// Fill the report's "result" section (shared names: jobs_done /
  /// makespan / bytes_moved) and the dependability ledger.
  void to_report(obs::RunReport& report) const;
};

/// Run the bag to full accounting (every job completed or lost), then stop
/// the clock — post-bag outages must not pollute the availability window.
Result run(core::Engine& engine, const Config& cfg);

}  // namespace lsds::sim::chaos
