#include "sim/chaos/chaos.hpp"

#include <memory>
#include <string>
#include <vector>

#include "hosts/cpu.hpp"
#include "hosts/job.hpp"
#include "obs/report.hpp"

namespace lsds::sim::chaos {

Result run(core::Engine& eng, const Config& cfg) {
  std::vector<std::unique_ptr<hosts::CpuResource>> farm;
  std::vector<hosts::CpuResource*> cpus;
  for (std::size_t i = 0; i < cfg.num_hosts; ++i) {
    farm.push_back(std::make_unique<hosts::CpuResource>(eng, "host" + std::to_string(i),
                                                        cfg.cores, cfg.cpu_speed,
                                                        hosts::SharingPolicy::kSpaceShared));
    cpus.push_back(farm.back().get());
  }

  middleware::FailureSpec spec = cfg.failures;
  spec.enabled = true;  // facade = chaos implies chaos
  if (spec.horizon <= 0) spec.horizon = 1e6;
  middleware::FailureInjector inject(eng);
  for (auto* cpu : cpus) inject.add_cpu(*cpu);
  if (spec.weibull_shape > 0) {
    inject.start_weibull(spec.weibull_shape, spec.mtbf, spec.mttr, spec.horizon);
  } else {
    inject.start(spec.mtbf, spec.mttr, spec.horizon);
  }

  // The scheduler flips every resource to kFailStop and owns recovery.
  middleware::FaultTolerantScheduler sched(eng, cpus, cfg.heuristic, cfg.recovery);
  auto& rng = eng.rng("chaos-workload");
  for (std::size_t j = 0; j < cfg.num_jobs; ++j) {
    hosts::Job job;
    job.id = j + 1;
    job.ops = rng.exponential(cfg.mean_ops);
    sched.submit(std::move(job));
  }
  // Stop the clock when the bag is fully accounted for — otherwise the
  // injector keeps the engine alive until its horizon and the post-bag
  // outages would pollute the availability window.
  std::size_t settled = 0;
  const std::size_t num_jobs = cfg.num_jobs;
  const auto on_settled = [&](const hosts::Job&) {
    if (++settled == num_jobs) eng.stop();
  };
  sched.run(on_settled, on_settled);
  eng.run();

  Result res;
  res.makespan = sched.makespan();
  sched.finalize_availability(res.makespan);
  res.completed = sched.completed();
  res.lost = sched.lost();
  res.kills = sched.kills();
  res.response_times = sched.response_times();
  res.dependability = sched.dependability();
  return res;
}

void Result::to_report(obs::RunReport& report) const {
  report.set_result_core(completed, makespan, 0);
  auto& r = report.result();
  r.set("jobs_lost", lost);
  r.set("kills", kills);
  r.set("mean_response_s", response_times.mean());
  report.add_dependability(dependability, makespan);
}

}  // namespace lsds::sim::chaos
