#include "sim/chicsim/chicsim.hpp"

#include "obs/report.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "core/process.hpp"
#include "hosts/site.hpp"
#include "middleware/replica_catalog.hpp"
#include "middleware/replication.hpp"
#include "sim/common.hpp"
#include "util/strings.hpp"

namespace lsds::sim::chicsim {

const char* to_string(JobPolicy p) {
  switch (p) {
    case JobPolicy::kRandom: return "job-random";
    case JobPolicy::kLeastLoaded: return "job-least-loaded";
    case JobPolicy::kDataPresent: return "job-data-present";
    case JobPolicy::kLocal: return "job-local";
  }
  return "?";
}

const char* to_string(DataPolicy p) {
  switch (p) {
    case DataPolicy::kNone: return "data-none";
    case DataPolicy::kCache: return "data-cache";
    case DataPolicy::kPush: return "data-push";
  }
  return "?";
}

namespace {

struct Ctx {
  const Config* cfg;
  hosts::Grid* grid;
  middleware::ReplicaCatalog* catalog;
  middleware::LruReplication lru;  // cache-eviction planner for kCache/kPush
  Result* res;
  std::map<std::string, double> file_bytes;
  std::map<std::string, std::uint32_t> access_counts;  // push trigger
  std::vector<std::unique_ptr<core::Resource>> slots;
};

double site_load(const hosts::Site& s) {
  return static_cast<double>(s.cpu().running() + s.cpu().queued() + 1) /
         static_cast<double>(s.cpu().cores());
}

// Install a replica of lfn at site (metadata + catalog), evicting per LRU.
// Returns false when no room can be made.
bool install_replica(Ctx& ctx, hosts::SiteId site_id, const std::string& lfn) {
  auto& site = ctx.grid->site(site_id);
  const double bytes = ctx.file_bytes.at(lfn);
  auto plan = ctx.lru.plan_replication(site_id, site.disk(), lfn, bytes);
  if (!plan) return false;
  for (const auto& victim : plan->evictions) {
    site.disk().evict(victim);
    ctx.catalog->remove_replica(victim, site_id);
  }
  if (!site.disk().store(lfn, bytes)) return false;
  ctx.catalog->add_replica(lfn, site_id, site.node());
  ++ctx.res->replications;
  return true;
}

// Dataset scheduler, push model: after every push_threshold-th access of a
// file, proactively copy it to the least-loaded sites that lack it.
core::Process push_replicas(core::Engine& eng, Ctx& ctx, std::string lfn) {
  (void)eng;
  // Rank candidate destinations by load, exclude holders.
  std::vector<hosts::SiteId> targets;
  for (std::size_t s = 0; s < ctx.grid->site_count(); ++s) {
    const auto id = static_cast<hosts::SiteId>(s);
    if (!ctx.catalog->has_replica_at(lfn, id)) targets.push_back(id);
  }
  std::sort(targets.begin(), targets.end(), [&](hosts::SiteId a, hosts::SiteId b) {
    const double la = site_load(ctx.grid->site(a));
    const double lb = site_load(ctx.grid->site(b));
    if (la != lb) return la < lb;
    return a < b;
  });
  if (targets.size() > ctx.cfg->push_fanout) targets.resize(ctx.cfg->push_fanout);

  const double bytes = ctx.file_bytes.at(lfn);
  for (hosts::SiteId dst : targets) {
    const auto src = ctx.catalog->best_source(lfn, ctx.grid->site(dst).node());
    if (!src) co_return;
    co_await transfer(ctx.grid->net(), ctx.grid->site(*src).node(), ctx.grid->site(dst).node(),
                      bytes);
    ctx.res->network_bytes += bytes;
    if (install_replica(ctx, dst, lfn)) ++ctx.res->pushes;
  }
}

core::Process fetch_input(core::Engine& eng, Ctx& ctx, hosts::SiteId site_id,
                          const std::string lfn, core::Condition& done) {
  auto& site = ctx.grid->site(site_id);
  const std::uint32_t count = ++ctx.access_counts[lfn];
  if (ctx.cfg->data_policy == DataPolicy::kPush && count % ctx.cfg->push_threshold == 0) {
    push_replicas(eng, ctx, lfn);  // fire-and-forget dataset scheduler
  }

  if (site.disk().has(lfn)) {
    ++ctx.res->local_reads;
    co_await disk_read(site.disk(), lfn);
    done.notify_all();
    co_return;
  }

  ++ctx.res->remote_reads;
  const double bytes = ctx.file_bytes.at(lfn);
  const auto src = ctx.catalog->best_source(lfn, site.node());
  co_await transfer(ctx.grid->net(), ctx.grid->site(*src).node(), site.node(), bytes);
  ctx.res->network_bytes += bytes;

  if (ctx.cfg->data_policy == DataPolicy::kCache) {
    install_replica(ctx, site_id, lfn);  // pull-model caching
  }
  done.notify_all();
}

core::Process job_process(core::Engine& eng, Ctx& ctx, hosts::SiteId exec_site, hosts::Job job) {
  const double t_submit = eng.now();
  auto& slots = *ctx.slots[exec_site];
  co_await slots.acquire(1);
  for (const auto& lfn : job.input_files) {
    core::Condition fetched(eng);
    fetch_input(eng, ctx, exec_site, lfn, fetched);
    co_await fetched.wait();
  }
  co_await core::delay(eng, job.ops / ctx.cfg->cpu_speed);
  slots.release(1);
  ctx.res->response_times.add(eng.now() - t_submit);
  ctx.res->makespan = std::max(ctx.res->makespan, eng.now());
  ++ctx.res->jobs;
}

// External scheduler: pick the execution site for a job submitted at
// `origin`. With num_schedulers > 1 the origin's scheduler only controls
// its own partition (sites with the same index modulo num_schedulers).
hosts::SiteId choose_site(core::Engine& eng, Ctx& ctx, hosts::SiteId origin,
                          const hosts::Job& job) {
  const std::size_t k = std::max<std::size_t>(1, ctx.cfg->num_schedulers);
  const std::size_t scheduler = origin % k;
  std::vector<hosts::SiteId> domain;  // sites this scheduler may dispatch to
  for (std::size_t s = scheduler; s < ctx.grid->site_count(); s += k) {
    domain.push_back(static_cast<hosts::SiteId>(s));
  }
  switch (ctx.cfg->job_policy) {
    case JobPolicy::kLocal:
      return origin;
    case JobPolicy::kRandom:
      return domain[static_cast<std::size_t>(eng.rng("chicsim.sched").uniform_int(
          0, static_cast<std::int64_t>(domain.size()) - 1))];
    case JobPolicy::kLeastLoaded: {
      hosts::SiteId best = domain.front();
      for (hosts::SiteId id : domain) {
        if (site_load(ctx.grid->site(id)) < site_load(ctx.grid->site(best))) best = id;
      }
      return best;
    }
    case JobPolicy::kDataPresent: {
      if (!job.input_files.empty()) {
        const auto& lfn = job.input_files.front();
        // Prefer a site in this scheduler's domain holding the data.
        for (hosts::SiteId id : domain) {
          if (ctx.catalog->has_replica_at(lfn, id)) return id;
        }
        // The global catalog may name a site outside the domain; a single
        // scheduler (k == 1) can always take it.
        const auto src = ctx.catalog->best_source(lfn, ctx.grid->site(origin).node());
        if (src && k == 1) return *src;
      }
      return origin;
    }
  }
  return origin;
}

}  // namespace

Result run(core::Engine& engine, const Config& cfg) {
  hosts::Grid grid(engine);

  auto& wrng = engine.rng("chicsim.workload");
  const auto workload = apps::generate_data_grid(wrng, cfg.workload);
  double dataset_bytes = 0;
  for (const auto& [lfn, bytes] : workload.files) dataset_bytes += bytes;

  for (std::size_t i = 0; i < cfg.num_sites; ++i) {
    hosts::SiteSpec s;
    s.name = util::strformat("site%zu", i);
    s.cores = cfg.processors_per_site;
    s.cpu_speed = cfg.cpu_speed;
    s.disk_capacity = std::max(1.0, dataset_bytes * cfg.storage_fraction);
    s.disk_read_bw = cfg.disk_bw;
    s.disk_write_bw = cfg.disk_bw;
    s.storage_sharing = cfg.storage_sharing;
    grid.add_site(s);
  }
  auto& topo = grid.topology();
  const net::NodeId hub = topo.add_node("hub", net::NodeKind::kRouter);
  for (std::size_t s = 0; s < grid.site_count(); ++s) {
    topo.add_link(grid.site(static_cast<hosts::SiteId>(s)).node(), hub, cfg.site_bw,
                  cfg.site_latency);
  }
  grid.finalize(cfg.network);
  auto chaos = inject_failures(grid, cfg.failures);

  middleware::ReplicaCatalog catalog(grid.routing());
  Result res;
  Ctx ctx;
  ctx.cfg = &cfg;
  ctx.grid = &grid;
  ctx.catalog = &catalog;
  ctx.res = &res;

  // Initial distribution: each master copy lives (pinned) at a round-robin
  // home site.
  std::size_t home = 0;
  for (const auto& [lfn, bytes] : workload.files) {
    ctx.file_bytes[lfn] = bytes;
    const auto site_id = static_cast<hosts::SiteId>(home);
    home = (home + 1) % cfg.num_sites;
    if (grid.site(site_id).disk().store(lfn, bytes, /*pinned=*/true)) {
      catalog.add_replica(lfn, site_id, grid.site(site_id).node());
    } else {
      // Home cache too small for its share: fall back to site 0's disk
      // growing unpinned (rare under sensible configs).
      grid.site(0).disk().store(lfn, bytes, true);
      catalog.add_replica(lfn, 0, grid.site(0).node());
    }
  }
  for (std::size_t i = 0; i < cfg.num_sites; ++i) {
    ctx.slots.push_back(std::make_unique<core::Resource>(engine, cfg.processors_per_site));
  }

  auto& orng = engine.rng("chicsim.origins");
  for (const auto& tj : workload.jobs) {
    const auto origin = static_cast<hosts::SiteId>(
        orng.uniform_int(0, static_cast<std::int64_t>(cfg.num_sites) - 1));
    engine.schedule_at(tj.arrival, [&engine, &ctx, origin, job = tj.job]() mutable {
      const hosts::SiteId exec = choose_site(engine, ctx, origin, job);
      job_process(engine, ctx, exec, std::move(job));
    });
  }
  engine.run();
  return res;
}


void Result::to_report(obs::RunReport& report) const {
  report.set_result_core(jobs, makespan, network_bytes);
  auto& r = report.result();
  r.set("mean_response_s", response_times.mean());
  r.set("locality", locality());
  r.set("local_reads", local_reads);
  r.set("remote_reads", remote_reads);
  r.set("replications", replications);
  r.set("pushes", pushes);
}

}  // namespace lsds::sim::chicsim
