// ChicagoSim facade: scheduling strategies in conjunction with data
// location, with push-model replication.
//
// "ChicagoSim … is designed to investigate scheduling strategies in
// conjunction with data location. Its architecture includes a configurable
// number of schedulers rather than one Resource Broker … It also allows for
// data replication but with a 'push' model in which, when a site contains a
// popular data file, it will replicate it to remote sites, rather than the
// 'pull' model used in OptorSim."
//
// Following Ranganathan & Foster's ChicagoSim studies, the facade crosses
// *external scheduler* policies (where does a job run?) with *dataset
// scheduler* policies (how do replicas move?):
//
//   JobPolicy:  kRandom | kLeastLoaded | kDataPresent (run where the data
//               is) | kLocal (run at the submitting site)
//   DataPolicy: kNone (always stream remotely) | kCache (replicate on first
//               use — pull) | kPush (popularity-triggered proactive push to
//               the k least-loaded other sites)
#pragma once

#include <cstdint>

#include "apps/workload.hpp"
#include "core/engine.hpp"
#include "hosts/storage.hpp"
#include "middleware/failures.hpp"
#include "net/flow.hpp"
#include "stats/summary.hpp"

namespace lsds::obs {
class RunReport;
}

namespace lsds::sim::chicsim {

enum class JobPolicy { kRandom, kLeastLoaded, kDataPresent, kLocal };
enum class DataPolicy { kNone, kCache, kPush };

const char* to_string(JobPolicy p);
const char* to_string(DataPolicy p);

inline constexpr JobPolicy kAllJobPolicies[] = {JobPolicy::kRandom, JobPolicy::kLeastLoaded,
                                                JobPolicy::kDataPresent, JobPolicy::kLocal};
inline constexpr DataPolicy kAllDataPolicies[] = {DataPolicy::kNone, DataPolicy::kCache,
                                                  DataPolicy::kPush};

struct Config {
  std::size_t num_sites = 6;
  unsigned processors_per_site = 4;  // "each site has a certain number of
                                     // processors of equal capacity"
  double cpu_speed = 1000;
  double storage_fraction = 0.25;  // of total dataset, per site ("limited storage")
  double disk_bw = 200e6;
  double site_bw = 125e6;
  double site_latency = 0.01;
  /// Storage contention model for every site (`[storage] sharing`).
  hosts::StorageSharing storage_sharing = hosts::StorageSharing::kFifo;

  apps::DataGridWorkloadSpec workload;
  JobPolicy job_policy = JobPolicy::kDataPresent;
  DataPolicy data_policy = DataPolicy::kCache;
  /// "Its architecture includes a configurable number of schedulers rather
  /// than one Resource Broker": sites are partitioned round-robin among
  /// `num_schedulers` external schedulers; a job submitted at a site is
  /// handled by that site's scheduler, which can only dispatch within its
  /// own partition (decentralized decisions interfere instead of
  /// coordinating — the phenomenon the multi-scheduler design studies).
  std::size_t num_schedulers = 1;
  /// kPush: push a replica after every `push_threshold` accesses of a file,
  /// to the `push_fanout` least-loaded other sites.
  std::uint32_t push_threshold = 5;
  std::size_t push_fanout = 2;

  /// Optional chaos: fail-resume outages on every site CPU and link.
  middleware::FailureSpec failures;

  /// Flow-network solver selection (`[network] incremental` toggle).
  net::FlowNetwork::Config network;
};

struct Result {
  std::uint64_t jobs = 0;
  double makespan = 0;
  stats::SampleSet response_times;  // submission -> completion
  std::uint64_t local_reads = 0;
  std::uint64_t remote_reads = 0;
  std::uint64_t replications = 0;  // pull-cached + pushed
  std::uint64_t pushes = 0;
  double network_bytes = 0;

  double locality() const {
    const auto total = local_reads + remote_reads;
    return total ? static_cast<double>(local_reads) / static_cast<double>(total) : 0.0;
  }

  /// Fill the report's "result" section (shared names + data-location
  /// extras).
  void to_report(obs::RunReport& report) const;
};

Result run(core::Engine& engine, const Config& cfg);

}  // namespace lsds::sim::chicsim
