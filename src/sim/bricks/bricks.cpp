#include "sim/bricks/bricks.hpp"

#include "obs/report.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/process.hpp"
#include "hosts/site.hpp"
#include "middleware/forecast.hpp"
#include "sim/common.hpp"
#include "util/strings.hpp"

namespace lsds::sim::bricks {

const char* to_string(ServerScheme s) {
  switch (s) {
    case ServerScheme::kFcfs: return "fcfs";
    case ServerScheme::kTimeShared: return "time-shared";
  }
  return "?";
}

const char* to_string(ServerSelection s) {
  switch (s) {
    case ServerSelection::kRandom: return "random";
    case ServerSelection::kRoundRobin: return "round-robin";
    case ServerSelection::kLeastQueue: return "least-queue";
    case ServerSelection::kForecast: return "forecast";
  }
  return "?";
}

namespace {

struct Ctx {
  const Config* cfg;
  hosts::Grid* grid;
  Result* res;
  hosts::JobId next_id = 1;
  std::size_t rr_next = 0;
  // kForecast: one NWS forecaster per server, fed by periodic samples.
  std::vector<std::unique_ptr<middleware::NwsForecaster>> forecasts;

  double server_load(std::size_t s) const {
    const auto& cpu = grid->site(static_cast<hosts::SiteId>(s)).cpu();
    return static_cast<double>(cpu.running() + cpu.queued());
  }
};

std::size_t pick_server(core::Engine& eng, Ctx& ctx) {
  const std::size_t n = ctx.cfg->num_servers;
  switch (ctx.cfg->selection) {
    case ServerSelection::kRandom:
      return static_cast<std::size_t>(
          eng.rng("bricks.select").uniform_int(0, static_cast<std::int64_t>(n) - 1));
    case ServerSelection::kRoundRobin: {
      const std::size_t s = ctx.rr_next;
      ctx.rr_next = (ctx.rr_next + 1) % n;
      return s;
    }
    case ServerSelection::kLeastQueue: {
      std::size_t best = 0;
      for (std::size_t s = 1; s < n; ++s) {
        if (ctx.server_load(s) < ctx.server_load(best)) best = s;
      }
      return best;
    }
    case ServerSelection::kForecast: {
      std::size_t best = 0;
      for (std::size_t s = 1; s < n; ++s) {
        if (ctx.forecasts[s]->predict() < ctx.forecasts[best]->predict()) best = s;
      }
      return best;
    }
  }
  return 0;
}

// Periodic load monitor feeding the forecasters (stale by design).
core::Process load_monitor(core::Engine& eng, Ctx& ctx) {
  for (;;) {
    co_await core::delay(eng, ctx.cfg->monitor_period);
    for (std::size_t s = 0; s < ctx.cfg->num_servers; ++s) {
      ctx.forecasts[s]->observe(ctx.server_load(s));
    }
    // Stop sampling once everything drained (the engine would otherwise
    // never run out of events).
    bool any = false;
    for (std::size_t s = 0; s < ctx.cfg->num_servers; ++s) {
      if (ctx.server_load(s) > 0) any = true;
    }
    if (!any && ctx.res->jobs >= ctx.cfg->num_clients * ctx.cfg->jobs_per_client) co_return;
  }
}

// One job's life: pick a server, ship input, queue+compute, return output.
core::Process job_process(core::Engine& eng, Ctx& ctx, hosts::SiteId client_site, double ops) {
  const hosts::JobId id = ctx.next_id++;
  const std::size_t server_idx = pick_server(eng, ctx);
  auto& server = ctx.grid->site(static_cast<hosts::SiteId>(server_idx));
  auto& client = ctx.grid->site(client_site);
  const double t_submit = eng.now();

  co_await transfer(ctx.grid->net(), client.node(), server.node(), ctx.cfg->input_bytes);
  const double t_arrive = eng.now();

  co_await compute(server.cpu(), id, ops);
  const double t_served = eng.now();
  const double service = ops / ctx.cfg->server_speed;
  ctx.res->queue_waits.add(std::max(0.0, (t_served - t_arrive) - service));

  co_await transfer(ctx.grid->net(), server.node(), client.node(), ctx.cfg->output_bytes);

  ctx.res->response_times.add(eng.now() - t_submit);
  ctx.res->network_bytes += ctx.cfg->input_bytes + ctx.cfg->output_bytes;
  ctx.res->makespan = std::max(ctx.res->makespan, eng.now());
  ++ctx.res->per_server[server_idx];
  ++ctx.res->jobs;
}

// A client: submits jobs_per_client jobs with exponential think times.
core::Process client_process(core::Engine& eng, Ctx& ctx, hosts::SiteId client_site) {
  auto& rng = eng.rng("bricks.client." + ctx.grid->site(client_site).name());
  for (std::size_t j = 0; j < ctx.cfg->jobs_per_client; ++j) {
    co_await core::delay(eng, rng.exponential(ctx.cfg->mean_interarrival));
    job_process(eng, ctx, client_site, rng.exponential(ctx.cfg->mean_ops));
  }
}

}  // namespace

Result run(core::Engine& engine, const Config& cfg) {
  hosts::Grid grid(engine);

  // Sites 0..num_servers-1 are servers; clients follow.
  for (std::size_t s = 0; s < cfg.num_servers; ++s) {
    hosts::SiteSpec server;
    server.name = cfg.num_servers == 1 ? "central" : util::strformat("server%zu", s);
    server.cores = cfg.server_cores;
    server.cpu_speed = cfg.server_speed;
    server.policy = cfg.scheme == ServerScheme::kFcfs ? hosts::SharingPolicy::kSpaceShared
                                                      : hosts::SharingPolicy::kTimeShared;
    server.storage_sharing = cfg.storage_sharing;
    grid.add_site(server);
  }
  for (std::size_t c = 0; c < cfg.num_clients; ++c) {
    hosts::SiteSpec client;
    client.name = util::strformat("client%zu", c);
    client.cores = 1;
    client.cpu_speed = 1;  // clients do not compute
    client.storage_sharing = cfg.storage_sharing;
    grid.add_site(client);
  }
  auto& topo = grid.topology();
  const net::NodeId hub = topo.add_node("hub", net::NodeKind::kRouter);
  for (std::size_t s = 0; s < cfg.num_servers; ++s) {
    topo.add_link(grid.site(static_cast<hosts::SiteId>(s)).node(), hub, cfg.server_bw,
                  cfg.server_latency);
  }
  for (std::size_t c = 0; c < cfg.num_clients; ++c) {
    topo.add_link(grid.site(static_cast<hosts::SiteId>(cfg.num_servers + c)).node(), hub,
                  cfg.client_bw, cfg.client_latency);
  }
  grid.finalize(cfg.network);
  auto chaos = inject_failures(grid, cfg.failures);

  Result res;
  res.per_server.assign(cfg.num_servers, 0);
  Ctx ctx;
  ctx.cfg = &cfg;
  ctx.grid = &grid;
  ctx.res = &res;
  if (cfg.selection == ServerSelection::kForecast && cfg.num_servers > 1) {
    for (std::size_t s = 0; s < cfg.num_servers; ++s) {
      ctx.forecasts.push_back(std::make_unique<middleware::NwsForecaster>());
    }
    load_monitor(engine, ctx);
  } else if (cfg.selection == ServerSelection::kForecast) {
    ctx.forecasts.push_back(std::make_unique<middleware::NwsForecaster>());
  }

  for (std::size_t c = 0; c < cfg.num_clients; ++c) {
    client_process(engine, ctx, static_cast<hosts::SiteId>(cfg.num_servers + c));
  }
  engine.run();

  if (res.makespan > 0) {
    double util = 0;
    for (std::size_t s = 0; s < cfg.num_servers; ++s) {
      util += grid.site(static_cast<hosts::SiteId>(s)).cpu().utilization(res.makespan);
    }
    res.server_utilization = util / static_cast<double>(cfg.num_servers);
  }
  return res;
}

void Result::to_report(obs::RunReport& report) const {
  report.set_result_core(jobs, makespan, network_bytes);
  auto& r = report.result();
  r.set("mean_response_s", response_times.mean());
  r.set("mean_queue_wait_s", queue_waits.mean());
  r.set("server_utilization", server_utilization);
}

}  // namespace lsds::sim::bricks
