// Bricks facade: the "central model".
//
// "Bricks was among the first simulation projects developed to investigate
// different resource scheduling issues … Bricks uses a model which the
// authors call the 'central model'. In this simulation model it is assumed
// that all the jobs are processed at a single site."
//
// Clients around a hub submit jobs to one central server complex: each job
// ships its input over the network, queues at the server's CPU farm under a
// scheduling scheme, computes, and returns its output. The facade measures
// the client-observed response time decomposition the Bricks papers report
// (network in, queue, service, network out).
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "hosts/storage.hpp"
#include "middleware/failures.hpp"
#include "net/flow.hpp"
#include "stats/summary.hpp"

namespace lsds::obs {
class RunReport;
}

namespace lsds::sim::bricks {

enum class ServerScheme {
  kFcfs,       // single FIFO queue over all server cores
  kTimeShared  // processor sharing across the farm
};

const char* to_string(ServerScheme s);

/// How a client picks among multiple servers (num_servers > 1) — the
/// scheduling-scheme dimension of the Bricks studies. kForecast selects by
/// NWS-style predicted queue length from *stale periodic samples*
/// (middleware/forecast.hpp), which is what a real global-computing
/// scheduler has; kLeastQueue is the instantaneous-knowledge oracle it
/// chases; kRandom/kRoundRobin are the blind baselines.
enum class ServerSelection { kRandom, kRoundRobin, kLeastQueue, kForecast };

const char* to_string(ServerSelection s);

struct Config {
  std::size_t num_clients = 8;
  std::size_t jobs_per_client = 20;
  double mean_interarrival = 10;  // per client, exponential
  double mean_ops = 2000;         // exponential job length
  double input_bytes = 10e6;
  double output_bytes = 1e6;

  unsigned server_cores = 4;
  double server_speed = 1000;  // ops/s per core
  ServerScheme scheme = ServerScheme::kFcfs;

  /// Global-computing extension: several server sites behind the hub.
  std::size_t num_servers = 1;
  ServerSelection selection = ServerSelection::kLeastQueue;
  /// Sampling period of the load monitor feeding kForecast.
  double monitor_period = 5.0;

  double client_bw = 12.5e6;  // 100 Mbps
  double client_latency = 0.02;
  double server_bw = 125e6;  // 1 Gbps
  double server_latency = 0.002;

  /// Optional chaos: fail-resume outages on every site CPU and link.
  middleware::FailureSpec failures;

  /// Flow-network solver selection (`[network] incremental` toggle).
  net::FlowNetwork::Config network;

  /// Storage contention model for server and client disks (`[storage]
  /// sharing`): kMaxMin makes request/response payload flows contend with
  /// endpoint disk heads inside the solver.
  hosts::StorageSharing storage_sharing = hosts::StorageSharing::kFifo;
};

struct Result {
  std::uint64_t jobs = 0;
  double makespan = 0;
  stats::SampleSet response_times;  // submit -> output received at client
  stats::SampleSet queue_waits;     // arrival at server -> compute start
  double server_utilization = 0;    // mean over servers, over the makespan
  double network_bytes = 0;
  std::vector<std::uint64_t> per_server;  // jobs executed per server

  /// Fill the report's "result" section (shared names: jobs_done /
  /// makespan / bytes_moved, then facade-specific extras).
  void to_report(obs::RunReport& report) const;
};

/// Run the scenario to completion on `engine` (seed/queue via engine config).
Result run(core::Engine& engine, const Config& cfg);

}  // namespace lsds::sim::bricks
