// OptorSim facade: Data Grid with pull-model replica optimization.
//
// "Given a Grid topology and resources, a set of jobs to be executed and an
// optimization strategy as input, OptorSim runs a number of Grid jobs on
// the simulated Grid. It provides a set of measurements which can be used
// to quantify the effectiveness of the optimization strategy."
//
// Sites sit around a hub; all master files start pinned at site 0 (the
// "CERN" storage element). Jobs run at the other sites, read their input
// files (locally when a replica exists, otherwise streamed from the closest
// replica), and the site's replication strategy decides — pull model —
// whether to cache a local replica and what to evict. Experiment E6 sweeps
// strategies and Zipf skew.
#pragma once

#include <cstdint>

#include "apps/workload.hpp"
#include "core/engine.hpp"
#include "hosts/storage.hpp"
#include "middleware/failures.hpp"
#include "net/flow.hpp"
#include "middleware/replication.hpp"
#include "stats/summary.hpp"

namespace lsds::obs {
class RunReport;
}

namespace lsds::sim::optorsim {

struct Config {
  std::size_t num_sites = 6;  // compute sites (excluding the master store)
  unsigned cores_per_site = 2;
  double cpu_speed = 1000;
  /// Per-site cache capacity as a fraction of the total dataset size.
  double cache_fraction = 0.2;
  double disk_bw = 200e6;

  double site_bw = 125e6;  // site <-> hub
  double site_latency = 0.01;

  /// Hierarchical platform: 0 or 1 = the classic flat hub star; >= 2 = that
  /// many StarZone subtrees composed by a net::ZoneTree backbone, sites
  /// dealt round-robin across subtrees (site i -> zone i % zones). Replica
  /// placement then becomes zone-aware: same-subtree replicas rank strictly
  /// ahead, ties broken deterministically by site id.
  std::size_t zones = 0;
  double zone_backbone_bw = 1.25e9;
  double zone_backbone_latency = 0.05;

  /// Storage contention model for every site (`[storage] sharing` INI key):
  /// kFifo busy-until heads, or kMaxMin heads solved jointly with the links
  /// — remote reads then contend with the source SE's local disk traffic,
  /// and the replica optimizer ranks sources by live storage access delay.
  hosts::StorageSharing storage_sharing = hosts::StorageSharing::kFifo;

  apps::DataGridWorkloadSpec workload;
  middleware::ReplicationPolicy policy = middleware::ReplicationPolicy::kLru;

  /// Optional chaos: fail-resume outages on every site CPU and link.
  middleware::FailureSpec failures;

  /// Flow-network solver selection (`[network] incremental` toggle).
  net::FlowNetwork::Config network;
};

struct Result {
  std::uint64_t jobs = 0;
  double makespan = 0;
  stats::SampleSet job_times;      // dispatch -> completion
  std::uint64_t local_reads = 0;   // input found on the local SE
  std::uint64_t remote_reads = 0;  // streamed from another site
  std::uint64_t replications = 0;  // local replicas created
  std::uint64_t evictions = 0;
  double network_bytes = 0;        // total bytes moved between sites

  double local_hit_ratio() const {
    const auto total = local_reads + remote_reads;
    return total ? static_cast<double>(local_reads) / static_cast<double>(total) : 0.0;
  }
  double mean_job_time() const { return job_times.mean(); }

  /// Fill the report's "result" section (shared names + replica-optimizer
  /// extras).
  void to_report(obs::RunReport& report) const;
};

Result run(core::Engine& engine, const Config& cfg);

}  // namespace lsds::sim::optorsim
