#include "sim/optorsim/optorsim.hpp"

#include "obs/report.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "core/process.hpp"
#include "hosts/site.hpp"
#include "middleware/replica_catalog.hpp"
#include "net/zone.hpp"
#include "sim/common.hpp"
#include "util/strings.hpp"

namespace lsds::sim::optorsim {

namespace {

struct Ctx {
  const Config* cfg;
  hosts::Grid* grid;
  middleware::ReplicaCatalog* catalog;
  middleware::ReplicationStrategy* strategy;
  Result* res;
  std::map<std::string, double> file_bytes;
  std::vector<std::unique_ptr<core::Resource>> job_slots;  // per compute site
};

// Fetch one input file for a job running at `site`: local read, or remote
// stream + (strategy-dependent) local replication.
core::Process fetch_input(core::Engine& eng, Ctx& ctx, hosts::SiteId site_id,
                          const std::string& lfn, core::Condition& done) {
  (void)eng;  // binds the process to the engine via the promise
  auto& site = ctx.grid->site(site_id);
  ctx.strategy->on_access(site_id, lfn);

  if (site.disk().has(lfn)) {
    ++ctx.res->local_reads;
    co_await disk_read(site.disk(), lfn);
    done.notify_all();
    co_return;
  }

  ++ctx.res->remote_reads;
  const double bytes = ctx.file_bytes.at(lfn);
  const auto src = ctx.catalog->best_source(lfn, site.node());
  // The master store always holds every file, so a source must exist.
  auto& src_site = ctx.grid->site(*src);
  co_await transfer(ctx.grid->net(), src_site.node(), site.node(), bytes);
  ctx.res->network_bytes += bytes;

  // Pull-model replication decision.
  auto plan = ctx.strategy->plan_replication(site_id, site.disk(), lfn, bytes);
  if (plan) {
    for (const auto& victim : plan->evictions) {
      site.disk().evict(victim);
      ctx.catalog->remove_replica(victim, site_id);
      ++ctx.res->evictions;
    }
    if (site.disk().store(lfn, bytes)) {
      ctx.catalog->add_replica(lfn, site_id, site.node());
      ++ctx.res->replications;
    }
  }
  done.notify_all();
}

// One grid job: acquire a job slot, fetch every input (sequentially, as
// OptorSim jobs access files in order), compute, release.
core::Process job_process(core::Engine& eng, Ctx& ctx, hosts::SiteId site_id, hosts::Job job) {
  auto& slots = *ctx.job_slots[site_id - 1];  // compute sites start at id 1
  co_await slots.acquire(1);
  const double t0 = eng.now();

  for (const auto& lfn : job.input_files) {
    core::Condition fetched(eng);
    fetch_input(eng, ctx, site_id, lfn, fetched);
    co_await fetched.wait();
  }
  co_await core::delay(eng, job.ops / ctx.cfg->cpu_speed);

  slots.release(1);
  ctx.res->job_times.add(eng.now() - t0);
  ctx.res->makespan = std::max(ctx.res->makespan, eng.now());
  ++ctx.res->jobs;
}

}  // namespace

Result run(core::Engine& engine, const Config& cfg) {
  // Zone platform objects must outlive the grid (it keeps a provider
  // reference), so they are declared first.
  std::unique_ptr<net::ZoneTree> tree;
  std::unique_ptr<net::ZoneRouting> zone_routing;
  hosts::Grid grid(engine);

  // Workload first: cache capacity is a fraction of the dataset size.
  auto& wrng = engine.rng("optorsim.workload");
  const auto workload = apps::generate_data_grid(wrng, cfg.workload);
  double dataset_bytes = 0;
  for (const auto& [lfn, bytes] : workload.files) dataset_bytes += bytes;

  // Site 0: master storage element holding every file, no compute.
  std::vector<hosts::SiteSpec> specs;
  hosts::SiteSpec master;
  master.name = "master-SE";
  master.cores = 1;
  master.cpu_speed = 1;
  master.disk_capacity = dataset_bytes * 2 + 1;
  master.disk_read_bw = cfg.disk_bw;
  master.disk_write_bw = cfg.disk_bw;
  master.storage_sharing = cfg.storage_sharing;
  specs.push_back(master);

  for (std::size_t i = 0; i < cfg.num_sites; ++i) {
    hosts::SiteSpec s;
    s.name = lsds::util::strformat("site%zu", i);
    s.cores = cfg.cores_per_site;
    s.cpu_speed = cfg.cpu_speed;
    s.disk_capacity = std::max(1.0, dataset_bytes * cfg.cache_fraction);
    s.disk_read_bw = cfg.disk_bw;
    s.disk_write_bw = cfg.disk_bw;
    s.storage_sharing = cfg.storage_sharing;
    specs.push_back(s);
  }

  if (cfg.zones >= 2) {
    // Hierarchical platform: `zones` star subtrees over a ZoneTree
    // backbone; site i lives in subtree i % zones at position i / zones.
    const std::size_t per_zone = (specs.size() + cfg.zones - 1) / cfg.zones;
    tree = std::make_unique<net::ZoneTree>();
    for (std::size_t z = 0; z < cfg.zones; ++z) {
      net::StarSpec star;
      star.hosts = per_zone;
      star.bandwidth = cfg.site_bw;
      star.latency = cfg.site_latency;
      tree->add_child(std::make_unique<net::StarZone>(star), cfg.zone_backbone_bw,
                      cfg.zone_backbone_latency);
    }
    zone_routing = std::make_unique<net::ZoneRouting>(*tree);
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const std::size_t z = s % cfg.zones;
      const auto node =
          static_cast<net::NodeId>(tree->child_offset(z) + s / cfg.zones);
      grid.add_site_at(specs[s], node);
    }
    grid.finalize_with(*zone_routing, cfg.network);
  } else {
    // Classic OptorSim topology: a star around a hub router.
    for (const auto& s : specs) grid.add_site(s);
    auto& topo = grid.topology();
    const net::NodeId hub = topo.add_node("hub", net::NodeKind::kRouter);
    for (std::size_t s = 0; s < grid.site_count(); ++s) {
      topo.add_link(grid.site(static_cast<hosts::SiteId>(s)).node(), hub, cfg.site_bw,
                    cfg.site_latency);
    }
    grid.finalize(cfg.network);
  }
  auto chaos = inject_failures(grid, cfg.failures);

  middleware::ReplicaCatalog catalog(grid.route_provider());
  if (tree) catalog.set_zone_tree(tree.get());
  if (cfg.storage_sharing == hosts::StorageSharing::kMaxMin) {
    // Storage-aware staging: rank candidate sources by their disk's live
    // access delay on top of route latency.
    catalog.set_source_cost_fn([&grid](hosts::SiteId s) {
      return grid.site(s).disk().estimated_access_delay();
    });
  }
  auto strategy = middleware::make_replication_strategy(cfg.policy);

  Result res;
  Ctx ctx{&cfg, &grid, &catalog, strategy.get(), &res, {}, {}};
  for (const auto& [lfn, bytes] : workload.files) {
    ctx.file_bytes[lfn] = bytes;
    grid.site(0).disk().store(lfn, bytes, /*pinned=*/true);
    catalog.add_replica(lfn, 0, grid.site(0).node());
  }
  for (std::size_t i = 0; i < cfg.num_sites; ++i) {
    ctx.job_slots.push_back(std::make_unique<core::Resource>(engine, cfg.cores_per_site));
  }

  // Dispatch jobs round-robin over compute sites at their arrival times.
  std::size_t next_site = 0;
  for (const auto& tj : workload.jobs) {
    const auto site_id = static_cast<hosts::SiteId>(1 + next_site);
    next_site = (next_site + 1) % cfg.num_sites;
    engine.schedule_at(tj.arrival, [&engine, &ctx, site_id, job = tj.job]() mutable {
      job_process(engine, ctx, site_id, std::move(job));
    });
  }
  engine.run();
  return res;
}


void Result::to_report(obs::RunReport& report) const {
  report.set_result_core(jobs, makespan, network_bytes);
  auto& r = report.result();
  r.set("mean_job_time_s", mean_job_time());
  r.set("hit_ratio", local_hit_ratio());
  r.set("local_reads", local_reads);
  r.set("remote_reads", remote_reads);
  r.set("replications", replications);
  r.set("evictions", evictions);
}

}  // namespace lsds::sim::optorsim
