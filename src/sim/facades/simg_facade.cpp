// Registry adapter for the SimGrid facade.
#include <cstdio>

#include "obs/report.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"
#include "sim/simg/simg.hpp"

namespace lsds::sim {

namespace {

int run_simg(core::Engine& eng, const util::IniConfig& ini, obs::RunReport& report) {
  simg::Config cfg;
  cfg.num_workers = static_cast<std::size_t>(ini.get_int("simg", "workers", 4));
  cfg.num_tasks = static_cast<std::size_t>(ini.get_int("simg", "tasks", 64));
  cfg.estimate_error = ini.get_double("simg", "estimate_error", 0.3);
  cfg.mode = ini.get_string("simg", "mode", "runtime") == "compile-time"
                 ? simg::SchedulingMode::kCompileTime
                 : simg::SchedulingMode::kRuntime;
  cfg.network = facades::parse_network(ini);
  const auto res = simg::run(eng, cfg);
  std::printf("simg(%s): %llu tasks, makespan %.2f s\n", to_string(cfg.mode),
              static_cast<unsigned long long>(res.tasks), res.makespan);
  res.to_report(report);
  return 0;
}

}  // namespace

void register_simg_facade(FacadeRegistry& reg) {
  FacadeRegistry::Entry e;
  e.name = "simg";
  e.run = run_simg;
  e.keys["simg"] = {"workers", "tasks", "estimate_error", "mode"};
  e.keys["network"] = facades::network_keys();
  reg.add(std::move(e));
}

}  // namespace lsds::sim
