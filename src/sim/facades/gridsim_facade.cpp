// Registry adapter for the GridSim facade, including the [execution]
// parallel opt-in (priced bag on ParallelGrid).
#include <cstdio>

#include "middleware/broker.hpp"
#include "obs/report.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"
#include "sim/gridsim/gridsim.hpp"
#include "sim/parallel/bag_model.hpp"
#include "sim/parallel/execution.hpp"

namespace lsds::sim {

namespace {

int run_gridsim(core::Engine& eng, const util::IniConfig& ini, obs::RunReport& report) {
  gridsim::Config cfg;
  cfg.num_jobs = static_cast<std::size_t>(ini.get_int("gridsim", "jobs", 60));
  cfg.budget = ini.get_double("gridsim", "budget", 1e18);
  cfg.deadline = ini.get_duration("gridsim", "deadline", 1e18);
  cfg.strategy = ini.get_string("gridsim", "strategy", "cost") == "time"
                     ? middleware::DbcStrategy::kTimeOptimization
                     : middleware::DbcStrategy::kCostOptimization;

  const auto exec = facades::parse_exec_spec(ini);
  if (exec.parallel) {
    const auto res = gridsim::run_parallel(cfg, exec);
    std::printf("gridsim(%s): accepted %llu rejected %llu, spend %.1f, makespan %.2f s\n",
                middleware::to_string(cfg.strategy),
                static_cast<unsigned long long>(res.accepted),
                static_cast<unsigned long long>(res.rejected), res.cost, res.makespan);
    std::printf("%s", parallel::describe(res.exec).c_str());
    res.to_report(report);
    return 0;
  }
  const auto res = gridsim::run(eng, cfg);
  std::printf("gridsim(%s): accepted %llu rejected %llu, spend %.1f, makespan %.2f s\n",
              middleware::to_string(cfg.strategy),
              static_cast<unsigned long long>(res.accepted),
              static_cast<unsigned long long>(res.rejected), res.cost, res.makespan);
  res.to_report(report);
  return 0;
}

}  // namespace

void register_gridsim_facade(FacadeRegistry& reg) {
  FacadeRegistry::Entry e;
  e.name = "gridsim";
  e.run = run_gridsim;
  e.keys["gridsim"] = {"jobs", "budget", "deadline", "strategy"};
  e.keys["execution"] = facades::execution_keys();
  e.keys["network"] = facades::network_keys();
  reg.add(std::move(e));
}

}  // namespace lsds::sim
