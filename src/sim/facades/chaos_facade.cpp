// Registry adapter for the chaos facade: fail-stop bag-of-tasks under a
// recovery policy. `[chaos]` sizes the farm and the bag, `[failures]`
// drives the injector (semantics defaults to stop here) and picks the
// policy.
#include <cstdio>

#include "obs/report.hpp"
#include "sim/chaos/chaos.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"

namespace lsds::sim {

namespace {

int run_chaos(core::Engine& eng, const util::IniConfig& ini, obs::RunReport& report) {
  chaos::Config cfg;
  cfg.num_hosts = static_cast<std::size_t>(ini.get_int("chaos", "hosts", 8));
  cfg.cores = static_cast<unsigned>(ini.get_int("chaos", "cores", 1));
  cfg.cpu_speed = ini.get_double("chaos", "cpu_speed", 1000);
  cfg.num_jobs = static_cast<std::size_t>(ini.get_int("chaos", "jobs", 1000));
  cfg.mean_ops = ini.get_double("chaos", "mean_ops", 2000);

  const std::string h = ini.get_string("chaos", "heuristic", "fifo");
  facades::parse_enum("heuristic", h, middleware::kAllHeuristics, cfg.heuristic);

  const std::string policy = ini.get_string("failures", "policy", "retry");
  facades::parse_enum("recovery policy", policy, middleware::kAllRecoveryPolicies,
                      cfg.recovery.policy);
  cfg.recovery.backoff_base = ini.get_duration("failures", "backoff", cfg.recovery.backoff_base);
  cfg.recovery.max_attempts =
      static_cast<std::size_t>(ini.get_int("failures", "max_attempts", 0));
  cfg.recovery.blacklist_duration =
      ini.get_duration("failures", "blacklist", cfg.recovery.blacklist_duration);
  cfg.recovery.checkpoint_interval_ops =
      ini.get_double("failures", "checkpoint_interval_ops", cfg.mean_ops / 4);
  cfg.recovery.checkpoint_overhead_ops =
      ini.get_double("failures", "checkpoint_overhead_ops", cfg.mean_ops / 50);
  cfg.recovery.replicas = static_cast<std::size_t>(ini.get_int("failures", "replicas", 2));
  cfg.failures = facades::parse_failures(ini);

  const auto res = chaos::run(eng, cfg);
  std::printf("chaos(%s/%s): %llu done, %llu lost, %llu kills, makespan %.1f s\n",
              middleware::to_string(cfg.heuristic), policy.c_str(),
              static_cast<unsigned long long>(res.completed),
              static_cast<unsigned long long>(res.lost),
              static_cast<unsigned long long>(res.kills), res.makespan);
  std::printf("%s", res.dependability.report(res.makespan).c_str());
  res.to_report(report);
  return res.lost == 0 ? 0 : 1;
}

}  // namespace

void register_chaos_facade(FacadeRegistry& reg) {
  FacadeRegistry::Entry e;
  e.name = "chaos";
  e.run = run_chaos;
  e.keys["chaos"] = {"hosts", "cores", "cpu_speed", "jobs", "mean_ops", "heuristic"};
  auto failures = facades::failures_keys();
  for (const char* k : {"policy", "backoff", "max_attempts", "blacklist",
                        "checkpoint_interval_ops", "checkpoint_overhead_ops", "replicas"}) {
    failures.push_back(k);
  }
  e.keys["failures"] = std::move(failures);
  reg.add(std::move(e));
}

}  // namespace lsds::sim
