// Registry adapter for the OptorSim facade.
#include <cstdio>

#include "apps/workload.hpp"
#include "middleware/replication.hpp"
#include "obs/report.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"
#include "sim/optorsim/optorsim.hpp"
#include "util/units.hpp"

namespace lsds::sim {

namespace {

int run_optorsim(core::Engine& eng, const util::IniConfig& ini, obs::RunReport& report) {
  optorsim::Config cfg;
  cfg.num_sites = static_cast<std::size_t>(ini.get_int("optorsim", "sites", 6));
  cfg.cache_fraction = ini.get_double("optorsim", "cache_fraction", 0.2);
  const std::string policy = ini.get_string("optorsim", "policy", "lru");
  facades::parse_enum("replication policy", policy, middleware::kAllReplicationPolicies,
                      cfg.policy);
  cfg.workload.num_jobs = static_cast<std::size_t>(ini.get_int("optorsim", "jobs", 300));
  cfg.workload.num_files = static_cast<std::size_t>(ini.get_int("optorsim", "files", 60));
  cfg.workload.zipf_exponent = ini.get_double("optorsim", "zipf", 1.0);
  cfg.workload.mean_interarrival = ini.get_duration("optorsim", "interarrival", 1.5);
  cfg.workload.file_bytes = {apps::SizeDist::kConstant,
                             ini.get_size("optorsim", "file_size", 50e6), 0};
  cfg.failures = facades::parse_resume_failures(ini);
  cfg.network = facades::parse_network(ini);
  cfg.storage_sharing = facades::parse_storage(ini);
  cfg.zones = static_cast<std::size_t>(ini.get_int("optorsim", "zones", 0));
  cfg.zone_backbone_bw = ini.get_rate("optorsim", "zone_backbone_bw", cfg.zone_backbone_bw);
  cfg.zone_backbone_latency =
      ini.get_duration("optorsim", "zone_backbone_latency", cfg.zone_backbone_latency);
  const auto res = optorsim::run(eng, cfg);
  std::printf(
      "optorsim(%s): %llu jobs, mean job time %.2f s, hit ratio %.2f, network %s, "
      "%llu replications\n",
      policy.c_str(), static_cast<unsigned long long>(res.jobs), res.mean_job_time(),
      res.local_hit_ratio(), util::format_size(res.network_bytes).c_str(),
      static_cast<unsigned long long>(res.replications));
  res.to_report(report);
  return 0;
}

}  // namespace

void register_optorsim_facade(FacadeRegistry& reg) {
  FacadeRegistry::Entry e;
  e.name = "optorsim";
  e.run = run_optorsim;
  e.keys["optorsim"] = {"sites",     "cache_fraction", "policy",
                        "jobs",      "files",          "zipf",
                        "interarrival", "file_size",   "zones",
                        "zone_backbone_bw", "zone_backbone_latency"};
  e.keys["failures"] = facades::failures_keys();
  e.keys["network"] = facades::network_keys();
  e.keys["storage"] = facades::storage_keys();
  reg.add(std::move(e));
}

}  // namespace lsds::sim
