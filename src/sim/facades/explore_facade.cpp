// Registry adapter for the explore facade: exhaustive event-ordering
// verification of the recovery layer. `[explore]` shapes the scenario
// (hosts/jobs/fault) and the exploration (depth/state caps, pruning,
// invariant list); `[scenario]` supplies queue + seed as everywhere else.
// Exit code 0 = every policy verified, 1 = a counterexample was found.
#include <cstdio>

#include "mc/invariants.hpp"
#include "sim/explore/explore.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"
#include "util/strings.hpp"

namespace lsds::sim {

namespace {

std::vector<double> parse_double_list(const std::string& raw, const char* what) {
  std::vector<double> out;
  for (const std::string& part : util::split(raw, ',')) {
    const std::string item{util::trim(part)};
    if (item.empty()) continue;
    try {
      out.push_back(std::stod(item));
    } catch (const std::exception&) {
      throw util::ConfigError(std::string(what) + ": '" + item + "' is not a number");
    }
  }
  return out;
}

int run_explore(core::Engine& eng, const util::IniConfig& ini, obs::RunReport& report) {
  explore::Config cfg;
  // The explorer builds a fresh engine per interleaving; mirror the
  // runner's [scenario] knobs instead of using `eng` (see explore.hpp).
  cfg.engine.seed = eng.seed();
  cfg.engine.queue = facades::parse_queue(ini.get_string("scenario", "queue", "heap"));

  auto& scn = cfg.scenario;
  scn.hosts = static_cast<std::size_t>(ini.get_int("explore", "hosts", 2));
  scn.speed = ini.get_double("explore", "speed", 1);
  if (const std::string ops = ini.get_string("explore", "job_ops", ""); !ops.empty()) {
    scn.job_ops = parse_double_list(ops, "explore.job_ops");
  }
  facades::parse_enum("heuristic", ini.get_string("explore", "heuristic", "fifo"),
                      middleware::kAllHeuristics, scn.heuristic);
  scn.fault_time = ini.get_duration("explore", "fault_time", scn.fault_time);
  scn.repair_after = ini.get_duration("explore", "repair_after", scn.repair_after);
  const auto choices =
      parse_double_list(ini.get_string("explore", "fault_choices", ""), "explore.fault_choices");
  if (ini.get_bool("explore", "fault_choice", false)) {
    if (choices.empty()) {
      throw util::ConfigError("explore.fault_choice = true needs a fault_choices list");
    }
    scn.fault_choices = choices;
  } else if (!choices.empty()) {
    scn.fault_time = choices.front();  // default order: the first candidate fires
  }

  auto& rec = scn.recovery;
  rec.backoff_base = ini.get_duration("explore", "backoff", rec.backoff_base);
  rec.blacklist_duration = ini.get_duration("explore", "blacklist", rec.blacklist_duration);
  rec.checkpoint_interval_ops =
      ini.get_double("explore", "checkpoint_interval_ops", rec.checkpoint_interval_ops);
  rec.checkpoint_overhead_ops =
      ini.get_double("explore", "checkpoint_overhead_ops", rec.checkpoint_overhead_ops);
  rec.replicas = static_cast<std::size_t>(ini.get_int("explore", "replicas", rec.replicas));
  rec.max_attempts =
      static_cast<std::size_t>(ini.get_int("explore", "max_attempts", rec.max_attempts));

  if (const std::string p = ini.get_string("explore", "policy", "all"); p != "all") {
    middleware::RecoveryPolicyKind policy{};
    try {
      facades::parse_enum("recovery policy", p, middleware::kAllRecoveryPolicies, policy);
    } catch (const util::ConfigError&) {
      throw util::ConfigError("unknown recovery policy: " + p +
                              " (retry|resubmit|checkpoint|replicate|all)");
    }
    cfg.policies = {policy};
  }

  if (const std::string inv = ini.get_string("explore", "invariants", ""); !inv.empty()) {
    cfg.invariants.clear();
    for (const std::string& part : util::split(inv, ',')) {
      const std::string name{util::trim(part)};
      if (!name.empty()) cfg.invariants.push_back(name);  // validated by add_builtin
    }
  }

  auto& mc = cfg.explore;
  mc.max_depth = static_cast<std::size_t>(ini.get_int("explore", "max_depth", 0));
  mc.max_states =
      static_cast<std::uint64_t>(ini.get_int("explore", "max_states",
                                             static_cast<long long>(mc.max_states)));
  mc.step_budget =
      static_cast<std::uint64_t>(ini.get_int("explore", "step_budget",
                                             static_cast<long long>(mc.step_budget)));
  mc.sleep_sets = ini.get_bool("explore", "sleep_sets", mc.sleep_sets);
  mc.hash_pruning = ini.get_bool("explore", "hash_pruning", mc.hash_pruning);
  mc.stop_at_first = ini.get_bool("explore", "stop_at_first", mc.stop_at_first);

  const auto res = explore::run(cfg);
  res.to_report(report, cfg);
  std::printf("explore: %zu polic%s checked — %s\n", res.policies.size(),
              res.policies.size() == 1 ? "y" : "ies", res.ok() ? "all verified" : "VIOLATIONS");
  return res.ok() ? 0 : 1;
}

}  // namespace

void register_explore_facade(FacadeRegistry& reg) {
  FacadeRegistry::Entry e;
  e.name = "explore";
  e.run = run_explore;
  e.keys["explore"] = {"hosts",
                       "speed",
                       "job_ops",
                       "heuristic",
                       "fault_time",
                       "repair_after",
                       "fault_choices",
                       "fault_choice",
                       "backoff",
                       "blacklist",
                       "checkpoint_interval_ops",
                       "checkpoint_overhead_ops",
                       "replicas",
                       "max_attempts",
                       "policy",
                       "invariants",
                       "max_depth",
                       "max_states",
                       "step_budget",
                       "sleep_sets",
                       "hash_pruning",
                       "stop_at_first"};
  reg.add(std::move(e));
}

}  // namespace lsds::sim
