// Registry adapter for the P2P overlay facade: build a ZoneTree platform
// of `sites` clusters, overlay it with a Chord DHT or a Gnutella flooding
// network, and drive lifetime-model churn plus Poisson lookup/search
// traffic over it — the experiment E16 workload as a scenario.
//
//   [p2p]
//   overlay = chord | gnutella
//   peers, sites                      — population and platform shape
//   bandwidth, latency,
//   backbone_bandwidth, backbone_latency
//   m                                 — Chord id-space bits
//   protocol = true|false             — Chord protocol mode (maintenance)
//   stabilize_period, horizon
//   churn = none | exponential | weibull
//   mean_lifetime, weibull_shape, mean_downtime
//   lookup_rate                       — Poisson arrivals per sim second
//   degree, ttl, objects              — Gnutella overlay/flood shape
//
// Churn requires protocol mode for Chord (a failed peer must be healed by
// stabilization, not by an omniscient rebuild); the facade rejects the
// combination churn != none, protocol = false. Routing is ZoneTree-backed
// (O(1) route memory), so the facade scales to million-peer populations.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "net/zone.hpp"
#include "obs/report.hpp"
#include "p2p/churn.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"
#include "util/strings.hpp"

namespace lsds::sim {

namespace {

std::string hex64(std::uint64_t v) { return util::strformat("%016llx", (unsigned long long)v); }

int run_p2p(core::Engine& eng, const util::IniConfig& ini, obs::RunReport& report) {
  const std::string overlay = ini.get_string("p2p", "overlay", "chord");
  if (overlay != "chord" && overlay != "gnutella") {
    throw util::ConfigError("unknown overlay: " + overlay + " (chord|gnutella)");
  }
  const auto peers = static_cast<std::size_t>(ini.get_int("p2p", "peers", 1024));
  if (peers < 2) throw util::ConfigError("[p2p] peers: need at least 2, got " +
                                         std::to_string(peers));
  auto sites = static_cast<std::size_t>(ini.get_int("p2p", "sites", 16));
  if (sites == 0) throw util::ConfigError("[p2p] sites: must be positive");
  if (sites > peers) sites = peers;

  // Platform: `sites` clusters under one backbone, peers spread evenly.
  net::ZoneTree tree;
  const double bw = ini.get_double("p2p", "bandwidth", 1e8);
  const double lat = ini.get_double("p2p", "latency", 5e-3);
  const double bb_bw = ini.get_double("p2p", "backbone_bandwidth", 1e10);
  const double bb_lat = ini.get_double("p2p", "backbone_latency", 2e-2);
  const std::size_t base = peers / sites;
  const std::size_t extra = peers % sites;
  for (std::size_t s = 0; s < sites; ++s) {
    net::ClusterSpec spec;
    spec.hosts = base + (s < extra ? 1 : 0);
    spec.host_bandwidth = bw;
    spec.host_latency = lat;
    spec.backbone_bandwidth = bb_bw;
    spec.backbone_latency = bb_lat;
    tree.add_child(std::make_unique<net::ClusterZone>(spec), bb_bw, bb_lat);
  }
  net::ZoneRouting routing(tree);

  const double horizon = ini.get_duration("p2p", "horizon", 60.0);
  if (!(horizon > 0) || !std::isfinite(horizon)) {
    throw util::ConfigError("[p2p] horizon: must be positive and finite");
  }

  p2p::ChurnSpec churn;
  const std::string churn_kind = ini.get_string("p2p", "churn", "none");
  const bool churn_on = churn_kind != "none";
  if (churn_on) {
    if (churn_kind == "exponential") {
      churn.lifetime_model = p2p::ChurnSpec::Lifetime::kExponential;
    } else if (churn_kind == "weibull") {
      churn.lifetime_model = p2p::ChurnSpec::Lifetime::kWeibull;
    } else {
      throw util::ConfigError("unknown churn: " + churn_kind + " (none|exponential|weibull)");
    }
    churn.mean_lifetime = ini.get_duration("p2p", "mean_lifetime", 300.0);
    churn.weibull_shape = ini.get_double("p2p", "weibull_shape", 1.5);
    churn.mean_downtime = ini.get_duration("p2p", "mean_downtime", 30.0);
    churn.horizon = horizon;
    churn.validate();
  }

  p2p::TrafficSpec traffic;
  traffic.rate = ini.get_double("p2p", "lookup_rate", 100.0);
  traffic.ttl = static_cast<std::size_t>(ini.get_int("p2p", "ttl", 6));
  traffic.horizon = horizon;
  traffic.validate();

  std::uint64_t digest = 0;
  if (overlay == "chord") {
    const auto m = static_cast<std::uint32_t>(ini.get_int("p2p", "m", 32));
    const bool protocol = ini.get_bool("p2p", "protocol", churn_on);
    if (churn_on && !protocol) {
      throw util::ConfigError(
          "[p2p] churn without protocol mode: a failed peer can only be healed by "
          "stabilization; set protocol = true");
    }
    const double period = ini.get_duration("p2p", "stabilize_period", 5.0);

    p2p::ChordNetwork chord(eng, routing, m);
    chord.reserve(peers);
    for (std::size_t i = 0; i < peers; ++i) chord.add_peer(tree.host(i));
    chord.build();
    if (protocol) chord.enable_protocol_mode(period, horizon);

    p2p::ChordLookupTraffic gen(eng, chord, traffic);
    std::unique_ptr<p2p::ChordChurn> churner;
    if (churn_on) {
      churner = std::make_unique<p2p::ChordChurn>(eng, chord, churn);
      churner->start();
    }
    gen.start();
    eng.run();

    digest = chord.state_digest();
    std::printf(
        "p2p(chord): %zu peers (%zu live), %llu lookups (%.4f failed), mean hops %.2f, "
        "mean latency %.4f s, %llu deaths, peak pending %zu\n",
        peers, chord.size(), static_cast<unsigned long long>(gen.issued()), gen.failure_rate(),
        gen.hops().mean(), gen.latency().mean(),
        static_cast<unsigned long long>(churner ? churner->deaths() : 0), gen.peak_pending());

    report.set_result_core(gen.succeeded(), eng.now(), 0.0);
    auto& res = report.result();
    res["overlay"] = std::string("chord");
    res["peers"] = std::uint64_t{peers};
    res["live_peers"] = std::uint64_t{chord.size()};
    res["lookups_issued"] = gen.issued();
    res["lookups_ok"] = gen.succeeded();
    res["lookups_failed"] = gen.failed();
    res["failure_rate"] = gen.failure_rate();
    res["mean_hops"] = gen.hops().mean();
    res["mean_latency"] = gen.latency().mean();
    res["messages"] = chord.messages_sent();
    res["stabilize_rounds"] = chord.stabilize_rounds();
    res["deaths"] = churner ? churner->deaths() : 0;
    res["rebirths"] = churner ? churner->rebirths() : 0;
    res["peak_pending"] = std::uint64_t{gen.peak_pending()};
    res["state_digest"] = hex64(digest);
    return gen.issued() > 0 && chord.size() > 0 ? 0 : 1;
  }

  // gnutella
  const auto degree = static_cast<std::size_t>(ini.get_int("p2p", "degree", 4));
  const auto objects = static_cast<std::size_t>(ini.get_int("p2p", "objects", 64));
  if (objects == 0) throw util::ConfigError("[p2p] objects: must be positive");

  p2p::GnutellaNetwork gnet(eng, routing);
  gnet.reserve(peers);
  for (std::size_t i = 0; i < peers; ++i) gnet.add_peer(tree.host(i));
  gnet.build_random_overlay(degree, eng.rng("p2p.overlay"));

  // Catalog: objects placed on rng-drawn peers; searches draw from it.
  std::vector<std::uint64_t> catalog;
  catalog.reserve(objects);
  auto& place_rng = eng.rng("p2p.objects");
  for (std::size_t i = 0; i < objects; ++i) {
    const std::string name = "obj-" + std::to_string(i);
    const auto holder = static_cast<std::size_t>(
        place_rng.uniform_int(0, static_cast<std::int64_t>(peers) - 1));
    gnet.place_object(holder, name);
    catalog.push_back(p2p::GnutellaNetwork::hash_name(name));
  }

  p2p::GnutellaSearchTraffic gen(eng, gnet, traffic, std::move(catalog));
  std::unique_ptr<p2p::GnutellaChurn> churner;
  if (churn_on) {
    churner = std::make_unique<p2p::GnutellaChurn>(eng, gnet, churn, degree);
    churner->start();
  }
  gen.start();
  eng.run();

  digest = gnet.state_digest();
  std::printf(
      "p2p(gnutella): %zu peers (%zu live), %llu searches (%.4f missed), mean hops %.2f, "
      "mean messages %.1f, %llu deaths, query table %zu slots\n",
      peers, gnet.size(), static_cast<unsigned long long>(gen.issued()), gen.failure_rate(),
      gen.hops().mean(), gen.messages().mean(),
      static_cast<unsigned long long>(churner ? churner->deaths() : 0),
      gnet.query_table_capacity());

  report.set_result_core(gen.found(), eng.now(), 0.0);
  auto& res = report.result();
  res["overlay"] = std::string("gnutella");
  res["peers"] = std::uint64_t{peers};
  res["live_peers"] = std::uint64_t{gnet.size()};
  res["searches_issued"] = gen.issued();
  res["searches_found"] = gen.found();
  res["searches_missed"] = gen.missed();
  res["failure_rate"] = gen.failure_rate();
  res["mean_hops"] = gen.hops().mean();
  res["mean_latency"] = gen.latency().mean();
  res["mean_messages"] = gen.messages().mean();
  res["deaths"] = churner ? churner->deaths() : 0;
  res["rebirths"] = churner ? churner->rebirths() : 0;
  res["query_table_slots"] = std::uint64_t{gnet.query_table_capacity()};
  res["peak_pending"] = std::uint64_t{gen.peak_pending()};
  res["state_digest"] = hex64(digest);
  return gen.issued() > 0 && gnet.size() > 0 ? 0 : 1;
}

}  // namespace

void register_p2p_facade(FacadeRegistry& reg) {
  FacadeRegistry::Entry e;
  e.name = "p2p";
  e.run = run_p2p;
  e.keys["p2p"] = {"overlay",       "peers",         "sites",
                   "m",             "bandwidth",     "latency",
                   "backbone_bandwidth", "backbone_latency",
                   "protocol",      "stabilize_period", "horizon",
                   "churn",         "mean_lifetime", "weibull_shape",
                   "mean_downtime", "lookup_rate",   "degree",
                   "ttl",           "objects"};
  reg.add(std::move(e));
}

}  // namespace lsds::sim
