// Registry adapter for the MONARC facade, including the [execution]
// parallel opt-in (tier model on ParallelGrid).
#include <cstdio>

#include "obs/report.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"
#include "sim/monarc/monarc.hpp"
#include "sim/parallel/execution.hpp"
#include "sim/parallel/tier_model.hpp"
#include "util/units.hpp"

namespace lsds::sim {

namespace {

int run_monarc(core::Engine& eng, const util::IniConfig& ini, obs::RunReport& report) {
  monarc::Config cfg;
  cfg.num_t1 = static_cast<std::size_t>(ini.get_int("monarc", "t1", 4));
  cfg.t0_t1_bandwidth = ini.get_rate("monarc", "link", util::gbps(2.5));
  cfg.num_files = static_cast<std::size_t>(ini.get_int("monarc", "files", 60));
  cfg.file_bytes = ini.get_size("monarc", "file_size", 20e9);
  cfg.production_interval = ini.get_duration("monarc", "interval", 40);
  cfg.run_analysis = ini.get_bool("monarc", "analysis", true);
  cfg.t2_per_t1 = static_cast<std::size_t>(ini.get_int("monarc", "t2_per_t1", 0));
  cfg.t2_fraction = ini.get_double("monarc", "t2_fraction", 0.3);
  cfg.archive_to_tape = ini.get_bool("monarc", "archive", false);
  cfg.failures = facades::parse_resume_failures(ini);
  cfg.network = facades::parse_network(ini);
  cfg.storage_sharing = facades::parse_storage(ini);

  const auto exec = facades::parse_exec_spec(ini);
  if (exec.parallel) {
    const auto res = monarc::run_parallel(cfg, exec);
    std::printf(
        "monarc: link %s, %llu files -> %llu replicas (%llu archived), "
        "backlog@prod-end %s, mean lag %.1f s, %llu jobs, makespan %.1f s\n",
        util::format_rate(cfg.t0_t1_bandwidth).c_str(),
        static_cast<unsigned long long>(res.files_produced),
        static_cast<unsigned long long>(res.replicas_delivered),
        static_cast<unsigned long long>(res.files_archived),
        util::format_size(res.backlog_at_production_end).c_str(), res.replication_lag.mean(),
        static_cast<unsigned long long>(res.jobs.size()), res.makespan);
    std::printf("%s", parallel::describe(res.exec).c_str());
    res.to_report(report);
    return 0;
  }
  const auto res = monarc::run(eng, cfg);
  std::printf(
      "monarc: link %s, util %.0f%%, backlog@prod-end %s, mean lag %.1f s -> %s\n",
      util::format_rate(cfg.t0_t1_bandwidth).c_str(), res.link_utilization * 100,
      util::format_size(res.backlog_at_production_end).c_str(), res.replication_lag.mean(),
      res.sustainable() ? "keeps up" : "INSUFFICIENT");
  res.to_report(report);
  return 0;
}

}  // namespace

void register_monarc_facade(FacadeRegistry& reg) {
  FacadeRegistry::Entry e;
  e.name = "monarc";
  e.run = run_monarc;
  e.keys["monarc"] = {"t1",       "link",     "files",    "file_size", "interval",
                      "analysis", "t2_per_t1", "t2_fraction", "archive"};
  e.keys["failures"] = facades::failures_keys();
  e.keys["network"] = facades::network_keys();
  e.keys["storage"] = facades::storage_keys();
  e.keys["execution"] = facades::execution_keys();
  reg.add(std::move(e));
}

}  // namespace lsds::sim
