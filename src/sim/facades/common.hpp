// Shared INI parsing for the facade adapters (src/sim/facades/*_facade.cpp):
// the [scenario] determinism knobs, the [failures] chaos section and the
// [execution] spec — one parser each, so every facade reads them the same
// way.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "hosts/parallel_grid.hpp"
#include "middleware/failures.hpp"
#include "util/ini.hpp"

namespace lsds::sim::facades {

/// `[scenario] queue =` sorted | heap | splay | calendar | ladder.
core::QueueKind parse_queue(const std::string& s);

/// `[failures]` section: mtbf, mttr, semantics (resume|stop), weibull_shape,
/// horizon, links — plus policy knobs consumed by the chaos facade. The
/// section's presence (an `mtbf` key or `enabled = true`) turns chaos on.
middleware::FailureSpec parse_failures(const util::IniConfig& ini);

/// The data-grid facades model transparent outages only; fail-stop recovery
/// needs the chaos facade's FaultTolerantScheduler. Throws on
/// `semantics = stop`.
middleware::FailureSpec parse_resume_failures(const util::IniConfig& ini);

/// Parse the [execution] section against the [scenario] determinism knobs.
hosts::ExecutionSpec parse_exec_spec(const util::IniConfig& ini);

/// `[network]` section: `incremental = true|false` selects the component-
/// incremental max-min solver (default) vs the full reference solver. Both
/// produce byte-identical traces; the toggle exists for A/B performance
/// comparisons and as a big red switch.
net::FlowNetwork::Config parse_network(const util::IniConfig& ini);

/// `[storage]` section: `sharing = fifo|maxmin` selects the contention
/// model for every storage device of the scenario's sites. fifo (default)
/// is the busy-until head, byte-identical to the pre-storage-resource
/// framework; maxmin registers the heads as solver capacity resources so
/// disk and link constraints are solved jointly.
hosts::StorageSharing parse_storage(const util::IniConfig& ini);

/// Declared-key lists for strict validation (FacadeRegistry::Entry::keys).
std::vector<std::string> failures_keys();
std::vector<std::string> execution_keys();
std::vector<std::string> network_keys();
std::vector<std::string> storage_keys();

/// Match `value` against an enum's candidate list by its to_string name,
/// assigning `out` on a hit; otherwise throw ConfigError naming the bad
/// value and the accepted set: "unknown <what>: v (a|b|c)".
template <typename Enum, typename Candidates>
void parse_enum(const char* what, const std::string& value, const Candidates& candidates,
                Enum& out) {
  std::string accepted;
  for (auto cand : candidates) {
    if (value == to_string(cand)) {
      out = cand;
      return;
    }
    if (!accepted.empty()) accepted += "|";
    accepted += to_string(cand);
  }
  throw util::ConfigError("unknown " + std::string(what) + ": " + value + " (" + accepted + ")");
}

}  // namespace lsds::sim::facades
