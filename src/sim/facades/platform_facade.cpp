// Registry adapter for the platform facade: build a routing-zone platform
// from the `[platform]` section and drive a deterministic all-to-random
// transfer workload over it. The `zone` key picks the provider:
//
//   zone = star | cluster | fat-tree   — algorithmic ZoneRouting, no flat
//                                        graph; scales to millions of hosts.
//   zone = flat                        — the SAME shape (inferred from the
//                                        shape keys) materialized into a
//                                        flat Topology and routed with
//                                        Dijkstra. The A/B control: results
//                                        are identical by the differential
//                                        contract, memory/build cost is not.
//
// Shape keys: `hosts` (star/cluster), `children`/`parents` (fat-tree level
// lists, e.g. "4,4" / "1,2"), `bandwidth`/`latency` (scalar, or per-level
// list for fat-tree), `backbone_bandwidth`/`backbone_latency` (cluster),
// `up = lowest|dmodk` (fat-tree equal-cost policy). Workload keys: `flows`
// transfers of `bytes` each between rng-drawn host pairs.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "net/transfer.hpp"
#include "net/zone.hpp"
#include "obs/report.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"
#include "util/strings.hpp"

namespace lsds::sim {

namespace {

// "4,4" / "4x4" / "4 4" -> {4, 4}.
std::vector<double> parse_list(const std::string& raw, const char* what) {
  std::string s = raw;
  for (char& c : s) {
    if (c == ',' || c == 'x') c = ' ';
  }
  std::vector<double> out;
  for (const std::string& tok : util::split_ws(s)) {
    try {
      out.push_back(std::stod(tok));
    } catch (const std::exception&) {
      throw util::ConfigError("[platform] " + std::string(what) + ": bad number '" + tok + "'");
    }
  }
  if (out.empty()) throw util::ConfigError("[platform] " + std::string(what) + ": empty list");
  return out;
}

std::vector<std::uint32_t> parse_u32_list(const std::string& raw, const char* what) {
  std::vector<std::uint32_t> out;
  for (double v : parse_list(raw, what)) out.push_back(static_cast<std::uint32_t>(v));
  return out;
}

// Per-level link parameters: a scalar broadcasts to all levels.
std::vector<double> per_level(const util::IniConfig& ini, const char* key, double def,
                              std::size_t levels) {
  std::vector<double> v = ini.has("platform", key)
                              ? parse_list(ini.get_string("platform", key, ""), key)
                              : std::vector<double>{def};
  if (v.size() == 1) v.assign(levels, v[0]);
  if (v.size() != levels) {
    throw util::ConfigError("[platform] " + std::string(key) + ": expected 1 or " +
                            std::to_string(levels) + " values, got " + std::to_string(v.size()));
  }
  return v;
}

std::unique_ptr<net::Zone> build_zone(const util::IniConfig& ini, const std::string& shape) {
  const auto hosts = static_cast<std::size_t>(ini.get_int("platform", "hosts", 64));
  const double bw = ini.get_double("platform", "bandwidth", 1e9);
  const double lat = ini.get_double("platform", "latency", 1e-4);
  if (shape == "star") {
    return std::make_unique<net::StarZone>(net::StarSpec{hosts, bw, lat});
  }
  if (shape == "cluster") {
    net::ClusterSpec s;
    s.hosts = hosts;
    s.host_bandwidth = bw;
    s.host_latency = lat;
    s.backbone_bandwidth = ini.get_double("platform", "backbone_bandwidth", 10e9);
    s.backbone_latency = ini.get_double("platform", "backbone_latency", 1e-3);
    return std::make_unique<net::ClusterZone>(s);
  }
  if (shape == "fat-tree") {
    net::FatTreeSpec s;
    s.children = parse_u32_list(ini.get_string("platform", "children", "4,4"), "children");
    s.parents = parse_u32_list(ini.get_string("platform", "parents", "1,2"), "parents");
    s.bandwidth = per_level(ini, "bandwidth", bw, s.children.size());
    s.latency = per_level(ini, "latency", lat, s.children.size());
    const std::string up = ini.get_string("platform", "up", "lowest");
    if (up == "dmodk") {
      s.up = net::FatTreeSpec::UpPolicy::kDmodK;
    } else if (up != "lowest") {
      throw util::ConfigError("unknown up policy: " + up + " (lowest|dmodk)");
    }
    return std::make_unique<net::FatTreeZone>(s);
  }
  throw util::ConfigError("unknown zone: " + shape + " (star|cluster|fat-tree|flat)");
}

int run_platform(core::Engine& eng, const util::IniConfig& ini, obs::RunReport& report) {
  const std::string kind = ini.get_string("platform", "zone", "cluster");
  // zone = flat is the control arm: same shape, flat-graph Dijkstra routing.
  const bool flat = kind == "flat";
  const std::string shape =
      flat ? (ini.has("platform", "children") ? "fat-tree"
              : ini.has("platform", "backbone_bandwidth") || !ini.has("platform", "hosts")
                  ? "cluster"
                  : "star")
           : kind;
  const std::unique_ptr<net::Zone> zone = build_zone(ini, shape);

  std::unique_ptr<net::Topology> topo;        // flat arm only
  std::unique_ptr<net::RouteProvider> provider;
  if (flat) {
    topo = std::make_unique<net::Topology>(zone->to_topology());
    provider = std::make_unique<net::Routing>(*topo);
  } else {
    provider = std::make_unique<net::ZoneRouting>(*zone);
  }

  net::FlowNetwork fnet(eng, *provider, facades::parse_network(ini));
  net::TransferService xfer(eng, fnet);

  const auto flows = static_cast<std::size_t>(ini.get_int("platform", "flows", 64));
  const double bytes = ini.get_double("platform", "bytes", 1e8);
  auto& rng = eng.rng("platform.pairs");
  eng.schedule_at(0.0, [&] {
    const auto n = static_cast<std::int64_t>(zone->host_count());
    for (std::size_t i = 0; i < flows; ++i) {
      const auto src = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      auto dst = static_cast<std::size_t>(rng.uniform_int(0, n - 2));
      if (dst >= src) ++dst;
      xfer.submit(zone->host(src), zone->host(dst), bytes);
    }
  });
  eng.run();

  const double makespan = eng.now();
  std::printf("platform(%s%s): %zu hosts, %zu links, %llu transfers, %.3e bytes, makespan %.2f s\n",
              shape.c_str(), flat ? "/flat" : "", zone->host_count(), zone->link_count(),
              static_cast<unsigned long long>(xfer.completed()), xfer.bytes_completed(), makespan);

  report.set_result_core(xfer.completed(), makespan, xfer.bytes_completed());
  auto& res = report.result();
  res["zone"] = kind;
  res["shape"] = shape;
  res["hosts"] = zone->host_count();
  res["nodes"] = zone->node_count();
  res["links"] = zone->link_count();
  res["mean_transfer_duration"] = xfer.durations().mean();
  return xfer.completed() == flows ? 0 : 1;
}

}  // namespace

void register_platform_facade(FacadeRegistry& reg) {
  FacadeRegistry::Entry e;
  e.name = "platform";
  e.run = run_platform;
  e.keys["platform"] = {"zone",     "hosts",   "children",           "parents",
                        "bandwidth", "latency", "backbone_bandwidth", "backbone_latency",
                        "up",        "flows",   "bytes"};
  e.keys["network"] = facades::network_keys();
  reg.add(std::move(e));
}

}  // namespace lsds::sim
