// Registry adapter for the ChicagoSim facade.
#include <cstdio>

#include "obs/report.hpp"
#include "sim/chicsim/chicsim.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"
#include "util/units.hpp"

namespace lsds::sim {

namespace {

int run_chicsim(core::Engine& eng, const util::IniConfig& ini, obs::RunReport& report) {
  chicsim::Config cfg;
  cfg.num_sites = static_cast<std::size_t>(ini.get_int("chicsim", "sites", 6));
  const std::string jp = ini.get_string("chicsim", "job_policy", "job-data-present");
  facades::parse_enum("job policy", jp, chicsim::kAllJobPolicies, cfg.job_policy);
  const std::string dp = ini.get_string("chicsim", "data_policy", "data-cache");
  facades::parse_enum("data policy", dp, chicsim::kAllDataPolicies, cfg.data_policy);
  cfg.workload.num_jobs = static_cast<std::size_t>(ini.get_int("chicsim", "jobs", 400));
  cfg.workload.zipf_exponent = ini.get_double("chicsim", "zipf", 0.9);
  cfg.failures = facades::parse_resume_failures(ini);
  cfg.network = facades::parse_network(ini);
  cfg.storage_sharing = facades::parse_storage(ini);
  const auto res = chicsim::run(eng, cfg);
  std::printf("chicsim(%s,%s): %llu jobs, mean response %.2f s, locality %.2f, network %s\n",
              jp.c_str(), dp.c_str(), static_cast<unsigned long long>(res.jobs),
              res.response_times.mean(), res.locality(),
              util::format_size(res.network_bytes).c_str());
  res.to_report(report);
  return 0;
}

}  // namespace

void register_chicsim_facade(FacadeRegistry& reg) {
  FacadeRegistry::Entry e;
  e.name = "chicsim";
  e.run = run_chicsim;
  e.keys["chicsim"] = {"sites", "job_policy", "data_policy", "jobs", "zipf"};
  e.keys["failures"] = facades::failures_keys();
  e.keys["network"] = facades::network_keys();
  e.keys["storage"] = facades::storage_keys();
  reg.add(std::move(e));
}

}  // namespace lsds::sim
