#include "sim/facades/common.hpp"

#include "sim/parallel/execution.hpp"

namespace lsds::sim::facades {

core::QueueKind parse_queue(const std::string& s) {
  if (s == "sorted") return core::QueueKind::kSortedList;
  if (s == "heap") return core::QueueKind::kBinaryHeap;
  if (s == "splay") return core::QueueKind::kSplayTree;
  if (s == "calendar") return core::QueueKind::kCalendarQueue;
  if (s == "ladder") return core::QueueKind::kLadderQueue;
  throw util::ConfigError("unknown queue kind: " + s + " (sorted|heap|splay|calendar|ladder)");
}

middleware::FailureSpec parse_failures(const util::IniConfig& ini) {
  middleware::FailureSpec spec;
  spec.enabled = ini.get_bool("failures", "enabled", ini.has("failures", "mtbf"));
  spec.mtbf = ini.get_duration("failures", "mtbf", spec.mtbf);
  spec.mttr = ini.get_duration("failures", "mttr", spec.mttr);
  spec.horizon = ini.get_duration("failures", "horizon", spec.horizon);
  spec.weibull_shape = ini.get_double("failures", "weibull_shape", 0);
  spec.include_links = ini.get_bool("failures", "links", true);
  const std::string sem = ini.get_string("failures", "semantics", "resume");
  if (sem == "stop") {
    spec.semantics = core::FailureSemantics::kFailStop;
  } else if (sem != "resume") {
    throw util::ConfigError("unknown failure semantics: " + sem + " (resume|stop)");
  }
  return spec;
}

middleware::FailureSpec parse_resume_failures(const util::IniConfig& ini) {
  middleware::FailureSpec spec = parse_failures(ini);
  if (spec.enabled && spec.semantics == core::FailureSemantics::kFailStop) {
    throw util::ConfigError("semantics = stop requires facade = chaos");
  }
  return spec;
}

hosts::ExecutionSpec parse_exec_spec(const util::IniConfig& ini) {
  hosts::ExecutionSpec spec = sim::parallel::parse_execution(
      ini, static_cast<std::uint64_t>(ini.get_int("scenario", "seed", 42)),
      parse_queue(ini.get_string("scenario", "queue", "heap")));
  spec.network = parse_network(ini);  // per-LP flow networks inherit it
  return spec;
}

net::FlowNetwork::Config parse_network(const util::IniConfig& ini) {
  net::FlowNetwork::Config cfg;
  cfg.incremental = ini.get_bool("network", "incremental", cfg.incremental);
  return cfg;
}

hosts::StorageSharing parse_storage(const util::IniConfig& ini) {
  const std::string s = ini.get_string("storage", "sharing", "fifo");
  if (s == "fifo") return hosts::StorageSharing::kFifo;
  if (s == "maxmin") return hosts::StorageSharing::kMaxMin;
  throw util::ConfigError("unknown storage sharing: " + s + " (fifo|maxmin)");
}

std::vector<std::string> failures_keys() {
  return {"enabled", "mtbf", "mttr", "horizon", "weibull_shape", "links", "semantics"};
}

std::vector<std::string> execution_keys() {
  return {"mode", "threads", "lps", "partition", "lookahead"};
}

std::vector<std::string> network_keys() { return {"incremental"}; }

std::vector<std::string> storage_keys() { return {"sharing"}; }

}  // namespace lsds::sim::facades
