// Registry adapter for the Bricks facade: [bricks] INI -> Config, run,
// print the one-line summary, fill the report.
#include <cstdio>

#include "obs/report.hpp"
#include "sim/bricks/bricks.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"

namespace lsds::sim {

namespace {

int run_bricks(core::Engine& eng, const util::IniConfig& ini, obs::RunReport& report) {
  bricks::Config cfg;
  cfg.num_clients = static_cast<std::size_t>(ini.get_int("bricks", "clients", 8));
  cfg.jobs_per_client = static_cast<std::size_t>(ini.get_int("bricks", "jobs_per_client", 20));
  cfg.mean_interarrival = ini.get_duration("bricks", "interarrival", 10);
  cfg.mean_ops = ini.get_double("bricks", "mean_ops", 2000);
  cfg.input_bytes = ini.get_size("bricks", "input", 10e6);
  cfg.output_bytes = ini.get_size("bricks", "output", 1e6);
  cfg.server_cores = static_cast<unsigned>(ini.get_int("bricks", "server_cores", 4));
  cfg.client_bw = ini.get_rate("bricks", "client_bw", 12.5e6);
  cfg.failures = facades::parse_resume_failures(ini);
  cfg.network = facades::parse_network(ini);
  cfg.storage_sharing = facades::parse_storage(ini);
  const auto res = bricks::run(eng, cfg);
  std::printf("bricks: %llu jobs, mean response %.2f s, server util %.1f%%, makespan %.1f s\n",
              static_cast<unsigned long long>(res.jobs), res.response_times.mean(),
              res.server_utilization * 100, res.makespan);
  res.to_report(report);
  return 0;
}

}  // namespace

void register_bricks_facade(FacadeRegistry& reg) {
  FacadeRegistry::Entry e;
  e.name = "bricks";
  e.run = run_bricks;
  e.keys["bricks"] = {"clients",      "jobs_per_client", "interarrival", "mean_ops",
                      "input",        "output",          "server_cores", "client_bw"};
  e.keys["failures"] = facades::failures_keys();
  e.keys["network"] = facades::network_keys();
  e.keys["storage"] = facades::storage_keys();
  reg.add(std::move(e));
}

}  // namespace lsds::sim
