// Facade registry: the one dispatch table from `[scenario] facade = <name>`
// to a runnable study.
//
// Each facade registers an Entry — name, a run function with the uniform
// signature (engine, scenario INI, run report), and the INI keys it
// understands. The scenario runner resolves the facade by name instead of
// an if-chain, an unknown name lists what IS registered, and strict key
// validation ([scenario] strict = true) rejects typo'd keys with a
// near-miss suggestion.
//
// Registration is explicit (register_builtin_facades() calls one function
// per src/sim/facades/*_facade.cpp) rather than static-initializer magic:
// facades live in a static library, and a self-registering translation unit
// nothing references would be dead-stripped by the linker.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace lsds::core {
class Engine;
}
namespace lsds::util {
class IniConfig;
}
namespace lsds::obs {
class RunReport;
}

namespace lsds::sim {

class FacadeRegistry {
 public:
  /// Run the facade described by `ini` on `engine`, filling the report's
  /// "result" (and, where it applies, "dependability" / "execution")
  /// sections. Returns a process exit code.
  using RunFn = std::function<int(core::Engine&, const util::IniConfig&, obs::RunReport&)>;

  struct Entry {
    std::string name;
    RunFn run;
    /// Known keys per INI section this facade consumes (its own section,
    /// [failures], [execution], ...). Strict validation checks against
    /// these plus the runner-owned sections.
    std::map<std::string, std::vector<std::string>> keys;
  };

  /// Throws std::invalid_argument when `e.name` is already registered.
  void add(Entry e);
  /// nullptr when unknown.
  const Entry* find(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;
  std::size_t size() const { return entries_.size(); }

  static FacadeRegistry& global();

 private:
  std::map<std::string, Entry> entries_;
};

// One registration function per facade adapter (src/sim/facades/).
void register_bricks_facade(FacadeRegistry& reg);
void register_optorsim_facade(FacadeRegistry& reg);
void register_monarc_facade(FacadeRegistry& reg);
void register_gridsim_facade(FacadeRegistry& reg);
void register_chicsim_facade(FacadeRegistry& reg);
void register_simg_facade(FacadeRegistry& reg);
void register_chaos_facade(FacadeRegistry& reg);
void register_explore_facade(FacadeRegistry& reg);
void register_platform_facade(FacadeRegistry& reg);
void register_p2p_facade(FacadeRegistry& reg);

/// Register every built-in facade into the global registry. Idempotent.
void register_builtin_facades();

/// Strict key validation: every key in `ini` must be consumed by the runner
/// ([scenario], [observability]) or declared by `entry`. Throws
/// util::ConfigError naming the first unknown key, with a "did you mean"
/// suggestion when a declared key is within edit distance 2.
void validate_scenario_keys(const util::IniConfig& ini, const FacadeRegistry::Entry& entry);

}  // namespace lsds::sim
