#include "sim/monarc/monarc.hpp"

#include "obs/report.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "core/process.hpp"
#include "hosts/site.hpp"
#include "sim/common.hpp"
#include "util/strings.hpp"

namespace lsds::sim::monarc {

namespace {

struct Ctx {
  const Config* cfg;
  hosts::Grid* grid;
  Result* res;
  double produced_bytes = 0;    // total payload bytes owed to T1s (x num_t1)
  double delivered_bytes = 0;
  double production_end = 0;
  double last_delivery = 0;
  // Per-T1 replica arrival bookkeeping for the analysis activities.
  std::vector<std::map<std::size_t, double>> arrived;  // file idx -> time
  std::vector<std::unique_ptr<core::Condition>> arrival_cond;

  void record_backlog(core::Engine& eng) {
    const double b = produced_bytes - delivered_bytes;
    res->backlog.record(eng.now(), b);
    res->peak_backlog_bytes = std::max(res->peak_backlog_bytes, b);
  }
};

// The data replication agent: push one produced file to every T1.
core::Process replicate_file(core::Engine& eng, Ctx& ctx, std::size_t file_idx,
                             double produced_at) {
  (void)eng;
  // Transfers to all T1s proceed concurrently (they use disjoint links).
  // Spawn one sub-process per T1 from this agent.
  struct Sub {
    static core::Process to_t1(core::Engine& eng, Ctx& ctx, std::size_t file_idx,
                               double produced_at, std::size_t t1) {
      auto& t0 = ctx.grid->site(0);
      auto& dst = ctx.grid->site(static_cast<hosts::SiteId>(1 + t1));
      co_await transfer(ctx.grid->net(), t0.node(), dst.node(), ctx.cfg->file_bytes);
      dst.disk().store(util::strformat("raw%05zu", file_idx), ctx.cfg->file_bytes);
      ctx.delivered_bytes += ctx.cfg->file_bytes;
      ctx.last_delivery = eng.now();
      ++ctx.res->replicas_delivered;
      ctx.res->replication_lag.add(eng.now() - produced_at);
      ctx.record_backlog(eng);
      ctx.arrived[t1][file_idx] = eng.now();
      ctx.arrival_cond[t1]->notify_all();
    }
  };
  for (std::size_t t1 = 0; t1 < ctx.cfg->num_t1; ++t1) {
    Sub::to_t1(eng, ctx, file_idx, produced_at, t1);
  }
  co_return;
}

// T0 production activity: deterministic detector readout.
core::Process production(core::Engine& eng, Ctx& ctx) {
  for (std::size_t i = 0; i < ctx.cfg->num_files; ++i) {
    co_await core::delay(eng, ctx.cfg->production_interval);
    ctx.grid->site(0).disk().store(util::strformat("raw%05zu", i), ctx.cfg->file_bytes, true);
    ++ctx.res->files_produced;
    ctx.produced_bytes += ctx.cfg->file_bytes * static_cast<double>(ctx.cfg->num_t1);
    ctx.record_backlog(eng);
    replicate_file(eng, ctx, i, eng.now());
    if (ctx.cfg->archive_to_tape) {
      // Tape writes serialize FIFO behind the robots (StorageDevice head).
      const double produced_at = eng.now();
      ctx.grid->site(0).tape().write(
          util::strformat("tape-raw%05zu", i), ctx.cfg->file_bytes, [&ctx, produced_at] {
            ++ctx.res->files_archived;
            ctx.res->archive_lag.add(ctx.grid->engine().now() - produced_at);
          });
    }
  }
  ctx.production_end = eng.now();
  ctx.res->backlog_at_production_end = ctx.produced_bytes - ctx.delivered_bytes;
}

// T2 analysis: pull the file from the parent T1 (once its replica landed),
// then compute locally — the next hierarchical level of the tier model.
core::Process t2_analysis(core::Engine& eng, Ctx& ctx, std::size_t t1, hosts::SiteId t2_site,
                          std::size_t file_idx, double submit_at) {
  co_await core::delay(eng, submit_at - eng.now());
  const double t_submit = eng.now();
  while (!ctx.arrived[t1].count(file_idx)) {
    co_await ctx.arrival_cond[t1]->wait();
  }
  auto& parent = ctx.grid->site(static_cast<hosts::SiteId>(1 + t1));
  auto& t2 = ctx.grid->site(t2_site);
  co_await transfer(ctx.grid->net(), parent.node(), t2.node(), ctx.cfg->file_bytes);
  t2.disk().store(util::strformat("raw%05zu", file_idx), ctx.cfg->file_bytes);
  const auto job_id = static_cast<hosts::JobId>(1000000 + t2_site * 100000 + file_idx);
  co_await compute(t2.cpu(), job_id,
                   eng.rng("monarc.t2").exponential(ctx.cfg->analysis_mean_ops));
  ctx.res->t2_delays.add(eng.now() - t_submit);
  ++ctx.res->t2_jobs;
  ctx.res->makespan = std::max(ctx.res->makespan, eng.now());
}

// T1 analysis activity: one job per file, waiting for the local replica.
core::Process analysis(core::Engine& eng, Ctx& ctx, std::size_t t1, std::size_t file_idx,
                       double submit_at) {
  co_await core::delay(eng, submit_at - eng.now());
  const double t_submit = eng.now();
  while (!ctx.arrived[t1].count(file_idx)) {
    co_await ctx.arrival_cond[t1]->wait();
  }
  auto& site = ctx.grid->site(static_cast<hosts::SiteId>(1 + t1));
  const auto job_id =
      static_cast<hosts::JobId>(1 + t1 * ctx.cfg->num_files + file_idx);
  co_await compute(site.cpu(), job_id,
                   eng.rng("monarc.analysis").exponential(ctx.cfg->analysis_mean_ops));
  ctx.res->analysis_delays.add(eng.now() - t_submit);
  ++ctx.res->analysis_jobs;
  ctx.res->makespan = std::max(ctx.res->makespan, eng.now());
}

}  // namespace

Result run(core::Engine& engine, const Config& cfg) {
  hosts::Grid grid(engine);

  hosts::SiteSpec t0;
  t0.name = "T0";
  t0.cores = 32;
  t0.cpu_speed = 2000;
  t0.disk_capacity = cfg.t0_disk;
  t0.has_mass_storage = true;
  t0.tape_bandwidth = cfg.tape_bandwidth;
  t0.tape_mount_latency = cfg.tape_mount_latency;
  t0.storage_sharing = cfg.storage_sharing;
  grid.add_site(t0);

  for (std::size_t i = 0; i < cfg.num_t1; ++i) {
    hosts::SiteSpec t1;
    t1.name = util::strformat("T1_%zu", i);
    t1.cores = cfg.t1_cores;
    t1.cpu_speed = cfg.analysis_cpu_speed;
    t1.disk_capacity = cfg.t1_disk;
    t1.storage_sharing = cfg.storage_sharing;
    grid.add_site(t1);
  }
  // Optional T2 tier under each T1.
  std::vector<std::vector<hosts::SiteId>> t2_sites(cfg.num_t1);
  for (std::size_t i = 0; i < cfg.num_t1; ++i) {
    for (std::size_t j = 0; j < cfg.t2_per_t1; ++j) {
      hosts::SiteSpec t2;
      t2.name = util::strformat("T2_%zu_%zu", i, j);
      t2.cores = cfg.t2_cores;
      t2.cpu_speed = cfg.analysis_cpu_speed;
      t2.disk_capacity = cfg.t2_disk;
      t2.storage_sharing = cfg.storage_sharing;
      t2_sites[i].push_back(grid.add_site(t2).id());
    }
  }

  auto& topo = grid.topology();
  for (std::size_t i = 0; i < cfg.num_t1; ++i) {
    topo.add_link(grid.site(0).node(), grid.site(static_cast<hosts::SiteId>(1 + i)).node(),
                  cfg.t0_t1_bandwidth, cfg.t0_t1_latency,
                  util::strformat("T0--T1_%zu", i));
  }
  for (std::size_t i = 0; i < cfg.num_t1; ++i) {
    for (hosts::SiteId t2 : t2_sites[i]) {
      topo.add_link(grid.site(static_cast<hosts::SiteId>(1 + i)).node(),
                    grid.site(t2).node(), cfg.t1_t2_bandwidth, cfg.t1_t2_latency);
    }
  }
  grid.finalize(cfg.network);
  auto chaos = inject_failures(grid, cfg.failures);
  grid.net().track_link(0);  // first T0-T1 link

  Result res;
  res.file_bytes = cfg.file_bytes;
  res.num_t1 = cfg.num_t1;
  Ctx ctx;
  ctx.cfg = &cfg;
  ctx.grid = &grid;
  ctx.res = &res;
  ctx.arrived.resize(cfg.num_t1);
  for (std::size_t i = 0; i < cfg.num_t1; ++i) {
    ctx.arrival_cond.push_back(std::make_unique<core::Condition>(engine));
  }

  production(engine, ctx);

  if (cfg.run_analysis) {
    auto& rng = engine.rng("monarc.submits");
    for (std::size_t t1 = 0; t1 < cfg.num_t1; ++t1) {
      for (std::size_t f = 0; f < cfg.num_files; ++f) {
        const double produced_at = cfg.production_interval * static_cast<double>(f + 1);
        analysis(engine, ctx, t1, f, produced_at + rng.exponential(10.0));
      }
    }
    for (std::size_t t1 = 0; t1 < cfg.num_t1; ++t1) {
      for (hosts::SiteId t2 : t2_sites[t1]) {
        for (std::size_t f = 0; f < cfg.num_files; ++f) {
          if (!rng.bernoulli(cfg.t2_fraction)) continue;
          const double produced_at = cfg.production_interval * static_cast<double>(f + 1);
          t2_analysis(engine, ctx, t1, t2, f, produced_at + rng.exponential(20.0));
        }
      }
    }
  }

  if (cfg.horizon > 0) {
    engine.run_until(cfg.horizon);
  } else {
    engine.run();
  }

  res.makespan = std::max(res.makespan, ctx.last_delivery);
  res.drain_time = std::max(0.0, ctx.last_delivery - ctx.production_end);
  if (ctx.last_delivery > 0) {
    res.link_utilization = grid.net().link_series(0).time_weighted_mean(ctx.last_delivery);
  }
  return res;
}


void Result::to_report(obs::RunReport& report) const {
  report.set_result_core(analysis_jobs + t2_jobs, makespan,
                         file_bytes * static_cast<double>(replicas_delivered));
  auto& r = report.result();
  r.set("files_produced", files_produced);
  r.set("replicas_delivered", replicas_delivered);
  r.set("files_archived", files_archived);
  r.set("backlog_at_production_end_bytes", backlog_at_production_end);
  r.set("mean_replication_lag_s", replication_lag.mean());
  r.set("link_utilization", link_utilization);
  r.set("sustainable", sustainable());
}

}  // namespace lsds::sim::monarc
