// MONARC 2 facade: the tier model and the LHC T0/T1 replication study.
//
// "Its simulation model is based on the characteristics of the LHC physics
// experiments, and is organized in the form of a hierarchy of different
// sites that are grouped into levels called tiers … The experiment tested
// the behavior of the Tier architecture envisioned by the two largest LHC
// experiments, CMS and ATLAS. The obtained results indicated the role of
// using a data replication agent for the intelligent transferring of the
// produced data. The obtained results also showed that the existing
// capacity of 2.5 Gbps was not sufficient and, in fact, not far afterwards
// the link was upgraded to a current 30 Gbps." (Legrand et al. 2005)
//
// Model: T0 (CERN) runs a production activity that emits raw-data files at
// the experiment data rate; a *data replication agent* pushes every file to
// each T1 regional center over the T0-T1 links. T1s run analysis activities
// that consume replicated files (waiting for arrival when replication
// lags). Experiment E9 sweeps the T0-T1 link capacity and reports transfer
// backlog, replication lag, link utilization and analysis delays — the
// "2.5 Gbps insufficient / tens of Gbps comfortable" shape.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "hosts/storage.hpp"
#include "middleware/failures.hpp"
#include "net/flow.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace lsds::obs {
class RunReport;
}

namespace lsds::sim::monarc {

struct Config {
  std::size_t num_t1 = 4;
  double t0_t1_bandwidth = 2.5e9 / 8;  // bytes/s per T0-T1 link (2.5 Gbps)
  double t0_t1_latency = 0.05;

  // Production at T0: `num_files` raw files of `file_bytes`, one produced
  // every `production_interval` seconds (deterministic, like detector
  // readout), each pushed to every T1 by the replication agent.
  std::size_t num_files = 60;
  double file_bytes = 20e9;           // 20 GB raw-data products
  double production_interval = 40.0;  // => offered per-link rate 4 Gbps

  // Analysis at each T1: one job per produced file, submitted a think time
  // after production; waits until the local replica has arrived.
  bool run_analysis = true;
  double analysis_mean_ops = 500;
  double analysis_cpu_speed = 1000;
  unsigned t1_cores = 8;

  // Storage.
  double t0_disk = 5e15;
  double t1_disk = 5e15;
  /// Archive every raw file to T0 mass storage (MONARC's tape robots) in
  /// parallel with replication. The tape farm must sustain the production
  /// rate or the archive queue grows unboundedly.
  bool archive_to_tape = false;
  double tape_bandwidth = 1e9;  // bytes/s aggregate robot throughput
  double tape_mount_latency = 10.0;
  /// Storage contention model for every tier site (`[storage] sharing`).
  /// kMaxMin puts the T0 disk's read head (default 100 MB/s, well under
  /// the 2.5 Gbps link) and each T1 disk's write head into the transfer
  /// constraint sets, so replication sees the T0 staging bottleneck the
  /// MONARC studies identified — the fifo arm keeps the original
  /// link-only traces.
  hosts::StorageSharing storage_sharing = hosts::StorageSharing::kFifo;

  // Optional T2 tier ("jobs are processed according to their hierarchical
  // levels"): each T1 serves `t2_per_t1` T2 centers; every T2 re-analyzes a
  // fraction of the files, pulling each from its parent T1 once the T1
  // replica has landed.
  std::size_t t2_per_t1 = 0;  // 0 = two-level study only
  double t1_t2_bandwidth = 1e9 / 8;
  double t1_t2_latency = 0.01;
  double t2_fraction = 0.3;  // fraction of files each T2 analyzes
  unsigned t2_cores = 4;
  double t2_disk = 1e15;

  /// Simulation horizon; 0 = run to completion.
  double horizon = 0;

  /// Optional chaos: fail-resume outages on every site CPU and link.
  middleware::FailureSpec failures;

  /// Flow-network solver selection (`[network] incremental` toggle).
  net::FlowNetwork::Config network;
};

struct Result {
  std::uint64_t files_produced = 0;
  std::uint64_t replicas_delivered = 0;
  /// Replication lag of each delivered replica (production -> arrival).
  stats::SampleSet replication_lag;
  /// Backlog (bytes produced but not yet delivered, summed over T1s).
  stats::TimeSeries backlog;
  double peak_backlog_bytes = 0;
  /// Backlog at the instant the last file is produced — the stability
  /// indicator: a keeping-up system has at most a few files in flight here.
  double backlog_at_production_end = 0;
  /// Time from the end of production until the last replica lands.
  double drain_time = 0;
  /// Mean utilization of the first T0-T1 link up to the last delivery.
  double link_utilization = 0;
  /// Analysis job delays (submission -> completion), including replica wait.
  stats::SampleSet analysis_delays;
  std::uint64_t analysis_jobs = 0;
  /// T2 tier (when configured): delays include the T1->T2 pull.
  stats::SampleSet t2_delays;
  std::uint64_t t2_jobs = 0;
  /// Tape archive (when configured): files safely on tape, and the lag
  /// between production and archive completion.
  std::uint64_t files_archived = 0;
  stats::SampleSet archive_lag;
  double makespan = 0;
  double file_bytes = 0;   // copied from config, for the verdict
  std::size_t num_t1 = 0;  // copied from config

  /// The study's verdict: replication keeps up iff at most a couple of
  /// files per T1 are still in flight when production ends.
  bool sustainable() const {
    return backlog_at_production_end <= 2.5 * file_bytes * static_cast<double>(num_t1);
  }

  /// Fill the report's "result" section (shared names + replication study
  /// extras; bytes_moved = file_bytes * replicas delivered).
  void to_report(obs::RunReport& report) const;
};

Result run(core::Engine& engine, const Config& cfg);

}  // namespace lsds::sim::monarc
