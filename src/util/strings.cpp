#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace lsds::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is available in libstdc++ 12.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_long(std::string_view s, long long& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Single-row dynamic program; rows are indexed by characters of `b`.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];  // row[i-1][j-1]
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({up + 1, row[j - 1] + 1, sub});
      diag = up;
    }
  }
  return row[b.size()];
}

bool parse_bool(std::string_view s, bool& out) {
  const std::string v = to_lower(trim(s));
  if (v == "true" || v == "yes" || v == "on" || v == "1") {
    out = true;
    return true;
  }
  if (v == "false" || v == "no" || v == "off" || v == "0") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace lsds::util
