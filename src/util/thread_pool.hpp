// Fixed-size worker pool.
//
// Used by the parallel simulation engine (core/parallel) to host logical
// processes and by bench drivers to run parameter sweeps. Tasks are
// fire-and-forget; `wait_idle` provides a quiescence barrier.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lsds::util {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe from any thread, including worker threads.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  /// Must not be called from a worker thread (it would deadlock on itself).
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;   // signalled when work arrives or stopping
  std::condition_variable cv_idle_;   // signalled when a worker finishes a task
  std::deque<std::function<void()>> queue_;
  unsigned active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lsds::util
