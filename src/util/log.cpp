#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace lsds::util {

std::atomic<int> Log::level_{static_cast<int>(LogLevel::kWarn)};

namespace {
std::mutex g_sink_mu;
Log::Sink g_sink;  // empty => default stderr sink

void default_sink(LogLevel lvl, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", to_string(lvl), msg.c_str());
}
}  // namespace

const char* to_string(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Log::set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mu);
  g_sink = std::move(sink);
}

void Log::write(LogLevel lvl, const std::string& msg) {
  std::lock_guard lock(g_sink_mu);
  if (g_sink)
    g_sink(lvl, msg);
  else
    default_sink(lvl, msg);
}

}  // namespace lsds::util
