// Tiny CLI flag parser used by the example programs and bench drivers.
//
//   lsds::util::Flags flags(argc, argv);
//   const int jobs = flags.get_int("jobs", 1000);          // --jobs=1000
//   const bool verbose = flags.get_bool("verbose", false); // --verbose
//   auto rest = flags.positional();
//
// Values attach with '='; a bare --name is boolean true. This keeps the
// grammar unambiguous when boolean flags precede positional arguments.
//
// Unknown flags are collected rather than rejected so google-benchmark's own
// flags pass through bench binaries untouched.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace lsds::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, std::string def = "") const;
  long long get_int(const std::string& name, long long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Unit-aware lookups (see util/units.hpp). Throw std::runtime_error on
  /// malformed values.
  double get_rate(const std::string& name, double def_bytes_per_sec) const;
  double get_size(const std::string& name, double def_bytes) const;
  double get_duration(const std::string& name, double def_sec) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace lsds::util
