#include "util/units.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace lsds::util {

namespace {

// Splits "<number><suffix>" and parses the numeric part.
bool split_number_suffix(std::string_view s, double& num, std::string& suffix) {
  s = trim(s);
  size_t i = 0;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' || s[i] == '-' ||
          s[i] == '+' || s[i] == 'e' || s[i] == 'E')) {
    // Stop eating 'e'/'E' if it begins a textual suffix rather than an exponent.
    if ((s[i] == 'e' || s[i] == 'E') &&
        (i + 1 >= s.size() || (!std::isdigit(static_cast<unsigned char>(s[i + 1])) &&
                               s[i + 1] != '-' && s[i + 1] != '+'))) {
      break;
    }
    ++i;
  }
  if (!parse_double(s.substr(0, i), num)) return false;
  suffix = to_lower(trim(s.substr(i)));
  return true;
}

}  // namespace

bool parse_size(std::string_view s, double& bytes_out) {
  double num = 0;
  std::string suf;
  if (!split_number_suffix(s, num, suf)) return false;
  double mult = 1.0;
  if (suf.empty() || suf == "b") mult = 1.0;
  else if (suf == "kb" || suf == "k") mult = kKB;
  else if (suf == "mb" || suf == "m") mult = kMB;
  else if (suf == "gb" || suf == "g") mult = kGB;
  else if (suf == "tb" || suf == "t") mult = kTB;
  else if (suf == "kib") mult = kKiB;
  else if (suf == "mib") mult = kMiB;
  else if (suf == "gib") mult = kGiB;
  else return false;
  bytes_out = num * mult;
  return true;
}

bool parse_rate(std::string_view s, double& bytes_per_sec_out) {
  double num = 0;
  std::string suf;
  if (!split_number_suffix(s, num, suf)) return false;
  if (suf == "bps") bytes_per_sec_out = bps(num);
  else if (suf == "kbps") bytes_per_sec_out = kbps(num);
  else if (suf == "mbps") bytes_per_sec_out = mbps(num);
  else if (suf == "gbps") bytes_per_sec_out = gbps(num);
  else if (suf == "b/s") bytes_per_sec_out = num;
  else if (suf == "kb/s") bytes_per_sec_out = num * kKB;
  else if (suf == "mb/s") bytes_per_sec_out = num * kMB;
  else if (suf == "gb/s") bytes_per_sec_out = num * kGB;
  else return false;
  return true;
}

bool parse_duration(std::string_view s, double& seconds_out) {
  double num = 0;
  std::string suf;
  if (!split_number_suffix(s, num, suf)) return false;
  if (suf.empty() || suf == "s") seconds_out = num;
  else if (suf == "us") seconds_out = num * 1e-6;
  else if (suf == "ms") seconds_out = num * 1e-3;
  else if (suf == "m" || suf == "min") seconds_out = num * kMinute;
  else if (suf == "h") seconds_out = num * kHour;
  else if (suf == "d") seconds_out = num * kDay;
  else return false;
  return true;
}

std::string format_size(double bytes) {
  const double a = std::fabs(bytes);
  if (a >= kTB) return strformat("%.2f TB", bytes / kTB);
  if (a >= kGB) return strformat("%.2f GB", bytes / kGB);
  if (a >= kMB) return strformat("%.2f MB", bytes / kMB);
  if (a >= kKB) return strformat("%.2f kB", bytes / kKB);
  return strformat("%.0f B", bytes);
}

std::string format_rate(double bytes_per_sec) {
  const double bits = bytes_per_sec * 8.0;
  const double a = std::fabs(bits);
  if (a >= 1e9) return strformat("%.2f Gbps", bits / 1e9);
  if (a >= 1e6) return strformat("%.2f Mbps", bits / 1e6);
  if (a >= 1e3) return strformat("%.2f kbps", bits / 1e3);
  return strformat("%.0f bps", bits);
}

std::string format_duration(double seconds) {
  const double a = std::fabs(seconds);
  if (a >= kDay) return strformat("%.2f d", seconds / kDay);
  if (a >= kHour) return strformat("%.2f h", seconds / kHour);
  if (a >= kMinute) return strformat("%.2f min", seconds / kMinute);
  if (a >= 1.0) return strformat("%.2f s", seconds);
  if (a >= 1e-3) return strformat("%.2f ms", seconds * 1e3);
  if (a >= 1e-6) return strformat("%.2f us", seconds * 1e6);
  return strformat("%.0f ns", seconds * 1e9);
}

}  // namespace lsds::util
