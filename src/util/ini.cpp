#include "util/ini.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"
#include "util/units.hpp"

namespace lsds::util {

namespace {

// Strips a trailing comment that is not inside quotes.
std::string_view strip_comment(std::string_view line) {
  bool in_quote = false;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_quote = !in_quote;
    if (!in_quote && (line[i] == ';' || line[i] == '#')) return line.substr(0, i);
  }
  return line;
}

std::string unquote(std::string_view v) {
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
    return std::string(v.substr(1, v.size() - 2));
  }
  return std::string(v);
}

}  // namespace

IniConfig IniConfig::parse(std::string_view text) {
  IniConfig cfg;
  std::string current;  // current section; "" = global
  size_t lineno = 0;
  std::istringstream in{std::string(text)};
  std::string raw;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view line = trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw ConfigError(strformat("ini: line %zu: unterminated section header", lineno));
      }
      current = std::string(trim(line.substr(1, line.size() - 2)));
      if (current.empty()) {
        throw ConfigError(strformat("ini: line %zu: empty section name", lineno));
      }
      if (!cfg.values_.count(current)) {
        cfg.values_[current];
        cfg.section_order_.push_back(current);
      }
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ConfigError(strformat("ini: line %zu: expected key = value", lineno));
    }
    const std::string key{trim(line.substr(0, eq))};
    if (key.empty()) throw ConfigError(strformat("ini: line %zu: empty key", lineno));
    const std::string value = unquote(trim(line.substr(eq + 1)));
    cfg.set(current, key, value);
  }
  return cfg;
}

IniConfig IniConfig::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ConfigError("ini: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

void IniConfig::set(const std::string& section, const std::string& key, std::string value) {
  if (!values_.count(section)) {
    section_order_.push_back(section);
  }
  auto& sec = values_[section];
  if (!sec.count(key)) key_order_[section].push_back(key);
  sec[key] = std::move(value);
}

bool IniConfig::has(const std::string& section, const std::string& key) const {
  return find(section, key) != nullptr;
}

const std::string* IniConfig::find(const std::string& section, const std::string& key) const {
  auto sit = values_.find(section);
  if (sit == values_.end()) return nullptr;
  auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return nullptr;
  return &kit->second;
}

std::optional<std::string> IniConfig::get(const std::string& section, const std::string& key) const {
  const std::string* v = find(section, key);
  if (!v) return std::nullopt;
  return *v;
}

std::string IniConfig::get_string(const std::string& section, const std::string& key,
                                  std::string def) const {
  const std::string* v = find(section, key);
  return v ? *v : def;
}

double IniConfig::get_double(const std::string& section, const std::string& key, double def) const {
  const std::string* v = find(section, key);
  if (!v) return def;
  double out = 0;
  if (!parse_double(*v, out)) {
    throw ConfigError(strformat("ini: [%s] %s: '%s' is not a number", section.c_str(), key.c_str(),
                                v->c_str()));
  }
  return out;
}

long long IniConfig::get_int(const std::string& section, const std::string& key,
                             long long def) const {
  const std::string* v = find(section, key);
  if (!v) return def;
  long long out = 0;
  if (!parse_long(*v, out)) {
    throw ConfigError(strformat("ini: [%s] %s: '%s' is not an integer", section.c_str(),
                                key.c_str(), v->c_str()));
  }
  return out;
}

bool IniConfig::get_bool(const std::string& section, const std::string& key, bool def) const {
  const std::string* v = find(section, key);
  if (!v) return def;
  bool out = false;
  if (!parse_bool(*v, out)) {
    throw ConfigError(strformat("ini: [%s] %s: '%s' is not a boolean", section.c_str(), key.c_str(),
                                v->c_str()));
  }
  return out;
}

double IniConfig::get_size(const std::string& section, const std::string& key,
                           double def_bytes) const {
  const std::string* v = find(section, key);
  if (!v) return def_bytes;
  double out = 0;
  if (!parse_size(*v, out)) {
    throw ConfigError(strformat("ini: [%s] %s: '%s' is not a data size", section.c_str(),
                                key.c_str(), v->c_str()));
  }
  return out;
}

double IniConfig::get_rate(const std::string& section, const std::string& key,
                           double def_bps) const {
  const std::string* v = find(section, key);
  if (!v) return def_bps;
  double out = 0;
  if (!parse_rate(*v, out)) {
    throw ConfigError(strformat("ini: [%s] %s: '%s' is not a data rate", section.c_str(),
                                key.c_str(), v->c_str()));
  }
  return out;
}

double IniConfig::get_duration(const std::string& section, const std::string& key,
                               double def_sec) const {
  const std::string* v = find(section, key);
  if (!v) return def_sec;
  double out = 0;
  if (!parse_duration(*v, out)) {
    throw ConfigError(strformat("ini: [%s] %s: '%s' is not a duration", section.c_str(),
                                key.c_str(), v->c_str()));
  }
  return out;
}

std::string IniConfig::dump() const {
  std::string out;
  auto emit_section = [&](const std::string& section) {
    auto sit = values_.find(section);
    if (sit == values_.end()) return;
    if (!section.empty()) out += "[" + section + "]\n";
    auto oit = key_order_.find(section);
    if (oit == key_order_.end()) return;
    for (const std::string& key : oit->second) {
      auto kit = sit->second.find(key);
      if (kit == sit->second.end()) continue;
      const std::string& v = kit->second;
      if (v.find('\n') != std::string::npos || v.find('\r') != std::string::npos) {
        throw ConfigError(strformat("ini: [%s] %s: value contains a line break, which the "
                                    "line-based format cannot represent",
                                    section.c_str(), key.c_str()));
      }
      // Quote values the parser would otherwise mangle: comment starters,
      // surrounding whitespace (space or tab), or an empty value.
      const bool needs_quotes =
          v.empty() || v.find(';') != std::string::npos || v.find('#') != std::string::npos ||
          std::isspace(static_cast<unsigned char>(v.front())) != 0 ||
          std::isspace(static_cast<unsigned char>(v.back())) != 0 || v.front() == '"';
      out += key + " = " + (needs_quotes ? "\"" + v + "\"" : v) + "\n";
    }
  };
  // Keys set before any [section] header live in the global section and
  // must be re-emitted first to stay global.
  emit_section("");
  for (const std::string& section : section_order_) {
    if (section.empty()) continue;
    emit_section(section);
  }
  return out;
}

void IniConfig::save(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw ConfigError("ini: cannot open " + path + " for writing");
  f << dump();
  if (!f.flush()) throw ConfigError("ini: write to " + path + " failed");
}

std::vector<std::string> IniConfig::sections() const { return section_order_; }

std::vector<std::string> IniConfig::keys(const std::string& section) const {
  auto it = key_order_.find(section);
  if (it == key_order_.end()) return {};
  return it->second;
}

}  // namespace lsds::util
