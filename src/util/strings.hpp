// String helpers shared across the framework.
//
// gcc 12 does not ship std::format, so `strformat` provides a type-safe
// printf-style replacement used by the logger and the table writers.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lsds::util {

/// printf-style formatting into a std::string.
/// Throws std::runtime_error on encoding errors.
template <typename... Args>
std::string strformat(const char* fmt, Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string(fmt);
  } else {
    const int n = std::snprintf(nullptr, 0, fmt, args...);
    if (n < 0) throw std::runtime_error("strformat: encoding error");
    std::string out(static_cast<size_t>(n), '\0');
    std::snprintf(out.data(), out.size() + 1, fmt, args...);
    return out;
  }
}

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on any whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Levenshtein edit distance (insert/delete/substitute, unit costs) — used
/// for "did you mean" suggestions on unknown configuration keys.
std::size_t edit_distance(std::string_view a, std::string_view b);

/// Parse helpers: return false on malformed input instead of throwing.
bool parse_double(std::string_view s, double& out);
bool parse_long(std::string_view s, long long& out);
bool parse_bool(std::string_view s, bool& out);

}  // namespace lsds::util
