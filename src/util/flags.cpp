#include "util/flags.hpp"

#include <stdexcept>

#include "util/strings.hpp"
#include "util/units.hpp"

namespace lsds::util {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      named_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else {
      named_[std::string(arg)] = "true";  // bare boolean flag
    }
  }
}

bool Flags::has(const std::string& name) const { return named_.count(name) > 0; }

std::string Flags::get_string(const std::string& name, std::string def) const {
  auto it = named_.find(name);
  return it == named_.end() ? def : it->second;
}

long long Flags::get_int(const std::string& name, long long def) const {
  auto it = named_.find(name);
  if (it == named_.end()) return def;
  long long out = 0;
  if (!parse_long(it->second, out)) {
    throw std::runtime_error("flag --" + name + ": '" + it->second + "' is not an integer");
  }
  return out;
}

double Flags::get_double(const std::string& name, double def) const {
  auto it = named_.find(name);
  if (it == named_.end()) return def;
  double out = 0;
  if (!parse_double(it->second, out)) {
    throw std::runtime_error("flag --" + name + ": '" + it->second + "' is not a number");
  }
  return out;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  auto it = named_.find(name);
  if (it == named_.end()) return def;
  bool out = false;
  if (!parse_bool(it->second, out)) {
    throw std::runtime_error("flag --" + name + ": '" + it->second + "' is not a boolean");
  }
  return out;
}

double Flags::get_rate(const std::string& name, double def) const {
  auto it = named_.find(name);
  if (it == named_.end()) return def;
  double out = 0;
  if (!parse_rate(it->second, out)) {
    throw std::runtime_error("flag --" + name + ": '" + it->second + "' is not a rate");
  }
  return out;
}

double Flags::get_size(const std::string& name, double def) const {
  auto it = named_.find(name);
  if (it == named_.end()) return def;
  double out = 0;
  if (!parse_size(it->second, out)) {
    throw std::runtime_error("flag --" + name + ": '" + it->second + "' is not a size");
  }
  return out;
}

double Flags::get_duration(const std::string& name, double def) const {
  auto it = named_.find(name);
  if (it == named_.end()) return def;
  double out = 0;
  if (!parse_duration(it->second, out)) {
    throw std::runtime_error("flag --" + name + ": '" + it->second + "' is not a duration");
  }
  return out;
}

}  // namespace lsds::util
