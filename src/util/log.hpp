// Minimal leveled logger.
//
// Simulation frameworks tend to produce torrents of output; the logger keeps
// hot paths cheap (a single relaxed atomic load when the level is disabled)
// and writes through a pluggable sink so tests can capture output.
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "util/strings.hpp"

namespace lsds::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

const char* to_string(LogLevel lvl);

/// Global logger configuration. Thread-safe.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel lvl) { level_.store(static_cast<int>(lvl), std::memory_order_relaxed); }
  static LogLevel level() { return static_cast<LogLevel>(level_.load(std::memory_order_relaxed)); }
  static bool enabled(LogLevel lvl) { return static_cast<int>(lvl) >= level_.load(std::memory_order_relaxed); }

  /// Replace the sink (default: stderr). Pass nullptr to restore the default.
  static void set_sink(Sink sink);

  static void write(LogLevel lvl, const std::string& msg);

  template <typename... Args>
  static void logf(LogLevel lvl, const char* fmt, Args&&... args) {
    if (!enabled(lvl)) return;
    write(lvl, strformat(fmt, std::forward<Args>(args)...));
  }

 private:
  static std::atomic<int> level_;
};

#define LSDS_LOG_TRACE(...) ::lsds::util::Log::logf(::lsds::util::LogLevel::kTrace, __VA_ARGS__)
#define LSDS_LOG_DEBUG(...) ::lsds::util::Log::logf(::lsds::util::LogLevel::kDebug, __VA_ARGS__)
#define LSDS_LOG_INFO(...) ::lsds::util::Log::logf(::lsds::util::LogLevel::kInfo, __VA_ARGS__)
#define LSDS_LOG_WARN(...) ::lsds::util::Log::logf(::lsds::util::LogLevel::kWarn, __VA_ARGS__)
#define LSDS_LOG_ERROR(...) ::lsds::util::Log::logf(::lsds::util::LogLevel::kError, __VA_ARGS__)

}  // namespace lsds::util
