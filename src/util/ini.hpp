// INI-style scenario configuration.
//
// Simulation scenarios (topologies, workloads, sweeps) are described in a
// small INI dialect:
//
//   [network]
//   t0_t1_link = 2.5Gbps      ; rates/sizes/durations parse via util/units
//   latency    = 15ms
//
//   [workload]
//   jobs = 1000
//
// Sections and keys are case-sensitive; `;` and `#` start comments; values
// may be quoted to preserve spaces. Typed getters return a default when the
// key is missing and throw lsds::util::ConfigError when present but
// malformed — a silent fallback on a typo'd "2.5Gbsp" would invalidate an
// entire experiment.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lsds::util {

class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class IniConfig {
 public:
  /// Parse from text. Throws ConfigError on syntax errors.
  static IniConfig parse(std::string_view text);

  /// Parse from a file. Throws ConfigError when unreadable.
  static IniConfig load(const std::string& path);

  bool has(const std::string& section, const std::string& key) const;

  /// Raw string lookup.
  std::optional<std::string> get(const std::string& section, const std::string& key) const;

  std::string get_string(const std::string& section, const std::string& key,
                         std::string def = "") const;
  double get_double(const std::string& section, const std::string& key, double def) const;
  long long get_int(const std::string& section, const std::string& key, long long def) const;
  bool get_bool(const std::string& section, const std::string& key, bool def) const;

  /// Unit-aware getters (see util/units.hpp).
  double get_size(const std::string& section, const std::string& key, double def_bytes) const;
  double get_rate(const std::string& section, const std::string& key, double def_bps) const;
  double get_duration(const std::string& section, const std::string& key, double def_sec) const;

  /// All section names in file order.
  std::vector<std::string> sections() const;
  /// All keys of a section in file order.
  std::vector<std::string> keys(const std::string& section) const;

  /// Programmatic construction (used by tests and sweep drivers).
  void set(const std::string& section, const std::string& key, std::string value);

  /// Serialize back to INI text (sections and keys in file order, values
  /// quoted when they would not survive reparsing). parse(dump()) yields an
  /// equivalent config — the distributed campaign coordinator ships the
  /// scenario to worker processes through this. Throws ConfigError on a
  /// value containing '\n' or '\r': the line-based format cannot represent
  /// it, and emitting it anyway would silently alter the value on reparse.
  std::string dump() const;
  /// Write dump() to `path`. Throws ConfigError when the file cannot be
  /// written.
  void save(const std::string& path) const;

 private:
  const std::string* find(const std::string& section, const std::string& key) const;

  // (section, key) -> value; insertion order tracked separately.
  std::map<std::string, std::map<std::string, std::string>> values_;
  std::vector<std::string> section_order_;
  std::map<std::string, std::vector<std::string>> key_order_;
};

}  // namespace lsds::util
