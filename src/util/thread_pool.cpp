#include "util/thread_pool.hpp"

namespace lsds::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
    }
    cv_idle_.notify_all();
  }
}

}  // namespace lsds::util
