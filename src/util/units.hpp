// Data-size, data-rate and time unit helpers.
//
// The framework's canonical units are: seconds for time, bytes for data sizes,
// bytes/second for rates, and floating-point "operations" (MFLOP) for compute.
// These helpers exist so scenario configs can say "2.5Gbps" or "512MB" and so
// report output stays readable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace lsds::util {

// --- constants -------------------------------------------------------------
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Bits-per-second rate expressed in bytes/second.
inline constexpr double bps(double bits_per_second) { return bits_per_second / 8.0; }
inline constexpr double kbps(double v) { return bps(v * 1e3); }
inline constexpr double mbps(double v) { return bps(v * 1e6); }
inline constexpr double gbps(double v) { return bps(v * 1e9); }

inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 86400.0;

// --- parsing ---------------------------------------------------------------

/// Parse a data size such as "512MB", "1.5GiB", "1024" (bytes), "4kB".
/// Returns false on malformed input.
bool parse_size(std::string_view s, double& bytes_out);

/// Parse a rate such as "2.5Gbps", "100Mbps", "10MB/s". Returns bytes/second.
bool parse_rate(std::string_view s, double& bytes_per_sec_out);

/// Parse a duration such as "10s", "5ms", "2h", "1.5d", "250us".
bool parse_duration(std::string_view s, double& seconds_out);

// --- formatting ------------------------------------------------------------

/// Human-readable size, e.g. 1536000 -> "1.54 MB".
std::string format_size(double bytes);

/// Human-readable rate in bits/s, e.g. gbps(2.5) -> "2.50 Gbps".
std::string format_rate(double bytes_per_sec);

/// Human-readable duration, e.g. 0.0042 -> "4.20 ms".
std::string format_duration(double seconds);

}  // namespace lsds::util
