// Minimal JSON document builder for observability outputs.
//
// The observability layer serializes run reports and trace records to JSON
// (the machine-readable side of the paper's *output analysis* axis). The
// framework deliberately carries no third-party JSON dependency; this is a
// small insertion-ordered value tree with a writer tuned for simulation
// output:
//
//   * integers print exactly (event counts must not become 1.2e+07);
//   * doubles print with the shortest representation that round-trips;
//   * non-finite doubles print as NaN / Infinity (Python-parseable, and
//     exactly what tools/check_run_report.py rejects — a NaN in a report is
//     a bug to surface, not to launder into null).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lsds::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Json(std::uint64_t u) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  Json(int i) : kind_(Kind::kInt), int_(i) {}
  Json(unsigned u) : kind_(Kind::kInt), int_(u) {}
  Json(double d) : kind_(Kind::kDouble), double_(d) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}

  static Json object() { Json j; j.kind_ = Kind::kObject; return j; }
  static Json array() { Json j; j.kind_ = Kind::kArray; return j; }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kInt || kind_ == Kind::kDouble; }

  // --- object ---------------------------------------------------------------

  /// Set (or replace) a member. Converts a null value to an object first,
  /// so `report["metrics"]["counters"]` chains build nested structure.
  Json& set(const std::string& key, Json v);

  /// Get-or-create member (null when absent). Converts null *this to object.
  Json& operator[](const std::string& key);

  /// Lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  // --- array ----------------------------------------------------------------

  /// Append. Converts a null value to an array first.
  Json& push(Json v);

  // --- scalar access (for tests / validation) -------------------------------

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const { return int_; }
  double as_double() const { return kind_ == Kind::kInt ? static_cast<double>(int_) : double_; }
  const std::string& as_string() const { return str_; }
  const std::vector<std::pair<std::string, Json>>& members() const { return object_; }
  const std::vector<Json>& items() const { return array_; }

  /// Serialize. indent > 0 pretty-prints; 0 emits one line.
  std::string dump(int indent = 2) const;

  /// Parse a JSON document produced by this writer (the distributed-campaign
  /// partial protocol round-trips through here). Accepts the writer's full
  /// dialect including the NaN / Infinity / -Infinity literals; integers
  /// without a fraction or exponent come back as kInt, everything else
  /// numeric as kDouble, so dump(parse(dump(x))) == dump(x). Throws
  /// std::runtime_error with a byte offset on malformed input.
  static Json parse(std::string_view text);

  /// Escape + quote a string per JSON rules (shared with the JSONL sink).
  static std::string quote(std::string_view s);
  /// Shortest round-tripping representation of a double (NaN/Infinity for
  /// non-finite values).
  static std::string number(double d);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> object_;  // insertion-ordered
  std::vector<Json> array_;
};

}  // namespace lsds::obs
