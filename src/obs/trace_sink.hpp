// Structured JSONL trace sink.
//
// One line per record, append-only, flat JSON objects — the format every
// trace-analysis stack ingests directly. Two record types:
//
//   {"type":"span","kind":"flow","id":7,"t0":0.05,"t1":1.2,"quantity":2e7,
//    "src":0,"dst":3,"status":"done","name":"..."}
//   {"type":"event","t":12.5,"seq":4031}
//
// Span records come from the process-wide SpanBus (net/flow transfers,
// hosts/cpu job attempts, middleware scheduler dispatches); event records
// from the engine probe when per-event tracing is explicitly requested
// ([observability] trace_events — high volume, off by default). The sink is
// thread-safe: parallel LP threads publish spans concurrently, so every
// write takes a mutex. Line order across threads is therefore arbitrary;
// determinism guarantees cover the *simulation*, never trace file order.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "obs/span.hpp"

namespace lsds::obs {

class TraceSink {
 public:
  /// Opens `path` for writing. Throws std::runtime_error when unwritable.
  explicit TraceSink(const std::string& path);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void record_span(const Span& s);
  void record_event(double t, std::uint64_t seq);

  std::uint64_t records() const { return records_; }
  const std::string& path() const { return path_; }

  /// Flush buffered lines to disk (also done on destruction).
  void flush();

 private:
  void write_line(const std::string& line);

  std::string path_;
  std::FILE* file_;
  std::mutex mu_;
  std::uint64_t records_ = 0;
};

}  // namespace lsds::obs
