// The unified observability facade.
//
// One object bundles the whole layer — metrics registry, structured trace
// sink, engine profiler, span-bus subscription — behind the `[observability]`
// scenario section:
//
//   [observability]
//   enabled = true
//   report = RUN_monarc.json   ; RunReport path ("" -> RUN_<facade>.json)
//   trace = trace.jsonl        ; JSONL span/event trace ("" -> no trace file)
//   sample_interval = 1s       ; metric sampling cadence (simulated time)
//   trace_events = false       ; per-event records in the trace (high volume)
//
// Lifecycle: construct from Options, attach(engine) before the run,
// finalize(engine, report) after it. When disabled, attach/finalize are
// no-ops and the span bus stays unarmed, so models pay a single predictable
// branch per instrumentation point — the differential-determinism suite and
// the bench acceptance numbers hold with observability compiled in.
//
// The facade is also the span-bus subscriber: every substrate span feeds
// the trace sink (when a trace path is set) and the registry's standard
// counters/timers (flow.completed, job.done, span duration timers, ...).
#pragma once

#include <memory>
#include <string>

#include "core/engine.hpp"
#include "core/probe.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/trace_sink.hpp"

namespace lsds::util {
class IniConfig;
}

namespace lsds::obs {

class RunReport;

struct Options {
  bool enabled = false;
  std::string report_path;  // "" = derive RUN_<facade>.json
  std::string trace_path;   // "" = no JSONL trace
  double sample_interval = 1.0;
  bool trace_events = false;
};

/// Parse the `[observability]` section (absent section = disabled).
Options parse_options(const util::IniConfig& ini);

class Observability final : public core::EngineProbe {
 public:
  explicit Observability(Options opts);
  /// Detaches from the span bus and any attached engine.
  ~Observability() override;

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  bool enabled() const { return opts_.enabled; }
  const Options& options() const { return opts_; }

  MetricsRegistry& metrics() { return metrics_; }
  EngineProfiler& profiler() { return profiler_; }
  TraceSink* sink() { return sink_.get(); }

  /// Install the engine probe and the default engine gauges. No-op when
  /// disabled. The engine must outlive this object or be detached first.
  void attach(core::Engine& engine);

  /// Remove the probe from the attached engine (if any). Call before the
  /// engine is destroyed when it does not outlive this object.
  void detach();

  /// Stop the wall clock, take final samples, and populate the report's
  /// metrics + profiler sections. Safe to call when disabled (no-op).
  void finalize(core::Engine& engine, RunReport& report);
  /// Finalize without an engine (parallel runs own their engines).
  void finalize(RunReport& report, double t_end);

  /// Report path with the default applied ("RUN_<facade>.json").
  std::string report_path(const std::string& facade) const;

  // --- core::EngineProbe ----------------------------------------------------

  void on_event(core::SimTime t, core::EventId seq) override;
  void on_queue_push(std::uint64_t ns, std::size_t pending) override;
  void on_queue_pop(std::uint64_t ns) override;

 private:
  void on_span(const Span& s);

  Options opts_;
  MetricsRegistry metrics_;
  EngineProfiler profiler_;
  std::unique_ptr<TraceSink> sink_;
  core::Engine* engine_ = nullptr;
  bool bus_subscribed_ = false;
};

}  // namespace lsds::obs
