#include "obs/report.hpp"

#include <cstdio>
#include <stdexcept>

#include "core/engine.hpp"
#include "hosts/parallel_grid.hpp"
#include "net/partition.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "stats/dependability.hpp"
#include "util/ini.hpp"

namespace lsds::obs {

RunReport::RunReport() {
  root_ = Json::object();
  root_.set("schema", kRunReportSchema);
}

void RunReport::set_scenario(const std::string& facade, std::uint64_t seed,
                             const std::string& queue, const std::string& source_path) {
  Json s = Json::object();
  s.set("facade", facade);
  s.set("seed", seed);
  s.set("queue", queue);
  if (!source_path.empty()) s.set("source", source_path);
  root_.set("scenario", std::move(s));
}

void RunReport::echo_config(const util::IniConfig& ini) {
  Json cfg = Json::object();
  for (const auto& section : ini.sections()) {
    Json sec = Json::object();
    for (const auto& key : ini.keys(section)) {
      sec.set(key, ini.get_string(section, key));
    }
    cfg.set(section, std::move(sec));
  }
  root_.set("config", std::move(cfg));
}

void RunReport::add_metrics(const MetricsRegistry& metrics, double t_end) {
  root_.set("metrics", metrics.to_json(t_end));
}

void RunReport::add_profiler(const EngineProfiler& profiler) {
  root_.set("profiler", profiler.to_json());
}

void RunReport::add_dependability(const stats::DependabilityTracker& ledger, double horizon) {
  Json d = Json::object();
  d.set("jobs_completed", ledger.jobs_completed());
  d.set("jobs_lost", ledger.jobs_lost());
  d.set("useful_ops", ledger.useful_ops());
  d.set("wasted_ops", ledger.wasted_ops());
  d.set("overhead_ops", ledger.overhead_ops());
  d.set("goodput_ops_per_s", ledger.goodput(horizon));
  d.set("raw_throughput_ops_per_s", ledger.raw_throughput(horizon));
  d.set("waste_fraction", ledger.waste_fraction());
  d.set("mean_availability", ledger.mean_availability());
  d.set("mean_attempts", ledger.attempts().mean());
  Json avail = Json::object();
  for (const auto& [name, a] : ledger.availabilities()) avail.set(name, a);
  d.set("resource_availability", std::move(avail));
  root_.set("dependability", std::move(d));
}

void RunReport::add_execution(const hosts::ExecutionReport& report) {
  Json ex = Json::object();
  ex.set("parallel", report.parallel);
  if (!report.fallback_reason.empty()) ex.set("fallback_reason", report.fallback_reason);
  ex.set("lps", report.lps);
  ex.set("threads", report.threads);
  ex.set("partition", net::to_string(report.partition));
  ex.set("lookahead_s", report.lookahead);
  ex.set("windows", report.engine.windows);
  ex.set("events", report.engine.events);
  ex.set("cross_messages", report.engine.cross_messages);
  ex.set("past_clamped", report.engine.past_clamped);
  ex.set("imbalance", report.imbalance());
  root_.set("execution", std::move(ex));
}

void RunReport::set_result_core(std::uint64_t jobs_done, double makespan, double bytes_moved) {
  Json& r = result();
  r.set("jobs_done", jobs_done);
  r.set("makespan", makespan);
  r.set("bytes_moved", bytes_moved);
}

void RunReport::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("RunReport: cannot open " + path + " for writing");
  const std::string text = to_json_string();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace lsds::obs
