// Span records and the process-wide span bus.
//
// A *span* is one completed unit of substrate work with wall-in-sim-time
// extent: a network flow (net/flow), a CPU job attempt (hosts/cpu), or a
// scheduler dispatch (middleware/scheduler, middleware/recovery). The
// substrates publish spans to a single process-wide SpanBus; the
// observability layer (obs/observability.hpp) subscribes a structured trace
// sink and metric counters to it — the MonALISA-style "instrument the
// engine, analyze outside" split of the MONARC line of simulators.
//
// This header is deliberately dependency-free and header-only so that the
// substrate libraries can publish without linking against lsds_obs (the obs
// library depends on *them*). Design constraints:
//
//   * Disabled must be free: publishers guard with `if (bus->enabled())`
//     — a single relaxed atomic load — before even materializing the Span.
//     Nothing is compiled out; the differential-determinism and bench
//     acceptance gates hold because observation never schedules events.
//   * Subscription is quiescent-state only: subscribe/reset before the run
//     starts or after it drains, never concurrently with publishers. The
//     subscriber itself must be thread-safe (parallel LP threads publish
//     concurrently); obs::TraceSink serializes internally.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

namespace lsds::obs {

struct Span {
  const char* kind = "";    // "flow" | "job" | "dispatch"
  const char* status = "";  // "done" | "aborted" | "killed" | "cancelled" | ...
  std::uint64_t id = 0;     // substrate-local id (FlowId, JobId, ...)
  double t0 = 0;            // simulated start time
  double t1 = 0;            // simulated end time
  double quantity = 0;      // bytes (flow) or ops (job/dispatch)
  std::uint32_t src = 0;    // node / resource index ("" semantics per kind)
  std::uint32_t dst = 0;
  const char* name = nullptr;  // resource name when available (borrowed;
                               // valid only for the duration of the call)
};

class SpanBus {
 public:
  using Fn = std::function<void(const Span&)>;

  /// Hot-path guard: true iff a subscriber is attached.
  bool enabled() const { return armed_.load(std::memory_order_relaxed); }

  /// Deliver a span to the subscriber (no-op when none).
  void publish(const Span& s) const {
    if (enabled()) fn_(s);
  }

  /// Install the subscriber. Call only while no simulation is running.
  void subscribe(Fn fn) {
    fn_ = std::move(fn);
    armed_.store(fn_ != nullptr, std::memory_order_release);
  }

  /// Detach the subscriber (quiescent state only).
  void reset() {
    armed_.store(false, std::memory_order_release);
    fn_ = nullptr;
  }

  /// The process-wide bus every substrate publishes to.
  static SpanBus& global() {
    static SpanBus bus;
    return bus;
  }

 private:
  std::atomic<bool> armed_{false};
  Fn fn_;
};

}  // namespace lsds::obs
