#include "obs/trace_sink.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace lsds::obs {

TraceSink::TraceSink(const std::string& path) : path_(path), file_(std::fopen(path.c_str(), "w")) {
  if (!file_) throw std::runtime_error("TraceSink: cannot open " + path + " for writing");
}

TraceSink::~TraceSink() {
  if (file_) std::fclose(file_);
}

void TraceSink::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++records_;
}

void TraceSink::record_span(const Span& s) {
  std::string line = "{\"type\":\"span\",\"kind\":";
  line += Json::quote(s.kind);
  line += ",\"id\":" + std::to_string(s.id);
  line += ",\"t0\":" + Json::number(s.t0);
  line += ",\"t1\":" + Json::number(s.t1);
  line += ",\"quantity\":" + Json::number(s.quantity);
  line += ",\"src\":" + std::to_string(s.src);
  line += ",\"dst\":" + std::to_string(s.dst);
  line += ",\"status\":";
  line += Json::quote(s.status);
  if (s.name) {
    line += ",\"name\":";
    line += Json::quote(s.name);
  }
  line += "}";
  write_line(line);
}

void TraceSink::record_event(double t, std::uint64_t seq) {
  write_line("{\"type\":\"event\",\"t\":" + Json::number(t) + ",\"seq\":" + std::to_string(seq) +
             "}");
}

void TraceSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fflush(file_);
}

}  // namespace lsds::obs
