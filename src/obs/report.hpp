// Structured run reports.
//
// One simulation run, one JSON document: scenario identity, a verbatim echo
// of the configuration, the facade's outcome under *shared field names*
// (jobs_done / makespan / bytes_moved, so Bricks, OptorSim, MONARC,
// GridSim, ChicSim, SimG and chaos reports are comparable column-for-
// column), the metrics registry dump, the engine profiler, and — when the
// run had chaos — the dependability ledger. Same spirit as the BENCH_*.json
// files the bench drivers emit; this is the per-run counterpart the
// EXPERIMENTS.md tables are assembled from.
//
// Facades fill the "result" section through Result::to_report(...); the
// runner owns the rest. tools/check_run_report.py validates emitted files
// in CI (required fields present, every number finite).
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace lsds::util {
class IniConfig;
}
namespace lsds::core {
class Engine;
}
namespace lsds::stats {
class DependabilityTracker;
}
namespace lsds::hosts {
struct ExecutionReport;
}

namespace lsds::obs {

class MetricsRegistry;
class EngineProfiler;

/// Schema identifier stamped into every report; bump on breaking changes.
inline constexpr const char* kRunReportSchema = "lsds.run_report/1";

class RunReport {
 public:
  RunReport();

  Json& root() { return root_; }
  const Json& root() const { return root_; }

  /// Top-level section, created on first use.
  Json& section(const std::string& name) { return root_[name]; }

  // --- writers (called by the runner / facade adapters) ---------------------

  void set_scenario(const std::string& facade, std::uint64_t seed, const std::string& queue,
                    const std::string& source_path = "");
  /// Verbatim echo of every [section] key = value pair.
  void echo_config(const util::IniConfig& ini);
  void add_metrics(const MetricsRegistry& metrics, double t_end);
  void add_profiler(const EngineProfiler& profiler);
  void add_dependability(const stats::DependabilityTracker& ledger, double horizon);
  /// Parallel-execution footprint, mirrored under "execution" (the profiler
  /// also carries it; this keeps serial consumers one key away).
  void add_execution(const hosts::ExecutionReport& report);

  /// The facade outcome. Shared field names every facade writes:
  ///   jobs_done (uint), makespan (s), bytes_moved (bytes).
  Json& result() { return root_["result"]; }
  /// Convenience for the three shared fields.
  void set_result_core(std::uint64_t jobs_done, double makespan, double bytes_moved);

  // --- output ---------------------------------------------------------------

  std::string to_json_string(int indent = 2) const { return root_.dump(indent); }
  /// Write to `path`. Throws std::runtime_error when unwritable.
  void write(const std::string& path) const;

 private:
  Json root_;
};

}  // namespace lsds::obs
