// Pull-based metrics registry.
//
// The paper's taxonomy makes *output analysis* a first-class axis of a
// simulator; MetricsRegistry is the uniform instrument panel behind it.
// Three instrument kinds, registered by name:
//
//   * counter — monotone accumulation (flows completed, bytes moved);
//   * gauge   — a pull callback sampled on a simulated-time cadence
//               (pending events, active flows, queue depth);
//   * timer   — a duration distribution (flow/job span lengths).
//
// Sampling is *pull-based and event-carried*: `advance(t)` is called from
// the engine observation probe before each executed event, and when the
// clock has crossed the next cadence boundary every gauge is polled and
// every counter's running value recorded into a stats::TimeSeries. No
// sampling event is ever scheduled in the engine — the observed run's event
// trace stays byte-identical to the unobserved run's (a test asserts this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace lsds::obs {

class Json;

class MetricsRegistry {
 public:
  using GaugeFn = std::function<double()>;

  explicit MetricsRegistry(double sample_interval = 1.0)
      : sample_interval_(sample_interval > 0 ? sample_interval : 1.0) {}

  // --- instruments (create on first use, stable thereafter) -----------------

  /// Monotone counter. Thread-safe to *look up* concurrently only after
  /// creation; create instruments before the run starts, bump them freely
  /// during it (bump() takes the registry lock — spans are rare relative to
  /// events, and parallel LP threads may publish concurrently).
  void bump(const std::string& name, double amount = 1);
  double counter(const std::string& name) const;

  /// Register a pull gauge; sampled at every cadence boundary.
  void gauge(const std::string& name, GaugeFn pull);

  /// Record one duration sample (seconds) into the named timer.
  void time(const std::string& name, double seconds);

  // --- sampling -------------------------------------------------------------

  double sample_interval() const { return sample_interval_; }

  /// Poll every gauge and counter at simulated time `t` into its series.
  void sample(double t);

  /// Event-carried cadence: called with the engine clock before each event;
  /// samples at the last crossed boundary when one has been passed.
  void advance(double t) {
    if (t >= next_sample_) advance_slow(t);
  }

  // --- output ---------------------------------------------------------------

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, stats::SampleSet>& timers() const { return timers_; }
  const std::map<std::string, stats::TimeSeries>& series() const { return series_; }

  /// Serialize the registry: counters as values, timers as summary stats,
  /// gauges/counters as sampled series summaries (count/mean/max + last).
  Json to_json(double t_end) const;

 private:
  void advance_slow(double t);

  double sample_interval_;
  double next_sample_ = 0;
  mutable std::mutex mu_;
  std::map<std::string, double> counters_;
  std::map<std::string, GaugeFn> gauges_;
  std::map<std::string, stats::SampleSet> timers_;
  std::map<std::string, stats::TimeSeries> series_;
};

}  // namespace lsds::obs
