#include "obs/metrics.hpp"

#include <cmath>

#include "obs/json.hpp"

namespace lsds::obs {

void MetricsRegistry::bump(const std::string& name, double amount) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += amount;
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

void MetricsRegistry::gauge(const std::string& name, GaugeFn pull) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = std::move(pull);
}

void MetricsRegistry::time(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  timers_[name].add(seconds);
}

void MetricsRegistry::sample(double t) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, pull] : gauges_) {
    series_[name].record(t, pull());
  }
  for (const auto& [name, value] : counters_) {
    series_[name].record(t, value);
  }
}

void MetricsRegistry::advance_slow(double t) {
  // Sample once at the last crossed boundary: the instruments are
  // piecewise-constant state pulled "now", so intermediate boundaries in a
  // sparse stretch of virtual time would only repeat the same values.
  const double boundary = std::floor(t / sample_interval_) * sample_interval_;
  sample(boundary);
  next_sample_ = boundary + sample_interval_;
}

Json MetricsRegistry::to_json(double t_end) const {
  std::lock_guard<std::mutex> lock(mu_);
  Json out = Json::object();
  out.set("sample_interval_s", sample_interval_);
  Json& counters = out["counters"];
  counters = Json::object();
  for (const auto& [name, value] : counters_) counters.set(name, value);
  Json& timers = out["timers"];
  timers = Json::object();
  for (const auto& [name, set] : timers_) {
    Json t = Json::object();
    t.set("count", static_cast<std::uint64_t>(set.count()));
    t.set("mean_s", set.mean());
    t.set("min_s", set.min());
    t.set("max_s", set.max());
    t.set("stddev_s", set.stddev());
    timers.set(name, std::move(t));
  }
  Json& series = out["series"];
  series = Json::object();
  for (const auto& [name, ts] : series_) {
    Json s = Json::object();
    s.set("samples", static_cast<std::uint64_t>(ts.size()));
    if (!ts.empty()) {
      const double last_t = ts.points().back().t;
      s.set("last_t", last_t);
      s.set("last", ts.points().back().v);
      s.set("max", ts.max_value());
      s.set("time_weighted_mean", ts.time_weighted_mean(t_end > last_t ? t_end : last_t));
    }
    series.set(name, std::move(s));
  }
  return out;
}

}  // namespace lsds::obs
