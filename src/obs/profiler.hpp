// Wall-clock engine profiler.
//
// Answers the performance questions every scaling claim in EXPERIMENTS.md
// rests on: how fast does the engine burn events (events/sec wall-clock),
// what do pending-set operations cost (queue-op latency distributions from
// the core probe), and — for parallel runs — how well-occupied the LP
// windows are (events per window, per-LP balance, past_clamped) from
// core/parallel's counters.
//
// The profiler *is* a core::EngineProbe; attach with engine.set_probe(&p).
// It observes wall time only — it never touches simulated time, so an
// observed run's event trace is identical to an unobserved one.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "core/engine.hpp"
#include "core/probe.hpp"
#include "stats/summary.hpp"

namespace lsds::hosts {
struct ExecutionReport;
}

namespace lsds::obs {

class Json;

class EngineProfiler final : public core::EngineProbe {
 public:
  /// Anchor the wall clock (done at construction; call again to re-anchor).
  void start();
  /// Stop the wall clock (idempotent; finalize calls it).
  void stop();

  EngineProfiler() { start(); }

  // --- core::EngineProbe ----------------------------------------------------

  void on_event(core::SimTime t, core::EventId seq) override;
  void on_queue_push(std::uint64_t ns, std::size_t pending) override;
  void on_queue_pop(std::uint64_t ns) override;

  // --- rollups --------------------------------------------------------------

  /// Final engine counters (scheduled/executed/cancelled/past_clamped).
  void ingest(const core::Engine& engine);
  /// Parallel-execution rollup: windows, cross-LP messages, per-LP window
  /// occupancy (events per window per LP) and past_clamped.
  void ingest_execution(const hosts::ExecutionReport& report);

  // --- readings -------------------------------------------------------------

  double wall_seconds() const;
  std::uint64_t events() const { return events_; }
  double events_per_sec() const;
  const stats::Accumulator& push_ns() const { return push_ns_; }
  const stats::Accumulator& pop_ns() const { return pop_ns_; }
  const stats::Accumulator& pending_depth() const { return pending_; }

  Json to_json() const;

 private:
  using Clock = std::chrono::steady_clock;

  Clock::time_point wall_start_{};
  Clock::time_point wall_stop_{};
  bool running_ = false;
  std::uint64_t events_ = 0;
  double last_event_time_ = 0;
  stats::Accumulator push_ns_;
  stats::Accumulator pop_ns_;
  stats::Accumulator pending_;

  // Engine rollup (after ingest()).
  bool have_engine_ = false;
  core::Engine::Stats engine_stats_{};
  const char* queue_name_ = nullptr;

  // Parallel rollup (after ingest_execution()).
  bool have_exec_ = false;
  bool exec_parallel_ = false;
  unsigned exec_lps_ = 1;
  unsigned exec_threads_ = 1;
  double exec_lookahead_ = 0;
  std::uint64_t exec_windows_ = 0;
  std::uint64_t exec_events_ = 0;
  std::uint64_t exec_cross_ = 0;
  std::uint64_t exec_past_clamped_ = 0;
  std::uint64_t exec_la_violations_ = 0;
  stats::Accumulator lp_events_;
  double exec_imbalance_ = 1.0;
  std::string exec_fallback_;
};

}  // namespace lsds::obs
