#include "obs/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace lsds::obs {

Json& Json::set(const std::string& key, Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, Json{});
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::push(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  array_.push_back(std::move(v));
  return *this;
}

std::string Json::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Json::number(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  // Shortest representation that round-trips: try increasing precision.
  char buf[32];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  // Keep it recognizably numeric for strict parsers ("1e+20" is fine, a
  // bare "inf" is not — handled above).
  return buf;
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                       static_cast<std::size_t>(depth + 1),
                                                   ' ')
                                     : std::string{};
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
                               ' ')
                 : std::string{};
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Kind::kDouble: out += number(double_); break;
    case Kind::kString: out += quote(str_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += (i ? "," : "");
        out += nl;
        out += pad;
        array_[i].write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += "]";
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += "{";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += (i ? "," : "");
        out += nl;
        out += pad;
        out += quote(object_[i].first);
        out += kv_sep;
        object_[i].second.write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += "}";
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

// Recursive-descent parser over the writer's dialect (strict JSON plus the
// NaN / Infinity literals the writer emits for non-finite doubles).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (literal("null")) return Json();
        fail("bad literal");
      case 'N':
        if (literal("NaN")) return Json(std::nan(""));
        fail("bad literal");
      case 'I':
        if (literal("Infinity")) return Json(std::numeric_limits<double>::infinity());
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  // Appends the UTF-8 encoding of `cp`.
  static void encode_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF && text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          encode_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
      if (literal("Infinity")) return Json(-std::numeric_limits<double>::infinity());
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno != ERANGE) {
        return Json(static_cast<std::int64_t>(v));
      }
      errno = 0;  // out of int64 range: fall through to double
    }
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number '" + token + "'");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace lsds::obs
