#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lsds::obs {

Json& Json::set(const std::string& key, Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, Json{});
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::push(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  array_.push_back(std::move(v));
  return *this;
}

std::string Json::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Json::number(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  // Shortest representation that round-trips: try increasing precision.
  char buf[32];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  // Keep it recognizably numeric for strict parsers ("1e+20" is fine, a
  // bare "inf" is not — handled above).
  return buf;
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                       static_cast<std::size_t>(depth + 1),
                                                   ' ')
                                     : std::string{};
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
                               ' ')
                 : std::string{};
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Kind::kDouble: out += number(double_); break;
    case Kind::kString: out += quote(str_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += (i ? "," : "");
        out += nl;
        out += pad;
        array_[i].write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += "]";
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += "{";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += (i ? "," : "");
        out += nl;
        out += pad;
        out += quote(object_[i].first);
        out += kv_sep;
        object_[i].second.write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += "}";
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace lsds::obs
