#include "obs/profiler.hpp"

#include "hosts/parallel_grid.hpp"
#include "obs/json.hpp"

namespace lsds::obs {

void EngineProfiler::start() {
  wall_start_ = Clock::now();
  running_ = true;
}

void EngineProfiler::stop() {
  if (!running_) return;
  wall_stop_ = Clock::now();
  running_ = false;
}

void EngineProfiler::on_event(core::SimTime t, core::EventId) {
  ++events_;
  last_event_time_ = t;
}

void EngineProfiler::on_queue_push(std::uint64_t ns, std::size_t pending) {
  push_ns_.add(static_cast<double>(ns));
  pending_.add(static_cast<double>(pending));
}

void EngineProfiler::on_queue_pop(std::uint64_t ns) { pop_ns_.add(static_cast<double>(ns)); }

void EngineProfiler::ingest(const core::Engine& engine) {
  have_engine_ = true;
  engine_stats_ = engine.stats();
  queue_name_ = engine.queue_name();
  if (events_ == 0) events_ = engine_stats_.executed;
}

void EngineProfiler::ingest_execution(const hosts::ExecutionReport& report) {
  have_exec_ = true;
  exec_parallel_ = report.parallel;
  exec_lps_ = report.lps;
  exec_threads_ = report.threads;
  exec_lookahead_ = report.lookahead;
  exec_windows_ = report.engine.windows;
  exec_events_ = report.engine.events;
  exec_cross_ = report.engine.cross_messages;
  exec_past_clamped_ = report.engine.past_clamped;
  exec_la_violations_ = report.engine.lookahead_violations;
  lp_events_ = report.lp_events;
  exec_imbalance_ = report.imbalance();
  exec_fallback_ = report.fallback_reason;
  if (events_ == 0) events_ = exec_events_;
}

double EngineProfiler::wall_seconds() const {
  const auto end = running_ ? Clock::now() : wall_stop_;
  return std::chrono::duration<double>(end - wall_start_).count();
}

double EngineProfiler::events_per_sec() const {
  const double w = wall_seconds();
  return w > 0 ? static_cast<double>(events_) / w : 0.0;
}

namespace {
Json acc_json(const stats::Accumulator& a) {
  Json j = Json::object();
  j.set("count", a.count());
  j.set("mean", a.mean());
  j.set("min", a.min());
  j.set("max", a.max());
  j.set("stddev", a.stddev());
  return j;
}
}  // namespace

Json EngineProfiler::to_json() const {
  Json out = Json::object();
  out.set("wall_s", wall_seconds());
  out.set("events", events_);
  out.set("events_per_sec", events_per_sec());
  out.set("last_event_time_s", last_event_time_);
  if (push_ns_.count() > 0) out.set("queue_push_ns", acc_json(push_ns_));
  if (pop_ns_.count() > 0) out.set("queue_pop_ns", acc_json(pop_ns_));
  if (pending_.count() > 0) out.set("pending_depth", acc_json(pending_));
  if (have_engine_) {
    Json eng = Json::object();
    if (queue_name_) eng.set("queue", queue_name_);
    eng.set("scheduled", engine_stats_.scheduled);
    eng.set("executed", engine_stats_.executed);
    eng.set("cancelled", engine_stats_.cancelled);
    eng.set("past_clamped", engine_stats_.past_clamped);
    out.set("engine", std::move(eng));
  }
  if (have_exec_) {
    Json ex = Json::object();
    ex.set("parallel", exec_parallel_);
    if (!exec_fallback_.empty()) ex.set("fallback_reason", exec_fallback_);
    ex.set("lps", exec_lps_);
    ex.set("threads", exec_threads_);
    ex.set("lookahead_s", exec_lookahead_);
    ex.set("windows", exec_windows_);
    ex.set("events", exec_events_);
    ex.set("cross_messages", exec_cross_);
    ex.set("past_clamped", exec_past_clamped_);
    ex.set("lookahead_violations", exec_la_violations_);
    // Window occupancy: how many events each LP executes per synchronization
    // window — the grain-size indicator of conservative parallel execution.
    if (exec_windows_ > 0) {
      ex.set("events_per_window",
             static_cast<double>(exec_events_) / static_cast<double>(exec_windows_));
      Json occ = Json::object();
      occ.set("mean", lp_events_.mean() / static_cast<double>(exec_windows_));
      occ.set("min", lp_events_.min() / static_cast<double>(exec_windows_));
      occ.set("max", lp_events_.max() / static_cast<double>(exec_windows_));
      ex.set("lp_window_occupancy", std::move(occ));
    }
    ex.set("per_lp_events", acc_json(lp_events_));
    ex.set("imbalance", exec_imbalance_);
    out.set("execution", std::move(ex));
  }
  return out;
}

}  // namespace lsds::obs
