#include "obs/observability.hpp"

#include <string>

#include "obs/report.hpp"
#include "util/ini.hpp"

namespace lsds::obs {

Options parse_options(const util::IniConfig& ini) {
  Options o;
  o.enabled = ini.get_bool("observability", "enabled", false);
  o.report_path = ini.get_string("observability", "report", "");
  o.trace_path = ini.get_string("observability", "trace", "");
  o.sample_interval = ini.get_duration("observability", "sample_interval", 1.0);
  o.trace_events = ini.get_bool("observability", "trace_events", false);
  return o;
}

Observability::Observability(Options opts)
    : opts_(std::move(opts)), metrics_(opts_.sample_interval) {
  if (!opts_.enabled) return;
  if (!opts_.trace_path.empty()) sink_ = std::make_unique<TraceSink>(opts_.trace_path);
  SpanBus::global().subscribe([this](const Span& s) { on_span(s); });
  bus_subscribed_ = true;
}

Observability::~Observability() {
  if (bus_subscribed_) SpanBus::global().reset();
  detach();
}

void Observability::detach() {
  if (!engine_) return;
  engine_->set_probe(nullptr);
  engine_ = nullptr;
}

void Observability::attach(core::Engine& engine) {
  if (!opts_.enabled) return;
  engine_ = &engine;
  engine.set_probe(this);
  metrics_.gauge("engine.pending_events", [&engine] {
    return static_cast<double>(engine.pending());
  });
  metrics_.gauge("engine.live_processes", [&engine] {
    return static_cast<double>(engine.live_processes());
  });
  profiler_.start();
}

void Observability::on_span(const Span& s) {
  // Standard span-derived instruments: per-kind completion counters, moved
  // quantities and duration timers. Feeds both serial and parallel runs
  // (LP threads publish concurrently; the registry and sink are locked).
  const std::string kind(s.kind);
  metrics_.bump("span." + kind + "." + s.status);
  if (kind == "flow") {
    metrics_.bump("net.bytes_moved", s.quantity);
  } else if (kind == "job") {
    metrics_.bump("cpu.ops_done", s.quantity);
  }
  metrics_.time("span." + kind + ".duration_s", s.t1 - s.t0);
  if (sink_) sink_->record_span(s);
}

void Observability::on_event(core::SimTime t, core::EventId seq) {
  metrics_.advance(t);
  profiler_.on_event(t, seq);
  if (opts_.trace_events && sink_) sink_->record_event(t, seq);
}

void Observability::on_queue_push(std::uint64_t ns, std::size_t pending) {
  profiler_.on_queue_push(ns, pending);
}

void Observability::on_queue_pop(std::uint64_t ns) { profiler_.on_queue_pop(ns); }

void Observability::finalize(core::Engine& engine, RunReport& report) {
  if (!opts_.enabled) return;
  profiler_.ingest(engine);
  finalize(report, engine.now());
}

void Observability::finalize(RunReport& report, double t_end) {
  if (!opts_.enabled) return;
  profiler_.stop();
  metrics_.sample(t_end);  // closing sample so every series reaches the horizon
  report.add_metrics(metrics_, t_end);
  report.add_profiler(profiler_);
  if (sink_) {
    sink_->flush();
    Json t = Json::object();
    t.set("path", sink_->path());
    t.set("records", sink_->records());
    report.root().set("trace", std::move(t));
  }
}

std::string Observability::report_path(const std::string& facade) const {
  return opts_.report_path.empty() ? "RUN_" + facade + ".json" : opts_.report_path;
}

}  // namespace lsds::obs
