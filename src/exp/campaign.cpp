#include "exp/campaign.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "core/engine.hpp"
#include "core/rng.hpp"
#include "obs/report.hpp"
#include "sim/facades/common.hpp"
#include "stats/batch_means.hpp"
#include "stats/summary.hpp"
#include "util/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define LSDS_EXP_CAN_SILENCE_STDOUT 1
#endif

namespace lsds::exp {

namespace {

// Facades print a one-line summary to stdout, and the chatty ones log to
// stderr; N workers' worth of those interleave arbitrarily (and in a
// distributed worker they would pollute the coordinator's view). Redirect
// fds 1 and 2 to /dev/null for the duration of the parallel phase. RAII:
// every fd this opens is closed again on every path — the dup2'd devnull fd
// immediately after redirection, the saved originals when they are restored
// in the destructor — so a campaign run leaks no descriptors even when a
// facade throws mid-phase.
class OutputSilencer {
 public:
  OutputSilencer() {
#ifdef LSDS_EXP_CAN_SILENCE_STDOUT
    std::fflush(stdout);
    std::fflush(stderr);
    const int devnull = ::open("/dev/null", O_WRONLY | O_CLOEXEC);
    if (devnull < 0) return;  // cannot silence; leave fds untouched
    saved_out_ = ::dup(1);
    saved_err_ = ::dup(2);
    if (saved_out_ >= 0) ::dup2(devnull, 1);
    if (saved_err_ >= 0) ::dup2(devnull, 2);
    ::close(devnull);  // fds 1/2 hold their own copies now
#endif
  }
  ~OutputSilencer() { restore(); }

  /// Restore the original fds early (idempotent) — used before error paths
  /// that must reach the user.
  void restore() {
#ifdef LSDS_EXP_CAN_SILENCE_STDOUT
    std::fflush(stdout);
    std::fflush(stderr);
    if (saved_out_ >= 0) {
      ::dup2(saved_out_, 1);
      ::close(saved_out_);
      saved_out_ = -1;
    }
    if (saved_err_ >= 0) {
      ::dup2(saved_err_, 2);
      ::close(saved_err_);
      saved_err_ = -1;
    }
#endif
  }

  OutputSilencer(const OutputSilencer&) = delete;
  OutputSilencer& operator=(const OutputSilencer&) = delete;

 private:
  int saved_out_ = -1;
  int saved_err_ = -1;
};

void extract_metrics(const obs::Json& result, RepOutcome& out) {
  for (const auto& [key, value] : result.members()) {
    switch (value.kind()) {
      case obs::Json::Kind::kInt:
      case obs::Json::Kind::kDouble:
        out.metrics.emplace_back(key, value.as_double());
        break;
      case obs::Json::Kind::kBool:  // aggregates to "fraction of replications"
        out.metrics.emplace_back(key, value.as_bool() ? 1.0 : 0.0);
        break;
      default:
        break;  // strings / nested structure are not aggregatable
    }
  }
}

}  // namespace

CampaignSpec CampaignSpec::parse(const util::IniConfig& ini) {
  // Validate the raw integers BEFORE the size_t casts: `replications = -3`
  // must be rejected, not wrapped into 18 quintillion replications.
  const long long replications = ini.get_int("campaign", "replications", 5);
  if (replications < 1) {
    throw util::ConfigError("[campaign] replications must be >= 1 (got " +
                            std::to_string(replications) + ")");
  }
  const long long warmup = ini.get_int("campaign", "warmup", 0);
  if (warmup < 0) {
    throw util::ConfigError("[campaign] warmup must be >= 0 (got " + std::to_string(warmup) +
                            ")");
  }
  const long long workers = ini.get_int("campaign", "workers", 1);
  if (workers < 0) {
    throw util::ConfigError("[campaign] workers must be >= 0 (got " + std::to_string(workers) +
                            ")");
  }
  CampaignSpec spec;
  spec.replications = static_cast<std::size_t>(replications);
  spec.warmup = static_cast<std::size_t>(warmup);
  spec.confidence = ini.get_double("campaign", "confidence", 0.95);
  spec.workers = static_cast<unsigned>(workers);
  spec.timing = ini.get_bool("campaign", "timing", false);
  if (spec.warmup >= spec.replications) {
    throw util::ConfigError("[campaign] warmup (" + std::to_string(spec.warmup) +
                            ") must be < replications (" + std::to_string(spec.replications) +
                            ")");
  }
  if (std::abs(spec.confidence - 0.95) > 1e-12) {
    throw util::ConfigError(
        "[campaign] confidence: only 0.95 is supported (Student-t table in stats/batch_means)");
  }
  return spec;
}

std::uint64_t substream_seed(std::uint64_t base_seed, std::size_t replication) {
  // SplitMix64 chain keyed by (master seed, "exp.campaign", replication).
  // Deliberately NOT keyed by the sweep point: every point replays the same
  // seed sequence (common random numbers), so cross-point comparisons are
  // paired and tighter than independent draws.
  std::uint64_t s = base_seed ^ core::fnv1a("exp.campaign");
  std::uint64_t out = core::splitmix64(s);
  s ^= (static_cast<std::uint64_t>(replication) + 1) * 0x9e3779b97f4a7c15ULL;
  out ^= core::splitmix64(s);
  return out;
}

Campaign::Campaign(util::IniConfig base) : base_(std::move(base)) {
  spec_ = CampaignSpec::parse(base_);
  sweep_ = SweepSpec::parse(base_);
  facade_ = base_.get_string("scenario", "facade", "");
  queue_name_ = base_.get_string("scenario", "queue", "heap");
  queue_ = sim::facades::parse_queue(queue_name_);
  base_seed_ = static_cast<std::uint64_t>(base_.get_int("scenario", "seed", 42));
  seeds_.resize(spec_.replications);
  for (std::size_t r = 0; r < spec_.replications; ++r) {
    seeds_[r] = substream_seed(base_seed_, r);
  }

  sim::register_builtin_facades();
  entry_ = sim::FacadeRegistry::global().find(facade_);
  if (!entry_) {
    throw util::ConfigError("campaign: unknown facade '" + facade_ + "' in [scenario]");
  }
}

std::vector<RepOutcome> Campaign::run_slots(std::size_t begin, std::size_t end,
                                            unsigned threads) const {
  const std::size_t n_reps = spec_.replications;
  if (begin > end || end > run_count()) {
    throw std::invalid_argument("campaign: slot range [" + std::to_string(begin) + ", " +
                                std::to_string(end) + ") outside grid of " +
                                std::to_string(run_count()));
  }
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  // One INI per covered point, built up front; replications share it
  // read-only.
  const std::size_t p_lo = begin / n_reps;
  const std::size_t p_hi = end == begin ? p_lo : (end - 1) / n_reps + 1;
  std::vector<util::IniConfig> point_inis;
  point_inis.reserve(p_hi - p_lo);
  for (std::size_t p = p_lo; p < p_hi; ++p) {
    util::IniConfig ini = base_;
    sweep_.apply(p, ini);
    point_inis.push_back(std::move(ini));
  }

  // Pre-sized outcome grid: each task writes its own slot, so scheduling
  // order cannot leak into the result.
  std::vector<RepOutcome> outcomes(end - begin);
  OutputSilencer quiet;
  util::ThreadPool pool(threads);
  for (std::size_t slot = begin; slot < end; ++slot) {
    const std::size_t p = slot / n_reps;
    const std::size_t r = slot % n_reps;
    pool.submit([this, &point_inis, &outcomes, begin, p_lo, slot, p, r] {
      RepOutcome& out = outcomes[slot - begin];
      try {
        core::Engine::Config ecfg;
        ecfg.queue = queue_;
        ecfg.seed = seeds_[r];
        core::Engine engine(ecfg);
        obs::RunReport report;
        out.rc = entry_->run(engine, point_inis[p - p_lo], report);
        extract_metrics(report.result(), out);
      } catch (const std::exception& e) {
        out.rc = -1;
        out.error = e.what();
      } catch (...) {
        out.rc = -1;
        out.error = "unknown exception";
      }
    });
  }
  pool.wait_idle();
  return outcomes;
}

CampaignResult Campaign::run() {
  const std::size_t n_points = sweep_.point_count();
  const std::size_t n_reps = spec_.replications;

  unsigned workers = spec_.workers;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  std::fprintf(stderr, "campaign: %s — %zu point%s x %zu replication%s on %u worker%s\n",
               facade_.c_str(), n_points, n_points == 1 ? "" : "s", n_reps,
               n_reps == 1 ? "" : "s", workers, workers == 1 ? "" : "s");

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<RepOutcome> outcomes = run_slots(0, run_count(), workers);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return aggregate(outcomes, wall);
}

CampaignResult Campaign::aggregate(const std::vector<RepOutcome>& outcomes,
                                   double wall_seconds) const {
  const std::size_t n_points = sweep_.point_count();
  const std::size_t n_reps = spec_.replications;
  const std::size_t n_runs = n_points * n_reps;
  if (outcomes.size() != n_runs) {
    throw std::runtime_error("campaign: aggregate over " + std::to_string(outcomes.size()) +
                             " outcomes, grid has " + std::to_string(n_runs));
  }

  // Fail loudly and deterministically: the first bad slot in grid order
  // wins, never whichever failure happened to finish first — the diagnostic
  // is identical across workers=1/N and across process counts.
  for (std::size_t p = 0; p < n_points; ++p) {
    for (std::size_t r = 0; r < n_reps; ++r) {
      const RepOutcome& out = outcomes[p * n_reps + r];
      if (out.rc != 0) {
        throw std::runtime_error("campaign: point " + std::to_string(p) + " replication " +
                                 std::to_string(r) + " failed (rc=" + std::to_string(out.rc) +
                                 (out.error.empty() ? ")" : "): " + out.error));
      }
    }
  }

  CampaignResult result;
  result.facade = facade_;
  result.queue = queue_name_;
  result.base_seed = base_seed_;
  result.spec = spec_;
  result.sweep = sweep_;
  result.seeds = seeds_;
  result.runs = n_runs;
  result.wall_seconds = wall_seconds;
  result.points.reserve(n_points);

  for (std::size_t p = 0; p < n_points; ++p) {
    PointResult point;
    point.index = p;
    point.params = sweep_.params(p);

    // Metric name order: replication 0's insertion order, then any names
    // that only appear later (shouldn't happen; kept deterministic anyway).
    std::vector<std::string> names;
    for (std::size_t r = 0; r < n_reps; ++r) {
      for (const auto& [name, value] : outcomes[p * n_reps + r].metrics) {
        bool known = false;
        for (const std::string& n : names) {
          if (n == name) {
            known = true;
            break;
          }
        }
        if (!known) names.push_back(name);
      }
    }

    for (const std::string& name : names) {
      stats::Accumulator acc;
      for (std::size_t r = spec_.warmup; r < n_reps; ++r) {
        for (const auto& [n, value] : outcomes[p * n_reps + r].metrics) {
          if (n == name) {
            acc.add(value);
            break;
          }
        }
      }
      MetricStats ms;
      ms.n = acc.count();
      ms.mean = acc.mean();
      ms.stddev = std::sqrt(acc.sample_variance());
      ms.min = acc.min();
      ms.max = acc.max();
      if (acc.count() >= 2) {
        ms.ci95 = stats::t_critical_95(acc.count() - 1) *
                  std::sqrt(acc.sample_variance() / static_cast<double>(acc.count()));
      }
      point.metrics.emplace_back(name, ms);
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

obs::Json CampaignResult::to_json() const {
  obs::Json root = obs::Json::object();
  root.set("schema", kCampaignReportSchema);

  obs::Json c = obs::Json::object();
  c.set("facade", facade);
  c.set("queue", queue);
  c.set("base_seed", base_seed);
  c.set("replications", static_cast<std::uint64_t>(spec.replications));
  c.set("warmup", static_cast<std::uint64_t>(spec.warmup));
  c.set("confidence", spec.confidence);
  c.set("points", static_cast<std::uint64_t>(points.size()));
  c.set("runs", runs);
  // Worker count is intentionally absent: the report must be byte-identical
  // for workers=1 and workers=N.
  obs::Json seed_arr = obs::Json::array();
  for (std::uint64_t s : seeds) seed_arr.push(s);
  c.set("seeds", std::move(seed_arr));
  root.set("campaign", std::move(c));

  obs::Json sw = obs::Json::object();
  for (const SweepAxis& axis : sweep.axes()) {
    obs::Json vals = obs::Json::array();
    for (const std::string& v : axis.values) vals.push(v);
    sw.set(axis.name(), std::move(vals));
  }
  root.set("sweep", std::move(sw));

  obs::Json pts = obs::Json::array();
  for (const PointResult& p : points) {
    obs::Json jp = obs::Json::object();
    jp.set("index", static_cast<std::uint64_t>(p.index));
    obs::Json params = obs::Json::object();
    for (const auto& [name, value] : p.params) params.set(name, value);
    jp.set("params", std::move(params));
    obs::Json metrics = obs::Json::object();
    for (const auto& [name, ms] : p.metrics) {
      obs::Json jm = obs::Json::object();
      jm.set("n", static_cast<std::uint64_t>(ms.n));
      jm.set("mean", ms.mean);
      jm.set("stddev", ms.stddev);
      jm.set("ci95_halfwidth", ms.ci95);
      jm.set("min", ms.min);
      jm.set("max", ms.max);
      metrics.set(name, std::move(jm));
    }
    jp.set("metrics", std::move(metrics));
    pts.push(std::move(jp));
  }
  root.set("points", std::move(pts));

  if (spec.timing) {
    obs::Json t = obs::Json::object();
    t.set("wall_seconds", wall_seconds);
    root.set("timing", std::move(t));
    if (distribution) {
      // Worker-failure accounting is as nondeterministic as the wall clock
      // (which worker dies or times out depends on OS scheduling), so it
      // rides behind the same opt-in.
      obs::Json d = obs::Json::object();
      d.set("processes", static_cast<std::uint64_t>(distribution->processes));
      d.set("shards", static_cast<std::uint64_t>(distribution->shards));
      d.set("shards_resumed", static_cast<std::uint64_t>(distribution->shards_resumed));
      d.set("retries_used", static_cast<std::uint64_t>(distribution->retries_used));
      obs::Json fails = obs::Json::array();
      for (const DistAccounting::Failure& f : distribution->failures) {
        obs::Json jf = obs::Json::object();
        jf.set("shard", static_cast<std::uint64_t>(f.shard));
        jf.set("attempt", static_cast<std::uint64_t>(f.attempt));
        jf.set("reason", f.reason);
        jf.set("detail", f.detail);
        fails.push(std::move(jf));
      }
      d.set("worker_failures", std::move(fails));
      root.set("distribution", std::move(d));
    }
  }
  return root;
}

std::string CampaignResult::to_json_string(int indent) const { return to_json().dump(indent); }

void CampaignResult::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("campaign: cannot open " + path + " for writing");
  const std::string text = to_json_string();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace lsds::exp
