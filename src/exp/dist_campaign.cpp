#include "exp/dist_campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/flags.hpp"
#include "util/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define LSDS_EXP_CAN_SPAWN 1
#endif
#if defined(__APPLE__)
#include <mach-o/dyld.h>
#endif

namespace lsds::exp {

namespace fs = std::filesystem;

DistConfig DistConfig::parse(const util::IniConfig& ini) {
  DistConfig cfg;
  const long long distribute = ini.get_int("campaign", "distribute", 0);
  if (distribute < 0) {
    throw util::ConfigError("[campaign] distribute must be >= 0 (got " +
                            std::to_string(distribute) + ")");
  }
  cfg.processes = static_cast<unsigned>(distribute);
  const long long shard_size = ini.get_int("campaign", "shard_size", 1);
  if (shard_size < 1) {
    throw util::ConfigError("[campaign] shard_size must be >= 1 (got " +
                            std::to_string(shard_size) + ")");
  }
  cfg.shard_size = static_cast<std::size_t>(shard_size);
  cfg.timeout_sec = ini.get_duration("campaign", "timeout", cfg.timeout_sec);
  if (!(cfg.timeout_sec > 0) || !std::isfinite(cfg.timeout_sec)) {
    throw util::ConfigError("[campaign] timeout must be a positive finite duration");
  }
  const long long retries = ini.get_int("campaign", "retries", 2);
  if (retries < 0) {
    throw util::ConfigError("[campaign] retries must be >= 0 (got " + std::to_string(retries) +
                            ")");
  }
  cfg.retries = static_cast<unsigned>(retries);
  cfg.partial_dir = ini.get_string("campaign", "partial_dir", "");
  cfg.keep_partials = ini.get_bool("campaign", "keep_partials", false);

  const std::string hosts_path = ini.get_string("campaign", "hosts", "");
  if (!hosts_path.empty()) {
    std::ifstream f(hosts_path);
    if (!f) throw util::ConfigError("[campaign] hosts: cannot open " + hosts_path);
    std::string line;
    while (std::getline(f, line)) {
      const std::string host{util::trim(line)};
      if (host.empty() || host[0] == '#') continue;
      cfg.hosts.push_back(host);
    }
    if (cfg.hosts.empty()) {
      throw util::ConfigError("[campaign] hosts: " + hosts_path + " lists no hosts");
    }
  }
  return cfg;
}

void DistConfig::validate() const {
  if (processes == 0) {
    throw std::invalid_argument("DistConfig: processes must be >= 1 for a distributed run");
  }
  if (shard_size == 0) throw std::invalid_argument("DistConfig: shard_size must be >= 1");
  if (!(timeout_sec > 0) || !std::isfinite(timeout_sec)) {
    throw std::invalid_argument("DistConfig: timeout_sec must be positive and finite");
  }
}

namespace {

#ifdef LSDS_EXP_CAN_SPAWN

std::string read_file(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("campaign: cannot read " + path.string());
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string self_executable() {
#if defined(__APPLE__)
  std::uint32_t size = 0;
  ::_NSGetExecutablePath(nullptr, &size);  // reports the needed buffer size
  std::string path(size, '\0');
  if (::_NSGetExecutablePath(path.data(), &size) != 0) return {};
  const std::size_t nul = path.find('\0');
  if (nul != std::string::npos) path.resize(nul);
  return path;
#else
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return buf;
#endif
}

// Single-quote an argument for the remote shell an ssh target runs.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') out += "'\\''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

struct RunningWorker {
  pid_t pid = -1;
  std::size_t shard_idx = 0;
  unsigned attempt = 0;
  std::chrono::steady_clock::time_point deadline;
  bool timed_out = false;  // SIGKILLed by the coordinator's timeout
};

/// Fork+exec one worker. Returns the child pid; throws on fork failure.
pid_t spawn_worker(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("campaign: fork failed");
  if (pid == 0) {
    ::execvp(argv[0], argv.data());
    // exec failed: nothing sane to do in the child but exit loudly.
    std::fprintf(stderr, "campaign-worker: cannot exec %s\n", argv[0]);
    ::_exit(127);
  }
  return pid;
}

#endif  // LSDS_EXP_CAN_SPAWN

}  // namespace

DistributedCampaign::DistributedCampaign(util::IniConfig base, DistConfig cfg)
    : campaign_(std::move(base)), cfg_(std::move(cfg)) {
  cfg_.validate();
}

CampaignResult DistributedCampaign::run() {
#ifndef LSDS_EXP_CAN_SPAWN
  throw std::runtime_error("campaign: distributed execution needs a POSIX host");
#else
  const std::size_t n_runs = campaign_.run_count();
  const std::vector<Shard> plan = plan_shards(n_runs, cfg_.shard_size);
  const std::string signature = grid_signature(campaign_);

  const bool private_dir = cfg_.partial_dir.empty();
  const fs::path dir = private_dir ? fs::temp_directory_path() /
                                         ("lsds_campaign_" + std::to_string(::getpid()))
                                   : fs::path(cfg_.partial_dir);
  fs::create_directories(dir);
  const fs::path scenario_path = dir / "scenario.ini";
  campaign_.base().save(scenario_path.string());

  std::string worker = cfg_.worker_binary.empty() ? self_executable() : cfg_.worker_binary;
  if (worker.empty()) {
    throw std::runtime_error(
        "campaign: cannot determine the worker binary (set DistConfig::worker_binary)");
  }

  DistAccounting acct;
  acct.processes = cfg_.processes;
  acct.shards = plan.size();

  std::vector<RepOutcome> grid(n_runs);
  std::vector<unsigned> attempts(plan.size(), 0);
  std::deque<std::size_t> queue;
  std::size_t completed = 0;

  auto merge_partial_file = [&](std::size_t idx) {
    // Throws on a missing/invalid/mismatched partial.
    const Shard& sh = plan[idx];
    const obs::Json doc = obs::Json::parse(read_file(dir / partial_filename(sh)));
    std::vector<RepOutcome> outcomes = parse_partial(doc, sh, signature);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      grid[sh.begin + i] = std::move(outcomes[i]);
    }
    ++completed;
  };

  std::vector<char> done(plan.size(), 0);
  if (cfg_.resume) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (!fs::exists(dir / partial_filename(plan[i]))) continue;
      try {
        merge_partial_file(i);
        done[i] = 1;
        ++acct.shards_resumed;
      } catch (const std::exception&) {
        // Stale or truncated partial (signature/range/parse mismatch):
        // recompute the shard.
      }
    }
  }
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (!done[i]) queue.push_back(i);
  }

  const std::string hosts_note =
      cfg_.hosts.empty() ? "" : " on " + std::to_string(cfg_.hosts.size()) + " host(s)";
  std::fprintf(stderr,
               "campaign: distributing %zu shard%s (%zu runs) over %u process%s%s — %zu "
               "resumed, partials in %s\n",
               plan.size(), plan.size() == 1 ? "" : "s", n_runs, cfg_.processes,
               cfg_.processes == 1 ? "" : "es", hosts_note.c_str(), acct.shards_resumed,
               dir.string().c_str());

  std::vector<RunningWorker> running;
  std::size_t spawn_count = 0;  // round-robin cursor over hosts

  auto kill_all = [&running] {
    for (const RunningWorker& rw : running) {
      ::kill(rw.pid, SIGKILL);
      int status = 0;
      ::waitpid(rw.pid, &status, 0);
    }
    running.clear();
  };

  const auto t0 = std::chrono::steady_clock::now();
  try {
    auto spawn_shard = [&](std::size_t idx) {
      const Shard& sh = plan[idx];
      const unsigned attempt = attempts[idx]++;
      std::vector<std::string> args = {
          worker,
          "--campaign-worker",
          "--scenario=" + scenario_path.string(),
          "--shard-id=" + std::to_string(sh.id),
          "--shard-begin=" + std::to_string(sh.begin),
          "--shard-end=" + std::to_string(sh.end),
          "--attempt=" + std::to_string(attempt),
          "--partial=" + (dir / partial_filename(sh)).string(),
          "--worker-threads=" + std::to_string(cfg_.worker_threads),
      };
      if (cfg_.hang_shard == sh.id && attempt == 0) args.push_back("--test-hang");
      if (!cfg_.hosts.empty()) {
        const std::string& host = cfg_.hosts[spawn_count % cfg_.hosts.size()];
        if (host != "localhost" && host != "-") {
          // The coordinator's SIGKILL (per-shard timeout, kill_all) only
          // reaches the local ssh client; give the remote side its own
          // watchdog with the same budget so a lost shard cannot keep
          // computing — or publish its partial after reassignment.
          const long long budget =
              std::max<long long>(1, static_cast<long long>(std::ceil(cfg_.timeout_sec)));
          std::string remote = "timeout " + std::to_string(budget);
          for (const std::string& a : args) {
            remote += " ";
            remote += shell_quote(a);
          }
          args = {"ssh", "-oBatchMode=yes", host, remote};
        }
      }
      RunningWorker rw;
      rw.pid = spawn_worker(args);
      rw.shard_idx = idx;
      rw.attempt = attempt;
      rw.deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(cfg_.timeout_sec));
      ++spawn_count;
      if (cfg_.kill_shard == sh.id && attempt == 0) {
        // Fault injection: lose this worker mid-campaign; the supervision
        // loop must reassign the shard and still converge byte-identically.
        ::kill(rw.pid, SIGKILL);
      }
      running.push_back(rw);
    };

    auto shard_failed = [&](std::size_t idx, unsigned attempt, const std::string& reason,
                            const std::string& detail) {
      DistAccounting::Failure f;
      f.shard = plan[idx].id;
      f.attempt = attempt;
      f.reason = reason;
      f.detail = detail;
      acct.failures.push_back(std::move(f));
      if (attempts[idx] > cfg_.retries) {
        throw std::runtime_error("campaign: shard " + std::to_string(plan[idx].id) + " [" +
                                 std::to_string(plan[idx].begin) + ", " +
                                 std::to_string(plan[idx].end) + ") failed after " +
                                 std::to_string(attempts[idx]) + " attempt(s): " + reason +
                                 (detail.empty() ? "" : " — " + detail));
      }
      ++acct.retries_used;
      queue.push_back(idx);  // reassigned to the next free worker slot
    };

    while (completed < plan.size()) {
      while (running.size() < cfg_.processes && !queue.empty()) {
        spawn_shard(queue.front());
        queue.pop_front();
      }
      if (running.empty()) {
        throw std::runtime_error("campaign: internal error — incomplete grid with no workers");
      }

      bool progressed = false;
      for (std::size_t i = 0; i < running.size();) {
        RunningWorker& rw = running[i];
        int status = 0;
        const pid_t r = ::waitpid(rw.pid, &status, WNOHANG);
        if (r == 0) {
          if (!rw.timed_out && std::chrono::steady_clock::now() >= rw.deadline) {
            ::kill(rw.pid, SIGKILL);  // reaped on a later poll
            rw.timed_out = true;
          }
          ++i;
          continue;
        }
        // Worker exited (or waitpid failed, which we treat as a loss).
        const std::size_t idx = rw.shard_idx;
        const unsigned attempt = rw.attempt;
        const bool timed_out = rw.timed_out;
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        progressed = true;

        if (r < 0) {
          shard_failed(idx, attempt, "spawn", "waitpid failed");
          continue;
        }
        if (timed_out) {
          shard_failed(idx, attempt, "timeout",
                       "exceeded " + std::to_string(cfg_.timeout_sec) + "s");
          continue;
        }
        if (WIFSIGNALED(status)) {
          shard_failed(idx, attempt, "signal",
                       "killed by signal " + std::to_string(WTERMSIG(status)));
          continue;
        }
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          shard_failed(idx, attempt, "exit",
                       "exit code " + std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                                                       : -1));
          continue;
        }
        try {
          merge_partial_file(idx);
          done[idx] = 1;
        } catch (const std::exception& e) {
          shard_failed(idx, attempt, "bad-partial", e.what());
        }
      }
      if (!progressed) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  } catch (...) {
    kill_all();
    throw;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  CampaignResult result = campaign_.aggregate(grid, wall);
  result.distribution = std::move(acct);

  if (private_dir && !cfg_.keep_partials) {
    std::error_code ec;
    fs::remove_all(dir, ec);  // best-effort cleanup of the temp dir
  }
  return result;
#endif
}

int run_campaign_worker(const util::Flags& flags) {
  try {
    std::string scenario = flags.get_string("scenario");
    if (scenario.empty() && !flags.positional().empty()) scenario = flags.positional()[0];
    if (scenario.empty()) {
      throw std::runtime_error("--campaign-worker needs --scenario=<ini>");
    }
    const auto ini = util::IniConfig::load(scenario);
    Campaign campaign(ini);

    const long long begin = flags.get_int("shard-begin", -1);
    const long long end = flags.get_int("shard-end", -1);
    const long long id = flags.get_int("shard-id", -1);
    const std::string partial = flags.get_string("partial");
    if (begin < 0 || end < begin || id < 0 || partial.empty()) {
      throw std::runtime_error(
          "--campaign-worker needs --shard-id/--shard-begin/--shard-end/--partial");
    }

    if (flags.get_bool("test-hang", false)) {
      // Fault-injection hook: simulate a wedged worker so the coordinator's
      // timeout + reassignment path can be exercised end to end.
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }

    const auto threads = static_cast<unsigned>(flags.get_int("worker-threads", 1));
    const std::vector<RepOutcome> outcomes = campaign.run_slots(
        static_cast<std::size_t>(begin), static_cast<std::size_t>(end), threads);

    Shard shard;
    shard.id = static_cast<std::size_t>(id);
    shard.begin = static_cast<std::size_t>(begin);
    shard.end = static_cast<std::size_t>(end);
    const obs::Json doc = partial_to_json(shard, grid_signature(campaign), outcomes);

    // Atomic publish: a worker killed mid-write must never leave a partial
    // that --resume or the coordinator would trust.
    const std::string tmp = partial + ".tmp";
    {
      std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
      if (!f) throw std::runtime_error("cannot open " + tmp + " for writing");
      f << doc.dump() << "\n";
      if (!f.flush()) throw std::runtime_error("write to " + tmp + " failed");
    }
    std::filesystem::rename(tmp, partial);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign-worker: %s\n", e.what());
    return 3;
  }
}

}  // namespace lsds::exp
