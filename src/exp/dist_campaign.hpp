// Distributed campaign execution: shard the (point, replication) grid of an
// experiment campaign across worker OS processes — local subprocesses or a
// hosts file of ssh targets — with a deterministic merge.
//
//   [campaign]
//   distribute   = 4        ; worker processes (0 = in-process, the default)
//   shard_size   = 1        ; grid slots per shard (reassignment granularity)
//   timeout      = 600s     ; per-shard wall-clock budget per attempt
//   retries      = 2        ; re-executions after a lost shard
//   partial_dir  = out/     ; where partials land ("" = private temp dir)
//   hosts        = hosts.txt; optional ssh targets, one per line
//
// The coordinator spawns `scenario_runner --campaign-worker` subprocesses
// (round-robin over the hosts file when given; ssh targets need the binary
// and a shared filesystem at the same paths, and run under a remote
// `timeout` watchdog matched to the per-shard budget, since killing the
// local ssh client alone would leave the remote worker computing), each
// computing its shard with the same SplitMix64 substream seeds the
// in-process runner uses and publishing a lsds.campaign_partial/1 message
// (exp/dist_protocol.hpp). Partials merge into the pre-sized result grid in point-major order, so
// the final lsds.campaign_report/1 JSON is **byte-identical** for
// in-process workers=N, 1 local process, 4 local processes, and any
// sharding of the same grid.
//
// Robustness: a worker that exits non-zero, dies on a signal, times out
// (SIGKILL after `timeout`), or publishes a malformed partial loses its
// shard; the shard goes back on the queue and is reassigned to the next
// free worker slot, up to `retries` re-executions, after which the campaign
// fails with that shard's diagnostic. `--resume` re-merges valid partials
// already on disk (signature-checked, atomically published) and only
// computes the missing shards. Worker failures are accounted in
// CampaignResult::distribution — serialized, like the wall clock, only
// under the `timing = true` opt-in so the canonical report stays
// deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/dist_protocol.hpp"
#include "util/ini.hpp"

namespace lsds::util {
class Flags;
}

namespace lsds::exp {

struct DistConfig {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  unsigned processes = 0;      // concurrent worker processes (0 = off)
  std::size_t shard_size = 1;  // grid slots per shard
  double timeout_sec = 600;    // per-shard budget per attempt
  unsigned retries = 2;        // re-executions after a lost shard
  std::string partial_dir;     // "" = private temp dir, removed on success
  bool resume = false;         // merge valid on-disk partials, run the rest
  bool keep_partials = false;  // keep a private dir after a successful merge
  std::string worker_binary;   // "" = this executable (/proc/self/exe on
                               // Linux, _NSGetExecutablePath on macOS)
  unsigned worker_threads = 1; // threads inside each worker process
  std::vector<std::string> hosts;  // ssh targets; empty = local processes

  // Fault-injection hooks for tests and the distexec-smoke CI job, npos =
  // off: SIGKILL the first attempt of this shard right after spawn / make
  // the first attempt hang until the per-shard timeout fires.
  std::size_t kill_shard = npos;
  std::size_t hang_shard = npos;

  /// Parse the [campaign] distribution keys (defaults when absent; `hosts`
  /// is read and parsed eagerly). Throws util::ConfigError on distribute <
  /// 0, shard_size < 1, timeout <= 0, retries < 0, or an unreadable hosts
  /// file.
  static DistConfig parse(const util::IniConfig& ini);

  /// Programmatic-use validation (same std::invalid_argument style as the
  /// net::TransferService constructor). Called by DistributedCampaign.
  void validate() const;
};

class DistributedCampaign {
 public:
  /// Throws util::ConfigError on a bad campaign spec and
  /// std::invalid_argument on a bad DistConfig.
  DistributedCampaign(util::IniConfig base, DistConfig cfg);

  const Campaign& campaign() const { return campaign_; }
  const DistConfig& config() const { return cfg_; }

  /// Shard, spawn, supervise, merge, aggregate. Throws std::runtime_error
  /// when a shard exhausts its retries or a replication inside a shard
  /// failed (the latter with the identical diagnostic an in-process run
  /// produces). All spawned workers are reaped on every exit path.
  CampaignResult run();

 private:
  Campaign campaign_;
  DistConfig cfg_;
};

/// Entry point of a `--campaign-worker` process: load --scenario=, run grid
/// slots [--shard-begin, --shard-end) on --worker-threads threads, publish
/// the partial message atomically at --partial= (write to .tmp, rename).
/// Replication failures are recorded per-slot inside the partial (exit 0);
/// a non-zero exit means the worker itself broke. Linked into
/// scenario_runner and into the distributed test binary, which respawns
/// itself in this mode.
int run_campaign_worker(const util::Flags& flags);

}  // namespace lsds::exp
