// Wire protocol of the distributed campaign runner (exp/dist_campaign.hpp).
//
// The (point, replication) grid of a campaign is cut into *shards* —
// contiguous slot ranges in point-major order. A worker process computes
// one shard with the same SplitMix64 substream seeds the in-process runner
// uses and publishes a `lsds.campaign_partial/1` JSON message:
//
//   {
//     "schema": "lsds.campaign_partial/1",
//     "signature": "c0ffee...",          // grid fingerprint, hex FNV-1a
//     "shard": {"id": 3, "begin": 6, "end": 8},
//     "slots": [
//       {"rc": 0, "error": "", "metrics": [["makespan", 104.5], ...]},
//       ...
//     ]
//   }
//
// The signature fingerprints everything that determines the grid — facade,
// queue, base seed, replications, warmup, sweep axes, and every remaining
// key of the base scenario INI (platform, workload, network parameters,
// ...; only the [campaign] execution keys such as distribute/timeout/hosts
// are excluded) — so the coordinator rejects partials from a different or
// edited campaign; the `--resume` mode depends on this to never merge
// stale shards. Metrics ride as [name, value] pairs
// (not an object) to preserve the facade's insertion order exactly; values
// round-trip bit-exactly through obs::Json's shortest-round-trip doubles,
// which is what makes the merged report byte-identical to an in-process
// run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "obs/json.hpp"

namespace lsds::exp {

/// Schema identifier of a worker's partial-result message.
inline constexpr const char* kPartialSchema = "lsds.campaign_partial/1";

/// A contiguous range [begin, end) of grid slots in point-major order.
struct Shard {
  std::size_t id = 0;
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
};

/// Cut `n_runs` grid slots into shards of `shard_size` slots (the last
/// shard is ragged). The plan depends only on the grid and the shard size —
/// not on the process count — so `--resume` partials stay valid when the
/// campaign is re-run with a different worker fleet. Throws
/// std::invalid_argument on shard_size == 0.
std::vector<Shard> plan_shards(std::size_t n_runs, std::size_t shard_size);

/// Hex FNV-1a fingerprint of the campaign grid: facade, queue, base seed,
/// replications, warmup, every sweep axis with its values, and every
/// section/key/value of the base scenario INI except the [campaign]
/// execution keys (workers, timing, distribute, shard_size, timeout,
/// retries, partial_dir, keep_partials, hosts), which affect how the grid
/// is computed but not its outcomes.
std::string grid_signature(const Campaign& campaign);

/// Canonical partial filename of a shard inside a partial directory.
std::string partial_filename(const Shard& shard);

/// Serialize one shard's outcomes as a partial message. `outcomes` holds
/// shard.size() entries (slot shard.begin + i at index i).
obs::Json partial_to_json(const Shard& shard, const std::string& signature,
                          const std::vector<RepOutcome>& outcomes);

/// Parse and validate a partial message against the expected shard and grid
/// signature. Throws std::runtime_error naming the first mismatch (schema,
/// signature, shard range, slot count, malformed slot).
std::vector<RepOutcome> parse_partial(const obs::Json& doc, const Shard& shard,
                                      const std::string& signature);

}  // namespace lsds::exp
