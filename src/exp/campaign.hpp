// Experiment campaigns: replicated sweeps with confidence-interval output
// analysis — the paper's third taxonomy axis made executable.
//
// A campaign takes a base scenario INI plus
//
//   [sweep]                      ; parameter grid, see exp/sweep.hpp
//   network.incremental = true|false
//
//   [campaign]
//   replications = 8             ; independent replications per point
//   warmup       = 2             ; leading replications discarded from stats
//   confidence   = 0.95          ; CI level (0.95 is the one supported)
//   workers      = 4             ; thread-pool width (0 = hardware)
//   timing       = false         ; include wall-clock section in the report
//
// expands the cross product into run points, executes every (point,
// replication) pair on a util::ThreadPool, and aggregates each point's
// facade metrics (everything Result::to_report wrote into the RunReport's
// "result" section) into mean ± CI half-width via stats::Accumulator and
// the Student-t quantile from stats/batch_means.
//
// Determinism contract (the PR-2 discipline applied to output analysis):
// the campaign report is byte-identical for workers=1 and workers=N and
// across repeated runs with the same seed. Consequences:
//   * results are stored into a pre-sized (point, replication) grid, so
//     work-stealing order cannot leak into the report;
//   * replication seeds are SplitMix64 substreams of the [scenario] master
//     seed keyed by replication index only — the same seeds across points
//     (common random numbers), so point-to-point deltas are paired;
//   * the worker count and wall-clock timings are NOT part of the report
//     unless `timing = true` opts into a nondeterministic "timing" section.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/event_queue.hpp"
#include "exp/sweep.hpp"
#include "obs/json.hpp"
#include "sim/facade_registry.hpp"
#include "util/ini.hpp"

namespace lsds::exp {

/// Schema identifier stamped into every campaign report.
inline constexpr const char* kCampaignReportSchema = "lsds.campaign_report/1";

struct CampaignSpec {
  std::size_t replications = 5;
  /// Leading replications per point that are executed but excluded from the
  /// statistics (replication-level warmup deletion).
  std::size_t warmup = 0;
  double confidence = 0.95;  // only 0.95 is supported
  unsigned workers = 1;      // 0 = std::thread::hardware_concurrency()
  bool timing = false;       // opt into the nondeterministic wall-clock section

  /// Parse the `[campaign]` section (defaults when absent). Throws
  /// util::ConfigError on replications < 1, negative warmup/workers,
  /// warmup >= replications, or an unsupported confidence level.
  static CampaignSpec parse(const util::IniConfig& ini);
};

/// Seed of replication `replication` derived from the master seed via a
/// SplitMix64 chain. Independent of the sweep point (common random numbers)
/// and of worker count / execution order.
std::uint64_t substream_seed(std::uint64_t base_seed, std::size_t replication);

/// One (point, replication) slot's extracted scalar metrics in report
/// insertion order, plus its outcome. The unit of work the campaign grid —
/// in-process or distributed — is made of, and the payload of the
/// lsds.campaign_partial/1 protocol (see exp/dist_protocol.hpp).
struct RepOutcome {
  std::vector<std::pair<std::string, double>> metrics;
  int rc = 0;
  std::string error;
};

/// Across-replication statistics of one scalar metric at one point.
struct MetricStats {
  std::size_t n = 0;  // replications aggregated (replications - warmup)
  double mean = 0;
  double stddev = 0;  // sample (n-1) standard deviation
  double ci95 = 0;    // Student-t 95% CI half-width of the mean
  double min = 0;
  double max = 0;
};

struct PointResult {
  std::size_t index = 0;
  /// (axis name, value) assignments of this point, axis order.
  std::vector<std::pair<std::string, std::string>> params;
  /// Insertion-ordered per-metric statistics (order of the facade's
  /// Result::to_report writes).
  std::vector<std::pair<std::string, MetricStats>> metrics;
};

/// Structured accounting of a distributed run's worker failures and
/// recoveries (filled by exp::DistributedCampaign). Like the wall clock it
/// is nondeterministic — which worker dies, times out or retries depends on
/// scheduling — so it is serialized only under the `timing = true` opt-in;
/// the canonical report stays byte-identical across execution modes.
struct DistAccounting {
  unsigned processes = 0;       // concurrent worker processes
  std::size_t shards = 0;       // shards the grid was split into
  std::size_t shards_resumed = 0;  // shards skipped via --resume partials
  std::size_t retries_used = 0;
  struct Failure {
    std::size_t shard = 0;
    unsigned attempt = 0;   // 0-based attempt that failed
    std::string reason;     // "timeout" | "exit" | "signal" | "bad-partial" | "spawn"
    std::string detail;
  };
  std::vector<Failure> failures;
};

struct CampaignResult {
  std::string facade;
  std::string queue;
  std::uint64_t base_seed = 0;
  CampaignSpec spec;
  SweepSpec sweep;
  std::vector<std::uint64_t> seeds;  // per replication, shared across points
  std::vector<PointResult> points;
  std::uint64_t runs = 0;    // points x replications actually executed
  double wall_seconds = 0;   // total campaign wall clock (report: only when
                             // spec.timing)
  /// Present after a distributed run (report: only when spec.timing).
  std::optional<DistAccounting> distribution;

  obs::Json to_json() const;
  std::string to_json_string(int indent = 2) const;
  /// Write the report JSON to `path`. Throws std::runtime_error.
  void write(const std::string& path) const;
};

class Campaign {
 public:
  /// Parse [scenario]/[sweep]/[campaign] out of `base` and resolve the
  /// facade in the global registry (register_builtin_facades() is called).
  /// Throws util::ConfigError on an unknown facade or a bad spec.
  explicit Campaign(util::IniConfig base);

  const CampaignSpec& spec() const { return spec_; }
  const SweepSpec& sweep() const { return sweep_; }
  const std::string& facade() const { return facade_; }
  /// The base scenario INI (pre-sweep) — the coordinator serializes this to
  /// ship the campaign to worker processes.
  const util::IniConfig& base() const { return base_; }
  const std::string& queue_name() const { return queue_name_; }
  std::uint64_t base_seed() const { return base_seed_; }
  const std::vector<std::uint64_t>& seeds() const { return seeds_; }
  std::size_t point_count() const { return sweep_.point_count(); }
  /// Grid size: point_count() x replications, point-major slot order.
  std::size_t run_count() const { return sweep_.point_count() * spec_.replications; }

  /// Command-line override of [campaign] workers (does not affect output).
  void set_workers(unsigned w) { spec_.workers = w; }

  /// Execute every (point, replication) pair and aggregate. Facade stdout/
  /// stderr are suppressed for the duration (parallel one-line summaries
  /// would interleave); campaign progress goes to stderr before the
  /// silenced phase. Throws std::runtime_error when any replication fails.
  CampaignResult run();

  // --- distributed building blocks (see exp/dist_campaign.hpp) --------------

  /// Execute slots [begin, end) of the point-major (point, replication)
  /// grid in-process on `threads` threads (0 = hardware concurrency) and
  /// return their outcomes (slot begin+i at index i). Replication failures
  /// are recorded per-slot, never thrown — surfacing them deterministically
  /// is aggregate()'s job. Facade stdout/stderr are silenced for the
  /// duration and restored on every path.
  std::vector<RepOutcome> run_slots(std::size_t begin, std::size_t end, unsigned threads) const;

  /// Deterministically surface failures (first bad slot in grid order wins,
  /// independent of execution order, thread count or process count — throws
  /// std::runtime_error with that slot's diagnostic) and aggregate a
  /// complete grid of run_count() outcomes into the campaign report.
  CampaignResult aggregate(const std::vector<RepOutcome>& outcomes, double wall_seconds) const;

 private:
  util::IniConfig base_;
  CampaignSpec spec_;
  SweepSpec sweep_;
  std::string facade_;
  std::string queue_name_;
  core::QueueKind queue_;
  std::uint64_t base_seed_ = 0;
  std::vector<std::uint64_t> seeds_;  // per replication, shared across points
  const sim::FacadeRegistry::Entry* entry_ = nullptr;
};

}  // namespace lsds::exp
