#include "exp/dist_protocol.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <stdexcept>

#include "core/rng.hpp"

namespace lsds::exp {

std::vector<Shard> plan_shards(std::size_t n_runs, std::size_t shard_size) {
  if (shard_size == 0) throw std::invalid_argument("plan_shards: shard_size must be >= 1");
  std::vector<Shard> plan;
  plan.reserve((n_runs + shard_size - 1) / shard_size);
  for (std::size_t begin = 0; begin < n_runs; begin += shard_size) {
    Shard s;
    s.id = plan.size();
    s.begin = begin;
    s.end = begin + shard_size < n_runs ? begin + shard_size : n_runs;
    plan.push_back(s);
  }
  return plan;
}

std::string grid_signature(const Campaign& campaign) {
  // Canonical description of everything that determines slot outcomes.
  // Field separators use '\x1f' (unit separator) so adjacent fields cannot
  // collide by concatenation.
  std::string canon;
  auto field = [&canon](const std::string& s) {
    canon += s;
    canon += '\x1f';
  };
  field(campaign.facade());
  field(campaign.queue_name());
  field(std::to_string(campaign.base_seed()));
  field(std::to_string(campaign.spec().replications));
  field(std::to_string(campaign.spec().warmup));
  for (const SweepAxis& axis : campaign.sweep().axes()) {
    field(axis.name());
    for (const std::string& v : axis.values) field(v);
    canon += '\x1e';  // axis separator
  }
  // Slot outcomes depend on *every* base-scenario key (platform, workload,
  // network parameters, ...), so the full INI contents are part of the
  // fingerprint. The only exception is the [campaign] execution keys, which
  // choose how and where the grid is computed, never what it computes — a
  // --resume is allowed to use a different fleet, timeout or partial
  // directory than the run that produced the partials.
  static constexpr const char* kExecutionKeys[] = {
      "workers",  "timing",      "distribute", "shard_size",
      "timeout",  "retries",     "partial_dir", "keep_partials",
      "hosts",
  };
  const util::IniConfig& base = campaign.base();
  for (const std::string& section : base.sections()) {
    canon += '\x1d';  // section separator
    field(section);
    for (const std::string& key : base.keys(section)) {
      if (section == "campaign" &&
          std::find(std::begin(kExecutionKeys), std::end(kExecutionKeys), key) !=
              std::end(kExecutionKeys)) {
        continue;
      }
      field(key);
      field(base.get_string(section, key, ""));
    }
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(core::fnv1a(canon)));
  return buf;
}

std::string partial_filename(const Shard& shard) {
  return "partial_s" + std::to_string(shard.id) + "_" + std::to_string(shard.begin) + "_" +
         std::to_string(shard.end) + ".json";
}

obs::Json partial_to_json(const Shard& shard, const std::string& signature,
                          const std::vector<RepOutcome>& outcomes) {
  if (outcomes.size() != shard.size()) {
    throw std::invalid_argument("partial_to_json: " + std::to_string(outcomes.size()) +
                                " outcomes for a shard of " + std::to_string(shard.size()));
  }
  obs::Json root = obs::Json::object();
  root.set("schema", kPartialSchema);
  root.set("signature", signature);
  obs::Json sh = obs::Json::object();
  sh.set("id", static_cast<std::uint64_t>(shard.id));
  sh.set("begin", static_cast<std::uint64_t>(shard.begin));
  sh.set("end", static_cast<std::uint64_t>(shard.end));
  root.set("shard", std::move(sh));
  obs::Json slots = obs::Json::array();
  for (const RepOutcome& out : outcomes) {
    obs::Json slot = obs::Json::object();
    slot.set("rc", out.rc);
    slot.set("error", out.error);
    obs::Json metrics = obs::Json::array();
    for (const auto& [name, value] : out.metrics) {
      obs::Json pair = obs::Json::array();
      pair.push(name);
      pair.push(value);
      metrics.push(std::move(pair));
    }
    slot.set("metrics", std::move(metrics));
    slots.push(std::move(slot));
  }
  root.set("slots", std::move(slots));
  return root;
}

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("campaign partial: " + what);
}

const obs::Json& member(const obs::Json& doc, const char* key) {
  const obs::Json* v = doc.find(key);
  if (!v) bad(std::string("missing '") + key + "'");
  return *v;
}

}  // namespace

std::vector<RepOutcome> parse_partial(const obs::Json& doc, const Shard& shard,
                                      const std::string& signature) {
  if (!doc.is_object()) bad("not an object");
  if (member(doc, "schema").as_string() != kPartialSchema) {
    bad("unexpected schema '" + member(doc, "schema").as_string() + "'");
  }
  if (member(doc, "signature").as_string() != signature) {
    bad("grid signature mismatch (got " + member(doc, "signature").as_string() + ", expected " +
        signature + ") — partial belongs to a different campaign");
  }
  const obs::Json& sh = member(doc, "shard");
  const auto id = static_cast<std::size_t>(member(sh, "id").as_int());
  const auto begin = static_cast<std::size_t>(member(sh, "begin").as_int());
  const auto end = static_cast<std::size_t>(member(sh, "end").as_int());
  if (id != shard.id || begin != shard.begin || end != shard.end) {
    bad("shard mismatch (got " + std::to_string(id) + " [" + std::to_string(begin) + ", " +
        std::to_string(end) + "), expected " + std::to_string(shard.id) + " [" +
        std::to_string(shard.begin) + ", " + std::to_string(shard.end) + "))");
  }
  const obs::Json& slots = member(doc, "slots");
  if (!slots.is_array() || slots.items().size() != shard.size()) {
    bad("expected " + std::to_string(shard.size()) + " slots");
  }
  std::vector<RepOutcome> outcomes;
  outcomes.reserve(shard.size());
  for (const obs::Json& slot : slots.items()) {
    if (!slot.is_object()) bad("slot is not an object");
    RepOutcome out;
    out.rc = static_cast<int>(member(slot, "rc").as_int());
    out.error = member(slot, "error").as_string();
    const obs::Json& metrics = member(slot, "metrics");
    if (!metrics.is_array()) bad("slot metrics is not an array");
    out.metrics.reserve(metrics.items().size());
    for (const obs::Json& pair : metrics.items()) {
      if (!pair.is_array() || pair.items().size() != 2 ||
          pair.items()[0].kind() != obs::Json::Kind::kString || !pair.items()[1].is_number()) {
        bad("metric entry is not a [name, value] pair");
      }
      out.metrics.emplace_back(pair.items()[0].as_string(), pair.items()[1].as_double());
    }
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

}  // namespace lsds::exp
