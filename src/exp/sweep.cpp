#include "exp/sweep.hpp"

#include <cassert>

#include "util/strings.hpp"

namespace lsds::exp {

namespace {

std::vector<std::string> split_values(const std::string& raw, const std::string& axis) {
  const char sep = raw.find('|') != std::string::npos ? '|' : ',';
  std::vector<std::string> out;
  for (const std::string& part : util::split(raw, sep)) {
    std::string v(util::trim(part));
    if (!v.empty()) out.push_back(std::move(v));
  }
  if (out.empty()) {
    throw util::ConfigError("[sweep] " + axis + ": empty value list");
  }
  return out;
}

}  // namespace

SweepSpec SweepSpec::parse(const util::IniConfig& ini) {
  SweepSpec spec;
  for (const std::string& name : ini.keys("sweep")) {
    const auto dot = name.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 == name.size()) {
      throw util::ConfigError("[sweep] " + name +
                              ": sweep keys must be of the form section.key");
    }
    SweepAxis axis;
    axis.section = name.substr(0, dot);
    axis.key = name.substr(dot + 1);
    axis.values = split_values(*ini.get("sweep", name), name);
    spec.axes_.push_back(std::move(axis));
  }
  return spec;
}

std::size_t SweepSpec::point_count() const {
  std::size_t n = 1;
  for (const SweepAxis& a : axes_) n *= a.values.size();
  return n;
}

std::vector<std::size_t> SweepSpec::digits(std::size_t index) const {
  assert(index < point_count());
  std::vector<std::size_t> d(axes_.size(), 0);
  for (std::size_t i = axes_.size(); i-- > 0;) {
    d[i] = index % axes_[i].values.size();
    index /= axes_[i].values.size();
  }
  return d;
}

std::vector<std::pair<std::string, std::string>> SweepSpec::params(std::size_t index) const {
  const auto d = digits(index);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    out.emplace_back(axes_[i].name(), axes_[i].values[d[i]]);
  }
  return out;
}

void SweepSpec::apply(std::size_t index, util::IniConfig& ini) const {
  const auto d = digits(index);
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    ini.set(axes_[i].section, axes_[i].key, axes_[i].values[d[i]]);
  }
}

}  // namespace lsds::exp
