// Parameter sweeps: the grid half of an experiment campaign.
//
// A `[sweep]` INI section turns a single scenario into a family of run
// points. Each key names a target assignment as `section.key`, each value
// lists the alternatives ('|'-separated, or ','-separated when no '|' is
// present — rates like `2.5Gbps|30Gbps` keep their commas-free form either
// way):
//
//   [sweep]
//   network.incremental = true|false
//   workload.n_jobs     = 100,1000,10000
//
// expands to the 2 x 3 = 6 cross-product points. Axis order is file order;
// the FIRST axis varies slowest (odometer order), so point indices — and
// with them every downstream report — are stable under re-runs.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/ini.hpp"

namespace lsds::exp {

struct SweepAxis {
  std::string section;  // INI section the value is assigned into
  std::string key;
  std::vector<std::string> values;  // >= 1, listed order

  std::string name() const { return section + "." + key; }
};

class SweepSpec {
 public:
  /// Parse the `[sweep]` section (empty spec when absent). Throws
  /// util::ConfigError on a key without a '.' or an empty value list.
  static SweepSpec parse(const util::IniConfig& ini);

  const std::vector<SweepAxis>& axes() const { return axes_; }
  bool empty() const { return axes_.empty(); }

  /// Number of cross-product points (1 for an empty sweep: the base
  /// scenario itself is the single point).
  std::size_t point_count() const;

  /// The (axis name, value) assignments of point `index` in axis order.
  std::vector<std::pair<std::string, std::string>> params(std::size_t index) const;

  /// Overwrite point `index`'s assignments into `ini`.
  void apply(std::size_t index, util::IniConfig& ini) const;

 private:
  /// Per-axis value index of `index` in odometer order (first axis slowest).
  std::vector<std::size_t> digits(std::size_t index) const;

  std::vector<SweepAxis> axes_;
};

}  // namespace lsds::exp
