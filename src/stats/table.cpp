#include "stats/table.hpp"

#include <cassert>
#include <cstdint>

#include "util/strings.hpp"

namespace lsds::stats {

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::cell(double v) {
  cells_.push_back(util::strformat("%.4g", v));
  return *this;
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::cell(std::uint64_t v) {
  cells_.push_back(util::strformat("%llu", static_cast<unsigned long long>(v)));
  return *this;
}

AsciiTable::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string rule = "+";
  for (std::size_t c = 0; c < widths.size(); ++c) rule += std::string(widths[c] + 2, '-') + "+";
  rule += "\n";

  std::string out = rule + render_row(headers_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

void AsciiTable::print(std::ostream& out) const { out << render(); }

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> columns)
    : out_(out), ncols_(columns.size()) {
  out_ << util::join(columns, ",") << "\n";
}

void CsvWriter::row(const std::vector<double>& values) {
  assert(values.size() == ncols_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ",";
    out_ << util::strformat("%.9g", values[i]);
  }
  out_ << "\n";
}

void CsvWriter::row_strings(const std::vector<std::string>& values) {
  assert(values.size() == ncols_);
  out_ << util::join(values, ",") << "\n";
}

}  // namespace lsds::stats
