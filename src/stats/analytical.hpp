// Analytical queueing models for simulation validation.
//
// Section 5 of the paper: "Another mechanism designed to facilitate the
// evaluation of the simulation models consists in the use of queuing
// theory. The formalism provided by the queuing models is important for the
// definition and validation of the simulation stochastic models."
//
// These closed forms are compared against simulation in
// tests/stats_validation_test.cpp and bench_validation (experiment E5) —
// the same style of validation SimGrid's first paper performed against a
// mathematically tractable scheduling problem (Casanova 2001).
#pragma once

#include <cstddef>

namespace lsds::stats {

/// M/M/1 FCFS queue with arrival rate lambda and service rate mu.
struct MM1 {
  double lambda;
  double mu;

  double rho() const { return lambda / mu; }
  bool stable() const { return rho() < 1.0; }

  /// Mean number in system, L = rho / (1 - rho).
  double mean_in_system() const;
  /// Mean number in queue, Lq = rho^2 / (1 - rho).
  double mean_in_queue() const;
  /// Mean time in system (sojourn), W = 1 / (mu - lambda).
  double mean_sojourn() const;
  /// Mean waiting time (before service), Wq = rho / (mu - lambda).
  double mean_wait() const;
};

/// M/M/c FCFS queue (c parallel servers, shared queue).
struct MMc {
  double lambda;
  double mu;  // per-server service rate
  std::size_t c;

  double rho() const { return lambda / (static_cast<double>(c) * mu); }
  bool stable() const { return rho() < 1.0; }

  /// Erlang-C: probability an arrival must wait.
  double erlang_c() const;
  /// Mean waiting time in queue.
  double mean_wait() const;
  /// Mean sojourn time.
  double mean_sojourn() const { return mean_wait() + 1.0 / mu; }
  /// Mean number in queue.
  double mean_in_queue() const { return lambda * mean_wait(); }
};

/// M/G/1 FCFS — Pollaczek–Khinchine. Validates the queue against
/// *non-exponential* service laws (deterministic, lognormal, …):
/// Wq = lambda * E[S^2] / (2 (1 - rho)).
struct MG1 {
  double lambda;
  double mean_service;           // E[S]
  double second_moment_service;  // E[S^2]

  double rho() const { return lambda * mean_service; }
  bool stable() const { return rho() < 1.0; }
  double mean_wait() const;
  double mean_sojourn() const { return mean_wait() + mean_service; }
  double mean_in_queue() const { return lambda * mean_wait(); }
};

/// M/M/1 with processor sharing (the time-shared CPU model). The mean
/// sojourn of a job equals the FCFS value 1/(mu - lambda) and — by the PS
/// insensitivity property — the *conditional* sojourn of a job of size x is
/// x / (1 - rho), regardless of the service-time distribution.
struct MM1PS {
  double lambda;
  double mu;

  double rho() const { return lambda / mu; }
  bool stable() const { return rho() < 1.0; }
  double mean_sojourn() const;
  /// E[T | service requirement s] = s / (1 - rho).
  double conditional_sojourn(double service) const;
};

/// Max-min fair share on a single bottleneck: n flows, capacity C -> C/n
/// each. The dumbbell closed form used to validate the flow-level network
/// model: completion time of n simultaneous equal transfers of size S over
/// a shared link C is n*S/C.
double maxmin_equal_share_completion(double bytes, double capacity, std::size_t nflows);

}  // namespace lsds::stats
