// Fixed-bin histogram with under/overflow tracking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lsds::stats {

class Histogram {
 public:
  /// `nbins` equal-width bins over [lo, hi); values outside land in the
  /// underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t nbins);

  void add(double x);

  std::size_t nbins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const { return bin_lo(i + 1); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Non-finite samples (NaN, ±inf); counted in total(), excluded from bins,
  /// the under/overflow counters and cdf_at_bin.
  std::uint64_t invalid() const { return invalid_; }
  std::uint64_t total() const { return total_; }

  /// Fraction of in-range samples at or below bin i's upper edge.
  double cdf_at_bin(std::size_t i) const;

  /// "lo,hi,count" lines, one per bin.
  std::string to_csv() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, invalid_ = 0, total_ = 0;
};

}  // namespace lsds::stats
