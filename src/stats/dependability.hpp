// Dependability accounting.
//
// The metrics the dependability extension exists to answer (availability,
// reliability, cost of recovery) reduce to a small ledger kept next to the
// scheduler: which ops were *useful* (contributed to a completed job),
// which were *wasted* (progress lost to a fail-stop kill, or duplicate work
// of cancelled replicas), and which were *overhead* (checkpoints written).
// Goodput is useful work over the horizon; raw throughput counts everything
// the CPUs delivered — the gap between them is the price of chaos plus the
// price of the recovery policy.
//
// This layer is deliberately hosts-agnostic (plain numbers in), so it can
// account for any resource kind; per-resource availability rows are fed by
// the caller (hosts::CpuResource::availability).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace lsds::stats {

class DependabilityTracker {
 public:
  /// A job finished for good: `useful_ops` of demand done, after `attempts`
  /// total dispatches.
  void job_completed(double useful_ops, std::uint32_t attempts) {
    useful_ops_ += useful_ops;
    attempts_.add(static_cast<double>(attempts));
    ++jobs_completed_;
  }

  /// A job exhausted its retry budget and was abandoned.
  void job_lost(std::uint32_t attempts) {
    attempts_.add(static_cast<double>(attempts));
    ++jobs_lost_;
  }

  /// Progress lost: a killed attempt's partial work, or a cancelled
  /// replica's duplicate work.
  void work_lost(double ops) { wasted_ops_ += ops; }

  /// Work that is neither job demand nor loss: checkpoint writes.
  void overhead(double ops) { overhead_ops_ += ops; }

  void resource_availability(std::string name, double availability) {
    availability_.emplace_back(std::move(name), availability);
  }

  // --- readings -------------------------------------------------------------

  double useful_ops() const { return useful_ops_; }
  double wasted_ops() const { return wasted_ops_; }
  double overhead_ops() const { return overhead_ops_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }
  std::uint64_t jobs_lost() const { return jobs_lost_; }
  /// Dispatch counts per finished (completed or lost) job.
  const SampleSet& attempts() const { return attempts_; }
  const std::vector<std::pair<std::string, double>>& availabilities() const {
    return availability_;
  }

  /// Useful ops per unit time over [0, horizon].
  double goodput(double horizon) const;
  /// All delivered ops (useful + wasted + overhead) per unit time.
  double raw_throughput(double horizon) const;
  /// Share of delivered work that served no job: (wasted + overhead) / all.
  double waste_fraction() const;
  /// Mean of the recorded per-resource availabilities (1 when none).
  double mean_availability() const;

  /// Multi-line human-readable summary of the ledger.
  std::string report(double horizon) const;

 private:
  double useful_ops_ = 0;
  double wasted_ops_ = 0;
  double overhead_ops_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_lost_ = 0;
  SampleSet attempts_;
  std::vector<std::pair<std::string, double>> availability_;
};

}  // namespace lsds::stats
