// Piecewise-constant time series for simulation outputs.
//
// Records step changes of a quantity over simulated time (queue length, link
// utilization, CPU load…) and computes *time-weighted* aggregates — the
// statistically correct way to average a state variable in DES.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lsds::stats {

class TimeSeries {
 public:
  /// Record that the quantity has value `v` from time `t` onward.
  /// Times must be non-decreasing.
  void record(double t, double v);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Time-weighted mean over [first record, t_end].
  double time_weighted_mean(double t_end) const;

  /// Maximum recorded value.
  double max_value() const;

  /// Value in effect at time t (last record with time <= t); 0 before first.
  double value_at(double t) const;

  /// Integral of the series over [first record, t_end] (e.g. byte-seconds).
  double integral(double t_end) const;

  struct Point {
    double t, v;
  };
  const std::vector<Point>& points() const { return points_; }

  /// "t,v" CSV lines.
  std::string to_csv() const;

 private:
  std::vector<Point> points_;
};

/// Monotone event counter with rate computation.
class Counter {
 public:
  void increment(double amount = 1) { value_ += amount; }
  double value() const { return value_; }
  double rate(double elapsed) const { return elapsed > 0 ? value_ / elapsed : 0.0; }

 private:
  double value_ = 0;
};

}  // namespace lsds::stats
