// Batch-means confidence intervals for steady-state simulation output.
//
// DES observations (waiting times, queue lengths) are autocorrelated, so
// the naive CI from Accumulator::ci95_halfwidth underestimates the true
// uncertainty — the classic output-analysis trap. The batch-means method
// groups consecutive observations into batches large enough to be nearly
// independent and builds the CI from the batch means (Law & Kelton, ch. 9).
//
//   BatchMeans bm(/*batch_size=*/1000, /*warmup=*/500);
//   for (double w : waits) bm.add(w);
//   bm.mean(), bm.ci95_halfwidth()   // honest interval
#pragma once

#include <cstddef>
#include <vector>

#include "stats/summary.hpp"

namespace lsds::stats {

class BatchMeans {
 public:
  /// `warmup` initial observations are discarded (initialization bias).
  explicit BatchMeans(std::size_t batch_size, std::size_t warmup = 0);

  void add(double x);

  std::size_t batches() const { return batch_means_.count(); }
  std::size_t observations() const { return seen_; }
  /// Grand mean over completed batches.
  double mean() const { return batch_means_.mean(); }
  /// 95% CI half-width using a Student-t quantile on the batch means.
  /// Requires >= 2 completed batches (returns 0 otherwise).
  double ci95_halfwidth() const;

 private:
  std::size_t batch_size_;
  std::size_t warmup_;
  std::size_t seen_ = 0;
  double current_sum_ = 0;
  std::size_t current_n_ = 0;
  Accumulator batch_means_;
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (exact table through 30, normal approximation beyond).
double t_critical_95(std::size_t df);

}  // namespace lsds::stats
