#include "stats/timeseries.hpp"

#include <algorithm>
#include <cassert>

#include "util/strings.hpp"

namespace lsds::stats {

void TimeSeries::record(double t, double v) {
  assert(points_.empty() || t >= points_.back().t);
  if (!points_.empty() && points_.back().t == t) {
    points_.back().v = v;  // same-instant update overwrites
    return;
  }
  points_.push_back({t, v});
}

double TimeSeries::integral(double t_end) const {
  if (points_.empty()) return 0.0;
  double sum = 0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double t0 = points_[i].t;
    if (t0 >= t_end) break;
    const double t1 = (i + 1 < points_.size()) ? std::min(points_[i + 1].t, t_end) : t_end;
    if (t1 > t0) sum += points_[i].v * (t1 - t0);
  }
  return sum;
}

double TimeSeries::time_weighted_mean(double t_end) const {
  if (points_.empty()) return 0.0;
  const double span = t_end - points_.front().t;
  if (span <= 0) return points_.front().v;
  return integral(t_end) / span;
}

double TimeSeries::max_value() const {
  double m = 0;
  bool first = true;
  for (const auto& p : points_) {
    if (first || p.v > m) m = p.v;
    first = false;
  }
  return m;
}

double TimeSeries::value_at(double t) const {
  if (points_.empty() || t < points_.front().t) return 0.0;
  // Binary search for last point with time <= t.
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](double x, const Point& p) { return x < p.t; });
  return std::prev(it)->v;
}

std::string TimeSeries::to_csv() const {
  std::string out = "t,v\n";
  for (const auto& p : points_) out += util::strformat("%.9g,%.9g\n", p.t, p.v);
  return out;
}

}  // namespace lsds::stats
