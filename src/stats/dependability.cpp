#include "stats/dependability.hpp"

#include <cstdio>

namespace lsds::stats {

double DependabilityTracker::goodput(double horizon) const {
  return horizon > 0 ? useful_ops_ / horizon : 0.0;
}

double DependabilityTracker::raw_throughput(double horizon) const {
  return horizon > 0 ? (useful_ops_ + wasted_ops_ + overhead_ops_) / horizon : 0.0;
}

double DependabilityTracker::waste_fraction() const {
  const double all = useful_ops_ + wasted_ops_ + overhead_ops_;
  return all > 0 ? (wasted_ops_ + overhead_ops_) / all : 0.0;
}

double DependabilityTracker::mean_availability() const {
  if (availability_.empty()) return 1.0;
  double sum = 0;
  for (const auto& [name, a] : availability_) sum += a;
  return sum / static_cast<double>(availability_.size());
}

std::string DependabilityTracker::report(double horizon) const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "jobs: %llu completed, %llu lost; attempts mean %.2f max %.0f\n"
                "work: %.3g useful, %.3g wasted, %.3g overhead ops (waste %.1f%%)\n"
                "goodput %.3g ops/s vs raw throughput %.3g ops/s; "
                "mean availability %.4f\n",
                static_cast<unsigned long long>(jobs_completed_),
                static_cast<unsigned long long>(jobs_lost_), attempts_.mean(), attempts_.max(),
                useful_ops_, wasted_ops_, overhead_ops_, waste_fraction() * 100,
                goodput(horizon), raw_throughput(horizon), mean_availability());
  std::string out(buf);
  for (const auto& [name, a] : availability_) {
    std::snprintf(buf, sizeof(buf), "  %-12s availability %.4f\n", name.c_str(), a);
    out += buf;
  }
  return out;
}

}  // namespace lsds::stats
