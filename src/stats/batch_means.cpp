#include "stats/batch_means.hpp"

#include <cassert>
#include <cmath>

namespace lsds::stats {

BatchMeans::BatchMeans(std::size_t batch_size, std::size_t warmup)
    : batch_size_(batch_size), warmup_(warmup) {
  assert(batch_size_ > 0);
}

void BatchMeans::add(double x) {
  if (seen_++ < warmup_) return;
  current_sum_ += x;
  if (++current_n_ == batch_size_) {
    batch_means_.add(current_sum_ / static_cast<double>(batch_size_));
    current_sum_ = 0;
    current_n_ = 0;
  }
}

double BatchMeans::ci95_halfwidth() const {
  const std::size_t k = batches();
  if (k < 2) return 0.0;
  const double s = std::sqrt(batch_means_.sample_variance() / static_cast<double>(k));
  return t_critical_95(k - 1) * s;
}

double t_critical_95(std::size_t df) {
  // Two-sided 95% (alpha/2 = 0.025) critical values.
  static constexpr double kTable[] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179,  2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
      2.074,  2.069,  2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return kTable[1];
  if (df <= 30) return kTable[df];
  return 1.96;  // normal approximation
}

}  // namespace lsds::stats
