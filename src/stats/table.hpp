// ASCII table and CSV writers — the framework's "textual output" and
// "plots" capabilities on the taxonomy's user-interface / output-analysis
// axes. Bench binaries use AsciiTable for the paper-style tables and
// CsvWriter for gnuplot-ready series.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace lsds::stats {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Add a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %g and passes strings through.
  class RowBuilder {
   public:
    explicit RowBuilder(AsciiTable& t) : table_(t) {}
    RowBuilder& cell(const std::string& s);
    RowBuilder& cell(double v);
    RowBuilder& cell(std::uint64_t v);
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    AsciiTable& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  /// Render with aligned columns and a header rule.
  std::string render() const;
  void print(std::ostream& out) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> columns);

  void row(const std::vector<double>& values);
  void row_strings(const std::vector<std::string>& values);

 private:
  std::ostream& out_;
  std::size_t ncols_;
};

}  // namespace lsds::stats
