#include "stats/analytical.hpp"

#include <cassert>
#include <cmath>

namespace lsds::stats {

double MM1::mean_in_system() const {
  assert(stable());
  const double r = rho();
  return r / (1.0 - r);
}

double MM1::mean_in_queue() const {
  assert(stable());
  const double r = rho();
  return r * r / (1.0 - r);
}

double MM1::mean_sojourn() const {
  assert(stable());
  return 1.0 / (mu - lambda);
}

double MM1::mean_wait() const {
  assert(stable());
  return rho() / (mu - lambda);
}

double MMc::erlang_c() const {
  assert(stable());
  const double a = lambda / mu;  // offered load in Erlangs
  const auto cn = static_cast<double>(c);
  // Compute a^c / c! iteratively to avoid overflow.
  double term = 1.0;  // a^k / k!
  double sum = 1.0;   // sum over k = 0..c-1
  for (std::size_t k = 1; k < c; ++k) {
    term *= a / static_cast<double>(k);
    sum += term;
  }
  term *= a / cn;  // now a^c / c!
  const double last = term * cn / (cn - a);
  return last / (sum + last);
}

double MMc::mean_wait() const {
  assert(stable());
  const auto cn = static_cast<double>(c);
  return erlang_c() / (cn * mu - lambda);
}

double MG1::mean_wait() const {
  assert(stable());
  return lambda * second_moment_service / (2.0 * (1.0 - rho()));
}

double MM1PS::mean_sojourn() const {
  assert(stable());
  return 1.0 / (mu - lambda);
}

double MM1PS::conditional_sojourn(double service) const {
  assert(stable());
  return service / (1.0 - rho());
}

double maxmin_equal_share_completion(double bytes, double capacity, std::size_t nflows) {
  assert(capacity > 0 && nflows > 0);
  return static_cast<double>(nflows) * bytes / capacity;
}

}  // namespace lsds::stats
