// Gnuplot script + data emitter — the framework's "plots" capability on the
// taxonomy's visual-output-analyzer axis.
//
// A simulation "generates huge amounts of data … difficult to be analyzed
// using a pure text format" (Section 3). LSDS-Sim's answer is plot-ready
// artifacts: PlotWriter materializes a .dat file (whitespace columns) and a
// matching .gp script so `gnuplot <name>.gp` renders the figure — no GUI
// dependency inside the library.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stats/timeseries.hpp"

namespace lsds::stats {

class PlotWriter {
 public:
  struct Series {
    std::string title;
    std::vector<double> x;
    std::vector<double> y;
  };

  /// `basename` is the path prefix: writes <basename>.dat + <basename>.gp.
  PlotWriter(std::string basename, std::string plot_title);

  void set_axis_labels(std::string xlabel, std::string ylabel);
  /// Logarithmic axes (for the queue-structure and capacity sweeps).
  void set_logscale(bool x, bool y);

  void add_series(Series s);
  void add_time_series(const std::string& title, const TimeSeries& ts);

  /// Render the .dat/.gp contents (exposed for tests).
  std::string dat_contents() const;
  std::string gp_contents() const;

  /// Write both files. Returns false on I/O failure.
  bool write() const;

 private:
  std::string basename_;
  std::string title_;
  std::string xlabel_ = "x";
  std::string ylabel_ = "y";
  bool logx_ = false, logy_ = false;
  std::vector<Series> series_;
};

}  // namespace lsds::stats
