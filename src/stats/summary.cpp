#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace lsds::stats {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * std::sqrt(sample_variance() / static_cast<double>(n_));
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void SampleSet::reset() {
  samples_.clear();
  sorted_ = true;
  acc_.reset();
}

}  // namespace lsds::stats
