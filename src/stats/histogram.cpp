#include "stats/histogram.hpp"

#include <cassert>
#include <cmath>

#include "util/strings.hpp"

namespace lsds::stats {

Histogram::Histogram(double lo, double hi, std::size_t nbins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(nbins)), counts_(nbins, 0) {
  assert(hi > lo && nbins > 0);
}

void Histogram::add(double x) {
  ++total_;
  // NaN compares false against both range guards and an infinite (x - lo_) /
  // width_ is UB to cast to size_t — neither belongs in any bin.
  if (!std::isfinite(x)) {
    ++invalid_;
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // float edge case at hi
  ++counts_[i];
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::cdf_at_bin(std::size_t i) const {
  const std::uint64_t in_range = total_ - underflow_ - overflow_ - invalid_;
  if (in_range == 0) return 0.0;
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k <= i && k < counts_.size(); ++k) cum += counts_[k];
  return static_cast<double>(cum) / static_cast<double>(in_range);
}

std::string Histogram::to_csv() const {
  std::string out = "bin_lo,bin_hi,count\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out += util::strformat("%.9g,%.9g,%llu\n", bin_lo(i), bin_hi(i),
                           static_cast<unsigned long long>(counts_[i]));
  }
  return out;
}

}  // namespace lsds::stats
