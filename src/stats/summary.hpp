// Streaming summary statistics.
//
// Accumulator: Welford-updated count/mean/variance/min/max — numerically
// stable, O(1) memory, safe for the hundreds of millions of samples a large
// simulation produces. SampleSet additionally stores samples for exact
// percentiles; use it for bounded-cardinality metrics (per-job times),
// not per-event ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsds::stats {

class Accumulator {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (n); 0 for fewer than 2 samples.
  double variance() const { return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Unbiased sample variance (n-1).
  double sample_variance() const { return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Half-width of the ~95% confidence interval of the mean (normal approx).
  double ci95_halfwidth() const;

  /// Merge another accumulator (parallel reduction).
  void merge(const Accumulator& other);

  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Stores samples; exact quantiles on demand.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    acc_.add(x);
  }

  std::size_t count() const { return samples_.size(); }
  double mean() const { return acc_.mean(); }
  double stddev() const { return acc_.stddev(); }
  double min() const { return acc_.min(); }
  double max() const { return acc_.max(); }
  double sum() const { return acc_.sum(); }
  const Accumulator& accumulator() const { return acc_; }

  /// Quantile in [0,1] by linear interpolation; 0 when empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  const std::vector<double>& samples() const { return samples_; }
  void reset();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  Accumulator acc_;
};

}  // namespace lsds::stats
