#include "stats/gnuplot.hpp"

#include <algorithm>
#include <fstream>

#include "util/strings.hpp"

namespace lsds::stats {

PlotWriter::PlotWriter(std::string basename, std::string plot_title)
    : basename_(std::move(basename)), title_(std::move(plot_title)) {}

void PlotWriter::set_axis_labels(std::string xlabel, std::string ylabel) {
  xlabel_ = std::move(xlabel);
  ylabel_ = std::move(ylabel);
}

void PlotWriter::set_logscale(bool x, bool y) {
  logx_ = x;
  logy_ = y;
}

void PlotWriter::add_series(Series s) { series_.push_back(std::move(s)); }

void PlotWriter::add_time_series(const std::string& title, const TimeSeries& ts) {
  Series s;
  s.title = title;
  for (const auto& p : ts.points()) {
    s.x.push_back(p.t);
    s.y.push_back(p.v);
  }
  series_.push_back(std::move(s));
}

std::string PlotWriter::dat_contents() const {
  // Block-per-series format (gnuplot `index` addressing): robust to series
  // of different lengths.
  std::string out;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const Series& s = series_[i];
    out += util::strformat("# series %zu: %s\n", i, s.title.c_str());
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t k = 0; k < n; ++k) {
      out += util::strformat("%.9g %.9g\n", s.x[k], s.y[k]);
    }
    out += "\n\n";  // gnuplot index separator
  }
  return out;
}

std::string PlotWriter::gp_contents() const {
  // Strip any directory prefix for the .dat reference so the script works
  // when run from the output directory.
  std::string datname = basename_;
  const auto slash = datname.find_last_of('/');
  if (slash != std::string::npos) datname = datname.substr(slash + 1);
  datname += ".dat";

  std::string out;
  out += util::strformat("set title \"%s\"\n", title_.c_str());
  out += util::strformat("set xlabel \"%s\"\n", xlabel_.c_str());
  out += util::strformat("set ylabel \"%s\"\n", ylabel_.c_str());
  if (logx_) out += "set logscale x\n";
  if (logy_) out += "set logscale y\n";
  out += "set key outside\n";
  out += "set grid\n";
  out += util::strformat("set terminal pngcairo size 960,640\nset output \"%s.png\"\n",
                         (basename_.find_last_of('/') == std::string::npos
                              ? basename_
                              : basename_.substr(basename_.find_last_of('/') + 1))
                             .c_str());
  out += "plot ";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i) out += ", \\\n     ";
    out += util::strformat("\"%s\" index %zu using 1:2 with linespoints title \"%s\"",
                           datname.c_str(), i, series_[i].title.c_str());
  }
  out += "\n";
  return out;
}

bool PlotWriter::write() const {
  {
    std::ofstream dat(basename_ + ".dat");
    if (!dat) return false;
    dat << dat_contents();
  }
  std::ofstream gp(basename_ + ".gp");
  if (!gp) return false;
  gp << gp_contents();
  return true;
}

}  // namespace lsds::stats
