#include "mc/explorer.hpp"

#include <algorithm>
#include <cassert>

namespace lsds::mc {

namespace {
/// Two events conflict (must be ordered both ways) unless both carry
/// non-zero tags and the tags differ. Tag 0 = untagged = dependent on
/// everything, the conservative default.
bool conflicts(std::uint32_t a, std::uint32_t b) { return a == 0 || b == 0 || a == b; }
}  // namespace

ReplayOutcome replay_schedule(const ModelFactory& factory, const core::Engine::Config& engine_cfg,
                              const Invariants& invariants,
                              const std::vector<core::EventId>& schedule,
                              std::uint64_t step_budget) {
  core::Engine eng(engine_cfg);
  std::unique_ptr<Model> model = factory(eng);
  ReplayOutcome out;
  std::size_t k = 0;
  eng.set_trace_hook([&out](core::SimTime t, core::EventId id) { out.trace.emplace_back(t, id); });
  eng.set_choice_hook([&schedule, &k](core::SimTime, const std::vector<core::EventId>& ids) {
    std::size_t pick = 0;
    if (k < schedule.size() && schedule[k] != 0) {
      auto it = std::find(ids.begin(), ids.end(), schedule[k]);
      if (it != ids.end()) pick = static_cast<std::size_t>(it - ids.begin());
    }
    ++k;
    return pick;
  });

  const auto violated = [&](bool terminal) {
    CheckContext ctx = model->context(terminal);
    const Invariants::Result r = invariants.check(ctx);
    if (r.index == invariants.size()) return false;
    out.violated = true;
    out.invariant = invariants.name(r.index);
    out.message = r.message;
    out.violation_time = eng.now();
    return true;
  };

  std::uint64_t steps = 0;
  while (eng.step()) {
    if (violated(false)) return out;
    if (step_budget && ++steps >= step_budget) return out;
  }
  violated(true);
  return out;
}

Explorer::Explorer(ModelFactory factory, core::Engine::Config engine_cfg, Invariants invariants,
                   ExploreConfig cfg)
    : factory_(std::move(factory)),
      engine_cfg_(engine_cfg),
      invariants_(std::move(invariants)),
      cfg_(cfg) {}

ExploreResult Explorer::run() {
  path_.clear();
  visited_.clear();
  res_ = ExploreResult{};

  bool exhausted = false;
  for (;;) {
    const ExecStatus status = run_one();
    ++res_.executions;
    if (status == ExecStatus::kViolation && cfg_.stop_at_first) break;
    if (status == ExecStatus::kBudget) res_.budget_hit = true;
    if (res_.state_capped) break;
    if (!advance_path()) {
      exhausted = true;
      break;
    }
  }
  res_.complete = exhausted && !res_.depth_capped && !res_.state_capped && !res_.budget_hit;
  return res_;
}

Explorer::ExecStatus Explorer::run_one() {
  core::Engine eng(engine_cfg_);
  if (cfg_.sleep_sets) eng.enable_event_tags();
  std::unique_ptr<Model> model = factory_(eng);
  model_ = model.get();
  depth_ = 0;
  aborting_ = false;
  sleep_.clear();
  run_choices_.clear();
  trace_.clear();

  eng.set_trace_hook([this, &eng](core::SimTime t, core::EventId id) { on_exec(eng, t, id); });
  eng.set_choice_hook([this, &eng](core::SimTime t, const std::vector<core::EventId>& ids) {
    return on_choice(eng, t, ids);
  });

  ExecStatus status = ExecStatus::kCompleted;
  std::uint64_t steps = 0;
  while (eng.step()) {
    if (aborting_) {
      status = ExecStatus::kPruned;
      break;
    }
    CheckContext ctx = model->context(false);
    const Invariants::Result r = invariants_.check(ctx);
    if (r.index < invariants_.size()) {
      record_violation(eng.now(), invariants_.name(r.index), r.message);
      status = ExecStatus::kViolation;
      break;
    }
    if (cfg_.step_budget && ++steps >= cfg_.step_budget) {
      status = ExecStatus::kBudget;
      break;
    }
  }
  if (status == ExecStatus::kCompleted) {
    CheckContext ctx = model->context(true);
    const Invariants::Result r = invariants_.check(ctx);
    if (r.index < invariants_.size()) {
      record_violation(eng.now(), invariants_.name(r.index), r.message);
      status = ExecStatus::kViolation;
    }
  }
  model_ = nullptr;
  return status;
}

std::size_t Explorer::on_choice(core::Engine& eng, core::SimTime t,
                                const std::vector<core::EventId>& ids) {
  if (aborting_) return 0;

  if (depth_ < path_.size()) {
    // Replay phase: steer down the recorded path and restore the sleep set
    // this branch entered with (entry sleep + already-explored siblings —
    // the classic "t joins Sleep after its subtree" rule).
    Node& n = path_[depth_];
    assert(ids == n.candidates && "non-deterministic replay: tie set changed");
    if (cfg_.sleep_sets) {
      sleep_.clear();
      sleep_.insert(n.sleep_entry.begin(), n.sleep_entry.end());
      for (std::size_t i = 0; i < n.candidates.size(); ++i) {
        if (n.explored[i] && i != n.current) sleep_.emplace(n.candidates[i], n.tags[i]);
      }
    }
    run_choices_.push_back(n.candidates[n.current]);
    ++depth_;
    return n.current;
  }

  // Frontier: a choice point this path has never branched at.
  if (cfg_.max_depth && path_.size() >= cfg_.max_depth) {
    res_.depth_capped = true;
    run_choices_.push_back(0);  // default order beyond the cap
    ++depth_;
    return 0;
  }

  if (cfg_.hash_pruning) {
    ++res_.states_hashed;
    core::StateHash h;
    h.mix(t);
    h.mix(static_cast<std::uint64_t>(eng.pending()));
    h.mix(eng.stats().scheduled);
    for (core::EventId id : ids) h.mix(static_cast<std::uint64_t>(id));
    model_->hash_state(h);
    if (!visited_.insert(h.value()).second) {
      // Same state reached through a different ordering: its subtree was
      // already explored from the first visit.
      ++res_.hash_pruned;
      aborting_ = true;
      eng.stop();
      return 0;
    }
    if (cfg_.max_states && visited_.size() >= cfg_.max_states) res_.state_capped = true;
  }

  Node n;
  n.candidates = ids;
  n.tags.reserve(ids.size());
  for (core::EventId id : ids) n.tags.push_back(cfg_.sleep_sets ? eng.event_tag(id) : 0);
  n.explored.assign(ids.size(), false);
  if (cfg_.sleep_sets) {
    n.sleep_entry.assign(sleep_.begin(), sleep_.end());
    // A candidate already asleep is redundant here by construction — its
    // ordering with everything it commutes with is covered elsewhere.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (sleep_.count(ids[i])) {
        n.explored[i] = true;
        ++res_.sleep_pruned;
      }
    }
  }
  std::size_t first = n.candidates.size();
  for (std::size_t i = 0; i < n.candidates.size(); ++i) {
    if (!n.explored[i]) {
      first = i;
      break;
    }
  }
  if (first == n.candidates.size()) {
    // Every candidate asleep: the whole continuation is redundant.
    aborting_ = true;
    eng.stop();
    return 0;
  }
  n.current = first;
  ++res_.choice_points;
  res_.max_depth_seen = std::max<std::uint64_t>(res_.max_depth_seen, path_.size() + 1);
  run_choices_.push_back(n.candidates[first]);
  path_.push_back(std::move(n));
  ++depth_;
  return first;
}

void Explorer::on_exec(core::Engine& eng, core::SimTime t, core::EventId id) {
  trace_.emplace_back(t, id);
  if (aborting_ || !cfg_.sleep_sets) return;
  if (sleep_.count(id)) {
    // Executing a sleeping event: this interleaving is a reordering of one
    // already explored. (Happens when the tie shrank to a single sleeping
    // event — single events bypass the choice hook.)
    ++res_.sleep_pruned;
    aborting_ = true;
    eng.stop();
    return;
  }
  const std::uint32_t tag = eng.event_tag(id);
  if (tag == 0) {
    // Untagged events conflict with everything: wake the whole set.
    sleep_.clear();
    return;
  }
  for (auto it = sleep_.begin(); it != sleep_.end();) {
    it = conflicts(tag, it->second) ? sleep_.erase(it) : std::next(it);
  }
}

bool Explorer::advance_path() {
  while (!path_.empty()) {
    Node& n = path_.back();
    n.explored[n.current] = true;
    std::size_t next = n.candidates.size();
    for (std::size_t i = n.current + 1; i < n.candidates.size(); ++i) {
      if (!n.explored[i]) {
        next = i;
        break;
      }
    }
    if (next < n.candidates.size()) {
      n.current = next;
      return true;
    }
    path_.pop_back();
  }
  return false;
}

void Explorer::record_violation(double time, const std::string& invariant,
                                const std::string& message) {
  Violation v;
  v.invariant = invariant;
  v.message = message;
  v.time = time;
  v.execution = res_.executions + 1;  // run_one() hasn't been tallied yet
  v.schedule = run_choices_;
  minimize(v);
  // Re-run the minimized schedule once to capture its trace (and its
  // possibly-sharper message: minimization keeps any violation, not
  // necessarily the original invariant).
  ReplayOutcome out = replay_schedule(factory_, engine_cfg_, invariants_, v.schedule,
                                      cfg_.step_budget);
  if (out.violated) {
    v.invariant = out.invariant;
    v.message = out.message;
    v.time = out.violation_time;
    v.trace = std::move(out.trace);
  } else {
    // Shouldn't happen (minimize only keeps violating schedules), but never
    // report an empty counterexample.
    v.trace = trace_;
  }
  res_.violations.push_back(std::move(v));
}

void Explorer::minimize(Violation& v) const {
  // Greedy left-to-right: revert each decision to the default order; keep
  // the reversion when the schedule still violates. O(decisions) replays.
  for (std::size_t k = 0; k < v.schedule.size(); ++k) {
    if (v.schedule[k] == 0) continue;
    std::vector<core::EventId> trial = v.schedule;
    trial[k] = 0;
    if (replay_schedule(factory_, engine_cfg_, invariants_, trial, cfg_.step_budget).violated) {
      v.schedule = std::move(trial);
    }
  }
  while (!v.schedule.empty() && v.schedule.back() == 0) v.schedule.pop_back();
}

}  // namespace lsds::mc
