#include "mc/recovery_model.hpp"

#include <string>
#include <utility>

namespace lsds::mc {

RecoveryModel::RecoveryModel(core::Engine& engine, RecoveryScenario s)
    : engine_(engine), s_(std::move(s)) {
  std::vector<hosts::CpuResource*> raw;
  for (std::size_t i = 0; i < s_.hosts; ++i) {
    cpus_.push_back(std::make_unique<hosts::CpuResource>(engine_, "host" + std::to_string(i),
                                                         /*cores=*/1, s_.speed,
                                                         hosts::SharingPolicy::kSpaceShared));
    raw.push_back(cpus_.back().get());
  }
  sched_ = std::make_unique<middleware::FaultTolerantScheduler>(engine_, raw, s_.heuristic,
                                                                s_.recovery);
  for (std::size_t j = 0; j < s_.job_ops.size(); ++j) {
    hosts::Job job;
    job.id = j + 1;
    job.ops = s_.job_ops[j];
    sched_->submit(std::move(job));
  }
  injector_ = std::make_unique<middleware::FailureInjector>(engine_);
  for (hosts::CpuResource* cpu : raw) injector_->add_cpu(*cpu);
  if (!s_.fault_choices.empty()) {
    injector_->schedule_outage_choice(0, s_.fault_choices, s_.repair_after);
  } else if (s_.fault_time >= 0) {
    injector_->schedule_outage(0, s_.fault_time, s_.repair_after);
  }
  sched_->run();
}

void RecoveryModel::hash_state(core::StateHash& h) const {
  sched_->state_digest(h);
  for (const auto& cpu : cpus_) cpu->state_digest(h);
  h.mix(injector_->outages_started());
  h.mix(injector_->repairs_completed());
}

CheckContext RecoveryModel::context(bool terminal) {
  CheckContext ctx;
  ctx.engine = &engine_;
  ctx.scheduler = sched_.get();
  ctx.injector = injector_.get();
  for (const auto& cpu : cpus_) ctx.cpus.push_back(cpu.get());
  ctx.num_jobs = s_.job_ops.size();
  ctx.terminal = terminal;
  return ctx;
}

ModelFactory RecoveryModel::factory(RecoveryScenario s) {
  return [s](core::Engine& engine) { return std::make_unique<RecoveryModel>(engine, s); };
}

}  // namespace lsds::mc
