// Explorable-model interface for the exhaustive-exploration mode.
//
// The explorer (mc/explorer.hpp) re-runs a scenario from t = 0 once per
// interleaving, so a model must be *reconstructible*: a ModelFactory builds
// the whole scenario into a fresh engine — entities, scheduler, injected
// faults, initial events — and returns a handle the explorer uses to
// (a) fingerprint model state for revisit pruning and (b) expose the
// invariant-checking view of the current state.
//
// Determinism contract: two factory calls over engines with equal configs
// must produce byte-identical executions under the default event order.
// Everything in this repo already satisfies that (named RNG streams, seq
// tie-breaks); a model that reads wall clock or global mutable state would
// break exploration in confusing ways.
#pragma once

#include <functional>
#include <memory>

#include "core/engine.hpp"
#include "core/hash.hpp"
#include "mc/invariants.hpp"

namespace lsds::mc {

class Model {
 public:
  virtual ~Model() = default;

  /// Fold all mutable model state into `h` — the model half of the
  /// explorer's state fingerprint (the engine half is clock + pending-set
  /// shape). Must be a pure function of simulation state: unordered
  /// containers visited in sorted order, no addresses, no wall clock.
  virtual void hash_state(core::StateHash& h) const = 0;

  /// Invariant-checking view of the current state; `terminal` is true when
  /// the engine has drained (used by convergence properties).
  virtual CheckContext context(bool terminal) = 0;
};

/// Builds the scenario into a fresh engine and returns the model handle.
/// Called once per explored interleaving; the returned model must stay
/// valid for the engine's lifetime (it typically owns the entities).
using ModelFactory = std::function<std::unique_ptr<Model>(core::Engine&)>;

}  // namespace lsds::mc
