// Exhaustive event-ordering exploration (stateless model checking).
//
// The engine's (time, seq) total order makes every run deterministic — but
// seq order is an *artifact* of scheduling order, not a law of the modeled
// system: events tied at one timestamp could fire in any order on a real
// system. The Explorer turns that artifact into a verified property: it
// drives the engine through *every* ordering of simultaneous events (DFS
// over choice points, in the style of systematic concurrency testers like
// SimGrid's DFS explorer), checking registered invariants after every
// event of every interleaving.
//
// Mechanics:
//   * Choice points come from Engine::set_choice_hook — whenever >= 2 live
//     events are tied at the minimum timestamp, the hook picks which runs
//     first. Index 0 reproduces the engine's normal FIFO order, so the
//     first execution of any exploration is byte-identical to a plain run.
//   * Backtracking is replay-based: the engine has no state snapshots, so
//     the explorer re-runs the scenario from t = 0 (fresh Engine + Model
//     per execution) and steers the prefix down the recorded path. Sound
//     because executions are deterministic given the choice sequence.
//   * Hash pruning: at every choice point the (engine, model) state is
//     fingerprinted (core/hash.hpp); a revisited fingerprint aborts the
//     execution — its subtree was already explored from the first visit.
//     Classic hash compaction: a collision can only over-prune.
//   * Sleep sets (Godefroid): candidates carry entity tags
//     (Engine::enable_event_tags); two events with different non-zero tags
//     commute, so of their two orderings only one is explored. After
//     exploring branch t at a node, t joins the sleep set for the node's
//     later branches; executing an event that conflicts with a sleeping
//     event wakes it; executing a sleeping event (or having every
//     candidate asleep) proves the path redundant and aborts it.
//
// A violation produces a *replayable counterexample*: the sequence of
// chosen event ids, greedily minimized (each decision reverted to the
// default order when the violation survives without it), plus the full
// (time, seq) trace of the minimized run. replay_schedule() re-executes a
// schedule through a fresh engine — tests assert byte-identical traces.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "mc/invariants.hpp"
#include "mc/model.hpp"

namespace lsds::mc {

struct ExploreConfig {
  /// Choice points per execution that may branch; deeper ties take the
  /// default order (the run still completes and is checked, but the
  /// exploration is reported depth-capped). 0 = unlimited.
  std::size_t max_depth = 0;
  /// Cap on distinct fingerprinted states; hitting it stops exploration
  /// (reported state-capped). 0 = unlimited.
  std::uint64_t max_states = 200000;
  /// Per-execution executed-event watchdog (zero-delay loop guard).
  std::uint64_t step_budget = 200000;
  bool sleep_sets = true;
  bool hash_pruning = true;
  /// Stop at the first violation (default) or keep exploring and collect.
  bool stop_at_first = true;
};

struct Violation {
  std::string invariant;
  std::string message;
  double time = 0;           // simulation time of the violating state
  std::uint64_t execution = 0;  // 1-based index of the execution that found it
  /// Minimized replayable schedule: the chosen event id per choice point
  /// (0 = default order). Feed to replay_schedule().
  std::vector<core::EventId> schedule;
  /// Full (time, seq) event trace of the minimized counterexample run.
  std::vector<std::pair<double, core::EventId>> trace;
};

struct ExploreResult {
  std::uint64_t executions = 0;      // complete or pruned replays run
  std::uint64_t choice_points = 0;   // DFS nodes created
  std::uint64_t states_hashed = 0;   // fingerprints computed
  std::uint64_t hash_pruned = 0;     // executions cut at a revisited state
  std::uint64_t sleep_pruned = 0;    // branches/paths cut by sleep sets
  std::uint64_t max_depth_seen = 0;  // deepest branching choice point
  bool depth_capped = false;
  bool state_capped = false;
  bool budget_hit = false;  // some execution hit step_budget
  /// True when the full interleaving tree was explored (no caps hit). With
  /// stop_at_first, a found violation also clears this.
  bool complete = false;
  std::vector<Violation> violations;
  bool ok() const { return violations.empty(); }
};

/// Outcome of re-running one recorded schedule (see replay_schedule).
struct ReplayOutcome {
  std::vector<std::pair<double, core::EventId>> trace;
  bool violated = false;
  std::string invariant;
  std::string message;
  double violation_time = 0;
};

/// Re-execute `schedule` through a fresh engine + model: choice point k
/// runs the event with id schedule[k] (default order when the id is 0,
/// absent, or past the end). Deterministic — equal schedules yield
/// byte-identical traces. Stops at the first violation.
ReplayOutcome replay_schedule(const ModelFactory& factory, const core::Engine::Config& engine_cfg,
                              const Invariants& invariants,
                              const std::vector<core::EventId>& schedule,
                              std::uint64_t step_budget = 200000);

class Explorer {
 public:
  Explorer(ModelFactory factory, core::Engine::Config engine_cfg, Invariants invariants,
           ExploreConfig cfg);

  ExploreResult run();

 private:
  /// One DFS node: the tie set at a branching choice point, which branches
  /// were already explored, and the sleep set on entry (for replay).
  struct Node {
    std::vector<core::EventId> candidates;  // ascending seq (default order first)
    std::vector<std::uint32_t> tags;
    std::vector<std::pair<core::EventId, std::uint32_t>> sleep_entry;
    std::vector<bool> explored;
    std::size_t current = 0;
  };

  enum class ExecStatus { kCompleted, kPruned, kViolation, kBudget };

  ExecStatus run_one();
  bool advance_path();
  std::size_t on_choice(core::Engine& eng, core::SimTime t,
                        const std::vector<core::EventId>& ids);
  void on_exec(core::Engine& eng, core::SimTime t, core::EventId id);
  void record_violation(double time, const std::string& invariant, const std::string& message);
  void minimize(Violation& v) const;

  ModelFactory factory_;
  core::Engine::Config engine_cfg_;
  Invariants invariants_;
  ExploreConfig cfg_;

  // Per-run() state.
  std::vector<Node> path_;
  std::unordered_set<std::uint64_t> visited_;
  ExploreResult res_;

  // Per-execution state.
  Model* model_ = nullptr;
  std::size_t depth_ = 0;  // choice points consumed this execution
  bool aborting_ = false;
  std::unordered_map<core::EventId, std::uint32_t> sleep_;
  std::vector<core::EventId> run_choices_;
  std::vector<std::pair<double, core::EventId>> trace_;
};

}  // namespace lsds::mc
