#include "mc/invariants.hpp"

#include <algorithm>
#include <stdexcept>

#include "middleware/recovery.hpp"

namespace lsds::mc {

namespace {

std::string check_no_job_lost(const CheckContext& ctx) {
  const auto* s = ctx.scheduler;
  if (!s) return "";
  if (s->lost() > 0) {
    return "scheduler reports " + std::to_string(s->lost()) + " lost job(s)";
  }
  if (s->dependability().jobs_lost() > 0) {
    return "dependability ledger reports " + std::to_string(s->dependability().jobs_lost()) +
           " lost job(s)";
  }
  for (std::size_t slot = 0; slot < s->task_count(); ++slot) {
    const auto v = s->task_view(slot);
    if (!v.finished && !v.queued && v.live_copies == 0) {
      return "job " + std::to_string(v.job_id) +
             " is in limbo: not queued, no copy in flight, not finished";
    }
  }
  return "";
}

std::string check_no_double_start(const CheckContext& ctx) {
  const auto* s = ctx.scheduler;
  if (!s) return "";
  const auto& cfg = s->config();
  const std::size_t allowed = cfg.policy == middleware::RecoveryPolicyKind::kReplicate
                                  ? std::max<std::size_t>(1, cfg.replicas)
                                  : 1;
  for (std::size_t slot = 0; slot < s->task_count(); ++slot) {
    const auto v = s->task_view(slot);
    if (v.live_copies > allowed) {
      return "job " + std::to_string(v.job_id) + " has " + std::to_string(v.live_copies) +
             " simultaneous copies (policy allows " + std::to_string(allowed) + ")";
    }
    if (v.queued && v.live_copies > 0) {
      return "job " + std::to_string(v.job_id) +
             " is queued for dispatch while a copy is already running";
    }
  }
  return "";
}

std::string check_converges(const CheckContext& ctx) {
  if (!ctx.terminal) return "";
  const auto* s = ctx.scheduler;
  if (!s) return "";
  for (std::size_t slot = 0; slot < s->task_count(); ++slot) {
    const auto v = s->task_view(slot);
    if (!v.finished) {
      return "engine drained but job " + std::to_string(v.job_id) +
             " never reached a terminal state";
    }
  }
  if (s->completed() + s->lost() != s->task_count()) {
    return "engine drained with " + std::to_string(s->completed()) + " completed + " +
           std::to_string(s->lost()) + " lost out of " + std::to_string(s->task_count()) +
           " tasks";
  }
  // The dependability ledger (stats/dependability.hpp) must agree with the
  // scheduler's own books along every interleaving.
  const auto& dep = s->dependability();
  if (dep.jobs_completed() != s->completed() || dep.jobs_lost() != s->lost()) {
    return "dependability ledger disagrees with the scheduler: ledger " +
           std::to_string(dep.jobs_completed()) + "/" + std::to_string(dep.jobs_lost()) +
           " completed/lost vs scheduler " + std::to_string(s->completed()) + "/" +
           std::to_string(s->lost());
  }
  return "";
}

}  // namespace

void Invariants::add(std::string name, CheckFn fn) {
  checks_.push_back(Entry{std::move(name), std::move(fn)});
}

const std::vector<std::string>& Invariants::builtin_names() {
  static const std::vector<std::string> names = {"no-job-lost", "no-double-start",
                                                 "recovery-converges"};
  return names;
}

void Invariants::add_builtin(const std::string& name) {
  if (name == "no-job-lost") {
    add(name, check_no_job_lost);
  } else if (name == "no-double-start") {
    add(name, check_no_double_start);
  } else if (name == "recovery-converges") {
    add(name, check_converges);
  } else {
    throw std::invalid_argument("unknown built-in invariant '" + name +
                                "' (known: no-job-lost, no-double-start, recovery-converges)");
  }
}

Invariants::Result Invariants::check(const CheckContext& ctx) const {
  for (std::size_t i = 0; i < checks_.size(); ++i) {
    std::string msg = checks_[i].fn(ctx);
    if (!msg.empty()) return Result{i, std::move(msg)};
  }
  return Result{checks_.size(), ""};
}

}  // namespace lsds::mc
