// The recovery-layer scenario the exploration mode ships with.
//
// A deliberately small, deliberately *contended* configuration: a handful
// of single-core hosts, a bag of equal-length jobs (equal ops at equal
// speed makes their completions collide at one timestamp — the tie the
// explorer branches on), and one deterministic fault. The explorer then
// proves, over every ordering of those ties, that the configured recovery
// policy loses no job, never double-starts one, and always converges.
//
// Fault timing is itself explorable: with several `fault_choices`, the
// injector's choice-point selector (FailureInjector::schedule_outage_choice)
// turns *when the crash lands* into one more branching dimension.
#pragma once

#include <memory>
#include <vector>

#include "hosts/cpu.hpp"
#include "mc/model.hpp"
#include "middleware/failures.hpp"
#include "middleware/recovery.hpp"

namespace lsds::mc {

struct RecoveryScenario {
  middleware::RecoveryConfig recovery;
  middleware::Heuristic heuristic = middleware::Heuristic::kFifo;

  std::size_t hosts = 2;  // single-core, speed 1 each
  double speed = 1.0;
  /// Compute demand per job; equal values collide completions in time.
  std::vector<double> job_ops = {4, 4, 4};

  /// Crash injected on host 0 (< 0 = no fault).
  double fault_time = 4.0;
  double repair_after = 1.0;  // 0 ties crash and repair at one timestamp
  /// When non-empty, the crash lands at exactly one of these times, chosen
  /// per explored branch (overrides fault_time).
  std::vector<double> fault_choices;
};

class RecoveryModel : public Model {
 public:
  RecoveryModel(core::Engine& engine, RecoveryScenario s);

  void hash_state(core::StateHash& h) const override;
  CheckContext context(bool terminal) override;

  const middleware::FaultTolerantScheduler& scheduler() const { return *sched_; }

  /// ModelFactory building this scenario (mc::Explorer, mc tests).
  static ModelFactory factory(RecoveryScenario s);

 private:
  core::Engine& engine_;
  RecoveryScenario s_;
  std::vector<std::unique_ptr<hosts::CpuResource>> cpus_;
  std::unique_ptr<middleware::FaultTolerantScheduler> sched_;
  std::unique_ptr<middleware::FailureInjector> injector_;
};

}  // namespace lsds::mc
