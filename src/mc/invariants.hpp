// Invariant registry for exhaustive exploration.
//
// An invariant is a predicate over the *current* simulation state, checked
// after every executed event along every explored interleaving. The three
// built-ins encode the recovery layer's correctness claims (ROADMAP):
//
//   no-job-lost        — no task is ever in limbo (neither queued, nor
//                        running a copy, nor finished), and the scheduler
//                        never reports a lost job. Presumes an
//                        unlimited-attempts config: with max_attempts > 0,
//                        abandoning a job is policy, not a bug.
//   no-double-start    — a task never has more simultaneous copies than its
//                        policy allows (1, or `replicas` under kReplicate),
//                        and is never simultaneously queued and running.
//   recovery-converges — when the engine drains, every task is terminal
//                        (completed or abandoned): the recovery machinery
//                        never wedges with work it forgot to re-dispatch.
//
// Custom properties register a CheckFn returning "" when the state is fine
// and a human-readable complaint otherwise.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace lsds::core {
class Engine;
}
namespace lsds::hosts {
class CpuResource;
}
namespace lsds::middleware {
class FaultTolerantScheduler;
class FailureInjector;
}

namespace lsds::mc {

/// What an invariant may look at. The recovery built-ins need the scheduler
/// (null for models without one — they then pass vacuously); custom
/// invariants usually capture their own state and only read `terminal`.
struct CheckContext {
  core::Engine* engine = nullptr;
  const middleware::FaultTolerantScheduler* scheduler = nullptr;
  const middleware::FailureInjector* injector = nullptr;
  std::vector<const hosts::CpuResource*> cpus;
  std::size_t num_jobs = 0;
  bool terminal = false;
};

class Invariants {
 public:
  /// Return "" when the invariant holds, else the violation message.
  using CheckFn = std::function<std::string(const CheckContext&)>;

  void add(std::string name, CheckFn fn);
  /// Register a built-in by name (see file comment). Throws
  /// std::invalid_argument on an unknown name.
  void add_builtin(const std::string& name);
  static const std::vector<std::string>& builtin_names();

  std::size_t size() const { return checks_.size(); }
  const std::string& name(std::size_t i) const { return checks_[i].name; }

  struct Result {
    std::size_t index;    // == size() when every invariant holds
    std::string message;  // empty when every invariant holds
  };
  /// First violated invariant, in registration order.
  Result check(const CheckContext& ctx) const;

 private:
  struct Entry {
    std::string name;
    CheckFn fn;
  };
  std::vector<Entry> checks_;
};

}  // namespace lsds::mc
