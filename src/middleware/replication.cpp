#include "middleware/replication.hpp"

#include <algorithm>

namespace lsds::middleware {

const char* to_string(ReplicationPolicy p) {
  switch (p) {
    case ReplicationPolicy::kNone: return "none";
    case ReplicationPolicy::kLru: return "lru";
    case ReplicationPolicy::kLfu: return "lfu";
    case ReplicationPolicy::kEconomic: return "economic";
  }
  return "?";
}

std::unique_ptr<ReplicationStrategy> make_replication_strategy(ReplicationPolicy p) {
  switch (p) {
    case ReplicationPolicy::kNone: return std::make_unique<NoReplication>();
    case ReplicationPolicy::kLru: return std::make_unique<LruReplication>();
    case ReplicationPolicy::kLfu: return std::make_unique<LfuReplication>();
    case ReplicationPolicy::kEconomic: return std::make_unique<EconomicReplication>();
  }
  return nullptr;
}

std::optional<ReplicationPlan> EvictingReplication::plan_replication(
    hosts::SiteId, const hosts::StorageDevice& disk, const std::string& lfn, double bytes) {
  if (disk.has(lfn)) return std::nullopt;     // already local
  if (bytes > disk.capacity()) return std::nullopt;  // can never fit
  ReplicationPlan plan;
  double free = disk.free();
  if (free >= bytes) return plan;  // no evictions needed
  for (const auto& victim : ranked_candidates(disk)) {
    plan.evictions.push_back(victim);
    free += disk.file(victim)->bytes;
    if (free >= bytes) return plan;
  }
  return std::nullopt;  // pinned files block the required space
}

std::vector<std::string> LruReplication::ranked_candidates(
    const hosts::StorageDevice& disk) const {
  std::vector<const hosts::StoredFile*> files;
  for (const auto& lfn : disk.list()) {
    const auto* f = disk.file(lfn);
    if (!f->pinned) files.push_back(f);
  }
  std::sort(files.begin(), files.end(), [](const auto* a, const auto* b) {
    if (a->last_access != b->last_access) return a->last_access < b->last_access;
    return a->lfn < b->lfn;
  });
  std::vector<std::string> out;
  out.reserve(files.size());
  for (const auto* f : files) out.push_back(f->lfn);
  return out;
}

std::vector<std::string> LfuReplication::ranked_candidates(
    const hosts::StorageDevice& disk) const {
  std::vector<const hosts::StoredFile*> files;
  for (const auto& lfn : disk.list()) {
    const auto* f = disk.file(lfn);
    if (!f->pinned) files.push_back(f);
  }
  std::sort(files.begin(), files.end(), [](const auto* a, const auto* b) {
    if (a->access_count != b->access_count) return a->access_count < b->access_count;
    if (a->last_access != b->last_access) return a->last_access < b->last_access;
    return a->lfn < b->lfn;
  });
  std::vector<std::string> out;
  out.reserve(files.size());
  for (const auto* f : files) out.push_back(f->lfn);
  return out;
}

void EconomicReplication::on_access(hosts::SiteId site, const std::string& lfn) {
  auto& h = history_[site];
  h.push_back(lfn);
  if (h.size() > window_) h.pop_front();
}

std::size_t EconomicReplication::value_of(hosts::SiteId site, const std::string& lfn) const {
  auto it = history_.find(site);
  if (it == history_.end()) return 0;
  return static_cast<std::size_t>(std::count(it->second.begin(), it->second.end(), lfn));
}

std::optional<ReplicationPlan> EconomicReplication::plan_replication(
    hosts::SiteId site, const hosts::StorageDevice& disk, const std::string& lfn, double bytes) {
  if (disk.has(lfn)) return std::nullopt;
  if (bytes > disk.capacity()) return std::nullopt;
  ReplicationPlan plan;
  double free = disk.free();
  if (free >= bytes) return plan;  // free space is free: always accept

  // Candidate order: least valuable first (recent-window popularity).
  std::vector<std::pair<std::size_t, std::string>> ranked;
  for (const auto& name : disk.list()) {
    const auto* f = disk.file(name);
    if (f->pinned) continue;
    ranked.emplace_back(value_of(site, name), name);
  }
  std::sort(ranked.begin(), ranked.end());

  const std::size_t incoming_value = value_of(site, lfn);
  for (const auto& [value, victim] : ranked) {
    // Economic test: never sacrifice a file judged more valuable than the
    // incoming one.
    if (value > incoming_value) return std::nullopt;
    plan.evictions.push_back(victim);
    free += disk.file(victim)->bytes;
    if (free >= bytes) return plan;
  }
  return std::nullopt;
}

}  // namespace lsds::middleware
