// Bag-of-tasks scheduling across heterogeneous resources.
//
// The scope most surveyed simulators were built for: "some simulators were
// designed specifically for evaluating scheduling algorithms" (Bricks,
// SimGrid, GridSim). BagScheduler dispatches a set of independent tasks
// over a pool of CpuResources under one of the classic heuristics:
//
//   online (pull; an idle core takes the next task):
//     kFifo        — oldest task first
//     kSjf         — shortest task first
//     kLjf         — longest task first (usually best online for makespan)
//     kRoundRobin  — pre-assigned round-robin, speed-blind
//   static ECT-based (use estimated completion times; compile-time
//   scheduling in SimGrid's vocabulary):
//     kMinMin      — repeatedly map the task with the smallest minimum ECT
//     kMaxMin      — map the task with the largest minimum ECT first
//     kSufferage   — map the task that suffers most if denied its best host
//
// Experiment E8 (bench_scheduling) compares makespans across heterogeneity
// levels.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "hosts/job.hpp"
#include "stats/summary.hpp"

namespace lsds::middleware {

enum class Heuristic {
  kFifo,
  kSjf,
  kLjf,
  kRoundRobin,
  kMinMin,
  kMaxMin,
  kSufferage,
};

const char* to_string(Heuristic h);

inline constexpr Heuristic kAllHeuristics[] = {
    Heuristic::kFifo,   Heuristic::kSjf,    Heuristic::kLjf,      Heuristic::kRoundRobin,
    Heuristic::kMinMin, Heuristic::kMaxMin, Heuristic::kSufferage,
};

class BagScheduler {
 public:
  using JobDoneFn = std::function<void(const hosts::Job&)>;

  BagScheduler(core::Engine& engine, std::vector<hosts::CpuResource*> resources, Heuristic h);

  /// Add a task to the bag (before run()).
  void submit(hosts::Job job);

  /// Map and dispatch every task; `on_done` fires per completion.
  /// Call Engine::run() afterwards to execute.
  void run(JobDoneFn on_done = nullptr);

  // --- results (valid once the engine drained) -----------------------------

  double makespan() const { return makespan_; }
  std::uint64_t completed() const { return completed_; }
  const stats::SampleSet& response_times() const { return responses_; }
  /// Tasks dispatched to each resource (mapping histogram).
  const std::vector<std::uint64_t>& per_resource_counts() const { return per_resource_; }

 private:
  void sort_bag_for_online();
  void pull_next(std::size_t r);  // idle resource r takes the next task
  void run_static_mapping();
  void start_job(std::size_t r, hosts::Job job);

  core::Engine& engine_;
  std::vector<hosts::CpuResource*> resources_;
  Heuristic heuristic_;
  std::deque<hosts::Job> bag_;
  JobDoneFn on_done_;
  double makespan_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dispatched_ = 0;
  stats::SampleSet responses_;
  std::vector<std::uint64_t> per_resource_;
  std::size_t rr_next_ = 0;
};

}  // namespace lsds::middleware
