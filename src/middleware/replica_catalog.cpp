#include "middleware/replica_catalog.hpp"

#include <limits>

namespace lsds::middleware {

void ReplicaCatalog::add_replica(const std::string& lfn, hosts::SiteId site, net::NodeId node) {
  entries_[lfn].insert(Location{site, node});
}

bool ReplicaCatalog::remove_replica(const std::string& lfn, hosts::SiteId site) {
  auto it = entries_.find(lfn);
  if (it == entries_.end()) return false;
  const bool erased = it->second.erase(Location{site, {}}) > 0;
  if (it->second.empty()) entries_.erase(it);
  return erased;
}

bool ReplicaCatalog::has_replica_at(const std::string& lfn, hosts::SiteId site) const {
  auto it = entries_.find(lfn);
  return it != entries_.end() && it->second.count(Location{site, {}}) > 0;
}

std::size_t ReplicaCatalog::replica_count(const std::string& lfn) const {
  auto it = entries_.find(lfn);
  return it == entries_.end() ? 0 : it->second.size();
}

std::vector<hosts::SiteId> ReplicaCatalog::locations(const std::string& lfn) const {
  std::vector<hosts::SiteId> out;
  auto it = entries_.find(lfn);
  if (it == entries_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& loc : it->second) out.push_back(loc.site);
  return out;
}

std::optional<hosts::SiteId> ReplicaCatalog::best_source(const std::string& lfn,
                                                         net::NodeId consumer_node) const {
  auto it = entries_.find(lfn);
  if (it == entries_.end() || it->second.empty()) return std::nullopt;
  double best = std::numeric_limits<double>::infinity();
  hosts::SiteId best_site = hosts::kInvalidSite;
  for (const auto& loc : it->second) {
    double lat;
    if (loc.node == consumer_node) {
      lat = 0;  // local replica always wins
    } else {
      const auto& r = routing_.route(consumer_node, loc.node);
      if (!r.valid) continue;
      lat = r.total_latency;
    }
    if (lat < best) {
      best = lat;
      best_site = loc.site;
    }
  }
  if (best_site == hosts::kInvalidSite) return std::nullopt;
  return best_site;
}

}  // namespace lsds::middleware
