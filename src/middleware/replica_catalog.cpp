#include "middleware/replica_catalog.hpp"

#include <limits>

namespace lsds::middleware {

void ReplicaCatalog::add_replica(const std::string& lfn, hosts::SiteId site, net::NodeId node) {
  entries_[lfn].insert(Location{site, node});
}

bool ReplicaCatalog::remove_replica(const std::string& lfn, hosts::SiteId site) {
  auto it = entries_.find(lfn);
  if (it == entries_.end()) return false;
  const bool erased = it->second.erase(Location{site, {}}) > 0;
  if (it->second.empty()) entries_.erase(it);
  return erased;
}

bool ReplicaCatalog::has_replica_at(const std::string& lfn, hosts::SiteId site) const {
  auto it = entries_.find(lfn);
  return it != entries_.end() && it->second.count(Location{site, {}}) > 0;
}

std::size_t ReplicaCatalog::replica_count(const std::string& lfn) const {
  auto it = entries_.find(lfn);
  return it == entries_.end() ? 0 : it->second.size();
}

std::vector<hosts::SiteId> ReplicaCatalog::locations(const std::string& lfn) const {
  std::vector<hosts::SiteId> out;
  auto it = entries_.find(lfn);
  if (it == entries_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& loc : it->second) out.push_back(loc.site);
  return out;
}

std::optional<hosts::SiteId> ReplicaCatalog::best_source(const std::string& lfn,
                                                         net::NodeId consumer_node) const {
  auto it = entries_.find(lfn);
  if (it == entries_.end() || it->second.empty()) return std::nullopt;
  // Lexicographic (zone rank, latency + source cost); the set iterates in
  // ascending site id and both comparisons are strict '<', so every tie
  // resolves to the lowest site id — deterministic by construction.
  const std::size_t consumer_subtree =
      zone_tree_ ? zone_tree_->child_of(consumer_node) : 0;
  int best_rank = 2;
  double best = std::numeric_limits<double>::infinity();
  hosts::SiteId best_site = hosts::kInvalidSite;
  for (const auto& loc : it->second) {
    double cost;
    if (loc.node == consumer_node) {
      cost = 0;  // local replica: no route, no staging read
    } else {
      const auto& r = routing_.route(consumer_node, loc.node);
      if (!r.valid) continue;
      cost = r.total_latency;
      if (source_cost_) cost += source_cost_(loc.site);
    }
    const int rank =
        zone_tree_ && zone_tree_->child_of(loc.node) != consumer_subtree ? 1 : 0;
    if (rank < best_rank || (rank == best_rank && cost < best)) {
      best_rank = rank;
      best = cost;
      best_site = loc.site;
    }
  }
  if (best_site == hosts::kInvalidSite) return std::nullopt;
  return best_site;
}

}  // namespace lsds::middleware
