// Stochastic failure injection.
//
// Large-scale distributed systems fail routinely; a simulator that cannot
// express outages cannot answer availability questions. FailureInjector
// drives registered CPU resources and network links through exponential
// fail/repair cycles (classic MTBF/MTTR model): each target independently
// alternates up-time ~ Exp(mtbf) and down-time ~ Exp(mttr), drawn from a
// named engine stream so chaos runs are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "net/flow.hpp"

namespace lsds::middleware {

class FailureInjector {
 public:
  /// `stream` names the RNG stream used for all draws.
  FailureInjector(core::Engine& engine, std::string stream = "failures");

  void add_cpu(hosts::CpuResource& cpu);
  void add_link(net::FlowNetwork& net, net::LinkId link);

  /// Start fail/repair cycles on every registered target. Outages whose
  /// start would fall beyond `t_end` are not scheduled.
  void start(double mean_time_between_failures, double mean_time_to_repair, double t_end);

  // --- statistics -----------------------------------------------------------

  std::uint64_t outages_started() const { return outages_; }
  std::uint64_t repairs_completed() const { return repairs_; }
  double total_downtime() const { return downtime_; }

 private:
  struct CpuTarget {
    hosts::CpuResource* cpu;
  };
  struct LinkTarget {
    net::FlowNetwork* net;
    net::LinkId link;
  };

  void schedule_failure(std::size_t target, double mtbf, double mttr, double t_end);
  void apply(std::size_t target, bool up);

  core::Engine& engine_;
  std::string stream_;
  std::vector<CpuTarget> cpus_;
  std::vector<LinkTarget> links_;  // target index = cpus_.size() + link index
  std::uint64_t outages_ = 0;
  std::uint64_t repairs_ = 0;
  double downtime_ = 0;
};

}  // namespace lsds::middleware
