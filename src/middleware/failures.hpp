// Stochastic failure injection.
//
// Large-scale distributed systems fail routinely; a simulator that cannot
// express outages cannot answer availability questions. FailureInjector
// drives registered CPU resources and network links through fail/repair
// cycles: each target independently alternates up-time drawn from a
// lifetime distribution (exponential MTBF/MTTR classic, or Weibull — the
// empirical fit for real node lifetimes, per the dependability follow-up
// work) and down-time ~ Exp(mttr), all from a named engine stream so chaos
// runs are reproducible.
//
// Correlated outages: a *site group* registers several CPUs (and,
// optionally, links) as one target — a power or uplink event takes the
// whole regional center down together, the failure correlation that
// independent per-node draws cannot produce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/failure.hpp"
#include "hosts/cpu.hpp"
#include "net/flow.hpp"

namespace lsds::middleware {

/// Declarative chaos knobs, embeddable in facade configs and parseable from
/// a scenario `[failures]` section (see examples/scenario_runner.cpp).
struct FailureSpec {
  bool enabled = false;
  double mtbf = 1000;    // mean up-time per target
  double mttr = 10;      // mean down-time per outage
  double horizon = 0;    // no outage starts after this time (0 = required by caller)
  /// 0 = exponential lifetimes; > 0 = Weibull with this shape (scale chosen
  /// so the mean stays mtbf; shape < 1 models infant mortality).
  double weibull_shape = 0;
  /// What an outage does to in-flight work (see core/failure.hpp). Facades
  /// without a recovery layer only support kFailResume.
  core::FailureSemantics semantics = core::FailureSemantics::kFailResume;
  /// Also fail network links, not just CPUs.
  bool include_links = true;
};

class FailureInjector {
 public:
  /// `stream` names the RNG stream used for all draws.
  FailureInjector(core::Engine& engine, std::string stream = "failures");

  void add_cpu(hosts::CpuResource& cpu);
  void add_link(net::FlowNetwork& net, net::LinkId link);
  /// Correlated site-wide outages: all of `cpus` (and `links`, optionally)
  /// fail and repair together as a single target.
  void add_site(std::vector<hosts::CpuResource*> cpus, net::FlowNetwork* net = nullptr,
                std::vector<net::LinkId> links = {});

  /// Start fail/repair cycles on every registered target with exponential
  /// lifetimes. Outages whose start would fall beyond `t_end` are not
  /// scheduled. Throws std::logic_error when called twice (double-starting
  /// would silently double every target's failure rate).
  void start(double mean_time_between_failures, double mean_time_to_repair, double t_end);

  /// Weibull lifetimes with mean `mtbf` and the given shape (shape == 1 is
  /// exponential; < 1 infant mortality; > 1 wear-out). Same guard as start().
  void start_weibull(double shape, double mtbf, double mean_time_to_repair, double t_end);

  bool started() const { return started_; }

  // --- deterministic outages (tests, exhaustive exploration) ----------------

  /// Registered targets, in add_*() order (index = the `target` argument of
  /// the deterministic APIs below).
  std::size_t target_count() const { return targets_.size(); }

  /// Inject exactly one outage on `target` at absolute time `at`, repaired
  /// `repair_after` later (repair_after < 0 = permanent; == 0 ties the
  /// repair with the crash at one timestamp — the double-start stress case).
  /// Independent of the stochastic cycles and of started(); usable any
  /// number of times per target.
  void schedule_outage(std::size_t target, double at, double repair_after);

  /// Fault-timing choice point for mc::Explorer: the outage fires at exactly
  /// one of `candidate_times`, decided by which of the tied selector events
  /// (all scheduled at the current time) executes first. Under the default
  /// engine order the first candidate wins, so normal runs stay
  /// deterministic; under exploration each candidate becomes a branch.
  void schedule_outage_choice(std::size_t target, std::vector<double> candidate_times,
                              double repair_after);

  // --- statistics -----------------------------------------------------------

  std::uint64_t outages_started() const { return outages_; }
  std::uint64_t repairs_completed() const { return repairs_; }
  /// Total injected downtime, truncated at the horizon: an outage still
  /// open at t_end only contributes up to t_end.
  double total_downtime() const { return downtime_; }

 private:
  struct Target {
    std::vector<hosts::CpuResource*> cpus;
    net::FlowNetwork* net = nullptr;
    std::vector<net::LinkId> links;
  };

  void schedule_failure(std::size_t target, double t_end);
  void apply(std::size_t target, bool up);
  double draw_lifetime();

  core::Engine& engine_;
  std::string stream_;
  std::vector<Target> targets_;
  bool started_ = false;
  double mtbf_ = 0;
  double mttr_ = 0;
  double weibull_shape_ = 0;  // 0 = exponential
  double weibull_scale_ = 0;
  std::uint64_t outages_ = 0;
  std::uint64_t repairs_ = 0;
  double downtime_ = 0;
};

}  // namespace lsds::middleware
