#include "middleware/dag.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <stdexcept>

#include "util/strings.hpp"

namespace lsds::middleware {

// --- Dag --------------------------------------------------------------

TaskId Dag::add_task(std::string name, double ops) {
  tasks_.push_back(Task{std::move(name), ops, {}, {}});
  return static_cast<TaskId>(tasks_.size() - 1);
}

bool Dag::reaches(TaskId from, TaskId target) const {
  std::deque<TaskId> frontier{from};
  std::vector<bool> seen(tasks_.size(), false);
  while (!frontier.empty()) {
    const TaskId t = frontier.front();
    frontier.pop_front();
    if (t == target) return true;
    if (seen[t]) continue;
    seen[t] = true;
    for (const auto& [s, bytes] : tasks_[t].succs) frontier.push_back(s);
  }
  return false;
}

void Dag::add_edge(TaskId from, TaskId to, double bytes) {
  assert(from < tasks_.size() && to < tasks_.size());
  if (from == to || reaches(to, from)) {
    throw std::invalid_argument("Dag::add_edge would create a cycle");
  }
  tasks_[from].succs.emplace_back(to, bytes);
  tasks_[to].preds.emplace_back(from, bytes);
}

std::vector<TaskId> Dag::topological_order() const {
  std::vector<std::size_t> indegree(tasks_.size(), 0);
  for (std::size_t t = 0; t < tasks_.size(); ++t) indegree[t] = tasks_[t].preds.size();
  std::deque<TaskId> ready;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    if (indegree[t] == 0) ready.push_back(static_cast<TaskId>(t));
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId t = ready.front();
    ready.pop_front();
    order.push_back(t);
    for (const auto& [s, bytes] : tasks_[t].succs) {
      if (--indegree[s] == 0) ready.push_back(s);
    }
  }
  assert(order.size() == tasks_.size() && "graph has a cycle");
  return order;
}

Dag Dag::chain(std::size_t n, double ops, double bytes) {
  Dag d;
  TaskId prev = kInvalidTask;
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId t = d.add_task(util::strformat("t%zu", i), ops);
    if (prev != kInvalidTask) d.add_edge(prev, t, bytes);
    prev = t;
  }
  return d;
}

Dag Dag::fork_join(std::size_t width, double root_ops, double branch_ops, double bytes) {
  Dag d;
  const TaskId root = d.add_task("fork", root_ops);
  const TaskId join = d.add_task("join", root_ops);
  for (std::size_t i = 0; i < width; ++i) {
    const TaskId b = d.add_task(util::strformat("branch%zu", i), branch_ops);
    d.add_edge(root, b, bytes);
    d.add_edge(b, join, bytes);
  }
  return d;
}

Dag Dag::random_layered(std::size_t layers, std::size_t width, double p, double mean_ops,
                        double mean_bytes, core::RngStream& rng) {
  Dag d;
  std::vector<std::vector<TaskId>> layer_tasks(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t w = 0; w < width; ++w) {
      layer_tasks[l].push_back(
          d.add_task(util::strformat("l%zu_%zu", l, w), rng.exponential(mean_ops)));
    }
  }
  for (std::size_t l = 1; l < layers; ++l) {
    for (TaskId t : layer_tasks[l]) {
      bool has_pred = false;
      for (TaskId prev : layer_tasks[l - 1]) {
        if (rng.bernoulli(p)) {
          d.add_edge(prev, t, rng.exponential(mean_bytes));
          has_pred = true;
        }
      }
      if (!has_pred) {  // guarantee layer connectivity
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(width) - 1));
        d.add_edge(layer_tasks[l - 1][pick], t, rng.exponential(mean_bytes));
      }
    }
  }
  return d;
}

// --- DagScheduler ------------------------------------------------------

const char* to_string(DagAlgorithm a) {
  switch (a) {
    case DagAlgorithm::kHeft: return "heft";
    case DagAlgorithm::kRoundRobin: return "round-robin";
  }
  return "?";
}

DagScheduler::DagScheduler(core::Engine& engine, const Dag& dag,
                           std::vector<Resource> resources, net::FlowNetwork* net,
                           DagAlgorithm algorithm)
    : engine_(engine),
      dag_(dag),
      resources_(std::move(resources)),
      net_(net),
      algorithm_(algorithm) {
  assert(!resources_.empty());
}

// Mean bandwidth between distinct resources; used for HEFT's rank
// estimates (actual transfers go through the real flow network).
namespace {
double mean_pair_bandwidth(const std::vector<DagScheduler::Resource>& res,
                           net::FlowNetwork* net) {
  if (!net || res.size() < 2) return std::numeric_limits<double>::infinity();
  // Approximation: the bandwidth of the narrowest link in the platform is a
  // reasonable a-priori comm estimate without solving flows.
  double narrowest = std::numeric_limits<double>::infinity();
  for (net::LinkId l = 0; l < net->link_count(); ++l) {
    narrowest = std::min(narrowest, net->link_bandwidth(l));
  }
  return narrowest;
}
}  // namespace

std::vector<std::size_t> DagScheduler::map_heft() const {
  const std::size_t n = dag_.task_count();
  const std::size_t r = resources_.size();

  // Mean execution time per task and mean comm time per edge byte.
  double speed_sum = 0;
  for (const auto& res : resources_) speed_sum += res.cpu->speed();
  const double mean_speed = speed_sum / static_cast<double>(r);
  const double bw = mean_pair_bandwidth(resources_, net_);

  // Upward ranks, computed in reverse topological order.
  const auto topo_order = dag_.topological_order();
  std::vector<double> rank(n, 0);
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    const TaskId t = *it;
    double best_succ = 0;
    for (const auto& [s, bytes] : dag_.successors(t)) {
      best_succ = std::max(best_succ, bytes / bw + rank[s]);
    }
    rank[t] = dag_.ops(t) / mean_speed + best_succ;
  }

  // Tasks by decreasing rank (stable for determinism).
  std::vector<TaskId> order(topo_order);
  std::stable_sort(order.begin(), order.end(),
                   [&](TaskId a, TaskId b) { return rank[a] > rank[b]; });

  // Greedy EFT placement with per-core ready times and data-ready times.
  std::vector<std::vector<double>> core_ready(r);
  for (std::size_t i = 0; i < r; ++i) core_ready[i].assign(resources_[i].cpu->cores(), 0.0);
  std::vector<double> finish(n, 0);
  std::vector<std::size_t> place(n, 0);

  for (TaskId t : order) {
    double best_eft = std::numeric_limits<double>::infinity();
    std::size_t best_r = 0;
    for (std::size_t i = 0; i < r; ++i) {
      // Data ready: all predecessor outputs arrived at resource i.
      double data_ready = 0;
      for (const auto& [p, bytes] : dag_.predecessors(t)) {
        const double comm = place[p] == i ? 0.0 : bytes / bw;
        data_ready = std::max(data_ready, finish[p] + comm);
      }
      const double core =
          *std::min_element(core_ready[i].begin(), core_ready[i].end());
      const double start = std::max(core, data_ready);
      const double eft = start + dag_.ops(t) / resources_[i].cpu->speed();
      if (eft < best_eft) {
        best_eft = eft;
        best_r = i;
      }
    }
    place[t] = best_r;
    finish[t] = best_eft;
    auto& cores = core_ready[best_r];
    *std::min_element(cores.begin(), cores.end()) = best_eft;
  }
  return place;
}

std::vector<std::size_t> DagScheduler::map_round_robin() const {
  std::vector<std::size_t> place(dag_.task_count(), 0);
  std::size_t next = 0;
  for (TaskId t : dag_.topological_order()) {
    place[t] = next;
    next = (next + 1) % resources_.size();
  }
  return place;
}

void DagScheduler::start(std::function<void(TaskId)> on_task_done) {
  on_done_ = std::move(on_task_done);
  placement_ = algorithm_ == DagAlgorithm::kHeft ? map_heft() : map_round_robin();
  result_.placement = placement_;
  result_.task_finish.assign(dag_.task_count(), 0);
  waiting_inputs_.assign(dag_.task_count(), 0);
  remaining_ = dag_.task_count();

  for (std::size_t t = 0; t < dag_.task_count(); ++t) {
    waiting_inputs_[t] = dag_.predecessors(static_cast<TaskId>(t)).size();
    if (waiting_inputs_[t] == 0) on_inputs_ready(static_cast<TaskId>(t));
  }
}

void DagScheduler::on_inputs_ready(TaskId t) {
  auto& res = resources_[placement_[t]];
  res.cpu->submit(static_cast<hosts::JobId>(t + 1), dag_.ops(t),
                  [this, t](hosts::JobId) { on_task_finished(t); });
}

void DagScheduler::on_task_finished(TaskId t) {
  result_.task_finish[t] = engine_.now();
  result_.makespan = std::max(result_.makespan, engine_.now());
  --remaining_;
  if (on_done_) on_done_(t);

  for (const auto& [succ, bytes] : dag_.successors(t)) {
    const std::size_t src_r = placement_[t];
    const std::size_t dst_r = placement_[succ];
    auto arrived = [this, succ = succ] {
      if (--waiting_inputs_[succ] == 0) on_inputs_ready(succ);
    };
    if (src_r == dst_r || !net_ || bytes <= 0) {
      engine_.schedule_in(0, arrived);  // local hand-off
    } else {
      ++result_.transfers;
      result_.bytes_moved += bytes;
      net_->start_flow(resources_[src_r].node, resources_[dst_r].node, bytes,
                       [arrived](net::FlowId) { arrived(); });
    }
  }
}

}  // namespace lsds::middleware
