// Space-shared cluster batch queue with EASY backfilling.
//
// The batch scheduler is the middleware component actually running on the
// clusters the surveyed simulators model ("how the middleware system
// schedules the jobs for execution inside a Grid system"). Jobs are rigid:
// they request a core count and hold it for their whole runtime.
//
//   kFcfs         — strict arrival order; a wide job at the head blocks
//                   everything behind it (the classic fragmentation loss).
//   kEasyBackfill — EASY (Lifka 1995): the head job gets a reservation at
//                   the earliest instant enough cores free up (using the
//                   *user-supplied runtime estimates* of running jobs);
//                   later jobs may jump the queue iff they fit now and
//                   cannot delay that reservation.
//
// Actual runtimes may differ from estimates, as real user estimates do;
// backfill decisions use estimates, execution uses reality.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/engine.hpp"
#include "hosts/job.hpp"
#include "stats/summary.hpp"

namespace lsds::middleware {

enum class BatchPolicy { kFcfs, kEasyBackfill };

const char* to_string(BatchPolicy p);

struct BatchJob {
  hosts::JobId id = hosts::kInvalidJob;
  unsigned cores = 1;
  double runtime_estimate = 0;  // what the user promised
  double runtime_actual = 0;    // what it really needs
};

class BatchQueue {
 public:
  using DoneFn = std::function<void(const BatchJob&)>;

  BatchQueue(core::Engine& engine, unsigned total_cores, BatchPolicy policy);

  void submit(BatchJob job, DoneFn on_done = nullptr);

  unsigned total_cores() const { return total_cores_; }
  unsigned free_cores() const { return free_cores_; }
  std::size_t queued() const { return queue_.size(); }
  std::size_t running() const { return running_.size(); }

  // --- statistics -----------------------------------------------------------

  std::uint64_t completed() const { return completed_; }
  std::uint64_t backfilled() const { return backfilled_; }
  const stats::SampleSet& waits() const { return waits_; }
  /// Core-seconds actually used / (total_cores * t).
  double utilization(double t_end) const;
  /// Start time of each job, by submission order (for fairness analysis).
  const std::vector<double>& start_times() const { return start_times_; }

 private:
  struct Pending {
    BatchJob job;
    double submit_time;
    std::size_t submit_index;
    DoneFn on_done;
  };
  struct Running {
    unsigned cores;
    double est_end;  // start + estimate (reservation bookkeeping)
  };

  void schedule();
  void start(Pending p);
  /// Earliest time >= now when `cores` become free, per running estimates,
  /// and the cores spare at that instant beyond the requirement.
  std::pair<double, unsigned> reservation_for(unsigned cores) const;

  core::Engine& engine_;
  unsigned total_cores_;
  unsigned free_cores_;
  BatchPolicy policy_;
  std::deque<Pending> queue_;
  std::vector<Running> running_;
  std::uint64_t completed_ = 0;
  std::uint64_t backfilled_ = 0;
  std::size_t next_index_ = 0;
  stats::SampleSet waits_;
  std::vector<double> start_times_;
  double used_core_seconds_ = 0;
};

}  // namespace lsds::middleware
