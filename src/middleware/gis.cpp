#include "middleware/gis.hpp"

#include <algorithm>

namespace lsds::middleware {

void GridInformationService::register_site(hosts::Site& site, double price,
                                           std::vector<std::string> tags) {
  entries_.push_back(Entry{&site, price, std::move(tags)});
}

bool GridInformationService::unregister_site(hosts::SiteId id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const Entry& e) { return e.site->id() == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::vector<hosts::Site*> GridInformationService::query(
    const std::function<bool(const Entry&)>& pred) const {
  std::vector<hosts::Site*> out;
  for (const auto& e : entries_) {
    if (pred(e)) out.push_back(e.site);
  }
  return out;
}

std::vector<hosts::Site*> GridInformationService::by_tag(const std::string& tag) const {
  return query([&](const Entry& e) {
    return std::find(e.tags.begin(), e.tags.end(), tag) != e.tags.end();
  });
}

hosts::Site* GridInformationService::least_loaded() const {
  hosts::Site* best = nullptr;
  double best_load = 0;
  for (const auto& e : entries_) {
    const auto& cpu = e.site->cpu();
    const double load =
        static_cast<double>(cpu.running() + cpu.queued()) / static_cast<double>(cpu.cores());
    if (!best || load < best_load) {
      best = e.site;
      best_load = load;
    }
  }
  return best;
}

hosts::Site* GridInformationService::cheapest() const {
  const Entry* best = nullptr;
  for (const auto& e : entries_) {
    if (!best || e.price_per_cpu_second < best->price_per_cpu_second) best = &e;
  }
  return best ? best->site : nullptr;
}

std::optional<GridInformationService::Entry> GridInformationService::find(
    hosts::SiteId id) const {
  for (const auto& e : entries_) {
    if (e.site->id() == id) return e;
  }
  return std::nullopt;
}

}  // namespace lsds::middleware
