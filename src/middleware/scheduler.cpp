#include "middleware/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/span.hpp"

namespace lsds::middleware {

const char* to_string(Heuristic h) {
  switch (h) {
    case Heuristic::kFifo: return "fifo";
    case Heuristic::kSjf: return "sjf";
    case Heuristic::kLjf: return "ljf";
    case Heuristic::kRoundRobin: return "round-robin";
    case Heuristic::kMinMin: return "min-min";
    case Heuristic::kMaxMin: return "max-min";
    case Heuristic::kSufferage: return "sufferage";
  }
  return "?";
}

BagScheduler::BagScheduler(core::Engine& engine, std::vector<hosts::CpuResource*> resources,
                           Heuristic h)
    : engine_(engine),
      resources_(std::move(resources)),
      heuristic_(h),
      per_resource_(resources_.size(), 0) {
  assert(!resources_.empty());
}

void BagScheduler::submit(hosts::Job job) {
  job.submit_time = engine_.now();
  bag_.push_back(std::move(job));
}

void BagScheduler::sort_bag_for_online() {
  switch (heuristic_) {
    case Heuristic::kSjf:
      std::stable_sort(bag_.begin(), bag_.end(),
                       [](const hosts::Job& a, const hosts::Job& b) { return a.ops < b.ops; });
      break;
    case Heuristic::kLjf:
      std::stable_sort(bag_.begin(), bag_.end(),
                       [](const hosts::Job& a, const hosts::Job& b) { return a.ops > b.ops; });
      break;
    default:
      break;  // FIFO keeps submission order
  }
}

void BagScheduler::run(JobDoneFn on_done) {
  on_done_ = std::move(on_done);
  switch (heuristic_) {
    case Heuristic::kMinMin:
    case Heuristic::kMaxMin:
    case Heuristic::kSufferage:
      run_static_mapping();
      return;
    case Heuristic::kRoundRobin: {
      // Pre-assign speed-blind; resources queue internally.
      while (!bag_.empty()) {
        hosts::Job job = std::move(bag_.front());
        bag_.pop_front();
        start_job(rr_next_, std::move(job));
        rr_next_ = (rr_next_ + 1) % resources_.size();
      }
      return;
    }
    default: {
      // Online pull: prime every idle core, refill on completion.
      sort_bag_for_online();
      for (std::size_t r = 0; r < resources_.size(); ++r) {
        while (!bag_.empty() && resources_[r]->has_idle_core()) pull_next(r);
      }
      return;
    }
  }
}

void BagScheduler::pull_next(std::size_t r) {
  if (bag_.empty()) return;
  hosts::Job job = std::move(bag_.front());
  bag_.pop_front();
  start_job(r, std::move(job));
}

void BagScheduler::start_job(std::size_t r, hosts::Job job) {
  job.dispatch_time = engine_.now();
  ++per_resource_[r];
  ++dispatched_;
  const bool online = heuristic_ == Heuristic::kFifo || heuristic_ == Heuristic::kSjf ||
                      heuristic_ == Heuristic::kLjf;
  const double ops = job.ops;
  const hosts::JobId id = job.id;
  resources_[r]->submit(
      id, ops, [this, r, job = std::move(job), online](hosts::JobId) mutable {
        job.finish_time = engine_.now();
        makespan_ = std::max(makespan_, job.finish_time);
        responses_.add(job.response_time());
        ++completed_;
        if (const auto& bus = obs::SpanBus::global(); bus.enabled()) {
          obs::Span s;
          s.kind = "dispatch";
          s.status = "done";
          s.id = job.id;
          s.t0 = job.dispatch_time;
          s.t1 = job.finish_time;
          s.quantity = job.ops;
          s.dst = static_cast<std::uint32_t>(r);
          s.name = resources_[r]->name().c_str();
          bus.publish(s);
        }
        if (on_done_) on_done_(job);
        if (online) pull_next(r);  // self-scheduling refill
      });
}

void BagScheduler::run_static_mapping() {
  const std::size_t n_res = resources_.size();
  // Per-core ready times for ECT bookkeeping (space-shared semantics).
  std::vector<std::vector<double>> core_ready(n_res);
  for (std::size_t r = 0; r < n_res; ++r) {
    core_ready[r].assign(resources_[r]->cores(), engine_.now());
  }
  auto best_core = [&](std::size_t r) {
    return static_cast<std::size_t>(
        std::min_element(core_ready[r].begin(), core_ready[r].end()) - core_ready[r].begin());
  };
  auto ect = [&](std::size_t r, double ops) {
    return core_ready[r][best_core(r)] + ops / resources_[r]->speed();
  };

  std::vector<hosts::Job> tasks(std::make_move_iterator(bag_.begin()),
                                std::make_move_iterator(bag_.end()));
  bag_.clear();
  std::vector<char> mapped(tasks.size(), 0);
  std::size_t left = tasks.size();

  while (left > 0) {
    std::size_t pick = tasks.size();
    std::size_t pick_res = 0;
    double pick_key = 0;
    bool first = true;

    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (mapped[t]) continue;
      // Best and second-best ECT across resources for this task.
      double best = std::numeric_limits<double>::infinity();
      double second = std::numeric_limits<double>::infinity();
      std::size_t best_r = 0;
      for (std::size_t r = 0; r < n_res; ++r) {
        const double e = ect(r, tasks[t].ops);
        if (e < best) {
          second = best;
          best = e;
          best_r = r;
        } else if (e < second) {
          second = e;
        }
      }
      double key = 0;
      switch (heuristic_) {
        case Heuristic::kMinMin: key = -best; break;            // smallest min-ECT wins
        case Heuristic::kMaxMin: key = best; break;             // largest min-ECT wins
        case Heuristic::kSufferage:
          key = (second == std::numeric_limits<double>::infinity()) ? 0 : second - best;
          break;
        default: assert(false);
      }
      if (first || key > pick_key) {
        first = false;
        pick = t;
        pick_res = best_r;
        pick_key = key;
      }
    }

    // Commit the pick.
    const std::size_t core = best_core(pick_res);
    core_ready[pick_res][core] += tasks[pick].ops / resources_[pick_res]->speed();
    mapped[pick] = 1;
    --left;
    start_job(pick_res, std::move(tasks[pick]));
  }
}

}  // namespace lsds::middleware
