// GridSim-style computational-economy resource broker.
//
// "GridSim is mainly used to study cost-time optimization algorithms for
// scheduling task farming applications on heterogeneous Grids, considering
// economy based distributed resource management, dealing with deadline and
// budget constraints." This broker implements the two classic
// deadline-and-budget-constrained (DBC) strategies:
//
//   kTimeOptimization — finish as early as possible while the *total* spend
//     stays within budget: assign each job to the resource with the best
//     estimated completion time whose marginal cost still fits.
//   kCostOptimization — spend as little as possible while every job's
//     estimated completion meets the deadline: fill cheapest resources
//     first, overflowing to costlier ones only when the deadline forces it.
//
// Jobs that cannot be placed within both constraints are rejected — the
// broker reports them rather than silently violating constraints.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "hosts/job.hpp"
#include "stats/summary.hpp"

namespace lsds::middleware {

enum class DbcStrategy { kTimeOptimization, kCostOptimization };

const char* to_string(DbcStrategy s);

struct EconomyResource {
  hosts::CpuResource* cpu = nullptr;
  double price_per_cpu_second = 0;  // currency / (core * second)
};

class EconomyBroker {
 public:
  struct Result {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    double planned_cost = 0;     // sum of accepted jobs' estimated costs
    double planned_makespan = 0; // max estimated completion across accepted
  };

  using JobDoneFn = std::function<void(const hosts::Job&)>;

  EconomyBroker(core::Engine& engine, std::vector<EconomyResource> resources, DbcStrategy s);

  void submit(hosts::Job job);

  /// Plan the whole bag under (budget, deadline), dispatch accepted jobs.
  /// `budget` caps total spend; `deadline` is an absolute simulation time.
  /// Either can be infinity for "unconstrained".
  Result run(double budget, double deadline, JobDoneFn on_done = nullptr);

  // --- outcome (valid after the engine drains) ----------------------------

  double actual_cost() const { return actual_cost_; }
  double makespan() const { return makespan_; }
  std::uint64_t completed() const { return completed_; }
  const std::vector<hosts::Job>& rejected_jobs() const { return rejected_; }

 private:
  /// Estimated runtime of a job on resource r (one core).
  double runtime_on(std::size_t r, const hosts::Job& j) const;

  core::Engine& engine_;
  std::vector<EconomyResource> resources_;
  DbcStrategy strategy_;
  std::vector<hosts::Job> bag_;
  std::vector<hosts::Job> rejected_;
  JobDoneFn on_done_;
  double actual_cost_ = 0;
  double makespan_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace lsds::middleware
