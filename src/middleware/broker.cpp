#include "middleware/broker.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace lsds::middleware {

const char* to_string(DbcStrategy s) {
  switch (s) {
    case DbcStrategy::kTimeOptimization: return "time-optimization";
    case DbcStrategy::kCostOptimization: return "cost-optimization";
  }
  return "?";
}

EconomyBroker::EconomyBroker(core::Engine& engine, std::vector<EconomyResource> resources,
                             DbcStrategy s)
    : engine_(engine), resources_(std::move(resources)), strategy_(s) {
  assert(!resources_.empty());
}

void EconomyBroker::submit(hosts::Job job) {
  job.submit_time = engine_.now();
  bag_.push_back(std::move(job));
}

double EconomyBroker::runtime_on(std::size_t r, const hosts::Job& j) const {
  return j.ops / resources_[r].cpu->speed();
}

EconomyBroker::Result EconomyBroker::run(double budget, double deadline, JobDoneFn on_done) {
  on_done_ = std::move(on_done);
  Result res;

  const std::size_t n_res = resources_.size();
  // Per-core ready times for completion estimates.
  std::vector<std::vector<double>> core_ready(n_res);
  for (std::size_t r = 0; r < n_res; ++r) {
    core_ready[r].assign(resources_[r].cpu->cores(), engine_.now());
  }
  auto best_core = [&](std::size_t r) {
    return static_cast<std::size_t>(
        std::min_element(core_ready[r].begin(), core_ready[r].end()) - core_ready[r].begin());
  };

  // Plan longest jobs first: the standard DBC ordering (placing big jobs
  // early gives better packing against the deadline).
  std::vector<hosts::Job> plan(std::make_move_iterator(bag_.begin()),
                               std::make_move_iterator(bag_.end()));
  bag_.clear();
  std::stable_sort(plan.begin(), plan.end(),
                   [](const hosts::Job& a, const hosts::Job& b) { return a.ops > b.ops; });

  // Cheapest-first resource order for cost optimization.
  std::vector<std::size_t> by_price(n_res);
  std::iota(by_price.begin(), by_price.end(), 0u);
  std::sort(by_price.begin(), by_price.end(), [&](std::size_t a, std::size_t b) {
    return resources_[a].price_per_cpu_second < resources_[b].price_per_cpu_second;
  });

  double spent = 0;
  for (auto& job : plan) {
    std::size_t chosen = n_res;  // sentinel: rejected
    double chosen_finish = 0, chosen_cost = 0;

    if (strategy_ == DbcStrategy::kTimeOptimization) {
      double best_finish = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < n_res; ++r) {
        const double rt = runtime_on(r, job);
        const double finish = core_ready[r][best_core(r)] + rt;
        const double cost = rt * resources_[r].price_per_cpu_second;
        if (spent + cost > budget) continue;
        if (finish > deadline) continue;
        if (finish < best_finish) {
          best_finish = finish;
          chosen = r;
          chosen_finish = finish;
          chosen_cost = cost;
        }
      }
    } else {  // kCostOptimization
      for (std::size_t r : by_price) {
        const double rt = runtime_on(r, job);
        const double finish = core_ready[r][best_core(r)] + rt;
        const double cost = rt * resources_[r].price_per_cpu_second;
        if (spent + cost > budget) continue;
        if (finish > deadline) continue;  // too slow/loaded: try pricier
        chosen = r;
        chosen_finish = finish;
        chosen_cost = cost;
        break;
      }
    }

    if (chosen == n_res) {
      ++res.rejected;
      rejected_.push_back(std::move(job));
      continue;
    }

    spent += chosen_cost;
    ++res.accepted;
    res.planned_cost = spent;
    res.planned_makespan = std::max(res.planned_makespan, chosen_finish);
    core_ready[chosen][best_core(chosen)] = chosen_finish;

    job.dispatch_time = engine_.now();
    const hosts::JobId id = job.id;
    const double ops = job.ops;
    const double price = resources_[chosen].price_per_cpu_second;
    auto* cpu = resources_[chosen].cpu;
    cpu->submit(id, ops,
                [this, job = std::move(job), price, ops, speed = cpu->speed()](
                    hosts::JobId) mutable {
                  job.finish_time = engine_.now();
                  makespan_ = std::max(makespan_, job.finish_time);
                  actual_cost_ += (ops / speed) * price;
                  ++completed_;
                  if (on_done_) on_done_(job);
                });
  }
  return res;
}

}  // namespace lsds::middleware
