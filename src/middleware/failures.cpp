#include "middleware/failures.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace lsds::middleware {

FailureInjector::FailureInjector(core::Engine& engine, std::string stream)
    : engine_(engine), stream_(std::move(stream)) {}

void FailureInjector::add_cpu(hosts::CpuResource& cpu) {
  targets_.push_back(Target{{&cpu}, nullptr, {}});
}

void FailureInjector::add_link(net::FlowNetwork& net, net::LinkId link) {
  targets_.push_back(Target{{}, &net, {link}});
}

void FailureInjector::add_site(std::vector<hosts::CpuResource*> cpus, net::FlowNetwork* net,
                               std::vector<net::LinkId> links) {
  targets_.push_back(Target{std::move(cpus), net, std::move(links)});
}

void FailureInjector::start(double mtbf, double mttr, double t_end) {
  start_weibull(/*shape=*/0, mtbf, mttr, t_end);
}

void FailureInjector::start_weibull(double shape, double mtbf, double mttr, double t_end) {
  if (started_) {
    throw std::logic_error(
        "FailureInjector::start called twice: every target would fail at "
        "double the intended rate");
  }
  started_ = true;
  mtbf_ = mtbf;
  mttr_ = mttr;
  weibull_shape_ = shape;
  // E[Weibull(k, lambda)] = lambda * Gamma(1 + 1/k); pick lambda for mean mtbf.
  weibull_scale_ = shape > 0 ? mtbf / std::tgamma(1.0 + 1.0 / shape) : 0;
  for (std::size_t t = 0; t < targets_.size(); ++t) schedule_failure(t, t_end);
}

double FailureInjector::draw_lifetime() {
  auto& rng = engine_.rng(stream_);
  if (weibull_shape_ > 0) return rng.weibull(weibull_shape_, weibull_scale_);
  return rng.exponential(mtbf_);
}

void FailureInjector::apply(std::size_t target, bool up) {
  Target& t = targets_[target];
  for (hosts::CpuResource* cpu : t.cpus) cpu->set_online(up);
  for (net::LinkId l : t.links) t.net->set_link_up(l, up);
}

void FailureInjector::schedule_outage(std::size_t target, double at, double repair_after) {
  if (target >= targets_.size()) {
    throw std::out_of_range("FailureInjector::schedule_outage: no such target");
  }
  engine_.schedule_at(at, [this, target, repair_after] {
    ++outages_;
    apply(target, false);
    if (repair_after < 0) return;  // permanent outage
    downtime_ += repair_after;
    engine_.schedule_in(repair_after, [this, target] {
      ++repairs_;
      apply(target, true);
    });
  });
}

void FailureInjector::schedule_outage_choice(std::size_t target,
                                             std::vector<double> candidate_times,
                                             double repair_after) {
  if (target >= targets_.size()) {
    throw std::out_of_range("FailureInjector::schedule_outage_choice: no such target");
  }
  if (candidate_times.empty()) return;
  // k selector events tied at the current instant share one decided flag:
  // whichever runs first commits its candidate; the rest are no-ops whose
  // orderings hash-prune to a single explored state.
  auto decided = std::make_shared<bool>(false);
  const double decision_time = engine_.now();
  for (double at : candidate_times) {
    engine_.schedule_at(decision_time, [this, target, at, repair_after, decided] {
      if (*decided) return;
      *decided = true;
      schedule_outage(target, at, repair_after);
    });
  }
}

void FailureInjector::schedule_failure(std::size_t target, double t_end) {
  const double fail_in = draw_lifetime();
  if (engine_.now() + fail_in > t_end) return;  // survives the horizon
  engine_.schedule_in(fail_in, [this, target, t_end] {
    ++outages_;
    apply(target, false);
    auto& r = engine_.rng(stream_);
    const double repair_in = r.exponential(mttr_);
    // Downtime past the horizon is not part of the experiment.
    downtime_ += std::min(repair_in, std::max(0.0, t_end - engine_.now()));
    engine_.schedule_in(repair_in, [this, target, t_end] {
      ++repairs_;
      apply(target, true);
      schedule_failure(target, t_end);  // next cycle
    });
  });
}

}  // namespace lsds::middleware
