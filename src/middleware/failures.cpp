#include "middleware/failures.hpp"

namespace lsds::middleware {

FailureInjector::FailureInjector(core::Engine& engine, std::string stream)
    : engine_(engine), stream_(std::move(stream)) {}

void FailureInjector::add_cpu(hosts::CpuResource& cpu) { cpus_.push_back({&cpu}); }

void FailureInjector::add_link(net::FlowNetwork& net, net::LinkId link) {
  links_.push_back({&net, link});
}

void FailureInjector::start(double mtbf, double mttr, double t_end) {
  const std::size_t n = cpus_.size() + links_.size();
  for (std::size_t t = 0; t < n; ++t) schedule_failure(t, mtbf, mttr, t_end);
}

void FailureInjector::apply(std::size_t target, bool up) {
  if (target < cpus_.size()) {
    cpus_[target].cpu->set_online(up);
  } else {
    auto& lt = links_[target - cpus_.size()];
    lt.net->set_link_up(lt.link, up);
  }
}

void FailureInjector::schedule_failure(std::size_t target, double mtbf, double mttr,
                                       double t_end) {
  auto& rng = engine_.rng(stream_);
  const double fail_in = rng.exponential(mtbf);
  if (engine_.now() + fail_in > t_end) return;  // survives the horizon
  engine_.schedule_in(fail_in, [this, target, mtbf, mttr, t_end] {
    ++outages_;
    apply(target, false);
    auto& r = engine_.rng(stream_);
    const double repair_in = r.exponential(mttr);
    downtime_ += repair_in;
    engine_.schedule_in(repair_in, [this, target, mtbf, mttr, t_end] {
      ++repairs_;
      apply(target, true);
      schedule_failure(target, mtbf, mttr, t_end);  // next cycle
    });
  });
}

}  // namespace lsds::middleware
