// MonALISA-like monitoring service.
//
// MONARC 2 "accepts both types of input (the monitoring data format is the
// one produced by MonALISA)". This component closes that loop inside
// LSDS-Sim: it samples per-site utilization metrics at a fixed period into
// the core trace format (core/trace.hpp), which TraceDriver can replay into
// another simulation — the taxonomy's "data sets collected by monitoring"
// input class.
//
// Emitted trace events, one per site per period:
//   <t> monitor site=<name> running=<n> queued=<n> disk_used=<bytes>
//       jobs_done=<n>
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/trace.hpp"
#include "hosts/site.hpp"

namespace lsds::middleware {

class MonitoringService {
 public:
  MonitoringService(core::Engine& engine, double period) : engine_(engine), period_(period) {}

  void watch(hosts::Site& site) { sites_.push_back(&site); }

  /// Start sampling at t = now + period, until t_end.
  void start(double t_end);

  const std::vector<core::TraceEvent>& samples() const { return samples_; }
  /// Render all samples in the trace file format.
  std::string to_trace_text() const;

 private:
  void sample(double t_end);

  core::Engine& engine_;
  double period_;
  std::vector<hosts::Site*> sites_;
  std::vector<core::TraceEvent> samples_;
};

}  // namespace lsds::middleware
