// DAG (workflow) scheduling — the "application scheduling" SimGrid was
// built for.
//
// "SimGrid is a simulation toolkit that provides core functionalities for
// the evaluation of scheduling algorithms in distributed applications in a
// heterogeneous, computational distributed environment." The hard version
// of that problem is a task graph: tasks with precedence edges carrying
// data, to be mapped onto heterogeneous resources so that compute and
// communication overlap well.
//
// This module provides:
//   * Dag — the task-graph model with cycle detection and generators for
//     the standard shapes (chain, fork-join, random layered);
//   * DagScheduler — static mapping via HEFT (Topcuoglu et al. 2002;
//     upward-rank list scheduling with earliest-finish-time insertion) or a
//     round-robin baseline, executed event-driven over CpuResources with
//     inter-task data moved through the flow network.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/rng.hpp"
#include "hosts/cpu.hpp"
#include "net/flow.hpp"

namespace lsds::middleware {

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

class Dag {
 public:
  TaskId add_task(std::string name, double ops);
  /// Data dependency: `to` needs `bytes` produced by `from`.
  /// Throws std::invalid_argument if it would close a cycle.
  void add_edge(TaskId from, TaskId to, double bytes);

  std::size_t task_count() const { return tasks_.size(); }
  double ops(TaskId t) const { return tasks_[t].ops; }
  const std::string& name(TaskId t) const { return tasks_[t].name; }
  const std::vector<std::pair<TaskId, double>>& successors(TaskId t) const {
    return tasks_[t].succs;
  }
  const std::vector<std::pair<TaskId, double>>& predecessors(TaskId t) const {
    return tasks_[t].preds;
  }
  /// Tasks in a valid topological order (stable across runs).
  std::vector<TaskId> topological_order() const;

  // --- generators -----------------------------------------------------------

  static Dag chain(std::size_t n, double ops, double bytes);
  static Dag fork_join(std::size_t width, double root_ops, double branch_ops, double bytes);
  /// `layers` layers of `width` tasks; each task depends on every task of
  /// the previous layer with probability `p` (at least one guaranteed).
  static Dag random_layered(std::size_t layers, std::size_t width, double p, double mean_ops,
                            double mean_bytes, core::RngStream& rng);

 private:
  struct Task {
    std::string name;
    double ops;
    std::vector<std::pair<TaskId, double>> succs;  // (task, bytes)
    std::vector<std::pair<TaskId, double>> preds;
  };
  bool reaches(TaskId from, TaskId target) const;

  std::vector<Task> tasks_;
};

enum class DagAlgorithm { kHeft, kRoundRobin };

const char* to_string(DagAlgorithm a);

class DagScheduler {
 public:
  struct Resource {
    hosts::CpuResource* cpu = nullptr;
    net::NodeId node = net::kInvalidNode;
  };

  /// `net` may be null: communication then costs zero (compute-only study).
  DagScheduler(core::Engine& engine, const Dag& dag, std::vector<Resource> resources,
               net::FlowNetwork* net, DagAlgorithm algorithm);

  struct Result {
    double makespan = 0;
    std::vector<double> task_finish;     // by TaskId
    std::vector<std::size_t> placement;  // TaskId -> resource index
    std::uint64_t transfers = 0;         // cross-resource edges moved
    double bytes_moved = 0;
  };

  /// Map all tasks, start execution; run Engine::run() to completion, then
  /// read result(). `on_done` fires per task completion.
  void start(std::function<void(TaskId)> on_task_done = nullptr);
  const Result& result() const { return result_; }

 private:
  std::vector<std::size_t> map_heft() const;
  std::vector<std::size_t> map_round_robin() const;
  void on_inputs_ready(TaskId t);
  void on_task_finished(TaskId t);

  core::Engine& engine_;
  const Dag& dag_;
  std::vector<Resource> resources_;
  net::FlowNetwork* net_;
  DagAlgorithm algorithm_;
  std::vector<std::size_t> placement_;
  std::vector<std::size_t> waiting_inputs_;  // per task: inputs not yet arrived
  std::function<void(TaskId)> on_done_;
  Result result_;
  std::size_t remaining_ = 0;
};

}  // namespace lsds::middleware
