// Replica optimization strategies (OptorSim's problem domain).
//
// "The objective of OptorSim is to investigate the stability and transient
// behavior of replication optimization methods." When a job at a site reads
// a file that is only available remotely, the site's strategy decides
// whether to create a local replica and which cached files to sacrifice:
//
//   kNone      — never replicate; always read remotely.
//   kLru       — always replicate, evicting least-recently-used files.
//   kLfu       — always replicate, evicting least-frequently-used files.
//   kEconomic  — replicate only when the incoming file's recent popularity
//                (accesses within a sliding window) exceeds the least
//                valuable eviction candidate's — OptorSim's economic model
//                in its binomial-prediction spirit.
//
// Strategies only *plan* (which files to evict, whether to accept); the
// data-grid facade executes the plan against StorageDevice + ReplicaCatalog,
// so planning stays side-effect free and unit-testable.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hosts/site.hpp"
#include "hosts/storage.hpp"

namespace lsds::middleware {

enum class ReplicationPolicy { kNone, kLru, kLfu, kEconomic };

const char* to_string(ReplicationPolicy p);

inline constexpr ReplicationPolicy kAllReplicationPolicies[] = {
    ReplicationPolicy::kNone,
    ReplicationPolicy::kLru,
    ReplicationPolicy::kLfu,
    ReplicationPolicy::kEconomic,
};

struct ReplicationPlan {
  std::vector<std::string> evictions;  // apply in order, then store the file
};

class ReplicationStrategy {
 public:
  virtual ~ReplicationStrategy() = default;
  virtual const char* name() const = 0;

  /// Popularity bookkeeping hook: called on *every* access a site makes,
  /// local or remote.
  virtual void on_access(hosts::SiteId site, const std::string& lfn) {
    (void)site;
    (void)lfn;
  }

  /// Decide whether `site` should locally replicate `lfn` (`bytes` large)
  /// given its disk contents. Returns the eviction plan, or nullopt to
  /// decline (or when room cannot be made).
  virtual std::optional<ReplicationPlan> plan_replication(hosts::SiteId site,
                                                          const hosts::StorageDevice& disk,
                                                          const std::string& lfn,
                                                          double bytes) = 0;
};

std::unique_ptr<ReplicationStrategy> make_replication_strategy(ReplicationPolicy p);

// --- implementations (exposed for unit tests) -------------------------------

class NoReplication final : public ReplicationStrategy {
 public:
  const char* name() const override { return "none"; }
  std::optional<ReplicationPlan> plan_replication(hosts::SiteId, const hosts::StorageDevice&,
                                                  const std::string&, double) override {
    return std::nullopt;
  }
};

/// Shared machinery for "always replicate, evict by ranking" policies.
class EvictingReplication : public ReplicationStrategy {
 public:
  std::optional<ReplicationPlan> plan_replication(hosts::SiteId site,
                                                  const hosts::StorageDevice& disk,
                                                  const std::string& lfn,
                                                  double bytes) override;

 protected:
  /// Rank eviction candidates, best-to-evict first.
  virtual std::vector<std::string> ranked_candidates(const hosts::StorageDevice& disk) const = 0;
};

class LruReplication final : public EvictingReplication {
 public:
  const char* name() const override { return "lru"; }

 protected:
  std::vector<std::string> ranked_candidates(const hosts::StorageDevice& disk) const override;
};

class LfuReplication final : public EvictingReplication {
 public:
  const char* name() const override { return "lfu"; }

 protected:
  std::vector<std::string> ranked_candidates(const hosts::StorageDevice& disk) const override;
};

class EconomicReplication final : public ReplicationStrategy {
 public:
  explicit EconomicReplication(std::size_t window = 100) : window_(window) {}
  const char* name() const override { return "economic"; }

  void on_access(hosts::SiteId site, const std::string& lfn) override;
  std::optional<ReplicationPlan> plan_replication(hosts::SiteId site,
                                                  const hosts::StorageDevice& disk,
                                                  const std::string& lfn,
                                                  double bytes) override;

  /// Recent-window access count of `lfn` at `site` (the "value" estimate).
  std::size_t value_of(hosts::SiteId site, const std::string& lfn) const;

 private:
  std::size_t window_;
  std::map<hosts::SiteId, std::deque<std::string>> history_;
};

}  // namespace lsds::middleware
