// Replica catalog: logical file name -> locations.
//
// The data-grid substrate shared by the OptorSim, ChicagoSim and MONARC
// facades. Maps each logical file to the set of sites holding a physical
// replica and selects the "best" source for a consumer site (closest by
// route latency, ties broken by site id for determinism).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hosts/site.hpp"
#include "net/routing.hpp"

namespace lsds::middleware {

class ReplicaCatalog {
 public:
  explicit ReplicaCatalog(net::RouteProvider& routing) : routing_(routing) {}

  /// Register/unregister a replica at a site (metadata only; callers manage
  /// the actual StorageDevice contents).
  void add_replica(const std::string& lfn, hosts::SiteId site, net::NodeId node);
  bool remove_replica(const std::string& lfn, hosts::SiteId site);

  bool exists(const std::string& lfn) const { return entries_.count(lfn) > 0; }
  bool has_replica_at(const std::string& lfn, hosts::SiteId site) const;
  std::size_t replica_count(const std::string& lfn) const;
  std::vector<hosts::SiteId> locations(const std::string& lfn) const;

  /// Closest replica (by route latency) to `consumer_node`; nullopt when no
  /// replica exists anywhere.
  std::optional<hosts::SiteId> best_source(const std::string& lfn,
                                           net::NodeId consumer_node) const;

  std::size_t file_count() const { return entries_.size(); }

 private:
  struct Location {
    hosts::SiteId site;
    net::NodeId node;
    bool operator<(const Location& o) const { return site < o.site; }
  };
  net::RouteProvider& routing_;
  std::map<std::string, std::set<Location>> entries_;
};

}  // namespace lsds::middleware
