// Replica catalog: logical file name -> locations.
//
// The data-grid substrate shared by the OptorSim, ChicagoSim and MONARC
// facades. Maps each logical file to the set of sites holding a physical
// replica and selects the "best" source for a consumer site. The base
// ranking is route latency (ties broken by site id for determinism); two
// optional refinements let placement decisions see the platform and the
// storage layer:
//
//   * set_zone_tree — zone-aware placement: replicas in the SAME ZoneTree
//     subtree as the consumer rank strictly ahead of replicas elsewhere
//     (intra-zone staging avoids the backbone), before latency applies.
//   * set_source_cost_fn — storage-aware placement: a per-site cost
//     (canonically StorageDevice::estimated_access_delay of the source
//     disk) added to the route latency, so a congested or tape-fronted
//     source loses to a quiet one even when it is closer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hosts/site.hpp"
#include "net/routing.hpp"
#include "net/zone.hpp"

namespace lsds::middleware {

class ReplicaCatalog {
 public:
  using SourceCostFn = std::function<double(hosts::SiteId)>;

  explicit ReplicaCatalog(net::RouteProvider& routing) : routing_(routing) {}

  /// Enable zone-aware ranking over `tree` (nullptr disables). The tree
  /// must be the provider's platform (node ids must agree) and outlive the
  /// catalog.
  void set_zone_tree(const net::ZoneTree* tree) { zone_tree_ = tree; }
  /// Additional per-source cost added to route latency (nullptr disables).
  /// Must be deterministic at any given simulation instant.
  void set_source_cost_fn(SourceCostFn fn) { source_cost_ = std::move(fn); }

  /// Register/unregister a replica at a site (metadata only; callers manage
  /// the actual StorageDevice contents).
  void add_replica(const std::string& lfn, hosts::SiteId site, net::NodeId node);
  bool remove_replica(const std::string& lfn, hosts::SiteId site);

  bool exists(const std::string& lfn) const { return entries_.count(lfn) > 0; }
  bool has_replica_at(const std::string& lfn, hosts::SiteId site) const;
  std::size_t replica_count(const std::string& lfn) const;
  std::vector<hosts::SiteId> locations(const std::string& lfn) const;

  /// Best replica for `consumer_node`: rank 0 = same ZoneTree subtree (when
  /// a tree is set), rank 1 = elsewhere; within a rank, minimum route
  /// latency + source cost (when a cost fn is set); remaining ties go to
  /// the lowest site id (ascending-id scan with strict '<'). nullopt when
  /// no replica exists anywhere.
  std::optional<hosts::SiteId> best_source(const std::string& lfn,
                                           net::NodeId consumer_node) const;

  std::size_t file_count() const { return entries_.size(); }

 private:
  struct Location {
    hosts::SiteId site;
    net::NodeId node;
    bool operator<(const Location& o) const { return site < o.site; }
  };
  net::RouteProvider& routing_;
  const net::ZoneTree* zone_tree_ = nullptr;
  SourceCostFn source_cost_;
  std::map<std::string, std::set<Location>> entries_;
};

}  // namespace lsds::middleware
