#include "middleware/batch_queue.hpp"

#include <algorithm>
#include <cassert>

namespace lsds::middleware {

const char* to_string(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kFcfs: return "fcfs";
    case BatchPolicy::kEasyBackfill: return "easy-backfill";
  }
  return "?";
}

BatchQueue::BatchQueue(core::Engine& engine, unsigned total_cores, BatchPolicy policy)
    : engine_(engine), total_cores_(total_cores), free_cores_(total_cores), policy_(policy) {
  assert(total_cores_ > 0);
}

void BatchQueue::submit(BatchJob job, DoneFn on_done) {
  assert(job.cores >= 1 && job.cores <= total_cores_);
  assert(job.runtime_actual > 0);
  if (job.runtime_estimate <= 0) job.runtime_estimate = job.runtime_actual;
  queue_.push_back(Pending{job, engine_.now(), next_index_++, std::move(on_done)});
  start_times_.push_back(-1);  // filled at start
  schedule();
}

std::pair<double, unsigned> BatchQueue::reservation_for(unsigned cores) const {
  // Walk running jobs by estimated end; accumulate freed cores until the
  // requirement fits. Returns (shadow time, spare cores at that time).
  std::vector<Running> by_end(running_);
  std::sort(by_end.begin(), by_end.end(),
            [](const Running& a, const Running& b) { return a.est_end < b.est_end; });
  unsigned avail = free_cores_;
  for (const Running& r : by_end) {
    if (avail >= cores) break;
    avail += r.cores;
    if (avail >= cores) return {r.est_end, avail - cores};
  }
  // Fits immediately (callers only ask when it does not) or never — the
  // assert in submit guarantees cores <= total, so "never" cannot happen.
  return {engine_.now(), avail >= cores ? avail - cores : 0};
}

void BatchQueue::start(Pending p) {
  free_cores_ -= p.job.cores;
  waits_.add(engine_.now() - p.submit_time);
  start_times_[p.submit_index] = engine_.now();
  running_.push_back(Running{p.job.cores, engine_.now() + p.job.runtime_estimate});
  used_core_seconds_ += p.job.cores * p.job.runtime_actual;
  const double est_end = engine_.now() + p.job.runtime_estimate;
  engine_.schedule_in(p.job.runtime_actual,
                      [this, job = p.job, cb = std::move(p.on_done), est_end]() mutable {
                        free_cores_ += job.cores;
                        // Remove the matching reservation entry.
                        auto it = std::find_if(running_.begin(), running_.end(),
                                               [&](const Running& r) {
                                                 return r.cores == job.cores &&
                                                        r.est_end == est_end;
                                               });
                        if (it != running_.end()) running_.erase(it);
                        ++completed_;
                        if (cb) cb(job);
                        schedule();
                      });
}

void BatchQueue::schedule() {
  // Start head jobs while they fit.
  while (!queue_.empty() && queue_.front().job.cores <= free_cores_) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(p));
  }
  if (queue_.empty() || policy_ == BatchPolicy::kFcfs) return;

  // EASY: reserve for the head, then backfill anything that fits now and
  // cannot delay the reservation. Jobs whose estimate ends before the
  // shadow time return their cores in time regardless; longer jobs may
  // only consume the cores spare at the shadow instant, and each such
  // admission shrinks that spare.
  const auto [shadow, spare0] = reservation_for(queue_.front().job.cores);
  unsigned spare = spare0;
  const double now = engine_.now();
  for (auto it = std::next(queue_.begin()); it != queue_.end();) {
    const BatchJob& j = it->job;
    const bool fits_now = j.cores <= free_cores_;
    const bool ends_before_shadow = now + j.runtime_estimate <= shadow + 1e-12;
    const bool within_spare = j.cores <= spare;
    if (fits_now && (ends_before_shadow || within_spare)) {
      if (!ends_before_shadow) spare -= j.cores;
      Pending p = std::move(*it);
      it = queue_.erase(it);
      ++backfilled_;
      start(std::move(p));
    } else {
      ++it;
    }
  }
}

double BatchQueue::utilization(double t_end) const {
  if (t_end <= 0) return 0;
  return used_core_seconds_ / (static_cast<double>(total_cores_) * t_end);
}

}  // namespace lsds::middleware
