#include "middleware/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/span.hpp"

namespace lsds::middleware {

namespace {
constexpr double kOpsEpsilon = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* to_string(RecoveryPolicyKind p) {
  switch (p) {
    case RecoveryPolicyKind::kRetry: return "retry";
    case RecoveryPolicyKind::kResubmit: return "resubmit";
    case RecoveryPolicyKind::kCheckpoint: return "checkpoint";
    case RecoveryPolicyKind::kReplicate: return "replicate";
  }
  return "?";
}

FaultTolerantScheduler::FaultTolerantScheduler(core::Engine& engine,
                                               std::vector<hosts::CpuResource*> resources,
                                               Heuristic h, RecoveryConfig cfg)
    : engine_(engine),
      resources_(std::move(resources)),
      heuristic_(h),
      cfg_(cfg),
      blacklist_until_(resources_.size(), 0.0) {
  assert(!resources_.empty());
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    hosts::CpuResource* cpu = resources_[r];
    cpu->set_failure_semantics(core::FailureSemantics::kFailStop);
    cpu->set_killed_handler([this, r](hosts::JobId id, double lost) {
      on_attempt_killed(r, id, lost);
    });
    cpu->set_online_observer([this](bool up) {
      if (up) try_dispatch();
    });
  }
}

void FaultTolerantScheduler::submit(hosts::Job job) {
  job.submit_time = engine_.now();
  TaskState t;
  t.job = std::move(job);
  tasks_.push_back(std::move(t));
  pending_.push_back(tasks_.size() - 1);
}

void FaultTolerantScheduler::run(JobDoneFn on_done, JobLostFn on_lost) {
  on_done_ = std::move(on_done);
  on_lost_ = std::move(on_lost);
  try_dispatch();
}

double FaultTolerantScheduler::backoff_delay(std::uint32_t fails) const {
  const double raw =
      cfg_.backoff_base * std::pow(cfg_.backoff_factor, static_cast<double>(fails - 1));
  return std::min(raw, cfg_.backoff_cap);
}

bool FaultTolerantScheduler::resource_eligible(std::size_t r, double now) const {
  return resources_[r]->online() && blacklist_until_[r] <= now;
}

void FaultTolerantScheduler::try_dispatch() {
  const double now = engine_.now();
  while (!pending_.empty()) {
    std::vector<std::size_t> free;
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      if (resource_eligible(r, now) && resources_[r]->has_idle_core()) free.push_back(r);
    }
    if (free.empty()) break;

    // Pick (task, resource) per the heuristic, over tasks past their
    // backoff gate and the currently free resources. ECT collapses to
    // remaining/speed because only idle cores are candidates.
    std::size_t pick_i = pending_.size();
    std::size_t pick_r = 0;
    double pick_key = 0;
    bool first = true;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const TaskState& t = tasks_[pending_[i]];
      if (t.not_before > now) continue;
      double best = kInf, second = kInf;
      std::size_t best_r = kNoPreference;
      if (t.preferred != kNoPreference) {
        // Retry-in-place: pinned to the resource that crashed.
        if (std::find(free.begin(), free.end(), t.preferred) == free.end()) continue;
        best = remaining_ops(t) / resources_[t.preferred]->speed();
        best_r = t.preferred;
      } else {
        for (std::size_t r : free) {
          const double e = remaining_ops(t) / resources_[r]->speed();
          if (e < best) {
            second = best;
            best = e;
            best_r = r;
          } else if (e < second) {
            second = e;
          }
        }
      }
      double key = 0;
      switch (heuristic_) {
        case Heuristic::kFifo:
        case Heuristic::kRoundRobin: key = -static_cast<double>(i); break;
        case Heuristic::kSjf: key = -remaining_ops(t); break;
        case Heuristic::kLjf: key = remaining_ops(t); break;
        case Heuristic::kMinMin: key = -best; break;
        case Heuristic::kMaxMin: key = best; break;
        case Heuristic::kSufferage: key = second == kInf ? 0 : second - best; break;
      }
      if (first || key > pick_key) {
        first = false;
        pick_i = i;
        pick_r = best_r;
        pick_key = key;
      }
    }
    if (first) break;  // every pending task is gated or pinned to a busy host

    if (heuristic_ == Heuristic::kRoundRobin &&
        tasks_[pending_[pick_i]].preferred == kNoPreference) {
      pick_r = free[rr_next_ % free.size()];
      ++rr_next_;
    }
    const std::size_t slot = pending_[pick_i];
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick_i));
    dispatch(slot, pick_r);
  }

  // Arm a wakeup for the earliest backoff/blacklist gate still pending.
  if (pending_.empty()) return;
  double wake = kInf;
  for (std::size_t slot : pending_) {
    if (tasks_[slot].not_before > now) wake = std::min(wake, tasks_[slot].not_before);
  }
  for (double b : blacklist_until_) {
    if (b > now) wake = std::min(wake, b);
  }
  if (wake < kInf) schedule_wakeup(wake);
}

void FaultTolerantScheduler::schedule_wakeup(double t) {
  const double now = engine_.now();
  if (wakeup_at_ > now && wakeup_at_ <= t) return;  // an earlier wakeup is armed
  wakeup_at_ = t;
  engine_.schedule_at(t, [this, t] {
    if (wakeup_at_ == t) {
      wakeup_at_ = -1;
      try_dispatch();
    }
  });
}

void FaultTolerantScheduler::dispatch(std::size_t slot, std::size_t resource) {
  TaskState& t = tasks_[slot];
  ++t.attempts;
  if (t.attempts == 1) {
    t.job.dispatch_time = engine_.now();
    t.job.start_time = engine_.now();
  }
  if (cfg_.policy == RecoveryPolicyKind::kRetry) t.preferred = resource;
  launch_copy(slot, resource);
  if (cfg_.policy == RecoveryPolicyKind::kReplicate) {
    const std::size_t k = std::max<std::size_t>(1, std::min(cfg_.replicas, resources_.size()));
    std::size_t copies = 1;
    const double now = engine_.now();
    for (std::size_t r = 0; r < resources_.size() && copies < k; ++r) {
      if (r == resource) continue;
      if (!resource_eligible(r, now) || !resources_[r]->has_idle_core()) continue;
      launch_copy(slot, r);
      ++copies;
    }
  }
}

void FaultTolerantScheduler::launch_copy(std::size_t slot, std::size_t resource) {
  TaskState& t = tasks_[slot];
  double segment = remaining_ops(t);
  double overhead = 0;
  if (cfg_.policy == RecoveryPolicyKind::kCheckpoint && cfg_.checkpoint_interval_ops > 0 &&
      segment > cfg_.checkpoint_interval_ops + kOpsEpsilon) {
    segment = cfg_.checkpoint_interval_ops;
    overhead = cfg_.checkpoint_overhead_ops;
  }
  const hosts::JobId attempt_id = next_attempt_id_++;
  active_.emplace(attempt_id, Attempt{slot, resource, segment, overhead});
  t.live_copies.push_back(attempt_id);
  resources_[resource]->submit(attempt_id, segment + overhead,
                               [this](hosts::JobId id) { on_attempt_done(id); });
}

void FaultTolerantScheduler::on_attempt_done(hosts::JobId attempt_id) {
  auto it = active_.find(attempt_id);
  if (it == active_.end()) return;  // superseded (cancelled replica)
  const Attempt a = it->second;
  active_.erase(it);
  TaskState& t = tasks_[a.slot];
  t.live_copies.erase(std::find(t.live_copies.begin(), t.live_copies.end(), attempt_id));

  if (cfg_.policy == RecoveryPolicyKind::kCheckpoint) {
    if (a.overhead_ops > 0) tracker_.overhead(a.overhead_ops);
    t.committed += a.segment_ops;
    if (remaining_ops(t) > kOpsEpsilon) {
      launch_copy(a.slot, a.resource);  // next segment on the core just freed
      return;
    }
  } else if (cfg_.policy == RecoveryPolicyKind::kReplicate) {
    // First copy to finish wins; cancel the rest, their progress is waste.
    const std::vector<hosts::JobId> losers = t.live_copies;
    for (hosts::JobId other : losers) {
      auto oit = active_.find(other);
      if (oit == active_.end()) continue;
      double done_ops = 0;
      resources_[oit->second.resource]->cancel(other, &done_ops);
      tracker_.work_lost(done_ops);
      active_.erase(oit);
    }
    t.live_copies.clear();
  }
  complete(a.slot);
  try_dispatch();
}

void FaultTolerantScheduler::on_attempt_killed(std::size_t resource, hosts::JobId attempt_id,
                                               double lost_ops) {
  auto it = active_.find(attempt_id);
  if (it == active_.end()) return;
  const Attempt a = it->second;
  active_.erase(it);
  ++kills_;
  tracker_.work_lost(lost_ops);
  TaskState& t = tasks_[a.slot];
  t.live_copies.erase(std::find(t.live_copies.begin(), t.live_copies.end(), attempt_id));
  // Surviving replicas keep the job alive; only the last death requeues.
  if (cfg_.policy == RecoveryPolicyKind::kReplicate && !t.live_copies.empty()) return;
  requeue(a.slot, resource);
  try_dispatch();
}

void FaultTolerantScheduler::requeue(std::size_t slot, std::size_t failed_resource) {
  TaskState& t = tasks_[slot];
  if (cfg_.max_attempts > 0 && t.attempts >= cfg_.max_attempts) {
    t.finished = true;
    ++lost_;
    tracker_.job_lost(t.attempts);
    publish_span(t, "lost");
    if (on_lost_) on_lost_(t.job);
    return;
  }
  const double now = engine_.now();
  switch (cfg_.policy) {
    case RecoveryPolicyKind::kRetry:
      t.preferred = failed_resource;
      t.not_before = now + backoff_delay(t.attempts);
      break;
    case RecoveryPolicyKind::kResubmit:
      blacklist_until_[failed_resource] =
          std::max(blacklist_until_[failed_resource], now + cfg_.blacklist_duration);
      t.not_before = now;
      break;
    case RecoveryPolicyKind::kCheckpoint:
    case RecoveryPolicyKind::kReplicate:
      t.not_before = now + backoff_delay(t.attempts);
      break;
  }
  pending_.push_back(slot);
}

void FaultTolerantScheduler::complete(std::size_t slot) {
  TaskState& t = tasks_[slot];
  t.finished = true;
  t.job.finish_time = engine_.now();
  makespan_ = std::max(makespan_, t.job.finish_time);
  responses_.add(t.job.response_time());
  ++completed_;
  tracker_.job_completed(t.job.ops, t.attempts);
  publish_span(t, "done");
  if (on_done_) on_done_(t.job);
}

void FaultTolerantScheduler::publish_span(const TaskState& t, const char* status) const {
  const auto& bus = obs::SpanBus::global();
  if (!bus.enabled()) return;
  obs::Span s;
  s.kind = "task";
  s.status = status;
  s.id = t.job.id;
  s.t0 = t.job.submit_time;
  s.t1 = engine_.now();
  s.quantity = t.job.ops;
  s.dst = t.attempts;  // attempt count: the dependability dimension of a task span
  bus.publish(s);
}

FaultTolerantScheduler::TaskView FaultTolerantScheduler::task_view(std::size_t slot) const {
  const TaskState& t = tasks_.at(slot);
  TaskView v;
  v.job_id = t.job.id;
  v.attempts = t.attempts;
  v.live_copies = t.live_copies.size();
  v.queued = std::find(pending_.begin(), pending_.end(), slot) != pending_.end();
  v.finished = t.finished;
  return v;
}

void FaultTolerantScheduler::state_digest(core::StateHash& h) const {
  h.mix(static_cast<std::uint64_t>(tasks_.size()));
  for (const TaskState& t : tasks_) {
    h.mix(static_cast<std::uint64_t>(t.job.id));
    h.mix(t.attempts);
    h.mix(t.committed);
    h.mix(t.not_before);
    h.mix(static_cast<std::uint64_t>(t.preferred));
    h.mix(static_cast<std::uint64_t>(t.live_copies.size()));
    for (hosts::JobId id : t.live_copies) h.mix(static_cast<std::uint64_t>(id));
    h.mix(t.finished);
  }
  h.mix(static_cast<std::uint64_t>(pending_.size()));
  for (std::size_t slot : pending_) h.mix(static_cast<std::uint64_t>(slot));
  std::vector<hosts::JobId> ids;
  ids.reserve(active_.size());
  for (const auto& [id, a] : active_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (hosts::JobId id : ids) {
    const Attempt& a = active_.at(id);
    h.mix(static_cast<std::uint64_t>(id));
    h.mix(static_cast<std::uint64_t>(a.slot));
    h.mix(static_cast<std::uint64_t>(a.resource));
    h.mix(a.segment_ops);
    h.mix(a.overhead_ops);
  }
  for (double b : blacklist_until_) h.mix(b);
  h.mix(static_cast<std::uint64_t>(next_attempt_id_));
  h.mix(static_cast<std::uint64_t>(rr_next_));
  h.mix(wakeup_at_);
  h.mix(static_cast<std::uint64_t>(completed_));
  h.mix(static_cast<std::uint64_t>(lost_));
  h.mix(static_cast<std::uint64_t>(kills_));
}

void FaultTolerantScheduler::finalize_availability(double t_end) {
  for (const hosts::CpuResource* cpu : resources_) {
    tracker_.resource_availability(cpu->name(), cpu->availability(t_end));
  }
}

}  // namespace lsds::middleware
