#include "middleware/forecast.hpp"

#include <cmath>

namespace lsds::middleware {

NwsForecaster::NwsForecaster(std::size_t error_horizon) : horizon_(error_horizon) {
  members_.push_back(std::make_unique<LastValuePredictor>());
  members_.push_back(std::make_unique<RunningMeanPredictor>());
  members_.push_back(std::make_unique<SlidingWindowPredictor>(5));
  members_.push_back(std::make_unique<SlidingWindowPredictor>(20));
  members_.push_back(std::make_unique<ExponentialSmoothingPredictor>(0.2));
  members_.push_back(std::make_unique<ExponentialSmoothingPredictor>(0.5));
  errors_.resize(members_.size());
  error_sums_.assign(members_.size(), 0.0);
}

std::size_t NwsForecaster::best_index() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < members_.size(); ++i) {
    if (error_sums_[i] < error_sums_[best]) best = i;
  }
  return best;
}

double NwsForecaster::predict() const { return members_[best_index()]->predict(); }

const char* NwsForecaster::best_name() const { return members_[best_index()]->name(); }

void NwsForecaster::observe(double v) {
  // Score the meta-forecast first (what we would have predicted).
  if (n_ > 0) err_sum_ += std::fabs(predict() - v);
  // Score every member against this observation, then let it learn.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (n_ > 0) {
      const double e = std::fabs(members_[i]->predict() - v);
      errors_[i].push_back(e);
      error_sums_[i] += e;
      if (errors_[i].size() > horizon_) {
        error_sums_[i] -= errors_[i].front();
        errors_[i].pop_front();
      }
    }
    members_[i]->observe(v);
  }
  ++n_;
}

}  // namespace lsds::middleware
