// Grid Information Service: resource registry and discovery.
//
// The middleware component every broker/scheduler consults — "brokers
// discovering and allocating resources to users" (GridSim). Sites register
// with attributes; queries filter/rank by load, speed, price or a custom
// predicate. Deliberately synchronous (registry lookups are not the
// phenomena these experiments study).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hosts/site.hpp"

namespace lsds::middleware {

class GridInformationService {
 public:
  struct Entry {
    hosts::Site* site = nullptr;
    double price_per_cpu_second = 0;
    std::vector<std::string> tags;
  };

  void register_site(hosts::Site& site, double price = 0, std::vector<std::string> tags = {});
  bool unregister_site(hosts::SiteId id);

  std::size_t size() const { return entries_.size(); }
  const std::vector<Entry>& all() const { return entries_; }

  /// Sites matching a predicate.
  std::vector<hosts::Site*> query(const std::function<bool(const Entry&)>& pred) const;
  /// Sites carrying a given tag.
  std::vector<hosts::Site*> by_tag(const std::string& tag) const;
  /// Site with the most idle cores (ties: lowest id); nullptr when none idle.
  hosts::Site* least_loaded() const;
  /// Cheapest site (ties: lowest id).
  hosts::Site* cheapest() const;
  /// Entry lookup.
  std::optional<Entry> find(hosts::SiteId id) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace lsds::middleware
