// Load forecasting, Network-Weather-Service style.
//
// Bricks studied "resource scheduling algorithms [and] programming modules
// for scheduling" in global computing systems, where the scheduler picks a
// server using *predicted* (stale, sampled) load rather than oracle
// knowledge — the role NWS played in that ecosystem. This module provides
// the classic single-series predictors plus the NWS meta-predictor that
// continuously tracks every predictor's error and forecasts with the
// current best.
//
// Used by the Bricks facade's forecast-based server selection and usable
// standalone on any monitored series (middleware/monitor.hpp samples).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace lsds::middleware {

class Predictor {
 public:
  virtual ~Predictor() = default;
  virtual const char* name() const = 0;
  /// Forecast the next observation. Defined after >= 1 observation;
  /// returns 0 before that.
  virtual double predict() const = 0;
  /// Feed the actual next observation.
  virtual void observe(double v) = 0;
};

/// Tomorrow equals today.
class LastValuePredictor final : public Predictor {
 public:
  const char* name() const override { return "last-value"; }
  double predict() const override { return last_; }
  void observe(double v) override { last_ = v; }

 private:
  double last_ = 0;
};

/// Mean of everything seen.
class RunningMeanPredictor final : public Predictor {
 public:
  const char* name() const override { return "running-mean"; }
  double predict() const override { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  void observe(double v) override {
    sum_ += v;
    ++n_;
  }

 private:
  double sum_ = 0;
  std::size_t n_ = 0;
};

/// Mean of the last k observations.
class SlidingWindowPredictor final : public Predictor {
 public:
  explicit SlidingWindowPredictor(std::size_t k) : k_(k), name_("window-" + std::to_string(k)) {}
  const char* name() const override { return name_.c_str(); }
  double predict() const override {
    return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size());
  }
  void observe(double v) override {
    window_.push_back(v);
    sum_ += v;
    if (window_.size() > k_) {
      sum_ -= window_.front();
      window_.pop_front();
    }
  }

 private:
  std::size_t k_;
  std::string name_;
  std::deque<double> window_;
  double sum_ = 0;
};

/// s <- a*v + (1-a)*s.
class ExponentialSmoothingPredictor final : public Predictor {
 public:
  explicit ExponentialSmoothingPredictor(double alpha)
      : alpha_(alpha), name_("exp-" + std::to_string(alpha).substr(0, 4)) {}
  const char* name() const override { return name_.c_str(); }
  double predict() const override { return s_; }
  void observe(double v) override {
    if (!primed_) {
      s_ = v;
      primed_ = true;
      return;
    }
    s_ = alpha_ * v + (1.0 - alpha_) * s_;
  }

 private:
  double alpha_;
  std::string name_;
  double s_ = 0;
  bool primed_ = false;
};

/// The NWS meta-predictor: runs a battery of predictors, scores each by
/// cumulative absolute error over a sliding horizon, and forecasts with
/// the current winner.
class NwsForecaster final : public Predictor {
 public:
  /// Default battery: last-value, running-mean, window-5, window-20,
  /// exp-0.2, exp-0.5. `error_horizon` bounds the error memory so the
  /// winner can change with the series' regime.
  explicit NwsForecaster(std::size_t error_horizon = 50);

  const char* name() const override { return "nws"; }
  double predict() const override;
  void observe(double v) override;

  /// Name of the currently winning member predictor.
  const char* best_name() const;
  /// Mean absolute error of the meta-forecast so far.
  double mean_abs_error() const { return n_ ? err_sum_ / static_cast<double>(n_) : 0.0; }

 private:
  std::size_t best_index() const;

  std::size_t horizon_;
  std::vector<std::unique_ptr<Predictor>> members_;
  std::vector<std::deque<double>> errors_;       // per member, recent |error|
  std::vector<double> error_sums_;
  double err_sum_ = 0;  // error of the meta-forecast itself
  std::size_t n_ = 0;
};

}  // namespace lsds::middleware
