#include "middleware/monitor.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace lsds::middleware {

void MonitoringService::start(double t_end) {
  engine_.schedule_in(period_, [this, t_end] { sample(t_end); });
}

void MonitoringService::sample(double t_end) {
  const double now = engine_.now();
  for (hosts::Site* site : sites_) {
    core::TraceEvent ev;
    ev.time = now;
    ev.kind = "monitor";
    ev.attrs = {
        {"site", site->name()},
        {"running", util::strformat("%zu", site->cpu().running())},
        {"queued", util::strformat("%zu", site->cpu().queued())},
        {"disk_used", util::strformat("%.0f", site->disk().used())},
        {"jobs_done", util::strformat("%llu",
                                      static_cast<unsigned long long>(site->cpu().jobs_completed()))},
    };
    samples_.push_back(std::move(ev));
  }
  if (now + period_ <= t_end) {
    engine_.schedule_in(period_, [this, t_end] { sample(t_end); });
  }
}

std::string MonitoringService::to_trace_text() const {
  std::ostringstream out;
  core::TraceWriter w(out);
  w.write_comment("MonALISA-like monitoring samples (lsds)");
  for (const auto& ev : samples_) w.write(ev);
  return out.str();
}

}  // namespace lsds::middleware
