// Recovery policies and fault-tolerant scheduling.
//
// Under fail-stop crash semantics (core/failure.hpp) an outage *loses*
// work; this layer decides how the work comes back. Four classic policies
// from the dependability literature, composable with every BagScheduler
// heuristic:
//
//   kRetry      — retry in place: the job returns to the resource that
//                 crashed, after an exponential backoff (capped attempts).
//   kResubmit   — resubmit elsewhere: the crashed resource is temporarily
//                 blacklisted and the job is redispatched to another host.
//   kCheckpoint — periodic checkpoint/restart: the job runs as segments of
//                 `checkpoint_interval_ops`; each committed checkpoint costs
//                 `checkpoint_overhead_ops` extra work, and a crash only
//                 loses the progress since the last commit.
//   kReplicate  — k-replication: up to k copies run on distinct resources;
//                 the first to finish wins and the rest are cancelled.
//
// FaultTolerantScheduler re-implements BagScheduler's dispatch heuristics
// (fifo/sjf/ljf/round-robin plus the ECT family evaluated dynamically over
// the currently free resources) on top of whichever policy is configured,
// and keeps the dependability ledger (stats/dependability.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/hash.hpp"
#include "hosts/cpu.hpp"
#include "hosts/job.hpp"
#include "middleware/scheduler.hpp"
#include "stats/dependability.hpp"
#include "stats/summary.hpp"

namespace lsds::middleware {

enum class RecoveryPolicyKind { kRetry, kResubmit, kCheckpoint, kReplicate };

const char* to_string(RecoveryPolicyKind p);

inline constexpr RecoveryPolicyKind kAllRecoveryPolicies[] = {
    RecoveryPolicyKind::kRetry,
    RecoveryPolicyKind::kResubmit,
    RecoveryPolicyKind::kCheckpoint,
    RecoveryPolicyKind::kReplicate,
};

struct RecoveryConfig {
  RecoveryPolicyKind policy = RecoveryPolicyKind::kRetry;

  /// Backoff before re-dispatching a killed job: base * factor^(fails-1),
  /// capped. Applies to kRetry, kCheckpoint and kReplicate respawns.
  double backoff_base = 1.0;
  double backoff_factor = 2.0;
  double backoff_cap = 60.0;
  /// Dispatch budget per job; a job killed on its max_attempts-th dispatch
  /// is abandoned (reported lost). 0 = unlimited.
  std::size_t max_attempts = 0;

  /// kResubmit: how long a crashed resource stays off-limits.
  double blacklist_duration = 30.0;

  /// kCheckpoint: ops between commits (0 = one segment, i.e. pure restart)
  /// and the extra ops charged per committed checkpoint.
  double checkpoint_interval_ops = 0;
  double checkpoint_overhead_ops = 0;

  /// kReplicate: copies per job (clamped to the resource count; fewer run
  /// when fewer resources are free).
  std::size_t replicas = 2;
};

class FaultTolerantScheduler {
 public:
  using JobDoneFn = std::function<void(const hosts::Job&)>;
  using JobLostFn = std::function<void(const hosts::Job&)>;

  /// Puts every resource into kFailStop semantics and installs the killed /
  /// online observers. The scheduler must outlive the engine run.
  FaultTolerantScheduler(core::Engine& engine, std::vector<hosts::CpuResource*> resources,
                         Heuristic h, RecoveryConfig cfg);

  /// Add a task to the bag (before run()).
  void submit(hosts::Job job);

  /// Dispatch the bag; `on_done` fires per completion, `on_lost` per job
  /// abandoned after max_attempts. Call Engine::run() afterwards.
  void run(JobDoneFn on_done = nullptr, JobLostFn on_lost = nullptr);

  // --- results (valid once the engine drained) -----------------------------

  double makespan() const { return makespan_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t lost() const { return lost_; }
  /// Fail-stop kills observed (attempt granularity; replicate copies count
  /// individually).
  std::uint64_t kills() const { return kills_; }
  const stats::SampleSet& response_times() const { return responses_; }
  stats::DependabilityTracker& dependability() { return tracker_; }
  const stats::DependabilityTracker& dependability() const { return tracker_; }

  /// Record per-resource availability over [0, t_end] into the tracker
  /// (call after the run, with the experiment horizon).
  void finalize_availability(double t_end);

  // --- exploration hooks (src/mc/) ------------------------------------------

  /// Read-only snapshot of one task's recovery state, the granularity the
  /// mc invariants reason at: a live task is queued xor has copies in
  /// flight xor is gated on a backoff; a finished one is done or lost.
  struct TaskView {
    hosts::JobId job_id = 0;
    std::uint32_t attempts = 0;
    std::size_t live_copies = 0;  // attempt ids currently in flight
    bool queued = false;          // waiting in the pending bag
    bool finished = false;        // completed or abandoned
  };
  std::size_t task_count() const { return tasks_.size(); }
  TaskView task_view(std::size_t slot) const;
  const RecoveryConfig& config() const { return cfg_; }

  /// Fold every piece of mutable scheduler state into `h` — the model half
  /// of the explorer's state fingerprint. Unordered containers are visited
  /// in sorted key order so equal states always digest equal.
  void state_digest(core::StateHash& h) const;

 private:
  static constexpr std::size_t kNoPreference = std::numeric_limits<std::size_t>::max();

  struct TaskState {
    hosts::Job job;
    std::uint32_t attempts = 0;  // dispatch rounds so far
    double committed = 0;        // checkpointed ops
    double not_before = 0;       // backoff gate
    std::size_t preferred = kNoPreference;  // kRetry: pinned resource
    std::vector<hosts::JobId> live_copies;  // kReplicate: attempt ids in flight
    bool finished = false;
  };

  struct Attempt {
    std::size_t slot;      // index into tasks_
    std::size_t resource;  // index into resources_
    double segment_ops;    // demand of this submission (checkpoint segment)
    double overhead_ops;   // checkpoint overhead charged in this submission
  };

  void try_dispatch();
  void dispatch(std::size_t slot, std::size_t resource);
  void launch_copy(std::size_t slot, std::size_t resource);
  void on_attempt_done(hosts::JobId attempt_id);
  void on_attempt_killed(std::size_t resource, hosts::JobId attempt_id, double lost_ops);
  void requeue(std::size_t slot, std::size_t failed_resource);
  void complete(std::size_t slot);
  /// Publish a finished task span (done/lost) to the observability bus.
  void publish_span(const TaskState& t, const char* status) const;
  void schedule_wakeup(double t);
  double backoff_delay(std::uint32_t fails) const;
  bool resource_eligible(std::size_t r, double now) const;
  double remaining_ops(const TaskState& t) const { return t.job.ops - t.committed; }

  core::Engine& engine_;
  std::vector<hosts::CpuResource*> resources_;
  Heuristic heuristic_;
  RecoveryConfig cfg_;

  std::vector<TaskState> tasks_;
  std::vector<std::size_t> pending_;  // task slots awaiting dispatch, FIFO order
  std::unordered_map<hosts::JobId, Attempt> active_;
  std::vector<double> blacklist_until_;
  hosts::JobId next_attempt_id_ = 1;
  std::size_t rr_next_ = 0;
  double wakeup_at_ = -1;

  JobDoneFn on_done_;
  JobLostFn on_lost_;
  double makespan_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t kills_ = 0;
  stats::SampleSet responses_;
  stats::DependabilityTracker tracker_;
};

}  // namespace lsds::middleware
