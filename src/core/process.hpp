// Process-oriented modeling layer on C++20 coroutines.
//
// MONARC 2 is "built based on a process oriented approach for discrete event
// simulation … Threaded objects or 'Active Objects' allow a natural way to
// map the specific behavior of distributed data processing into the
// simulation program". LSDS-Sim provides the same modeling style with
// coroutines instead of kernel threads: a Process is a resumable function
// whose suspension points are simulation-time operations —
//
//   Process worker(Engine& eng, Resource& cpu) {
//     co_await delay(eng, 1.5);            // hold for simulated time
//     co_await cpu.acquire(2);             // wait for 2 CPU units
//     ...
//     cpu.release(2);
//   }
//
// SimGrid-style agents communicating over channels are expressed with
// Channel<T> (typed, FIFO); Condition provides broadcast wakeups.
//
// Lifetime rules:
//  * a coroutine whose first parameter is Engine& (or a member coroutine
//    whose first declared parameter is Engine&) is adopted by that engine;
//  * frames self-destroy on completion; the engine destroys still-suspended
//    frames when it is itself destroyed;
//  * Resources/Channels/Conditions must outlive the processes awaiting them.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <exception>
#include <utility>

#include "core/engine.hpp"

namespace lsds::core {

/// Detached handle type for simulation processes. The returned object is a
/// token only — the frame manages its own lifetime (see file comment).
class Process {
 public:
  struct promise_type {
    Engine* engine = nullptr;

    // Free-function coroutine: Process f(Engine&, ...).
    template <typename... Args>
    explicit promise_type(Engine& e, Args&&...) : engine(&e) {}
    // Member coroutine: Process C::f(Engine&, ...) — implicit object first.
    template <typename Obj, typename... Args>
    promise_type(Obj&, Engine& e, Args&&...) : engine(&e) {}

    Process get_return_object() {
      auto h = std::coroutine_handle<promise_type>::from_promise(*this);
      engine->adopt_coroutine(h);
      return Process{};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        h.promise().engine->drop_coroutine(h);
        h.destroy();  // legal: the coroutine is suspended here
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }  // a crashed process is a model bug
  };
};

/// co_await delay(eng, dt): resume after dt simulated seconds.
struct DelayAwaiter {
  Engine& engine;
  SimTime dt;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.schedule_in(dt, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};
inline DelayAwaiter delay(Engine& engine, SimTime dt) { return {engine, dt}; }

/// Counted resource with FIFO admission (CPU slots, disk drives, licenses…).
class Resource {
 public:
  Resource(Engine& engine, double capacity) : engine_(engine), capacity_(capacity) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  class AcquireAwaiter {
   public:
    AcquireAwaiter(Resource& res, double amount) : res_(res), amount_(amount) {}
    bool await_ready() {
      if (res_.waiters_.empty() && res_.fits(amount_)) {
        res_.in_use_ += amount_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { res_.waiters_.push_back({amount_, h}); }
    void await_resume() const noexcept {}

   private:
    Resource& res_;
    double amount_;
  };

  /// co_await res.acquire(n). FIFO: a large request at the head blocks
  /// smaller ones behind it (no starvation).
  AcquireAwaiter acquire(double amount = 1) {
    assert(amount <= capacity_ && "request can never be satisfied");
    return AcquireAwaiter{*this, amount};
  }

  void release(double amount = 1) {
    in_use_ -= amount;
    if (in_use_ < 0) in_use_ = 0;
    grant();
  }

  double capacity() const { return capacity_; }
  double in_use() const { return in_use_; }
  double available() const { return capacity_ - in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  struct Waiter {
    double amount;
    std::coroutine_handle<> handle;
  };

  bool fits(double amount) const { return in_use_ + amount <= capacity_ + 1e-9; }

  void grant() {
    while (!waiters_.empty() && fits(waiters_.front().amount)) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      in_use_ += w.amount;
      // Resume via the event queue (not inline) so wakeup order is part of
      // the deterministic event order and release() never recurses.
      engine_.schedule_in(0, [h = w.handle] { h.resume(); });
    }
  }

  Engine& engine_;
  double capacity_;
  double in_use_ = 0;
  std::deque<Waiter> waiters_;
};

/// Typed FIFO channel: SimGrid's "agents interact by sending and receiving
/// events via communication channels". Senders never block; receivers
/// co_await.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(engine) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T value) {
    items_.push_back(std::move(value));
    match();
  }

  class ReceiveAwaiter {
   public:
    explicit ReceiveAwaiter(Channel& ch) : ch_(ch) {}
    bool await_ready() {
      if (ch_.receivers_.empty() && ch_.reserved_ == 0 && !ch_.items_.empty()) {
        fast_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ch_.receivers_.push_back(h);
      ch_.match();
    }
    T await_resume() {
      if (!fast_) --ch_.reserved_;
      T v = std::move(ch_.items_.front());
      ch_.items_.pop_front();
      return v;
    }

   private:
    Channel& ch_;
    bool fast_ = false;
  };

  /// co_await ch.receive() -> T.
  ReceiveAwaiter receive() { return ReceiveAwaiter{*this}; }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t waiting_receivers() const { return receivers_.size(); }

 private:
  void match() {
    while (items_.size() > reserved_ && !receivers_.empty()) {
      auto h = receivers_.front();
      receivers_.pop_front();
      ++reserved_;
      engine_.schedule_in(0, [h] { h.resume(); });
    }
  }

  Engine& engine_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> receivers_;
  std::size_t reserved_ = 0;  // items earmarked for already-resumed receivers

  friend class ReceiveAwaiter;
};

/// Broadcast wakeup primitive.
class Condition {
 public:
  explicit Condition(Engine& engine) : engine_(engine) {}

  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  struct WaitAwaiter {
    Condition& cond;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { cond.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  /// co_await cond.wait(): blocks until notify_one/notify_all.
  WaitAwaiter wait() { return WaitAwaiter{*this}; }

  void notify_one() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.pop_front();
    engine_.schedule_in(0, [h] { h.resume(); });
  }

  void notify_all() {
    for (auto h : waiters_) engine_.schedule_in(0, [h] { h.resume(); });
    waiters_.clear();
  }

  std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace lsds::core
