#include "core/parallel.hpp"

#include <algorithm>
#include <cassert>

namespace lsds::core {

ParallelEngine::ParallelEngine(Config cfg)
    : cfg_(cfg),
      inboxes_(cfg.num_lps),
      inbox_mu_(cfg.num_lps),
      pool_(cfg.num_threads) {
  assert(cfg.num_lps > 0 && cfg.lookahead > 0);
  lps_.reserve(cfg.num_lps);
  for (unsigned i = 0; i < cfg.num_lps; ++i) {
    // Per-LP seeds derived from the master seed; stable across thread counts.
    std::uint64_t s = cfg.seed;
    for (unsigned k = 0; k <= i; ++k) splitmix64(s);
    lps_.emplace_back(new Lp(*this, i, cfg.queue, s));
  }
}

ParallelEngine::~ParallelEngine() = default;

ParallelEngine::Lp::Lp(ParallelEngine& parent, unsigned index, QueueKind kind, std::uint64_t seed)
    : parent_(parent), index_(index), queue_(make_event_queue(kind)), rng_(seed) {}

void ParallelEngine::Lp::schedule_at(SimTime t, EventFn fn) {
  if (t < now_) t = now_;
  queue_->push(EventRecord{t, next_seq_++, std::move(fn)});
}

void ParallelEngine::Lp::send(unsigned dst_lp, SimTime t, EventFn fn) {
  assert(dst_lp < parent_.num_lps());
  if (dst_lp == index_) {
    schedule_at(t, std::move(fn));
    return;
  }
  // Conservative correctness: a message must not arrive inside the window
  // that is currently being processed in parallel.
  if (t < parent_.window_end_) {
    t = parent_.window_end_;
    parent_.la_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  CrossMessage msg{t, index_, next_seq_++, std::move(fn)};
  {
    std::lock_guard lock(parent_.inbox_mu_[dst_lp]);
    parent_.inboxes_[dst_lp].push_back(std::move(msg));
  }
  // cross_messages is tallied at delivery time (single-threaded phase).
}

void ParallelEngine::Lp::run_window(SimTime window_end, bool final_window) {
  while (!queue_->empty()) {
    const SimTime t = queue_->min_time();
    if (final_window ? (t > window_end) : (t >= window_end)) break;
    EventRecord ev = queue_->pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
  }
  now_ = window_end;
}

void ParallelEngine::deliver_inboxes() {
  for (unsigned dst = 0; dst < num_lps(); ++dst) {
    auto& inbox = inboxes_[dst];
    if (inbox.empty()) continue;
    // Deterministic merge independent of sender thread interleaving.
    std::sort(inbox.begin(), inbox.end(), [](const CrossMessage& a, const CrossMessage& b) {
      if (a.time != b.time) return a.time < b.time;
      if (a.src_lp != b.src_lp) return a.src_lp < b.src_lp;
      return a.src_seq < b.src_seq;
    });
    stats_.cross_messages += inbox.size();
    for (CrossMessage& m : inbox) {
      lps_[dst]->schedule_at(m.time, std::move(m.fn));
    }
    inbox.clear();
  }
}

ParallelEngine::Stats ParallelEngine::run_until(SimTime t_end) {
  for (;;) {
    bool any_pending = false;
    for (auto& lp : lps_) {
      if (!lp->queue_->empty()) {
        any_pending = true;
        break;
      }
    }
    if (!any_pending || window_start_ >= t_end) break;

    window_end_ = std::min(window_start_ + cfg_.lookahead, t_end);
    const bool final_window = (window_end_ >= t_end);

    for (auto& lp : lps_) {
      Lp* p = lp.get();
      const SimTime we = window_end_;
      pool_.submit([p, we, final_window] { p->run_window(we, final_window); });
    }
    pool_.wait_idle();  // barrier

    deliver_inboxes();  // single-threaded phase

    ++stats_.windows;
    window_start_ = window_end_;
  }

  stats_.events = 0;
  for (auto& lp : lps_) stats_.events += lp->events_executed();
  stats_.lookahead_violations = la_violations_.load(std::memory_order_relaxed);
  return stats_;
}

}  // namespace lsds::core
