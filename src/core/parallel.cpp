#include "core/parallel.hpp"

#include <algorithm>
#include <cassert>

namespace lsds::core {

ParallelEngine::ParallelEngine(Config cfg)
    : cfg_(cfg),
      inboxes_(cfg.num_lps),
      inbox_mu_(cfg.num_lps),
      pool_(cfg.num_threads) {
  assert(cfg.num_lps > 0 && cfg.lookahead > 0);
  lps_.reserve(cfg.num_lps);
  for (unsigned i = 0; i < cfg.num_lps; ++i) {
    // Per-LP seeds derived from the master seed; stable across thread counts.
    std::uint64_t s = cfg.seed;
    for (unsigned k = 0; k <= i; ++k) splitmix64(s);
    lps_.emplace_back(new Lp(*this, i, cfg, s));
  }
}

ParallelEngine::~ParallelEngine() = default;

ParallelEngine::Lp::Lp(ParallelEngine& parent, unsigned index, const Config& cfg,
                       std::uint64_t seed)
    : parent_(parent), index_(index), max_events_(cfg.max_events), rng_(seed) {
  if (cfg.hosted_engines) {
    Engine::Config ecfg;
    ecfg.queue = cfg.queue;
    ecfg.seed = seed;
    ecfg.max_events = cfg.max_events;  // per-LP budget, enforced by run_window
    engine_ = std::make_unique<Engine>(ecfg);
  } else {
    queue_ = make_event_queue(cfg.queue);
  }
}

void ParallelEngine::Lp::schedule_at(SimTime t, EventFn fn) {
  if (engine_) {
    // The hosted engine clamps and counts past times itself.
    engine_->schedule_at(t, std::move(fn));
    return;
  }
  if (t < now_) {
    t = now_;
    parent_.past_clamped_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_->push(EventRecord{t, next_seq_++, std::move(fn)});
}

void ParallelEngine::Lp::send(unsigned dst_lp, SimTime t, EventFn fn) {
  assert(dst_lp < parent_.num_lps());
  if (dst_lp == index_) {
    schedule_at(t, std::move(fn));
    return;
  }
  // Conservative correctness: a message must not arrive inside the window
  // that is currently being processed in parallel.
  if (t < parent_.window_end_) {
    t = parent_.window_end_;
    parent_.la_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  CrossMessage msg{t, index_, next_seq_++, std::move(fn)};
  {
    std::lock_guard lock(parent_.inbox_mu_[dst_lp]);
    parent_.inboxes_[dst_lp].push_back(std::move(msg));
  }
  // cross_messages is tallied at delivery time (single-threaded phase).
}

bool ParallelEngine::Lp::has_pending() const {
  return engine_ ? engine_->pending() > 0 : !queue_->empty();
}

SimTime ParallelEngine::Lp::next_time() const {
  return engine_ ? engine_->next_event_time() : queue_->min_time();
}

void ParallelEngine::Lp::run_window(SimTime window_end, bool final_window) {
  if (engine_) {
    engine_->run_window(window_end, final_window);
    return;
  }
  while (!queue_->empty()) {
    const SimTime t = queue_->min_time();
    if (final_window ? (t > window_end) : (t >= window_end)) break;
    EventRecord ev = queue_->pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
    if (max_events_ && executed_ >= max_events_) throw EventBudgetExceeded(max_events_);
  }
  now_ = window_end;
}

void ParallelEngine::deliver_inboxes() {
  for (unsigned dst = 0; dst < num_lps(); ++dst) {
    auto& inbox = inboxes_[dst];
    if (inbox.empty()) continue;
    // Deterministic merge independent of sender thread interleaving.
    std::sort(inbox.begin(), inbox.end(), [](const CrossMessage& a, const CrossMessage& b) {
      if (a.time != b.time) return a.time < b.time;
      if (a.src_lp != b.src_lp) return a.src_lp < b.src_lp;
      return a.src_seq < b.src_seq;
    });
    stats_.cross_messages += inbox.size();
    for (CrossMessage& m : inbox) {
      lps_[dst]->schedule_at(m.time, std::move(m.fn));
    }
    inbox.clear();
  }
}

ParallelEngine::Stats ParallelEngine::snapshot_stats() {
  stats_.events = 0;
  stats_.per_lp_events.clear();
  for (auto& lp : lps_) {
    stats_.events += lp->events_executed();
    stats_.per_lp_events.push_back(lp->events_executed());
  }
  stats_.lookahead_violations = la_violations_.load(std::memory_order_relaxed);
  stats_.past_clamped = past_clamped_.load(std::memory_order_relaxed);
  for (auto& lp : lps_) {
    if (lp->engine_) stats_.past_clamped += lp->engine_->stats().past_clamped;
  }
  return stats_;
}

ParallelEngine::Stats ParallelEngine::run_until(SimTime t_end) {
  // Per-LP exception slots: an LP thread that trips its event budget (or any
  // model exception) parks it here; the barrier makes the writes visible and
  // the caller thread rethrows the lowest-index one — deterministic no
  // matter which worker ran the LP.
  std::vector<std::exception_ptr> lp_errors(lps_.size());
  for (;;) {
    // Conservative time advance: the next window starts at the earliest
    // pending event anywhere — empty stretches of virtual time cost no
    // windows (and no barriers).
    SimTime next = kInfTime;
    for (auto& lp : lps_) next = std::min(next, lp->next_time());
    if (next == kInfTime) break;  // drained
    if (next > t_end) {
      window_start_ = t_end;
      break;
    }
    window_start_ = std::max(window_start_, next);

    window_end_ = std::min(window_start_ + cfg_.lookahead, t_end);
    const bool final_window = (window_end_ >= t_end);

    // Only LPs with work inside the window are dispatched; an idle LP's
    // clock lags harmlessly (it jumps forward when it next executes).
    for (auto& lp : lps_) {
      if (final_window ? (lp->next_time() > window_end_) : (lp->next_time() >= window_end_)) {
        continue;
      }
      Lp* p = lp.get();
      const SimTime we = window_end_;
      pool_.submit([p, we, final_window, &lp_errors] {
        try {
          p->run_window(we, final_window);
        } catch (...) {
          lp_errors[p->index()] = std::current_exception();
        }
      });
    }
    pool_.wait_idle();  // barrier

    for (const std::exception_ptr& ep : lp_errors) {
      if (ep) std::rethrow_exception(ep);
    }

    deliver_inboxes();  // single-threaded phase

    ++stats_.windows;
    window_start_ = window_end_;
  }

  return snapshot_stats();
}

}  // namespace lsds::core
