// Entity-based modeling layer.
//
// The taxonomy (after Sulistio 2004) distinguishes entity-based from
// event-based modeling frameworks; the paper argues real Grid simulators use
// *both* — entities model components (clusters, network elements, brokers),
// events drive their evolution. LSDS-Sim mirrors that: an Entity is a named,
// addressable component whose behavior is triggered by messages delivered as
// engine events.
#pragma once

#include <any>
#include <cstdint>
#include <string>
#include <utility>

#include "core/engine.hpp"

namespace lsds::core {

using EntityId = std::uint32_t;

/// A message between entities. `kind` is model-defined; small scalar fields
/// cover the common cases without allocation, `payload` carries anything
/// else.
struct Message {
  int kind = 0;
  EntityId src = 0;
  double f0 = 0, f1 = 0;
  std::uint64_t u0 = 0, u1 = 0;
  std::string s0;
  std::any payload;
};

class Entity {
 public:
  Entity(Engine& engine, std::string name)
      : engine_(engine), name_(std::move(name)), id_(engine.register_entity(this)) {}
  virtual ~Entity() { engine_.unregister_entity(id_); }

  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  EntityId id() const { return id_; }
  const std::string& name() const { return name_; }
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }

  /// Deliver `msg` to `dst` after `delay` (default: same-time FIFO event).
  /// Delivery is skipped silently if the destination is destroyed meanwhile.
  void send(EntityId dst, Message msg, SimTime delay = 0) {
    msg.src = id_;
    Engine& eng = engine_;
    engine_.schedule_in(delay, [&eng, dst, m = std::move(msg)]() mutable {
      if (Entity* e = eng.entity(dst)) e->on_message(m);
    });
  }
  void send(Entity& dst, Message msg, SimTime delay = 0) { send(dst.id(), std::move(msg), delay); }

  /// Self-message — the idiomatic way to model internal timers.
  void send_self(Message msg, SimTime delay) { send(id_, std::move(msg), delay); }

  /// Called by Engine::start_entities at experiment start.
  virtual void on_start() {}
  /// Message handler.
  virtual void on_message(Message& msg) = 0;

 protected:
  Engine& engine_;

 private:
  std::string name_;
  EntityId id_;
};

}  // namespace lsds::core
