// Deterministic random number streams.
//
// The taxonomy's "behavior" axis distinguishes deterministic from
// probabilistic simulation; LSDS-Sim is both: every stochastic model draws
// from a *named* stream derived from the engine's master seed, so
//
//   * the same seed reproduces the same event trace bit-for-bit
//     (tested in tests/core_engine_test.cpp), and
//   * adding a new model (new stream name) does not perturb the draws of
//     existing models — the property that makes A/B experiments meaningful.
//
// Engine: xoshiro256** (Blackman & Vigna) seeded via SplitMix64 of
// (master_seed, fnv1a(stream_name)).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lsds::core {

/// SplitMix64 step — used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a hash for stream names.
std::uint64_t fnv1a(std::string_view s);

/// xoshiro256** PRNG with distribution helpers. Copyable and cheap.
class RngStream {
 public:
  /// Derive a stream from a master seed and a stream name.
  RngStream(std::uint64_t master_seed, std::string_view name);

  /// Direct construction from a raw seed (tests, sub-streams).
  explicit RngStream(std::uint64_t raw_seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// True with probability p.
  bool bernoulli(double p);

  /// Exponential with given mean (= 1/rate).
  double exponential(double mean);
  /// Normal via Box–Muller (exactly two uniforms per pair; deterministic).
  double normal(double mean, double stddev);
  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);
  /// Weibull with shape k and scale lambda.
  double weibull(double shape, double scale);
  /// Pareto (Lomax-free, classic) with minimum x_m and tail index alpha.
  double pareto(double x_min, double alpha);
  /// Poisson-distributed count with given mean (Knuth for small, PTRS-free
  /// normal approximation for large means).
  std::uint64_t poisson(double mean);

  /// Zipf-distributed rank in [0, n) with exponent s, via inverted CDF on a
  /// cached table (rebuilt when (n, s) change).
  std::size_t zipf(std::size_t n, double s);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_choice(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];

  // Box–Muller spare.
  bool has_spare_ = false;
  double spare_ = 0;

  // Zipf CDF cache.
  std::size_t zipf_n_ = 0;
  double zipf_s_ = -1;
  std::vector<double> zipf_cdf_;
};

}  // namespace lsds::core
