// Crash semantics shared by every failable resource (CPUs, links).
//
// The taxonomy's probabilistic-behavior axis meets its dynamic-component
// axis here: when a resource goes down, does in-flight work survive?
//
//   * kFailResume — the outage is transparent: progress freezes and resumes
//     where it left off on repair (a machine that hibernates). This was the
//     only behavior before the dependability layer and remains the default.
//   * kFailStop   — the classic crash model of the dependability
//     literature: in-flight work is killed and lost; the owner is notified
//     and must recover (middleware/recovery.hpp provides the policies).
#pragma once

namespace lsds::core {

enum class FailureSemantics { kFailResume, kFailStop };

inline const char* to_string(FailureSemantics s) {
  switch (s) {
    case FailureSemantics::kFailResume: return "fail-resume";
    case FailureSemantics::kFailStop: return "fail-stop";
  }
  return "?";
}

}  // namespace lsds::core
