// Event records and handles.
//
// An event is a (timestamp, sequence-number, closure) triple. The sequence
// number imposes a total order on simultaneous events — FIFO among equal
// timestamps — which is what makes every run bit-reproducible for a fixed
// seed (the taxonomy's deterministic-behavior requirement).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "core/sim_time.hpp"

namespace lsds::core {

using EventId = std::uint64_t;

/// The event closure. A drop-in replacement for std::function<void()> on
/// the engine hot path: callables that are trivially copyable and fit the
/// inline buffer (the overwhelmingly common case — a captured `this` plus a
/// couple of ids) are stored in place, so schedule/pop never touches the
/// heap for them, and moving a record through a queue is a memcpy. Larger
/// or non-trivial callables (e.g. lambdas owning a std::function callback)
/// fall back to a heap box whose move is a pointer steal. Move-only, which
/// also lets events own move-only resources — something std::function
/// forbids.
class EventFn {
 public:
  /// Inline capacity: enough for several captured pointers/ids. EventRecord
  /// stays cache-friendly (time + seq + fn = 80 bytes).
  static constexpr std::size_t kInlineCapacity = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    } else {
      heap_ = new Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { delete static_cast<Fn*>(p); };
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { invoke_(destroy_ ? heap_ : static_cast<void*>(inline_)); }
  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;
  }

  void reset() noexcept {
    if (destroy_) destroy_(heap_);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

  void steal(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    if (destroy_) {
      heap_ = other.heap_;
    } else if (invoke_) {
      std::memcpy(inline_, other.inline_, kInlineCapacity);
    }
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  union {
    alignas(std::max_align_t) unsigned char inline_[kInlineCapacity];
    void* heap_;
  };
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;  // non-null iff heap-boxed
};

struct EventRecord {
  SimTime time = 0;
  EventId seq = 0;  // engine-assigned, strictly increasing
  EventFn fn;

  /// Total order: earlier time first, then earlier schedule order.
  friend bool operator<(const EventRecord& a, const EventRecord& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

/// Key-only view used by queue implementations for comparisons.
struct EventKey {
  SimTime time;
  EventId seq;
  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  friend bool operator==(const EventKey& a, const EventKey& b) {
    return a.time == b.time && a.seq == b.seq;
  }
};

inline EventKey key_of(const EventRecord& ev) { return {ev.time, ev.seq}; }

/// Cancellation handle returned by Engine::schedule_*.
///
/// Cancellation is O(1): the engine tombstones the id and skips the record
/// when it surfaces — the optimization the paper lists under "optimizations
/// adopted in the design of the simulation engine".
struct EventHandle {
  EventId id = 0;
  SimTime time = 0;
  bool valid() const { return id != 0; }
};

}  // namespace lsds::core
