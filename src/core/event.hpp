// Event records and handles.
//
// An event is a (timestamp, sequence-number, closure) triple. The sequence
// number imposes a total order on simultaneous events — FIFO among equal
// timestamps — which is what makes every run bit-reproducible for a fixed
// seed (the taxonomy's deterministic-behavior requirement).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "core/sim_time.hpp"

namespace lsds::core {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

struct EventRecord {
  SimTime time = 0;
  EventId seq = 0;  // engine-assigned, strictly increasing
  EventFn fn;

  /// Total order: earlier time first, then earlier schedule order.
  friend bool operator<(const EventRecord& a, const EventRecord& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

/// Key-only view used by queue implementations for comparisons.
struct EventKey {
  SimTime time;
  EventId seq;
  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  friend bool operator==(const EventKey& a, const EventKey& b) {
    return a.time == b.time && a.seq == b.seq;
  }
};

inline EventKey key_of(const EventRecord& ev) { return {ev.time, ev.seq}; }

/// Cancellation handle returned by Engine::schedule_*.
///
/// Cancellation is O(1): the engine tombstones the id and skips the record
/// when it surfaces — the optimization the paper lists under "optimizations
/// adopted in the design of the simulation engine".
struct EventHandle {
  EventId id = 0;
  SimTime time = 0;
  bool valid() const { return id != 0; }
};

}  // namespace lsds::core
