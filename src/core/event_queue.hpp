// The pending event set, as a pluggable strategy.
//
// The paper's engine-implementation axis singles out the event-list queuing
// structure as the dominant performance factor: "A system using an O(1)
// structure for the event list will behave better than another one using an
// O(log n) queuing structure", while noting that "they all tend to behave
// different depending on various parameters". To let one engine test that
// claim, the pending set is an abstract interface with five implementations:
//
//   kSortedList     O(n) insert, O(1) pop — the naive baseline
//   kBinaryHeap     O(log n) insert/pop — the textbook default
//   kSplayTree      amortized O(log n), fast on access locality
//   kCalendarQueue  amortized O(1) (Brown 1988)
//   kLadderQueue    amortized O(1) (Tang et al. 2005), robust to skew
//
// bench_event_queues (experiment E1) compares them under the classic
// hold model and under skewed increment distributions.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/event.hpp"

namespace lsds::core {

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  /// Insert an event. `seq` values must be unique.
  virtual void push(EventRecord ev) = 0;

  /// Remove and return the minimum event. Precondition: !empty().
  virtual EventRecord pop() = 0;

  /// Timestamp of the minimum event, or kInfTime when empty.
  virtual SimTime min_time() const = 0;

  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// Implementation name for reports.
  virtual const char* name() const = 0;
};

enum class QueueKind {
  kSortedList,
  kBinaryHeap,
  kSplayTree,
  kCalendarQueue,
  kLadderQueue,
};

const char* to_string(QueueKind kind);

/// Factory. Every implementation is a drop-in replacement for the others.
std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

/// All kinds, for parameterized tests and benches.
inline constexpr QueueKind kAllQueueKinds[] = {
    QueueKind::kSortedList,  QueueKind::kBinaryHeap,   QueueKind::kSplayTree,
    QueueKind::kCalendarQueue, QueueKind::kLadderQueue,
};

}  // namespace lsds::core
