// Time-driven DES mode.
//
// "A time-driven DES advances by fixed time increments and is useful for
// modeling events that occur at regular time intervals. An event-driven DES
// is more efficient than a time-driven DES since it does not step through
// regular time intervals when no event occurs." (Section 3.)
//
// TimeDrivenRunner executes the *same* model as the event-driven engine but
// advances the clock tick by tick, invoking per-tick handlers and counting
// the empty ticks an event-driven run would have skipped. Combined with
// Engine::Config::time_quantum (which coarsens event timestamps to the tick
// grid) it reproduces both costs of time-driven simulation: wasted steps and
// quantization error. Experiment E2 (bench_mechanics) quantifies both.
#pragma once

#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace lsds::core {

class TimeDrivenRunner {
 public:
  /// `tick` is the fixed increment; must be finite and > 0 (a zero or
  /// negative tick would never advance the clock and loop run() forever).
  /// Throws std::invalid_argument otherwise.
  TimeDrivenRunner(Engine& engine, SimTime tick) : engine_(engine), tick_(tick) {
    if (!std::isfinite(tick) || tick <= 0) {
      throw std::invalid_argument("TimeDrivenRunner: tick must be finite and > 0, got " +
                                  std::to_string(tick));
    }
  }

  /// Handler invoked at every tick boundary, before that tick's events.
  void add_tick_handler(std::function<void(SimTime)> fn) {
    tick_handlers_.push_back(std::move(fn));
  }

  struct Result {
    std::uint64_t ticks = 0;        // total increments stepped
    std::uint64_t empty_ticks = 0;  // increments with no event — pure waste
    std::uint64_t events = 0;       // events executed
  };

  /// Step the clock from the engine's current time to t_end in fixed
  /// increments, draining each tick's events at the tick boundary.
  Result run(SimTime t_end);

  SimTime tick() const { return tick_; }

 private:
  Engine& engine_;
  SimTime tick_;
  std::vector<std::function<void(SimTime)>> tick_handlers_;
};

}  // namespace lsds::core
