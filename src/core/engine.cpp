#include "core/engine.hpp"

#include <cassert>
#include <chrono>
#include <cmath>
#include <utility>

#include "core/entity.hpp"
#include "core/probe.hpp"

namespace lsds::core {

namespace {
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

Engine::Engine(Config cfg)
    : queue_(make_event_queue(cfg.queue)),
      seed_(cfg.seed),
      quantum_(cfg.time_quantum),
      max_events_(cfg.max_events) {}

Engine::~Engine() {
  // Destroy suspended coroutine frames that never completed. Copy the set:
  // frame destructors may release resources that call drop_coroutine.
  auto pending = coroutines_;
  coroutines_.clear();
  for (void* p : pending) std::coroutine_handle<>::from_address(p).destroy();
}

SimTime Engine::quantize(SimTime t) const {
  if (quantum_ <= 0) return t;
  return std::ceil(t / quantum_) * quantum_;
}

EventHandle Engine::schedule_at(SimTime t, EventFn fn) {
  if (t < now_) {
    ++stats_.past_clamped;
    t = now_;
  }
  t = quantize(t);
  const EventId id = next_seq_++;
  if (tags_enabled_ && exec_tag_ != 0) tags_[id] = exec_tag_;
  push_record(EventRecord{t, id, std::move(fn)});
  ++stats_.scheduled;
  return EventHandle{id, t};
}

std::uint32_t Engine::event_tag(EventId id) const {
  auto it = tags_.find(id);
  return it == tags_.end() ? 0 : it->second;
}

EventRecord Engine::pop_record() {
  if (!probe_) return queue_->pop();
  const auto w0 = std::chrono::steady_clock::now();
  EventRecord rec = queue_->pop();
  probe_->on_queue_pop(elapsed_ns(w0));
  return rec;
}

void Engine::push_record(EventRecord rec) {
  if (!probe_) {
    queue_->push(std::move(rec));
    return;
  }
  const auto w0 = std::chrono::steady_clock::now();
  queue_->push(std::move(rec));
  probe_->on_queue_push(elapsed_ns(w0), queue_->size());
}

bool Engine::cancel(const EventHandle& h) {
  if (!h.valid() || h.id >= next_seq_) return false;
  // A handle whose time is strictly in the past has already fired (or been
  // skipped): the clock only reaches t by draining every event at t' < t.
  // Accepting it would inflate stats_.cancelled and leave a tombstone that
  // no pop ever consumes.
  if (h.time < now_) return false;
  if (!tombstones_.insert(h.id).second) return false;  // already cancelled
  ++stats_.cancelled;
  return true;
}

void Engine::execute(EventRecord& ev) {
  assert(ev.time + kTimeEpsilon >= now_ && "event queue returned an event out of order");
  now_ = ev.time;
  if (trace_hook_) trace_hook_(ev.time, ev.seq);
  if (probe_) probe_->on_event(ev.time, ev.seq);
  ++stats_.executed;
  if (tags_enabled_) {
    // Events scheduled by ev.fn() inherit ev's tag unless a TagScope
    // overrides it; the tag entry retires with the event.
    exec_tag_ = event_tag(ev.seq);
    ev.fn();
    exec_tag_ = 0;
    tags_.erase(ev.seq);
    return;
  }
  ev.fn();
}

bool Engine::step() {
  if (choice_hook_) return step_with_choice();
  while (!queue_->empty()) {
    EventRecord ev = pop_record();
    auto it = tombstones_.find(ev.seq);
    if (it != tombstones_.end()) {
      tombstones_.erase(it);
      continue;  // cancelled; skip silently
    }
    execute(ev);
    return true;
  }
  return false;
}

bool Engine::step_with_choice() {
  // Pop the minimum event, consuming tombstones.
  EventRecord first;
  for (;;) {
    if (queue_->empty()) return false;
    first = pop_record();
    auto it = tombstones_.find(first.seq);
    if (it == tombstones_.end()) break;
    tombstones_.erase(it);
  }
  // Collect every further live event tied at the same timestamp. The pop
  // order is ascending (time, seq) for every queue kind, so the tie set is
  // presented in seq order — the engine's default execution order.
  std::vector<EventRecord> tied;
  tied.push_back(std::move(first));
  while (!queue_->empty() && queue_->min_time() == tied.front().time) {
    EventRecord next = pop_record();
    auto it = tombstones_.find(next.seq);
    if (it != tombstones_.end()) {
      tombstones_.erase(it);
      continue;
    }
    tied.push_back(std::move(next));
  }
  std::size_t pick = 0;
  if (tied.size() > 1) {
    tied_scratch_.clear();
    for (const EventRecord& ev : tied) tied_scratch_.push_back(ev.seq);
    pick = choice_hook_(tied.front().time, tied_scratch_);
    assert(pick < tied.size() && "choice hook returned an out-of-range index");
    if (pick >= tied.size()) pick = 0;
  }
  // Requeue the not-chosen ties with their original seq, so the remaining
  // order (and cancellability) is exactly as if they had never been popped.
  for (std::size_t i = 0; i < tied.size(); ++i) {
    if (i != pick) push_record(std::move(tied[i]));
  }
  execute(tied[pick]);
  return true;
}

void Engine::run() {
  while (!stopped_ && step()) {
    if (max_events_ && stats_.executed >= max_events_) throw EventBudgetExceeded(max_events_);
  }
}

std::uint64_t Engine::run_until(SimTime t_end) {
  std::uint64_t n = 0;
  while (!stopped_ && !queue_->empty()) {
    // Pop/inspect/requeue rather than polling min_time(): min_time() is
    // O(buckets) for the calendar queue, while one extra push is O(1).
    EventRecord ev = pop_record();
    auto it = tombstones_.find(ev.seq);
    if (it != tombstones_.end()) {
      tombstones_.erase(it);
      continue;
    }
    if (ev.time > t_end) {
      push_record(std::move(ev));
      break;
    }
    execute(ev);
    ++n;
    if (max_events_ && stats_.executed >= max_events_) throw EventBudgetExceeded(max_events_);
  }
  if (!stopped_ && now_ < t_end) now_ = t_end;
  return n;
}

std::uint64_t Engine::run_window(SimTime t_end, bool inclusive) {
  std::uint64_t n = 0;
  while (!stopped_ && !queue_->empty()) {
    EventRecord ev = pop_record();
    auto it = tombstones_.find(ev.seq);
    if (it != tombstones_.end()) {
      tombstones_.erase(it);
      continue;
    }
    if (inclusive ? (ev.time > t_end) : (ev.time >= t_end)) {
      push_record(std::move(ev));
      break;
    }
    execute(ev);
    ++n;
    if (max_events_ && stats_.executed >= max_events_) throw EventBudgetExceeded(max_events_);
  }
  if (!stopped_ && now_ < t_end) now_ = t_end;
  return n;
}

RngStream& Engine::rng(const std::string& name) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    it = streams_.emplace(name, RngStream(seed_, name)).first;
  }
  return it->second;
}

std::uint32_t Engine::register_entity(Entity* e) {
  entities_.push_back(e);
  return static_cast<std::uint32_t>(entities_.size() - 1);
}

void Engine::unregister_entity(std::uint32_t id) {
  if (id < entities_.size()) entities_[id] = nullptr;
}

Entity* Engine::entity(std::uint32_t id) const {
  return id < entities_.size() ? entities_[id] : nullptr;
}

std::size_t Engine::entity_count() const {
  std::size_t n = 0;
  for (Entity* e : entities_) {
    if (e) ++n;
  }
  return n;
}

void Engine::start_entities() {
  // Snapshot: on_start may construct further entities.
  std::vector<Entity*> snapshot = entities_;
  for (Entity* e : snapshot) {
    if (e) e->on_start();
  }
}

void Engine::adopt_coroutine(std::coroutine_handle<> h) { coroutines_.insert(h.address()); }

void Engine::drop_coroutine(std::coroutine_handle<> h) { coroutines_.erase(h.address()); }

}  // namespace lsds::core
