// Calendar queue (R. Brown, CACM 1988) — the classic amortized-O(1)
// pending event set the paper alludes to with "a system using an O(1)
// structure for the event list will behave better".
//
// Events are hashed into "days" (buckets) of a circular "year" by
// timestamp; dequeue walks the calendar from the bucket of the last
// dequeued event. The bucket count doubles/halves as the population
// changes, and the bucket width is re-estimated from a sample of the
// earliest events so that a bucket holds O(1) events on average.
//
// min_time() requires a calendar scan (worst case O(nbuckets)); the Engine
// therefore avoids polling it per event (see Engine::run_until).
#pragma once

#include <cstddef>
#include <list>
#include <vector>

#include "core/event_queue.hpp"

namespace lsds::core {

class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue();

  void push(EventRecord ev) override;
  EventRecord pop() override;
  SimTime min_time() const override;
  std::size_t size() const override { return size_; }
  const char* name() const override { return "calendar-queue"; }

 private:
  using Bucket = std::list<EventRecord>;  // kept sorted ascending

  std::size_t bucket_of(SimTime t) const;
  void insert_sorted(Bucket& b, EventRecord ev);
  void resize(std::size_t new_nbuckets);
  double estimate_width() const;
  /// Locate the next event to dequeue: (bucket index, year-walk state).
  /// Returns false when empty.
  bool locate_min(std::size_t& bucket_out, bool& via_direct_scan) const;

  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
  double width_ = 1.0;          // bucket width in seconds
  std::size_t last_bucket_ = 0; // where the last dequeue left off
  double bucket_top_ = 1.0;     // upper time edge of last_bucket_'s window
  double last_prio_ = 0.0;      // timestamp of last dequeued event
  std::size_t shrink_threshold_ = 0;
  std::size_t grow_threshold_ = 0;
};

}  // namespace lsds::core
