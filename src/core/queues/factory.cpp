#include "core/event_queue.hpp"
#include "core/queues/binary_heap.hpp"
#include "core/queues/calendar_queue.hpp"
#include "core/queues/ladder_queue.hpp"
#include "core/queues/sorted_list.hpp"
#include "core/queues/splay_tree.hpp"

namespace lsds::core {

const char* to_string(QueueKind kind) {
  switch (kind) {
    case QueueKind::kSortedList: return "sorted-list";
    case QueueKind::kBinaryHeap: return "binary-heap";
    case QueueKind::kSplayTree: return "splay-tree";
    case QueueKind::kCalendarQueue: return "calendar-queue";
    case QueueKind::kLadderQueue: return "ladder-queue";
  }
  return "?";
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kSortedList: return std::make_unique<SortedListQueue>();
    case QueueKind::kBinaryHeap: return std::make_unique<BinaryHeapQueue>();
    case QueueKind::kSplayTree: return std::make_unique<SplayTreeQueue>();
    case QueueKind::kCalendarQueue: return std::make_unique<CalendarQueue>();
    case QueueKind::kLadderQueue: return std::make_unique<LadderQueue>();
  }
  return nullptr;
}

}  // namespace lsds::core
