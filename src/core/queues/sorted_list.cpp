#include "core/queues/sorted_list.hpp"

#include <utility>

namespace lsds::core {

void SortedListQueue::push(EventRecord ev) {
  // Scan from the back: new events usually belong near the tail.
  auto it = list_.end();
  while (it != list_.begin()) {
    auto prev = std::prev(it);
    if (!(ev < *prev)) break;
    it = prev;
  }
  list_.insert(it, std::move(ev));
}

EventRecord SortedListQueue::pop() {
  EventRecord ev = std::move(list_.front());
  list_.pop_front();
  return ev;
}

SimTime SortedListQueue::min_time() const {
  return list_.empty() ? kInfTime : list_.front().time;
}

}  // namespace lsds::core
