// O(n)-insert doubly linked sorted list — the naive pending-set baseline.
//
// Insertion scans from the tail because DES workloads usually schedule into
// the near future relative to existing events, so the right position tends
// to be near the end. Pop is O(1).
#pragma once

#include <list>

#include "core/event_queue.hpp"

namespace lsds::core {

class SortedListQueue final : public EventQueue {
 public:
  void push(EventRecord ev) override;
  EventRecord pop() override;
  SimTime min_time() const override;
  std::size_t size() const override { return list_.size(); }
  const char* name() const override { return "sorted-list"; }

 private:
  std::list<EventRecord> list_;  // ascending (time, seq)
};

}  // namespace lsds::core
