// Ladder queue (Tang, Goh, Thng, ACM TOMACS 2005) — an amortized-O(1)
// pending event set that, unlike the calendar queue, does not depend on a
// well-tuned bucket width: buckets are created lazily ("rungs" of a ladder)
// only for the time range currently being dequeued, which makes it robust
// to skewed timestamp distributions.
//
// Structure:
//   Top    — unsorted spill area for far-future events (O(1) append);
//   Ladder — rungs of progressively finer buckets, created on demand when
//            Top or an oversized bucket is split;
//   Bottom — a small sorted list from which events are actually dequeued.
//
// This implementation follows the paper's algorithm with the standard
// simplifications: a bucket whose events are all simultaneous (or the
// maximum rung depth) is sorted straight into Bottom instead of spawning
// another rung.
#pragma once

#include <cstddef>
#include <list>
#include <vector>

#include "core/event_queue.hpp"

namespace lsds::core {

class LadderQueue final : public EventQueue {
 public:
  LadderQueue();

  void push(EventRecord ev) override;
  EventRecord pop() override;
  SimTime min_time() const override;
  std::size_t size() const override { return size_; }
  const char* name() const override { return "ladder-queue"; }

 private:
  struct Rung {
    double start = 0;        // time of bucket 0's left edge
    double width = 0;        // bucket width
    std::size_t cur = 0;     // next bucket index to drain
    std::vector<std::vector<EventRecord>> buckets;
    std::size_t count = 0;   // events in this rung

    std::size_t bucket_of(SimTime t) const;
  };

  void transfer_top_to_ladder();
  /// Move the contents of `events` into a new rung appended to the ladder.
  void spawn_rung(std::vector<EventRecord> events, double start, double end);
  /// Drain the next non-empty bucket of the innermost rung into Bottom
  /// (or a finer rung). Returns false when the ladder is empty.
  bool advance_ladder();
  void sort_into_bottom(std::vector<EventRecord> events);

  std::vector<EventRecord> top_;  // unsorted
  double top_min_ = kInfTime;
  double top_max_ = -kInfTime;
  double top_start_ = 0;  // events with time >= top_start_ go to Top

  std::vector<Rung> ladder_;
  std::list<EventRecord> bottom_;  // sorted ascending

  std::size_t size_ = 0;
  static constexpr std::size_t kBottomThreshold = 50;
  static constexpr std::size_t kMaxRungs = 8;
};

}  // namespace lsds::core
