// Implicit binary min-heap over a contiguous vector — the O(log n) default.
//
// Hand-rolled rather than std::priority_queue so that pop can move the
// closure out of the heap instead of copying it, and so min_time is O(1).
#pragma once

#include <vector>

#include "core/event_queue.hpp"

namespace lsds::core {

class BinaryHeapQueue final : public EventQueue {
 public:
  void push(EventRecord ev) override;
  EventRecord pop() override;
  SimTime min_time() const override;
  std::size_t size() const override { return heap_.size(); }
  const char* name() const override { return "binary-heap"; }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<EventRecord> heap_;  // heap_[0] is the minimum
};

}  // namespace lsds::core
