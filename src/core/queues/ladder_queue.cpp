#include "core/queues/ladder_queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace lsds::core {

LadderQueue::LadderQueue() = default;

std::size_t LadderQueue::Rung::bucket_of(SimTime t) const {
  if (t <= start) return 0;
  auto i = static_cast<std::size_t>((t - start) / width);
  return std::min(i, buckets.size() - 1);
}

void LadderQueue::push(EventRecord ev) {
  ++size_;
  const SimTime t = ev.time;
  // 1) Far future -> Top.
  if (ladder_.empty() && bottom_.empty()) {
    // Everything funnels through Top when the rest is empty.
    top_.push_back(std::move(ev));
    top_min_ = std::min(top_min_, t);
    top_max_ = std::max(top_max_, t);
    return;
  }
  if (t >= top_start_) {
    top_.push_back(std::move(ev));
    top_min_ = std::min(top_min_, t);
    top_max_ = std::max(top_max_, t);
    return;
  }
  // 2) Within the ladder's active range -> deepest rung that covers t,
  //    but never into a bucket that has already been drained.
  for (auto& rung : ladder_) {
    const double cur_edge = rung.start + rung.width * static_cast<double>(rung.cur);
    if (t >= cur_edge) {
      auto idx = rung.bucket_of(t);
      if (idx >= rung.cur) {
        rung.buckets[idx].push_back(std::move(ev));
        ++rung.count;
        return;
      }
    }
  }
  // 3) Near future -> Bottom (sorted insert).
  auto it = bottom_.end();
  while (it != bottom_.begin()) {
    auto prev = std::prev(it);
    if (!(ev < *prev)) break;
    it = prev;
  }
  bottom_.insert(it, std::move(ev));
}

void LadderQueue::spawn_rung(std::vector<EventRecord> events, double start, double end) {
  Rung rung;
  rung.start = start;
  const std::size_t n = std::max<std::size_t>(events.size(), 1);
  double span = end - start;
  if (span <= 0) span = 1e-9;
  rung.width = span / static_cast<double>(n);
  if (rung.width <= 0 || !std::isfinite(rung.width)) rung.width = 1e-9;
  rung.buckets.resize(n);
  rung.cur = 0;
  for (EventRecord& ev : events) {
    rung.buckets[rung.bucket_of(ev.time)].push_back(std::move(ev));
  }
  rung.count = events.size();
  ladder_.push_back(std::move(rung));
}

void LadderQueue::transfer_top_to_ladder() {
  if (top_.empty()) return;
  // New epoch: events later pushed beyond the old max spill into Top again.
  top_start_ = top_max_ + 1e-12;
  std::vector<EventRecord> events = std::move(top_);
  top_.clear();
  const double start = top_min_;
  const double end = top_max_;
  top_min_ = kInfTime;
  top_max_ = -kInfTime;
  spawn_rung(std::move(events), start, end == start ? start + 1e-9 : end);
}

void LadderQueue::sort_into_bottom(std::vector<EventRecord> events) {
  std::sort(events.begin(), events.end(),
            [](const EventRecord& a, const EventRecord& b) { return a < b; });
  // Merge into (usually empty) bottom_.
  auto it = bottom_.begin();
  for (EventRecord& ev : events) {
    while (it != bottom_.end() && *it < ev) ++it;
    bottom_.insert(it, std::move(ev));
  }
}

bool LadderQueue::advance_ladder() {
  while (!ladder_.empty()) {
    Rung& rung = ladder_.back();
    if (rung.count == 0) {
      ladder_.pop_back();
      continue;
    }
    while (rung.cur < rung.buckets.size() && rung.buckets[rung.cur].empty()) ++rung.cur;
    if (rung.cur >= rung.buckets.size()) {
      ladder_.pop_back();
      continue;
    }
    std::vector<EventRecord> bucket = std::move(rung.buckets[rung.cur]);
    rung.buckets[rung.cur].clear();
    rung.count -= bucket.size();
    const double b_start = rung.start + rung.width * static_cast<double>(rung.cur);
    const double b_end = b_start + rung.width;
    ++rung.cur;

    const bool all_simultaneous = [&] {
      for (const auto& ev : bucket) {
        if (std::fabs(ev.time - bucket.front().time) > 1e-15) return false;
      }
      return true;
    }();

    if (bucket.size() > kBottomThreshold && ladder_.size() < kMaxRungs && !all_simultaneous) {
      spawn_rung(std::move(bucket), b_start, b_end);
      continue;  // drain the finer rung next
    }
    sort_into_bottom(std::move(bucket));
    return true;
  }
  return false;
}

EventRecord LadderQueue::pop() {
  // Precondition: !empty(). The loop below would spin otherwise.
  while (bottom_.empty()) {
    if (!advance_ladder()) {
      transfer_top_to_ladder();
      // After a transfer the ladder is non-empty iff there were Top events.
    }
  }
  EventRecord ev = std::move(bottom_.front());
  bottom_.pop_front();
  --size_;
  return ev;
}

SimTime LadderQueue::min_time() const {
  SimTime best = kInfTime;
  if (!bottom_.empty()) best = bottom_.front().time;
  for (const auto& rung : ladder_) {
    for (std::size_t i = rung.cur; i < rung.buckets.size(); ++i) {
      for (const auto& ev : rung.buckets[i]) best = std::min(best, ev.time);
    }
  }
  for (const auto& ev : top_) best = std::min(best, ev.time);
  return best;
}

}  // namespace lsds::core
