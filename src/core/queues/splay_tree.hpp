// Bottom-up splay tree keyed by (time, seq) — amortized O(log n) with strong
// locality: repeated near-minimum access (the DES common case) is nearly O(1)
// because pops splay the successor to the root.
//
// Splay trees were the structure of choice in several classic simulation
// kernels (e.g. the Sleator/Tarjan queue used by early versions of ns).
#pragma once

#include <cstddef>

#include "core/event_queue.hpp"

namespace lsds::core {

class SplayTreeQueue final : public EventQueue {
 public:
  SplayTreeQueue() = default;
  ~SplayTreeQueue() override;

  SplayTreeQueue(const SplayTreeQueue&) = delete;
  SplayTreeQueue& operator=(const SplayTreeQueue&) = delete;

  void push(EventRecord ev) override;
  EventRecord pop() override;
  SimTime min_time() const override;
  std::size_t size() const override { return size_; }
  const char* name() const override { return "splay-tree"; }

 private:
  struct Node {
    EventRecord ev;
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
  };

  void rotate(Node* x);
  void splay(Node* x);
  Node* leftmost(Node* n) const;
  void free_subtree(Node* n);

  Node* root_ = nullptr;
  Node* min_ = nullptr;  // cached leftmost node for O(1) min_time
  std::size_t size_ = 0;
};

}  // namespace lsds::core
