#include "core/queues/calendar_queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace lsds::core {

namespace {
constexpr std::size_t kMinBuckets = 2;
constexpr std::size_t kSampleSize = 25;
}  // namespace

CalendarQueue::CalendarQueue() {
  buckets_.resize(kMinBuckets);
  width_ = 1.0;
  last_bucket_ = 0;
  bucket_top_ = width_;
  grow_threshold_ = 2 * buckets_.size();
  shrink_threshold_ = 0;  // never shrink below kMinBuckets
}

std::size_t CalendarQueue::bucket_of(SimTime t) const {
  // Hash by virtual day number. Guard against enormous quotients.
  const double day = t / width_;
  const auto n = static_cast<unsigned long long>(day);
  return static_cast<std::size_t>(n % buckets_.size());
}

void CalendarQueue::insert_sorted(Bucket& b, EventRecord ev) {
  auto it = b.end();
  while (it != b.begin()) {
    auto prev = std::prev(it);
    if (!(ev < *prev)) break;
    it = prev;
  }
  b.insert(it, std::move(ev));
}

void CalendarQueue::push(EventRecord ev) {
  // Non-monotone insert: an event earlier than the current day breaks the
  // dequeue-scan invariant (no pending event before the anchor day), which
  // would make locate_min return a bucket-order event instead of the true
  // minimum. Re-anchor the cursor on the new event's day. This happens when
  // an event is popped, found past a horizon and requeued (Engine::run_until
  // / run_window), and earlier events are scheduled afterwards.
  if (ev.time < bucket_top_ - width_) {
    last_bucket_ = bucket_of(ev.time);
    const double day = std::floor(ev.time / width_);
    bucket_top_ = (day + 1.0) * width_;
  }
  insert_sorted(buckets_[bucket_of(ev.time)], std::move(ev));
  ++size_;
  if (size_ > grow_threshold_) resize(buckets_.size() * 2);
}

bool CalendarQueue::locate_min(std::size_t& bucket_out, bool& via_direct_scan) const {
  if (size_ == 0) return false;
  std::size_t i = last_bucket_;
  double top = bucket_top_;
  for (std::size_t walked = 0; walked < buckets_.size(); ++walked) {
    const Bucket& b = buckets_[i];
    if (!b.empty() && b.front().time < top) {
      bucket_out = i;
      via_direct_scan = false;
      return true;
    }
    i = (i + 1) % buckets_.size();
    top += width_;
  }
  // Rare fallback: the next event lies beyond this calendar year. Direct scan.
  std::size_t best = buckets_.size();
  for (std::size_t j = 0; j < buckets_.size(); ++j) {
    if (buckets_[j].empty()) continue;
    if (best == buckets_.size() || buckets_[j].front() < buckets_[best].front()) best = j;
  }
  bucket_out = best;
  via_direct_scan = true;
  return true;
}

EventRecord CalendarQueue::pop() {
  std::size_t i = 0;
  bool direct = false;
  locate_min(i, direct);
  Bucket& b = buckets_[i];
  EventRecord ev = std::move(b.front());
  b.pop_front();
  --size_;

  last_bucket_ = i;
  last_prio_ = ev.time;
  if (direct) {
    // Re-anchor the year on the dequeued event's day.
    const double day = std::floor(ev.time / width_);
    bucket_top_ = (day + 1.0) * width_;
  } else {
    // Advance bucket_top_ to the window in which we found the event.
    const double day = std::floor(ev.time / width_);
    bucket_top_ = (day + 1.0) * width_;
  }

  if (buckets_.size() > kMinBuckets && size_ < shrink_threshold_) {
    resize(buckets_.size() / 2);
  }
  return ev;
}

SimTime CalendarQueue::min_time() const {
  std::size_t i = 0;
  bool direct = false;
  if (!locate_min(i, direct)) return kInfTime;
  return buckets_[i].front().time;
}

double CalendarQueue::estimate_width() const {
  if (size_ < 2) return 1.0;
  // Brown's heuristic estimates the width from the separation of the
  // *earliest* pending events (the ones about to be dequeued). Gather all
  // timestamps (resize is O(n) anyway), pull the kSampleSize smallest with
  // nth_element, and use 3x their average separation.
  std::vector<SimTime> times;
  times.reserve(size_);
  for (const Bucket& b : buckets_) {
    for (const EventRecord& ev : b) times.push_back(ev.time);
  }
  const std::size_t k = std::min<std::size_t>(kSampleSize, times.size());
  std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   times.end());
  std::sort(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k));
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 1; i < k; ++i) {
    sum += times[i] - times[i - 1];
    ++n;
  }
  if (n == 0 || sum <= 0) return width_;  // all simultaneous: keep current width
  const double avg_sep = sum / static_cast<double>(n);
  return std::max(3.0 * avg_sep, 1e-9);
}

void CalendarQueue::resize(std::size_t new_nbuckets) {
  new_nbuckets = std::max(new_nbuckets, kMinBuckets);
  const double new_width = estimate_width();

  std::vector<Bucket> old = std::move(buckets_);
  buckets_.clear();
  buckets_.resize(new_nbuckets);
  width_ = new_width;
  grow_threshold_ = 2 * new_nbuckets;
  shrink_threshold_ = new_nbuckets / 2;

  for (Bucket& b : old) {
    for (EventRecord& ev : b) {
      insert_sorted(buckets_[bucket_of(ev.time)], std::move(ev));
    }
  }
  // Re-anchor the dequeue cursor on the last dequeued priority.
  last_bucket_ = bucket_of(last_prio_);
  const double day = std::floor(last_prio_ / width_);
  bucket_top_ = (day + 1.0) * width_;
}

}  // namespace lsds::core
