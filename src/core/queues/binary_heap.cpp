#include "core/queues/binary_heap.hpp"

#include <utility>

namespace lsds::core {

void BinaryHeapQueue::push(EventRecord ev) {
  heap_.push_back(std::move(ev));
  sift_up(heap_.size() - 1);
}

EventRecord BinaryHeapQueue::pop() {
  EventRecord top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

SimTime BinaryHeapQueue::min_time() const {
  return heap_.empty() ? kInfTime : heap_.front().time;
}

void BinaryHeapQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!(heap_[i] < heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void BinaryHeapQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t smallest = i;
    if (l < n && heap_[l] < heap_[smallest]) smallest = l;
    if (r < n && heap_[r] < heap_[smallest]) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace lsds::core
