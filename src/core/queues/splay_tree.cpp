#include "core/queues/splay_tree.hpp"

#include <utility>

namespace lsds::core {

SplayTreeQueue::~SplayTreeQueue() { free_subtree(root_); }

void SplayTreeQueue::free_subtree(Node* n) {
  // Iterative teardown: recursion could overflow on degenerate trees.
  Node* cur = n;
  while (cur) {
    if (cur->left) {
      cur = cur->left;
    } else if (cur->right) {
      cur = cur->right;
    } else {
      Node* parent = cur->parent;
      if (parent) {
        if (parent->left == cur)
          parent->left = nullptr;
        else
          parent->right = nullptr;
      }
      delete cur;
      cur = parent;
    }
  }
}

void SplayTreeQueue::rotate(Node* x) {
  Node* p = x->parent;
  Node* g = p->parent;
  if (p->left == x) {
    p->left = x->right;
    if (x->right) x->right->parent = p;
    x->right = p;
  } else {
    p->right = x->left;
    if (x->left) x->left->parent = p;
    x->left = p;
  }
  p->parent = x;
  x->parent = g;
  if (g) {
    if (g->left == p)
      g->left = x;
    else
      g->right = x;
  } else {
    root_ = x;
  }
}

void SplayTreeQueue::splay(Node* x) {
  while (x->parent) {
    Node* p = x->parent;
    Node* g = p->parent;
    if (g) {
      // zig-zig vs zig-zag
      const bool x_left = (p->left == x);
      const bool p_left = (g->left == p);
      if (x_left == p_left) {
        rotate(p);  // zig-zig: rotate parent first
        rotate(x);
      } else {
        rotate(x);  // zig-zag: rotate x twice
        rotate(x);
      }
    } else {
      rotate(x);  // zig
    }
  }
}

SplayTreeQueue::Node* SplayTreeQueue::leftmost(Node* n) const {
  while (n && n->left) n = n->left;
  return n;
}

void SplayTreeQueue::push(EventRecord ev) {
  Node* node = new Node{std::move(ev)};
  if (!root_) {
    root_ = min_ = node;
    size_ = 1;
    return;
  }
  Node* cur = root_;
  for (;;) {
    if (node->ev < cur->ev) {
      if (!cur->left) {
        cur->left = node;
        node->parent = cur;
        break;
      }
      cur = cur->left;
    } else {
      if (!cur->right) {
        cur->right = node;
        node->parent = cur;
        break;
      }
      cur = cur->right;
    }
  }
  if (node->ev < min_->ev) min_ = node;
  splay(node);
  ++size_;
}

EventRecord SplayTreeQueue::pop() {
  Node* m = min_;
  EventRecord ev = std::move(m->ev);
  splay(m);  // bring the minimum to the root; it has no left child there
  Node* right = m->right;
  if (right) right->parent = nullptr;
  root_ = right;
  delete m;
  --size_;
  min_ = leftmost(root_);
  return ev;
}

SimTime SplayTreeQueue::min_time() const { return min_ ? min_->ev.time : kInfTime; }

}  // namespace lsds::core
