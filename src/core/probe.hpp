// Engine observation probe: the instrumentation seam of the core engine.
//
// A probe sees every executed event plus wall-clock timings of the pending-
// set operations — the raw feed behind the observability layer's engine
// profiler (events/sec, queue-op latency) and metric sampling cadence.
// Exactly one probe may be attached per Engine (Engine::set_probe); when
// none is attached every hook site reduces to a single predictable branch
// on a null pointer, so an unobserved run pays nothing measurable and a
// probe can never perturb the event trace: it observes, it does not
// schedule.
//
// This is distinct from Engine::TraceHook, which the determinism test suite
// owns: tests can hold a (time, seq) trace hook on an *observed* engine and
// assert the trace matches an unobserved run's.
#pragma once

#include <cstdint>

#include "core/event.hpp"
#include "core/sim_time.hpp"

namespace lsds::core {

class EngineProbe {
 public:
  virtual ~EngineProbe() = default;

  /// Before each executed event's handler runs, with the engine clock
  /// already advanced to the event time.
  virtual void on_event(SimTime t, EventId seq) = 0;

  /// Wall-clock nanoseconds of one pending-set push; `pending` is the set
  /// size after the push.
  virtual void on_queue_push(std::uint64_t ns, std::size_t pending) = 0;

  /// Wall-clock nanoseconds of one pending-set pop.
  virtual void on_queue_pop(std::uint64_t ns) = 0;
};

}  // namespace lsds::core
