// Conservative parallel simulation engine.
//
// The paper's execution axis splits simulators into *centralized* (one
// computing unit, even on multi-core hosts) and *distributed* (multiple
// processing units), observing that "a pure serial simulation execution …
// can not be a reality" and that "modern simulators make use of at least the
// threading mechanisms provided by the underlying operating system" — while
// fully distributed simulation "has not significantly impressed the general
// simulation community" (Fujimoto 1993) because it is hard to get right.
//
// ParallelEngine is the threaded middle ground: the model is partitioned
// into logical processes (LPs), each owning a private clock and pending set.
// Synchronization is conservative with fixed lookahead windows (a
// barrier-synchronous variant of the null-message idea of Misra 1986):
//
//   window k covers [T_k, T_k + L)  where L = lookahead
//   1. all LPs drain their events inside the window, in parallel;
//   2. barrier;
//   3. cross-LP messages (which must arrive >= one window later — that is
//      what lookahead means) are injected into destination queues in a
//      deterministic merge order;
//   4. T_{k+1} starts at the earliest pending event time (never earlier
//      than the end of window k) — sparse stretches of virtual time cost
//      no windows.
//
// An LP is either *raw* (a bare event queue, the PHOLD-style usage) or
// *engine-hosted* (Config::hosted_engines): each LP owns a full
// core::Engine, so the entire entity/process model layer — CpuResource,
// StorageDevice, coroutine processes — runs unmodified inside a partition.
// Engine-hosted LPs are what hosts::ParallelGrid builds on to partition
// Sites across LPs.
//
// Determinism: cross-window messages are sorted by (time, src_lp, src_seq)
// before injection, so for a fixed seed the result is independent of thread
// scheduling. Tests assert equality against a sequential reference run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/engine.hpp"
#include "core/event.hpp"
#include "core/event_queue.hpp"
#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "util/thread_pool.hpp"

namespace lsds::core {

class ParallelEngine {
 public:
  struct Config {
    unsigned num_lps = 4;
    unsigned num_threads = 2;
    double lookahead = 1.0;  // window length; cross-LP latency lower bound
    QueueKind queue = QueueKind::kBinaryHeap;
    std::uint64_t seed = 42;
    /// When true every LP hosts a full core::Engine (per-LP clock, named
    /// RNG streams, entity registry) instead of a bare event queue, so the
    /// model layer runs unmodified inside each partition.
    bool hosted_engines = false;
    /// Per-LP event budget, the parallel twin of Engine::Config::max_events:
    /// when > 0, an LP that executes this many events throws
    /// EventBudgetExceeded, which run_until() rethrows on the caller thread
    /// after the window barrier (lowest LP index wins when several trip in
    /// one window). The engine is not resumable afterwards — this is a
    /// watchdog against zero-delay loops, not a pause mechanism.
    std::uint64_t max_events = 0;
  };

  explicit ParallelEngine(Config cfg);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// One logical process: a private clock + pending set.
  class Lp {
   public:
    unsigned index() const { return index_; }
    SimTime now() const { return engine_ ? engine_->now() : now_; }

    /// Schedule a local event (same LP). `t` below the clock is clamped to
    /// the clock and counted (ParallelEngine::Stats::past_clamped).
    void schedule_at(SimTime t, EventFn fn);
    void schedule_in(SimTime dt, EventFn fn) { schedule_at(now() + dt, std::move(fn)); }

    /// Send an event to another LP. The delivery time must respect the
    /// lookahead: t >= end of the current window. Violations are clamped
    /// and counted (ParallelEngine::Stats::lookahead_violations).
    void send(unsigned dst_lp, SimTime t, EventFn fn);

    /// Per-LP deterministic stream.
    RngStream& rng() { return rng_; }

    /// The hosted engine (Config::hosted_engines only; else nullptr).
    Engine* engine() { return engine_.get(); }

    std::uint64_t events_executed() const {
      return engine_ ? engine_->stats().executed : executed_;
    }

   private:
    friend class ParallelEngine;
    Lp(ParallelEngine& parent, unsigned index, const Config& cfg, std::uint64_t seed);

    /// Drain events with time < window_end (<= when final). Sets now_ to
    /// window_end afterwards.
    void run_window(SimTime window_end, bool final_window);

    bool has_pending() const;
    SimTime next_time() const;  // kInfTime when drained

    ParallelEngine& parent_;
    unsigned index_;
    SimTime now_ = 0;
    std::unique_ptr<EventQueue> queue_;   // raw mode
    std::unique_ptr<Engine> engine_;      // hosted mode
    EventId next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t max_events_ = 0;  // raw-mode budget (hosted: engine enforces)
    RngStream rng_;
  };

  Lp& lp(unsigned i) { return *lps_[i]; }
  unsigned num_lps() const { return static_cast<unsigned>(lps_.size()); }
  double lookahead() const { return cfg_.lookahead; }

  struct Stats {
    std::uint64_t windows = 0;
    std::uint64_t events = 0;
    std::uint64_t cross_messages = 0;
    std::uint64_t lookahead_violations = 0;
    /// Lp::schedule_at calls whose timestamp was below the LP clock and got
    /// clamped — the local analogue of lookahead_violations. A correct
    /// model schedules into its own future; tests assert this stays 0.
    std::uint64_t past_clamped = 0;
    /// Events executed by each LP — the load-balance profile. Rolled up
    /// into a stats summary by the model layer (hosts::ParallelGrid).
    std::vector<std::uint64_t> per_lp_events;
  };

  /// Run windows until no LP has pending work or the horizon is reached.
  Stats run_until(SimTime t_end);

  SimTime now() const { return window_start_; }

 private:
  struct CrossMessage {
    SimTime time;
    unsigned src_lp;
    EventId src_seq;
    EventFn fn;
  };

  void deliver_inboxes();
  Stats snapshot_stats();

  Config cfg_;
  std::vector<std::unique_ptr<Lp>> lps_;
  std::vector<std::vector<CrossMessage>> inboxes_;  // per destination LP
  std::vector<std::mutex> inbox_mu_;
  util::ThreadPool pool_;
  SimTime window_start_ = 0;
  SimTime window_end_ = 0;
  Stats stats_;
  std::atomic<std::uint64_t> la_violations_{0};  // incremented from LP threads
  std::atomic<std::uint64_t> past_clamped_{0};   // raw-mode clamps, LP threads
};

}  // namespace lsds::core
