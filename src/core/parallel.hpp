// Conservative parallel simulation engine.
//
// The paper's execution axis splits simulators into *centralized* (one
// computing unit, even on multi-core hosts) and *distributed* (multiple
// processing units), observing that "a pure serial simulation execution …
// can not be a reality" and that "modern simulators make use of at least the
// threading mechanisms provided by the underlying operating system" — while
// fully distributed simulation "has not significantly impressed the general
// simulation community" (Fujimoto 1993) because it is hard to get right.
//
// ParallelEngine is the threaded middle ground: the model is partitioned
// into logical processes (LPs), each owning a private clock and pending set.
// Synchronization is conservative with fixed lookahead windows (a
// barrier-synchronous variant of the null-message idea of Misra 1986):
//
//   window k covers [k*L, (k+1)*L)  where L = lookahead
//   1. all LPs drain their events inside the window, in parallel;
//   2. barrier;
//   3. cross-LP messages (which must arrive >= one window later — that is
//      what lookahead means) are injected into destination queues in a
//      deterministic merge order;
//   4. repeat.
//
// Determinism: cross-window messages are sorted by (time, src_lp, src_seq)
// before injection, so for a fixed seed the result is independent of thread
// scheduling. Tests assert equality against a sequential reference run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/event.hpp"
#include "core/event_queue.hpp"
#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "util/thread_pool.hpp"

namespace lsds::core {

class ParallelEngine {
 public:
  struct Config {
    unsigned num_lps = 4;
    unsigned num_threads = 2;
    double lookahead = 1.0;  // window length; cross-LP latency lower bound
    QueueKind queue = QueueKind::kBinaryHeap;
    std::uint64_t seed = 42;
  };

  explicit ParallelEngine(Config cfg);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// One logical process: a private clock + pending set.
  class Lp {
   public:
    unsigned index() const { return index_; }
    SimTime now() const { return now_; }

    /// Schedule a local event (same LP). `t` below the clock is clamped.
    void schedule_at(SimTime t, EventFn fn);
    void schedule_in(SimTime dt, EventFn fn) { schedule_at(now_ + dt, std::move(fn)); }

    /// Send an event to another LP. The delivery time must respect the
    /// lookahead: t >= end of the current window. Violations are clamped
    /// and counted (ParallelEngine::Stats::lookahead_violations).
    void send(unsigned dst_lp, SimTime t, EventFn fn);

    /// Per-LP deterministic stream.
    RngStream& rng() { return rng_; }

    std::uint64_t events_executed() const { return executed_; }

   private:
    friend class ParallelEngine;
    Lp(ParallelEngine& parent, unsigned index, QueueKind kind, std::uint64_t seed);

    /// Drain events with time < window_end (<= when final). Sets now_ to
    /// window_end afterwards.
    void run_window(SimTime window_end, bool final_window);

    ParallelEngine& parent_;
    unsigned index_;
    SimTime now_ = 0;
    std::unique_ptr<EventQueue> queue_;
    EventId next_seq_ = 1;
    std::uint64_t executed_ = 0;
    RngStream rng_;
  };

  Lp& lp(unsigned i) { return *lps_[i]; }
  unsigned num_lps() const { return static_cast<unsigned>(lps_.size()); }
  double lookahead() const { return cfg_.lookahead; }

  struct Stats {
    std::uint64_t windows = 0;
    std::uint64_t events = 0;
    std::uint64_t cross_messages = 0;
    std::uint64_t lookahead_violations = 0;
  };

  /// Run windows until no LP has pending work or the horizon is reached.
  Stats run_until(SimTime t_end);

  SimTime now() const { return window_start_; }

 private:
  struct CrossMessage {
    SimTime time;
    unsigned src_lp;
    EventId src_seq;
    EventFn fn;
  };

  void deliver_inboxes();

  Config cfg_;
  std::vector<std::unique_ptr<Lp>> lps_;
  std::vector<std::vector<CrossMessage>> inboxes_;  // per destination LP
  std::vector<std::mutex> inbox_mu_;
  util::ThreadPool pool_;
  SimTime window_start_ = 0;
  SimTime window_end_ = 0;
  Stats stats_;
  std::atomic<std::uint64_t> la_violations_{0};  // incremented from LP threads
};

}  // namespace lsds::core
