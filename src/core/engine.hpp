// The discrete-event simulation engine.
//
// One Engine is one simulation experiment: a clock, a pending event set
// (pluggable structure, see core/event_queue.hpp), named deterministic RNG
// streams, and the registries behind the entity- and process-oriented
// modeling layers.
//
// Mechanics (taxonomy Section 3): this is an *event-driven* DES — the clock
// jumps from event to event. The time-driven mode the paper contrasts it
// with is provided by core/time_driven.hpp on top of the same engine, and
// trace-driven input by core/trace.hpp.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/event.hpp"
#include "core/event_queue.hpp"
#include "core/rng.hpp"
#include "core/sim_time.hpp"

namespace lsds::core {

class Entity;
class EngineProbe;

/// Thrown when Config::max_events is exhausted (model watchdog).
class EventBudgetExceeded : public std::runtime_error {
 public:
  explicit EventBudgetExceeded(std::uint64_t budget)
      : std::runtime_error("simulation exceeded its event budget of " +
                           std::to_string(budget) + " events") {}
};

class Engine {
 public:
  struct Config {
    QueueKind queue = QueueKind::kBinaryHeap;
    std::uint64_t seed = 42;
    /// When > 0, every scheduled timestamp is rounded *up* to a multiple of
    /// the quantum. This models the accuracy loss of time-driven simulation
    /// (experiment E2) without changing any model code.
    double time_quantum = 0;
    /// When > 0, run()/run_until() throw EventBudgetExceeded after this
    /// many executed events — a watchdog against accidental zero-delay
    /// loops in models (a misbehaving model otherwise spins forever at one
    /// simulated instant).
    std::uint64_t max_events = 0;
  };

  explicit Engine(Config cfg);
  Engine() : Engine(Config{}) {}
  [[deprecated("use Engine(Engine::Config{.queue = ..., .seed = ...}) — Config is the one "
               "extension point for engine options")]]
  Engine(QueueKind queue, std::uint64_t seed) : Engine(Config{queue, seed, 0, 0}) {}
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- clock & scheduling ---------------------------------------------------

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now; past times are clamped to
  /// now and counted in stats().past_clamped).
  EventHandle schedule_at(SimTime t, EventFn fn);

  /// Schedule `fn` after a delay (>= 0).
  EventHandle schedule_in(SimTime dt, EventFn fn) { return schedule_at(now_ + dt, std::move(fn)); }

  /// O(1) cancellation. Returns false if the event already ran or was
  /// already cancelled.
  bool cancel(const EventHandle& h);

  // --- execution --------------------------------------------------------

  /// Run until the pending set drains or stop() is called.
  void run();

  /// Run all events with time <= t_end, then advance the clock to t_end.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime t_end);

  /// Run all events with time strictly below `t_end` (<= when `inclusive`),
  /// then advance the clock to t_end. This is the drain primitive of the
  /// conservative parallel engine: window k covers [k*L, (k+1)*L), so events
  /// that land exactly on the boundary belong to the *next* window — except
  /// in the final window, which is closed. Returns events executed.
  std::uint64_t run_window(SimTime t_end, bool inclusive);

  /// Timestamp of the earliest pending event, or kInfTime when drained.
  SimTime next_event_time() const { return queue_->min_time(); }

  /// Execute exactly one event. Returns false when nothing is pending.
  bool step();

  /// Request termination; honored after the current event returns.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  /// Re-arm a stopped engine (e.g. between phases of one experiment).
  void clear_stop() { stopped_ = false; }

  // --- statistics -------------------------------------------------------

  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t past_clamped = 0;
  };
  const Stats& stats() const { return stats_; }
  std::size_t pending() const { return queue_->size(); }
  /// Cancelled-but-not-yet-popped events (diagnostic; should drain to 0).
  std::size_t tombstone_count() const { return tombstones_.size(); }
  const char* queue_name() const { return queue_->name(); }

  // --- randomness ---------------------------------------------------------

  std::uint64_t seed() const { return seed_; }
  /// Named stream; created on first use, stable thereafter.
  RngStream& rng(const std::string& name);

  // --- determinism hook ---------------------------------------------------

  /// Called before each executed event; used by tests to assert that two
  /// runs with equal seeds produce identical (time, seq) traces.
  using TraceHook = std::function<void(SimTime, EventId)>;
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

  // --- choice points (exhaustive exploration, src/mc/) ---------------------

  /// Strategy for ordering simultaneous events. When two or more pending
  /// events are tied at the minimum timestamp, step() surfaces their ids
  /// (ascending seq — today's FIFO execution order) and executes the one at
  /// the returned index; the rest are requeued unchanged. With no hook set
  /// the engine runs its normal pop-min path and is byte-identical to
  /// before this hook existed; a hook returning 0 reproduces that order
  /// exactly. The hook only drives step() (and run(), which steps) — the
  /// windowed primitives of the parallel engine never branch.
  using ChoiceFn = std::function<std::size_t(SimTime, const std::vector<EventId>&)>;
  void set_choice_hook(ChoiceFn fn) { choice_hook_ = std::move(fn); }
  bool has_choice_hook() const { return static_cast<bool>(choice_hook_); }

  // --- event entity tags (exhaustive exploration, src/mc/) -----------------

  /// When enabled, every scheduled event carries a 32-bit entity tag:
  /// whatever current_tag() was at schedule time. During event execution
  /// current_tag() defaults to the executing event's own tag, so causal
  /// chains inherit their origin's tag; model code marks per-entity roots
  /// with TagScope. Tag 0 means "untagged" and is treated as dependent on
  /// everything — tags are an *assumption* the sleep-set pruning of
  /// mc::Explorer relies on, so only tag chains that genuinely touch
  /// disjoint state. Off by default: the hot path stays untouched.
  void enable_event_tags() { tags_enabled_ = true; }
  bool event_tags_enabled() const { return tags_enabled_; }
  /// Tag recorded for a pending (or currently executing) event; 0 when
  /// untagged or already retired.
  std::uint32_t event_tag(EventId id) const;
  std::uint32_t current_tag() const { return exec_tag_; }
  void set_current_tag(std::uint32_t tag) { exec_tag_ = tag; }

  // --- observation probe ---------------------------------------------------

  /// Attach (or detach with nullptr) the observation probe (core/probe.hpp).
  /// The probe must outlive the engine or be detached first. Independent of
  /// the trace hook, so tests can trace an observed engine.
  void set_probe(EngineProbe* probe) { probe_ = probe; }
  EngineProbe* probe() const { return probe_; }

  // --- entity registry (core/entity.hpp) -----------------------------------

  std::uint32_t register_entity(Entity* e);
  void unregister_entity(std::uint32_t id);
  Entity* entity(std::uint32_t id) const;
  std::size_t entity_count() const;
  /// Deliver Entity::on_start to every registered entity at the current time.
  void start_entities();

  // --- coroutine registry (core/process.hpp) -------------------------------

  void adopt_coroutine(std::coroutine_handle<> h);
  void drop_coroutine(std::coroutine_handle<> h);
  std::size_t live_processes() const { return coroutines_.size(); }

 private:
  SimTime quantize(SimTime t) const;
  /// queue_->pop() / push() with wall-clock timing when a probe is attached.
  EventRecord pop_record();
  void push_record(EventRecord rec);
  /// step() with the choice hook installed: collect the timestamp tie,
  /// let the strategy pick, requeue the rest.
  bool step_with_choice();
  /// Run `ev` with trace/probe/tag bookkeeping (shared by both step paths).
  void execute(EventRecord& ev);

  std::unique_ptr<EventQueue> queue_;
  SimTime now_ = 0;
  EventId next_seq_ = 1;  // 0 is the invalid handle id
  bool stopped_ = false;
  Stats stats_;
  std::uint64_t seed_;
  double quantum_;
  std::uint64_t max_events_;
  std::unordered_set<EventId> tombstones_;
  std::map<std::string, RngStream> streams_;
  TraceHook trace_hook_;
  ChoiceFn choice_hook_;
  bool tags_enabled_ = false;
  std::uint32_t exec_tag_ = 0;
  std::unordered_map<EventId, std::uint32_t> tags_;
  std::vector<EventId> tied_scratch_;  // choice-point id list, reused
  EngineProbe* probe_ = nullptr;
  std::vector<Entity*> entities_;  // slot = id; nullptr after unregister
  std::unordered_set<void*> coroutines_;
};

/// RAII entity-tag context: events scheduled within the scope carry `tag`
/// (see Engine::enable_event_tags). Model-build code wraps per-entity setup:
///
///   core::TagScope scope(eng, kCpu0Tag);
///   cpu0.submit(...);   // the completion chain inherits kCpu0Tag
class TagScope {
 public:
  TagScope(Engine& engine, std::uint32_t tag) : engine_(engine), prev_(engine.current_tag()) {
    engine_.set_current_tag(tag);
  }
  ~TagScope() { engine_.set_current_tag(prev_); }
  TagScope(const TagScope&) = delete;
  TagScope& operator=(const TagScope&) = delete;

 private:
  Engine& engine_;
  std::uint32_t prev_;
};

}  // namespace lsds::core
