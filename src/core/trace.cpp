#include "core/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"
#include "util/units.hpp"

namespace lsds::core {

std::optional<std::string> TraceEvent::attr(const std::string& key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return std::nullopt;
}

double TraceEvent::num(const std::string& key, double def) const {
  auto v = attr(key);
  if (!v) return def;
  double out = 0;
  if (!util::parse_double(*v, out)) return def;
  return out;
}

double TraceEvent::size(const std::string& key, double def_bytes) const {
  auto v = attr(key);
  if (!v) return def_bytes;
  double out = 0;
  if (!util::parse_size(*v, out)) return def_bytes;
  return out;
}

double TraceEvent::rate(const std::string& key, double def) const {
  auto v = attr(key);
  if (!v) return def;
  double out = 0;
  if (!util::parse_rate(*v, out)) return def;
  return out;
}

std::vector<TraceEvent> TraceReader::parse(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = util::split_ws(trimmed);
    if (fields.size() < 2) {
      throw std::runtime_error(
          util::strformat("trace: line %zu: expected '<time> <kind> ...'", lineno));
    }
    TraceEvent ev;
    if (!util::parse_double(fields[0], ev.time)) {
      throw std::runtime_error(util::strformat("trace: line %zu: bad timestamp '%s'", lineno,
                                               fields[0].c_str()));
    }
    ev.kind = fields[1];
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const size_t eq = fields[i].find('=');
      if (eq == std::string::npos) {
        throw std::runtime_error(util::strformat("trace: line %zu: expected key=value, got '%s'",
                                                 lineno, fields[i].c_str()));
      }
      ev.attrs.emplace_back(fields[i].substr(0, eq), fields[i].substr(eq + 1));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<TraceEvent> TraceReader::parse_text(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

std::vector<TraceEvent> TraceReader::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  return parse(f);
}

void TraceWriter::write(const TraceEvent& ev) {
  out_ << util::strformat("%.9g %s", ev.time, ev.kind.c_str());
  for (const auto& [k, v] : ev.attrs) out_ << ' ' << k << '=' << v;
  out_ << '\n';
}

void TraceWriter::write_comment(const std::string& text) { out_ << "# " << text << '\n'; }

TraceDriver::TraceDriver(Engine& engine, std::vector<TraceEvent> events, Dispatch dispatch)
    : engine_(engine), events_(std::move(events)), dispatch_(std::move(dispatch)) {
  if (!std::is_sorted(events_.begin(), events_.end(),
                      [](const TraceEvent& a, const TraceEvent& b) { return a.time < b.time; })) {
    throw std::runtime_error("trace: events must be sorted by time");
  }
}

void TraceDriver::arm() {
  for (const TraceEvent& ev : events_) {
    engine_.schedule_at(ev.time, [this, &ev] { dispatch_(ev); });
  }
}

}  // namespace lsds::core
