#include "core/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace lsds::core {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

RngStream::RngStream(std::uint64_t master_seed, std::string_view name)
    : RngStream(master_seed ^ rotl(fnv1a(name), 17)) {}

RngStream::RngStream(std::uint64_t raw_seed) {
  std::uint64_t sm = raw_seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t RngStream::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double RngStream::uniform() {
  // 53 random bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

bool RngStream::bernoulli(double p) { return uniform() < p; }

double RngStream::exponential(double mean) {
  // Inverse CDF; 1-u avoids log(0).
  return -mean * std::log(1.0 - uniform());
}

double RngStream::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  // Box–Muller.
  const double u1 = 1.0 - uniform();  // (0,1]
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return mean + stddev * r * std::cos(theta);
}

double RngStream::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double RngStream::weibull(double shape, double scale) {
  return scale * std::pow(-std::log(1.0 - uniform()), 1.0 / shape);
}

double RngStream::pareto(double x_min, double alpha) {
  return x_min / std::pow(1.0 - uniform(), 1.0 / alpha);
}

std::uint64_t RngStream::poisson(double mean) {
  assert(mean >= 0);
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction — adequate for workload
  // generation at large means.
  const double v = normal(mean, std::sqrt(mean));
  return v < 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

std::size_t RngStream::zipf(std::size_t n, double s) {
  assert(n > 0);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_cdf_.resize(n);
    double sum = 0;
    for (std::size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = sum;
    }
    for (double& v : zipf_cdf_) v /= sum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = uniform();
  // Binary search for the first cdf >= u.
  std::size_t lo = 0, hi = n - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

std::size_t RngStream::weighted_choice(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace lsds::core
