// FNV-1a state hashing.
//
// The exhaustive-exploration mode (src/mc/) prunes revisited states by
// digesting engine + model state into a 64-bit fingerprint. Every layer
// that wants to be explorable exposes a `state_digest()` built from this
// accumulator, so the digests compose: a model hash is the fold of its
// parts' hashes. FNV-1a is the classic choice for this job — fast, decent
// avalanche, and trivially deterministic across platforms (the exploration
// reports must not depend on the host).
//
// As in every hash-compaction model checker, a 64-bit fingerprint admits a
// (vanishingly small) collision probability; a collision can only cause a
// state to be wrongly pruned, never a spurious violation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace lsds::core {

class StateHash {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  std::uint64_t value() const { return h_; }

  StateHash& mix_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= kPrime;
    }
    return *this;
  }

  StateHash& mix(std::uint64_t v) { return mix_bytes(&v, sizeof(v)); }
  StateHash& mix(std::int64_t v) { return mix_bytes(&v, sizeof(v)); }
  StateHash& mix(std::uint32_t v) { return mix(static_cast<std::uint64_t>(v)); }
  StateHash& mix(bool v) { return mix(static_cast<std::uint64_t>(v)); }

  /// Doubles hash by bit pattern; -0.0 is canonicalized to +0.0 so two
  /// states that compare equal never hash apart.
  StateHash& mix(double v) {
    std::uint64_t bits;
    if (v == 0.0) v = 0.0;  // collapse -0.0
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(bits);
  }

  StateHash& mix(std::string_view s) {
    mix(static_cast<std::uint64_t>(s.size()));
    return mix_bytes(s.data(), s.size());
  }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

}  // namespace lsds::core
