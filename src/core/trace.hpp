// Trace-driven DES input.
//
// "A trace-driven DES proceeds by reading in a set of events that are
// collected independently from another environment and are suitable for
// modeling a system that has executed before in another environment."
// (Section 3.) MONARC 2, for instance, accepts monitoring data produced by
// MonALISA next to synthetic generators.
//
// Trace format — one event per line:
//
//   # comment
//   <time> <kind> [key=value]...
//   12.5 job_arrival site=T1_FR cpu=1500 input=2GB
//
// TraceReader/TraceWriter round-trip this format; TraceDriver schedules each
// trace event into an Engine and hands it to a model-defined dispatcher.
#pragma once

#include <cstddef>
#include <functional>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"

namespace lsds::core {

struct TraceEvent {
  SimTime time = 0;
  std::string kind;
  std::vector<std::pair<std::string, std::string>> attrs;

  /// Attribute lookup; returns std::nullopt when absent.
  std::optional<std::string> attr(const std::string& key) const;
  /// Numeric attribute with default.
  double num(const std::string& key, double def) const;
  /// Unit-aware attribute lookups (sizes like "2GB", rates like "1Gbps").
  double size(const std::string& key, double def_bytes) const;
  double rate(const std::string& key, double def_bytes_per_sec) const;
};

class TraceReader {
 public:
  /// Parse a whole trace. Throws std::runtime_error on malformed lines.
  static std::vector<TraceEvent> parse(std::istream& in);
  static std::vector<TraceEvent> parse_text(const std::string& text);
  static std::vector<TraceEvent> load(const std::string& path);
};

class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out) : out_(out) {}
  void write(const TraceEvent& ev);
  void write_comment(const std::string& text);

 private:
  std::ostream& out_;
};

/// Feeds a trace into an engine: every trace event becomes one engine event
/// invoking `dispatch`. Events must be time-sorted (enforced).
class TraceDriver {
 public:
  using Dispatch = std::function<void(const TraceEvent&)>;

  TraceDriver(Engine& engine, std::vector<TraceEvent> events, Dispatch dispatch);

  /// Schedule every trace event. Call once before Engine::run().
  void arm();

  std::size_t count() const { return events_.size(); }

 private:
  Engine& engine_;
  std::vector<TraceEvent> events_;
  Dispatch dispatch_;
};

}  // namespace lsds::core
