// Simulation time.
//
// The framework follows the convention of SimGrid and most DES toolkits:
// simulation time is a double counting seconds since the start of the
// experiment. The taxonomy's "time base" axis (discrete vs continuous values)
// is realized as follows: the *clock* is a continuous quantity, but state
// changes happen only at discrete event instants (discrete-event mechanics);
// the optional engine quantum (Engine::set_time_quantum) coarsens the clock
// to a discrete grid, which is what a time-driven simulation observes.
#pragma once

#include <limits>

namespace lsds::core {

/// Seconds since simulation start.
using SimTime = double;

/// Sentinel for "never" / "no pending event".
inline constexpr SimTime kInfTime = std::numeric_limits<SimTime>::infinity();

/// Smallest meaningful time delta; used by tests comparing event timestamps.
inline constexpr SimTime kTimeEpsilon = 1e-12;

}  // namespace lsds::core
