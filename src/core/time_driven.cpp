#include "core/time_driven.hpp"

namespace lsds::core {

TimeDrivenRunner::Result TimeDrivenRunner::run(SimTime t_end) {
  Result res;
  SimTime t = engine_.now();
  while (t < t_end && !engine_.stopped()) {
    t += tick_;
    if (t > t_end) t = t_end;
    for (auto& fn : tick_handlers_) fn(t);
    const std::uint64_t n = engine_.run_until(t);
    ++res.ticks;
    if (n == 0) ++res.empty_ticks;
    res.events += n;
  }
  return res;
}

}  // namespace lsds::core
