// The paper's taxonomy of large-scale distributed systems simulators
// (Section 3), as data.
//
// Every classification axis is an enum (or flag set) with printers, so a
// simulator's profile is a plain struct and Table 1 is generated — not
// transcribed — from profiles (see taxonomy/registry.hpp and
// bench/bench_table1.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lsds::taxonomy {

// --- simulation model: scope / motivation --------------------------------

enum class Scope : std::uint32_t {
  kScheduling = 1u << 0,        // evaluating scheduling algorithms
  kDataReplication = 1u << 1,   // replica optimization strategies
  kDataTransport = 1u << 2,     // data movement technologies
  kEconomy = 1u << 3,           // computational economy / brokering
  kGenericGrid = 1u << 4,       // whole-system Grid modeling
  kP2P = 1u << 5,               // peer-to-peer networks
};
using ScopeSet = std::uint32_t;

std::string scope_to_string(ScopeSet scopes);

// --- simulation model: simulated components ---------------------------------

struct Components {
  bool hosts = false;
  bool network = false;
  bool middleware = false;
  bool applications = false;
};

std::string components_to_string(const Components& c);

// --- supported model --------------------------------------------------------

enum class Behavior { kDeterministic, kProbabilistic, kBoth };
enum class TimeBase { kDiscrete, kContinuous };

// --- implementation: engine -----------------------------------------------

enum class Mechanics { kContinuous, kDiscreteEvent, kHybrid };
enum class DesKind { kNotApplicable, kTraceDriven, kTimeDriven, kEventDriven };
enum class Execution { kCentralized, kDistributed };

// --- implementation: model specification -----------------------------------

enum class ModelSpec { kLanguage, kLibrary, kVisual };

// --- implementation: input / output -----------------------------------------

enum class InputData { kGenerators, kMonitoring, kBoth };

struct UserInterface {
  bool visual_design = false;     // drag-and-drop model construction
  bool visual_execution = false;  // animations / runtime interactivity
  bool visual_output = false;     // plots / output analyzers
};

std::string ui_to_string(const UserInterface& ui);

// --- validation -------------------------------------------------------------

enum class Validation { kNone, kMathematical, kTestbed, kBoth };

const char* to_string(Behavior b);
const char* to_string(TimeBase t);
const char* to_string(Mechanics m);
const char* to_string(DesKind k);
const char* to_string(Execution e);
const char* to_string(ModelSpec m);
const char* to_string(InputData i);
const char* to_string(Validation v);

/// A simulator's full classification — one column of Table 1.
struct SimulatorProfile {
  std::string name;
  std::string organization;  // resource organization, e.g. "central model"
  ScopeSet scope = 0;
  Components components;
  bool dynamic_components = false;  // user-defined components at runtime
  Behavior behavior = Behavior::kBoth;
  TimeBase time_base = TimeBase::kDiscrete;
  Mechanics mechanics = Mechanics::kDiscreteEvent;
  DesKind des_kind = DesKind::kEventDriven;
  Execution execution = Execution::kCentralized;
  std::string engine_notes;  // event list / job-thread mapping specifics
  ModelSpec model_spec = ModelSpec::kLibrary;
  std::string implementation_language;
  InputData input = InputData::kGenerators;
  UserInterface ui;
  Validation validation = Validation::kNone;
};

}  // namespace lsds::taxonomy
