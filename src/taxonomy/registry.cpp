#include "taxonomy/registry.hpp"

#include "stats/table.hpp"

namespace lsds::taxonomy {

namespace {

ScopeSet scopes(std::initializer_list<Scope> list) {
  ScopeSet s = 0;
  for (Scope v : list) s |= static_cast<ScopeSet>(v);
  return s;
}

SimulatorProfile bricks() {
  SimulatorProfile p;
  p.name = "Bricks";
  p.organization = "central model";
  // "resource scheduling algorithms, programming modules for scheduling,
  // network topology of clients and servers"; later extended "with replica
  // and disk management simulation capabilities".
  p.scope = scopes({Scope::kScheduling, Scope::kDataReplication});
  p.components = {true, true, true, false};
  p.dynamic_components = false;  // the paper's explicit counter-example
  p.behavior = Behavior::kBoth;
  p.time_base = TimeBase::kDiscrete;
  p.mechanics = Mechanics::kDiscreteEvent;
  p.des_kind = DesKind::kEventDriven;
  p.execution = Execution::kCentralized;
  p.engine_notes = "single global queue at one site";
  p.model_spec = ModelSpec::kLibrary;
  p.implementation_language = "Java";
  p.input = InputData::kGenerators;
  p.ui = {false, false, false};
  p.validation = Validation::kTestbed;  // one of the few with validation studies
  return p;
}

SimulatorProfile optorsim() {
  SimulatorProfile p;
  p.name = "OptorSim";
  p.organization = "EU DataGrid sites";
  p.scope = scopes({Scope::kDataReplication, Scope::kDataTransport});
  p.components = {true, true, true, false};
  p.dynamic_components = true;
  p.behavior = Behavior::kBoth;
  p.time_base = TimeBase::kDiscrete;
  p.mechanics = Mechanics::kDiscreteEvent;
  p.des_kind = DesKind::kEventDriven;
  p.execution = Execution::kCentralized;
  p.engine_notes = "pull replication optimizers per site";
  p.model_spec = ModelSpec::kLibrary;
  p.implementation_language = "Java";
  p.input = InputData::kGenerators;
  p.ui = {false, false, true};  // ships plotting of optimizer measurements
  p.validation = Validation::kNone;
  return p;
}

SimulatorProfile simgrid() {
  SimulatorProfile p;
  p.name = "SimGrid";
  p.organization = "agents over channels";
  p.scope = scopes({Scope::kScheduling});
  // "does not provide any of the system support facilities as discussed in
  // the taxonomy": no middleware layer modeling.
  p.components = {true, true, false, true};
  p.dynamic_components = true;
  p.behavior = Behavior::kBoth;
  p.time_base = TimeBase::kDiscrete;
  p.mechanics = Mechanics::kDiscreteEvent;
  p.des_kind = DesKind::kEventDriven;
  p.execution = Execution::kCentralized;
  p.engine_notes = "compile-time + runtime scheduling of agent decisions";
  p.model_spec = ModelSpec::kLibrary;
  p.implementation_language = "C";
  p.input = InputData::kGenerators;
  p.ui = {false, false, false};
  p.validation = Validation::kMathematical;  // Casanova 2001 analytic comparison
  return p;
}

SimulatorProfile gridsim() {
  SimulatorProfile p;
  p.name = "GridSim";
  p.organization = "brokered resources";
  p.scope = scopes({Scope::kScheduling, Scope::kEconomy});
  p.components = {true, true, true, true};
  p.dynamic_components = true;
  p.behavior = Behavior::kBoth;
  p.time_base = TimeBase::kDiscrete;
  p.mechanics = Mechanics::kDiscreteEvent;
  p.des_kind = DesKind::kEventDriven;
  p.execution = Execution::kCentralized;
  p.engine_notes = "time- and space-shared resources; multiple brokers";
  p.model_spec = ModelSpec::kLibrary;
  p.implementation_language = "Java";
  p.input = InputData::kGenerators;
  p.ui = {true, false, false};  // visual design interface (paper, Sec. 3)
  p.validation = Validation::kNone;
  return p;
}

SimulatorProfile chicsim() {
  SimulatorProfile p;
  p.name = "ChicagoSim";
  p.organization = "sites, n schedulers";
  p.scope = scopes({Scope::kScheduling, Scope::kDataReplication});
  p.components = {true, true, true, false};
  p.dynamic_components = true;
  p.behavior = Behavior::kBoth;
  p.time_base = TimeBase::kDiscrete;
  p.mechanics = Mechanics::kDiscreteEvent;
  p.des_kind = DesKind::kEventDriven;
  p.execution = Execution::kCentralized;
  p.engine_notes = "push replication; configurable scheduler count";
  p.model_spec = ModelSpec::kLanguage;  // built on the Parsec simulation language
  p.implementation_language = "Parsec/C";
  p.input = InputData::kGenerators;  // "accepts only input data generators"
  p.ui = {false, false, false};
  p.validation = Validation::kNone;
  return p;
}

SimulatorProfile monarc2() {
  SimulatorProfile p;
  p.name = "MONARC 2";
  p.organization = "tier model";
  p.scope = scopes({Scope::kScheduling, Scope::kDataReplication, Scope::kDataTransport,
                    Scope::kGenericGrid});
  p.components = {true, true, true, true};
  p.dynamic_components = true;
  p.behavior = Behavior::kBoth;
  p.time_base = TimeBase::kDiscrete;
  p.mechanics = Mechanics::kDiscreteEvent;
  p.des_kind = DesKind::kEventDriven;
  p.execution = Execution::kCentralized;  // threaded on one host
  p.engine_notes = "process-oriented 'active objects' on threads";
  p.model_spec = ModelSpec::kLibrary;
  p.implementation_language = "Java";
  p.input = InputData::kBoth;  // generators + MonALISA monitoring data
  p.ui = {true, true, true};   // visual design interface + output analysis
  p.validation = Validation::kTestbed;  // LHC T0/T1 study vs deployment
  return p;
}

}  // namespace

std::vector<SimulatorProfile> surveyed_simulators() {
  return {bricks(), optorsim(), simgrid(), gridsim(), chicsim(), monarc2()};
}

SimulatorProfile lsds_profile() {
  SimulatorProfile p;
  p.name = "LSDS-Sim";
  p.organization = "central + tier (builders)";
  p.scope = scopes({Scope::kScheduling, Scope::kDataReplication, Scope::kDataTransport,
                    Scope::kEconomy, Scope::kGenericGrid});
  p.components = {true, true, true, true};
  p.dynamic_components = true;
  p.behavior = Behavior::kBoth;
  p.time_base = TimeBase::kDiscrete;
  p.mechanics = Mechanics::kDiscreteEvent;
  p.des_kind = DesKind::kEventDriven;  // + time-driven & trace-driven modes
  p.execution = Execution::kDistributed;  // threaded conservative LP engine
  p.engine_notes = "pluggable event lists (O(1)..O(n)); coroutine processes";
  p.model_spec = ModelSpec::kLibrary;
  p.implementation_language = "C++20";
  p.input = InputData::kBoth;
  p.ui = {false, false, true};  // CSV/gnuplot-ready output, no GUI
  p.validation = Validation::kMathematical;  // queueing-theory suite (E5)
  return p;
}

std::string render_table1(bool include_lsds) {
  std::vector<SimulatorProfile> profiles = surveyed_simulators();
  if (include_lsds) profiles.push_back(lsds_profile());

  // Rows = taxonomy axes, columns = simulators (the paper's layout).
  std::vector<std::string> headers{"axis"};
  for (const auto& p : profiles) headers.push_back(p.name);
  stats::AsciiTable table(headers);

  auto row = [&](const std::string& axis, auto getter) {
    std::vector<std::string> cells{axis};
    for (const auto& p : profiles) cells.push_back(getter(p));
    table.add_row(std::move(cells));
  };

  row("scope", [](const SimulatorProfile& p) { return scope_to_string(p.scope); });
  row("organization", [](const SimulatorProfile& p) { return p.organization; });
  row("components (H/N/M/A)",
      [](const SimulatorProfile& p) { return components_to_string(p.components); });
  row("dynamic components",
      [](const SimulatorProfile& p) { return std::string(p.dynamic_components ? "yes" : "no"); });
  row("behavior", [](const SimulatorProfile& p) { return std::string(to_string(p.behavior)); });
  row("time base", [](const SimulatorProfile& p) { return std::string(to_string(p.time_base)); });
  row("mechanics", [](const SimulatorProfile& p) { return std::string(to_string(p.mechanics)); });
  row("DES kind", [](const SimulatorProfile& p) { return std::string(to_string(p.des_kind)); });
  row("execution", [](const SimulatorProfile& p) { return std::string(to_string(p.execution)); });
  row("engine notes", [](const SimulatorProfile& p) { return p.engine_notes; });
  row("model spec", [](const SimulatorProfile& p) { return std::string(to_string(p.model_spec)); });
  row("language", [](const SimulatorProfile& p) { return p.implementation_language; });
  row("input data", [](const SimulatorProfile& p) { return std::string(to_string(p.input)); });
  row("user interface", [](const SimulatorProfile& p) { return ui_to_string(p.ui); });
  row("validation",
      [](const SimulatorProfile& p) { return std::string(to_string(p.validation)); });

  return table.render();
}

}  // namespace lsds::taxonomy
