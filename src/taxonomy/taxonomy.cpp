#include "taxonomy/taxonomy.hpp"

namespace lsds::taxonomy {

std::string scope_to_string(ScopeSet scopes) {
  std::vector<std::string> parts;
  if (scopes & static_cast<ScopeSet>(Scope::kScheduling)) parts.push_back("scheduling");
  if (scopes & static_cast<ScopeSet>(Scope::kDataReplication)) parts.push_back("replication");
  if (scopes & static_cast<ScopeSet>(Scope::kDataTransport)) parts.push_back("transport");
  if (scopes & static_cast<ScopeSet>(Scope::kEconomy)) parts.push_back("economy");
  if (scopes & static_cast<ScopeSet>(Scope::kGenericGrid)) parts.push_back("generic-grid");
  if (scopes & static_cast<ScopeSet>(Scope::kP2P)) parts.push_back("p2p");
  if (parts.empty()) return "-";
  std::string out = parts[0];
  for (std::size_t i = 1; i < parts.size(); ++i) out += "+" + parts[i];
  return out;
}

std::string components_to_string(const Components& c) {
  std::string out;
  out += c.hosts ? 'H' : '-';
  out += c.network ? 'N' : '-';
  out += c.middleware ? 'M' : '-';
  out += c.applications ? 'A' : '-';
  return out;
}

std::string ui_to_string(const UserInterface& ui) {
  if (!ui.visual_design && !ui.visual_execution && !ui.visual_output) return "textual";
  std::string out;
  out += ui.visual_design ? 'D' : '-';
  out += ui.visual_execution ? 'E' : '-';
  out += ui.visual_output ? 'O' : '-';
  return "visual:" + out;
}

const char* to_string(Behavior b) {
  switch (b) {
    case Behavior::kDeterministic: return "deterministic";
    case Behavior::kProbabilistic: return "probabilistic";
    case Behavior::kBoth: return "det+prob";
  }
  return "?";
}

const char* to_string(TimeBase t) {
  switch (t) {
    case TimeBase::kDiscrete: return "discrete";
    case TimeBase::kContinuous: return "continuous";
  }
  return "?";
}

const char* to_string(Mechanics m) {
  switch (m) {
    case Mechanics::kContinuous: return "continuous";
    case Mechanics::kDiscreteEvent: return "DES";
    case Mechanics::kHybrid: return "hybrid";
  }
  return "?";
}

const char* to_string(DesKind k) {
  switch (k) {
    case DesKind::kNotApplicable: return "n/a";
    case DesKind::kTraceDriven: return "trace-driven";
    case DesKind::kTimeDriven: return "time-driven";
    case DesKind::kEventDriven: return "event-driven";
  }
  return "?";
}

const char* to_string(Execution e) {
  switch (e) {
    case Execution::kCentralized: return "centralized";
    case Execution::kDistributed: return "distributed";
  }
  return "?";
}

const char* to_string(ModelSpec m) {
  switch (m) {
    case ModelSpec::kLanguage: return "language";
    case ModelSpec::kLibrary: return "library";
    case ModelSpec::kVisual: return "visual";
  }
  return "?";
}

const char* to_string(InputData i) {
  switch (i) {
    case InputData::kGenerators: return "generators";
    case InputData::kMonitoring: return "monitoring";
    case InputData::kBoth: return "gen+monitoring";
  }
  return "?";
}

const char* to_string(Validation v) {
  switch (v) {
    case Validation::kNone: return "none";
    case Validation::kMathematical: return "mathematical";
    case Validation::kTestbed: return "testbed";
    case Validation::kBoth: return "math+testbed";
  }
  return "?";
}

}  // namespace lsds::taxonomy
