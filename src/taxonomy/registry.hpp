// Classification registry for the six simulators surveyed in Section 4,
// plus LSDS-Sim itself.
//
// The profiles encode the paper's prose descriptions: Bricks' central model
// and lack of dynamic components, OptorSim's pull replication scope,
// SimGrid's scheduling toolkit without "system support facilities",
// GridSim's economy brokering, ChicagoSim's scheduling+data-location scope
// on Parsec, and MONARC 2's tier model with process-oriented active objects
// and MonALISA monitoring input. Table 1 is rendered from these profiles by
// render_table1().
#pragma once

#include <string>
#include <vector>

#include "taxonomy/taxonomy.hpp"

namespace lsds::taxonomy {

/// Profiles of the six surveyed simulators, in the paper's order:
/// Bricks, OptorSim, SimGrid, GridSim, ChicagoSim, MONARC 2.
std::vector<SimulatorProfile> surveyed_simulators();

/// LSDS-Sim's own honest classification.
SimulatorProfile lsds_profile();

/// Render Table 1 ("Design comparison of surveyed Grid simulation
/// projects") from the profiles; `include_lsds` appends our own column.
std::string render_table1(bool include_lsds = true);

}  // namespace lsds::taxonomy
