// Resource-organization builders for the two canonical Grid shapes the
// paper contrasts:
//
//   * the "central model" proposed by Bricks — "all the jobs are processed
//     at a single site": clients around one server complex;
//   * the "tier model" proposed by MONARC — "jobs are processed according
//     to their hierarchical levels": T0 -> T1s -> T2s.
//
// Both return a fully-wired (but not yet finalized) Grid; callers may add
// extra links before grid.finalize().
#pragma once

#include <cstddef>
#include <vector>

#include "hosts/site.hpp"

namespace lsds::hosts {

struct CentralModelSpec {
  std::size_t num_clients = 16;
  SiteSpec client;            // per-client resources (usually tiny)
  SiteSpec server;            // the central processing site
  double client_bw = 12.5e6;  // client <-> hub
  double client_latency = 0.02;
  double server_bw = 125e6;   // hub <-> server
  double server_latency = 0.002;
};

/// Builds clients + hub router + central server. Site 0 is the server,
/// sites 1..n are the clients. Calls grid.finalize().
void build_central_model(Grid& grid, const CentralModelSpec& spec);

struct TierLevelSpec {
  std::size_t fanout = 1;      // children per parent at this level
  SiteSpec site;               // resources of each site at this level
  double uplink_bw = 125e6;    // child <-> parent
  double uplink_latency = 0.02;
};

struct TierModelSpec {
  SiteSpec t0;                       // the root (CERN T0)
  std::vector<TierLevelSpec> levels;  // T1 level, T2 level, ...
};

/// Builds the tier hierarchy. Site 0 is T0; deeper tiers follow in
/// breadth-first order. Calls grid.finalize().
void build_tier_model(Grid& grid, const TierModelSpec& spec);

/// Sites of a given tier depth (0 = T0) after build_tier_model.
std::vector<SiteId> tier_sites(const Grid& grid, const TierModelSpec& spec, std::size_t depth);

}  // namespace lsds::hosts
