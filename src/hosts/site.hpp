// Sites (regional centers) and the Grid container.
//
// MONARC's largest component is "the regional center, which contains a farm
// of processing nodes (CPU units), database servers and mass storage units,
// as well as one or more local and wide area networks". A Site bundles a
// CPU farm, a disk storage element and optional mass storage, attached to a
// topology node. Grid owns the sites plus the network stack and finalizes
// routing once the topology is complete.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "hosts/storage.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace lsds::hosts {

using SiteId = std::uint32_t;
inline constexpr SiteId kInvalidSite = static_cast<SiteId>(-1);

struct SiteSpec {
  std::string name;
  unsigned cores = 1;
  double cpu_speed = 1000;  // ops/s per core
  SharingPolicy policy = SharingPolicy::kSpaceShared;
  double disk_capacity = 1e12;
  double disk_read_bw = 100e6;
  double disk_write_bw = 100e6;
  double disk_latency = 0.005;
  /// Price per CPU-second (GridSim economy facade); 0 = free.
  double price_per_cpu_second = 0;
  /// Optional mass storage (tape).
  bool has_mass_storage = false;
  double tape_capacity = 1e15;
  double tape_bandwidth = 30e6;
  double tape_mount_latency = 30.0;
  /// Optional fast tier (SSD cache in front of the disk buffer).
  bool has_ssd = false;
  double ssd_capacity = 1e11;
  double ssd_read_bw = 500e6;
  double ssd_write_bw = 400e6;
  double ssd_latency = 1e-4;
  /// Contention model for every storage tier of this site. kMaxMin makes
  /// the devices capacity resources of the grid's flow network, so network
  /// transfers are jointly constrained by endpoint disks (Grid installs
  /// the endpoint binder when any site opts in).
  StorageSharing storage_sharing = StorageSharing::kFifo;
};

/// The tiers a site may carry, slowest to fastest.
enum class StorageTier { kTape, kDisk, kSsd };

class Site {
 public:
  Site(core::Engine& engine, SiteId id, net::NodeId node, const SiteSpec& spec);

  SiteId id() const { return id_; }
  net::NodeId node() const { return node_; }
  const std::string& name() const { return spec_.name; }
  const SiteSpec& spec() const { return spec_; }

  CpuResource& cpu() { return cpu_; }
  const CpuResource& cpu() const { return cpu_; }
  StorageDevice& disk() { return disk_; }
  const StorageDevice& disk() const { return disk_; }
  bool has_tape() const { return tape_ != nullptr; }
  StorageDevice& tape() { return *tape_; }
  bool has_ssd() const { return ssd_ != nullptr; }
  StorageDevice& ssd() { return *ssd_; }
  /// Tier accessor; nullptr when the site does not carry that tier.
  StorageDevice* storage(StorageTier tier);
  /// Register every max-min tier with the flow network (no-op for FIFO
  /// tiers). Grid calls this during finalize.
  void attach_solver(net::FlowNetwork& net);

 private:
  SiteId id_;
  net::NodeId node_;
  SiteSpec spec_;
  CpuResource cpu_;
  StorageDevice disk_;
  std::unique_ptr<StorageDevice> tape_;
  std::unique_ptr<StorageDevice> ssd_;
};

/// Owns the simulated distributed system: topology + sites + (after
/// finalize) routing and the flow network. Build order: add nodes/links and
/// sites, then finalize(), then simulate.
class Grid {
 public:
  explicit Grid(core::Engine& engine) : engine_(engine) {}

  core::Engine& engine() { return engine_; }
  net::Topology& topology() { return topo_; }
  const net::Topology& topology() const { return topo_; }

  /// Create a topology node and a Site attached to it.
  Site& add_site(const SiteSpec& spec);
  /// Attach a site to an existing node.
  Site& add_site_at(const SiteSpec& spec, net::NodeId node);

  /// Build routing + flow network over the flat topology. The topology
  /// must not change afterwards.
  void finalize(net::FlowNetwork::Config net_cfg = {});
  /// Zone/external-provider variant: routes come from `provider` instead of
  /// a flat graph (sites attach to provider node ids via add_site_at; the
  /// local topology stays unused). `provider` must outlive the grid.
  void finalize_with(net::RouteProvider& provider, net::FlowNetwork::Config net_cfg = {});
  bool finalized() const { return provider_ != nullptr; }

  /// The route provider every consumer should program against (works for
  /// both flat and zone-backed grids).
  net::RouteProvider& route_provider() { return *provider_; }
  /// The flat Routing; only valid after finalize() (not finalize_with).
  net::Routing& routing() { return *routing_; }
  net::FlowNetwork& net() { return *net_; }

  std::size_t site_count() const { return sites_.size(); }
  Site& site(SiteId id) { return *sites_[id]; }
  const Site& site(SiteId id) const { return *sites_[id]; }
  /// Lookup by name; kInvalidSite when absent.
  SiteId find_site(const std::string& name) const;

  /// Site whose storage backs a topology node (the endpoint binder's map);
  /// kInvalidSite when no site is attached there.
  SiteId site_at_node(net::NodeId node) const;

 private:
  /// Attach max-min storage tiers to the flow network and, when any site
  /// opted into max-min sharing, install the endpoint binder that joins
  /// `source disk read + route links + destination disk write` into one
  /// constraint set. Pure-FIFO grids leave the network untouched.
  void wire_storage();

  core::Engine& engine_;
  net::Topology topo_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<net::Routing> routing_;
  net::RouteProvider* provider_ = nullptr;
  std::unique_ptr<net::FlowNetwork> net_;
};

}  // namespace lsds::hosts
