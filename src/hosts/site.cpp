#include "hosts/site.hpp"

#include <cassert>

namespace lsds::hosts {

Site::Site(core::Engine& engine, SiteId id, net::NodeId node, const SiteSpec& spec)
    : id_(id),
      node_(node),
      spec_(spec),
      cpu_(engine, spec.name + ".cpu", spec.cores, spec.cpu_speed, spec.policy),
      disk_(engine, spec.name + ".disk",
            StorageDevice::Spec{spec.disk_capacity, spec.disk_read_bw, spec.disk_write_bw,
                                spec.disk_latency}) {
  if (spec.has_mass_storage) {
    tape_ = std::make_unique<StorageDevice>(
        engine, spec.name + ".tape",
        mass_storage_spec(spec.tape_capacity, spec.tape_bandwidth, spec.tape_mount_latency));
  }
}

Site& Grid::add_site(const SiteSpec& spec) {
  const net::NodeId node = topo_.add_node(spec.name, net::NodeKind::kHost);
  return add_site_at(spec, node);
}

Site& Grid::add_site_at(const SiteSpec& spec, net::NodeId node) {
  assert(!finalized() && "cannot add sites after finalize()");
  const auto id = static_cast<SiteId>(sites_.size());
  sites_.push_back(std::make_unique<Site>(engine_, id, node, spec));
  return *sites_.back();
}

void Grid::finalize(net::FlowNetwork::Config net_cfg) {
  assert(!finalized());
  routing_ = std::make_unique<net::Routing>(topo_);
  provider_ = routing_.get();
  net_ = std::make_unique<net::FlowNetwork>(engine_, *provider_, net_cfg);
}

void Grid::finalize_with(net::RouteProvider& provider, net::FlowNetwork::Config net_cfg) {
  assert(!finalized());
  provider_ = &provider;
  net_ = std::make_unique<net::FlowNetwork>(engine_, provider, net_cfg);
}

SiteId Grid::find_site(const std::string& name) const {
  for (const auto& s : sites_) {
    if (s->name() == name) return s->id();
  }
  return kInvalidSite;
}

}  // namespace lsds::hosts
