#include "hosts/site.hpp"

#include <cassert>
#include <unordered_map>

namespace lsds::hosts {

Site::Site(core::Engine& engine, SiteId id, net::NodeId node, const SiteSpec& spec)
    : id_(id),
      node_(node),
      spec_(spec),
      cpu_(engine, spec.name + ".cpu", spec.cores, spec.cpu_speed, spec.policy),
      disk_(engine, spec.name + ".disk",
            StorageDevice::Spec{spec.disk_capacity, spec.disk_read_bw, spec.disk_write_bw,
                                spec.disk_latency, spec.storage_sharing}) {
  if (spec.has_mass_storage) {
    tape_ = std::make_unique<StorageDevice>(
        engine, spec.name + ".tape",
        mass_storage_spec(spec.tape_capacity, spec.tape_bandwidth, spec.tape_mount_latency,
                          spec.storage_sharing));
  }
  if (spec.has_ssd) {
    ssd_ = std::make_unique<StorageDevice>(
        engine, spec.name + ".ssd",
        StorageDevice::Spec{spec.ssd_capacity, spec.ssd_read_bw, spec.ssd_write_bw,
                            spec.ssd_latency, spec.storage_sharing});
  }
}

StorageDevice* Site::storage(StorageTier tier) {
  switch (tier) {
    case StorageTier::kTape:
      return tape_.get();
    case StorageTier::kDisk:
      return &disk_;
    case StorageTier::kSsd:
      return ssd_.get();
  }
  return nullptr;
}

void Site::attach_solver(net::FlowNetwork& net) {
  // Ascending tier order (tape, disk, ssd) so resource ids are a pure
  // function of site order — determinism by construction.
  if (tape_) tape_->attach_solver(net);
  disk_.attach_solver(net);
  if (ssd_) ssd_->attach_solver(net);
}

Site& Grid::add_site(const SiteSpec& spec) {
  const net::NodeId node = topo_.add_node(spec.name, net::NodeKind::kHost);
  return add_site_at(spec, node);
}

Site& Grid::add_site_at(const SiteSpec& spec, net::NodeId node) {
  assert(!finalized() && "cannot add sites after finalize()");
  const auto id = static_cast<SiteId>(sites_.size());
  sites_.push_back(std::make_unique<Site>(engine_, id, node, spec));
  return *sites_.back();
}

void Grid::finalize(net::FlowNetwork::Config net_cfg) {
  assert(!finalized());
  routing_ = std::make_unique<net::Routing>(topo_);
  provider_ = routing_.get();
  net_ = std::make_unique<net::FlowNetwork>(engine_, *provider_, net_cfg);
  wire_storage();
}

void Grid::finalize_with(net::RouteProvider& provider, net::FlowNetwork::Config net_cfg) {
  assert(!finalized());
  provider_ = &provider;
  net_ = std::make_unique<net::FlowNetwork>(engine_, provider, net_cfg);
  wire_storage();
}

void Grid::wire_storage() {
  bool any_maxmin = false;
  for (const auto& s : sites_) {
    if (s->spec().storage_sharing == StorageSharing::kMaxMin) {
      any_maxmin = true;
      break;
    }
  }
  if (!any_maxmin) return;  // pure-FIFO grid: flow network stays link-only
  // Ascending site id -> resource registration order is deterministic.
  for (auto& s : sites_) s->attach_solver(*net_);
  // The binder consults a node -> site map fixed at finalize time (first
  // site attached to a node wins), so it is pure in (src, dst).
  auto node_site = std::make_shared<std::unordered_map<net::NodeId, SiteId>>();
  for (const auto& s : sites_) node_site->emplace(s->node(), s->id());
  net_->set_endpoint_binder([this, node_site](net::NodeId src, net::NodeId dst,
                                              std::vector<net::ResourceId>& resources,
                                              double& extra_latency) {
    auto sit = node_site->find(src);
    if (sit != node_site->end()) {
      StorageDevice& d = sites_[sit->second]->disk();
      if (d.sharing() == StorageSharing::kMaxMin) {
        resources.push_back(d.read_resource());
        extra_latency += d.access_latency();
      }
    }
    auto dit = node_site->find(dst);
    if (dit != node_site->end()) {
      StorageDevice& d = sites_[dit->second]->disk();
      if (d.sharing() == StorageSharing::kMaxMin) {
        resources.push_back(d.write_resource());
        extra_latency += d.access_latency();
      }
    }
  });
}

SiteId Grid::find_site(const std::string& name) const {
  for (const auto& s : sites_) {
    if (s->name() == name) return s->id();
  }
  return kInvalidSite;
}

SiteId Grid::site_at_node(net::NodeId node) const {
  for (const auto& s : sites_) {
    if (s->node() == node) return s->id();
  }
  return kInvalidSite;
}

}  // namespace lsds::hosts
