// The job model.
//
// The taxonomy's host axis asks "how different simulators model the load of
// the computing nodes, the granularity of jobs being processed". A Job here
// carries a compute demand (abstract operations; seconds = ops / speed),
// input files by logical name (data-grid facades resolve them through the
// replica catalog) and an output size, plus the timestamps every scheduler
// study needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lsds::hosts {

using JobId = std::uint64_t;
inline constexpr JobId kInvalidJob = 0;

struct Job {
  JobId id = kInvalidJob;
  std::string name;

  /// Abstract compute demand; runtime on a processor of speed s is ops/s.
  double ops = 0;
  /// Logical names of input files (resolved via the replica catalog).
  std::vector<std::string> input_files;
  /// Bytes written on completion (0 = no output stage).
  double output_bytes = 0;

  // Lifecycle timestamps (filled by schedulers/facades).
  double submit_time = 0;
  double dispatch_time = 0;  // when assigned to a resource
  double start_time = 0;     // when compute began
  double finish_time = 0;

  /// Economy extensions (GridSim facade): constraints carried by the job.
  double budget = 0;    // currency units; 0 = unconstrained
  double deadline = 0;  // absolute time; 0 = unconstrained

  double response_time() const { return finish_time - submit_time; }
  double wait_time() const { return start_time - submit_time; }
};

}  // namespace lsds::hosts
