#include "hosts/cpu.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "obs/span.hpp"

namespace lsds::hosts {

namespace {
constexpr double kOpsEpsilon = 1e-6;
}

const char* to_string(SharingPolicy p) {
  switch (p) {
    case SharingPolicy::kSpaceShared: return "space-shared";
    case SharingPolicy::kTimeShared: return "time-shared";
  }
  return "?";
}

CpuResource::CpuResource(core::Engine& engine, std::string name, unsigned cores, double speed,
                         SharingPolicy policy)
    : engine_(engine), name_(std::move(name)), cores_(cores), speed_(speed), policy_(policy) {
  assert(cores_ > 0 && speed_ > 0);
}

bool CpuResource::has_idle_core() const {
  if (policy_ == SharingPolicy::kSpaceShared) return running_.size() < cores_;
  return true;
}

void CpuResource::submit(JobId id, double ops, DoneFn on_done) {
  assert(id != kInvalidJob && ops >= 0);
  const double demand = std::max(ops, kOpsEpsilon);
  Running r{demand, demand, 0, std::move(on_done), engine_.now()};
  if (policy_ == SharingPolicy::kSpaceShared && running_.size() >= cores_) {
    queue_.emplace_back(id, std::move(r));
    record_load();
    return;
  }
  progress_to_now();
  running_.emplace(id, std::move(r));
  record_load();
  resolve_and_reschedule();
}

void CpuResource::record_load() {
  load_.record(engine_.now(), static_cast<double>(running_.size() + queue_.size()));
}

void CpuResource::progress_to_now() {
  const double now = engine_.now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0) return;
  for (auto& [id, r] : running_) {
    const double done = std::min(r.rate * dt, r.remaining);
    r.remaining -= done;
    delivered_ops_ += done;
  }
}

void CpuResource::resolve_and_reschedule() {
  // Assign rates (zero while offline: progress freezes, state is kept).
  const std::size_t n = running_.size();
  if (n > 0) {
    double rate = 0;
    if (online_) {
      if (policy_ == SharingPolicy::kSpaceShared) {
        rate = speed_;  // each running job owns one core
      } else {
        rate = std::min(speed_, total_capacity() / static_cast<double>(n));
      }
    }
    for (auto& [id, r] : running_) r.rate = rate;
  }
  ++generation_;
  double soonest = std::numeric_limits<double>::infinity();
  for (const auto& [id, r] : running_) {
    if (r.rate > 0) soonest = std::min(soonest, r.remaining / r.rate);
  }
  if (soonest == std::numeric_limits<double>::infinity()) return;
  const std::uint64_t gen = generation_;
  engine_.schedule_in(soonest, [this, gen] { on_completion_event(gen); });
}

void CpuResource::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;
  progress_to_now();
  std::vector<JobId> done;
  for (const auto& [id, r] : running_) {
    if (r.remaining <= kOpsEpsilon) done.push_back(id);
  }
  if (done.empty()) {
    // Same float-livelock guard as FlowNetwork::on_completion_event: when
    // the residual service time is below the clock ulp, dt rounds to zero
    // and the epsilon test cannot fire; finish the job this event was
    // scheduled for (the minimal remaining/rate).
    JobId victim = kInvalidJob;
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [id, r] : running_) {
      if (r.rate <= 0) continue;
      const double eta = r.remaining / r.rate;
      if (eta < best) {
        best = eta;
        victim = id;
      }
    }
    if (victim != kInvalidJob) done.push_back(victim);
  }
  std::sort(done.begin(), done.end());
  std::vector<std::pair<JobId, DoneFn>> callbacks;
  callbacks.reserve(done.size());
  for (JobId id : done) {
    auto it = running_.find(id);
    publish_span(id, it->second, "done");
    callbacks.emplace_back(id, std::move(it->second.on_done));
    running_.erase(it);
    ++jobs_completed_;
  }
  try_dispatch();
  record_load();
  resolve_and_reschedule();
  // Callbacks last: they may resubmit work re-entrantly.
  for (auto& [id, cb] : callbacks) {
    if (cb) cb(id);
  }
}

void CpuResource::try_dispatch() {
  while (policy_ == SharingPolicy::kSpaceShared && running_.size() < cores_ && !queue_.empty()) {
    auto [id, r] = std::move(queue_.front());
    queue_.pop_front();
    running_.emplace(id, std::move(r));
  }
}

bool CpuResource::cancel(JobId id, double* done_ops) {
  progress_to_now();  // credit work before measuring this attempt's progress
  if (auto it = running_.find(id); it != running_.end()) {
    if (done_ops) *done_ops = it->second.ops - it->second.remaining;
    publish_span(id, it->second, "cancelled");
    running_.erase(it);
    try_dispatch();
    record_load();
    resolve_and_reschedule();
    return true;
  }
  for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
    if (qit->first == id) {
      if (done_ops) *done_ops = 0;
      queue_.erase(qit);
      record_load();
      return true;
    }
  }
  return false;
}

void CpuResource::set_online(bool up) {
  if (up == online_) return;
  progress_to_now();  // credit work done before the state change
  online_ = up;
  if (!up) {
    ++outages_;
    down_since_ = engine_.now();
  } else {
    downtime_ += engine_.now() - down_since_;
  }
  // Fail-stop: the crash wipes the node. Running jobs lose their progress,
  // queued jobs bounce; both are reported through the killed handler so a
  // recovery policy can re-drive them.
  std::vector<std::pair<JobId, double>> killed;
  if (!up && semantics_ == core::FailureSemantics::kFailStop &&
      (!running_.empty() || !queue_.empty())) {
    killed.reserve(running_.size() + queue_.size());
    for (const auto& [id, r] : running_) {
      publish_span(id, r, "killed");
      killed.emplace_back(id, r.ops - r.remaining);
    }
    for (const auto& [id, r] : queue_) {
      publish_span(id, r, "returned");
      killed.emplace_back(id, 0.0);
    }
    running_.clear();
    queue_.clear();
    std::sort(killed.begin(), killed.end());  // deterministic callback order
    jobs_killed_ += killed.size();
    record_load();
  }
  resolve_and_reschedule();
  // Callbacks last: they may resubmit work re-entrantly.
  if (killed_) {
    for (const auto& [id, lost] : killed) killed_(id, lost);
  }
  if (online_observer_) online_observer_(up);
}

double CpuResource::downtime() const {
  return downtime_ + (online_ ? 0.0 : engine_.now() - down_since_);
}

double CpuResource::availability(double t_end) const {
  if (t_end <= 0) return 1.0;
  return 1.0 - std::min(downtime(), t_end) / t_end;
}

double CpuResource::busy_ops() const { return delivered_ops_; }

void CpuResource::publish_span(JobId id, const Running& r, const char* status) const {
  const auto& bus = obs::SpanBus::global();
  if (!bus.enabled()) return;
  obs::Span s;
  s.kind = "job";
  s.status = status;
  s.id = id;
  s.t0 = r.submitted;
  s.t1 = engine_.now();
  s.quantity = r.ops;
  s.name = name_.c_str();
  bus.publish(s);
}

double CpuResource::utilization(double t_end) const {
  if (t_end <= 0) return 0;
  // delivered_ops_ is only current up to last_update_; add nothing beyond —
  // callers should query after the horizon.
  return delivered_ops_ / (total_capacity() * t_end);
}

void CpuResource::state_digest(core::StateHash& h) const {
  h.mix(std::string_view(name_));
  h.mix(online_);
  h.mix(static_cast<std::uint64_t>(running_.size()));
  std::vector<JobId> ids;
  ids.reserve(running_.size());
  for (const auto& [id, r] : running_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (JobId id : ids) {
    const Running& r = running_.at(id);
    h.mix(static_cast<std::uint64_t>(id));
    h.mix(r.ops);
    h.mix(r.remaining);
    h.mix(r.rate);
  }
  h.mix(static_cast<std::uint64_t>(queue_.size()));
  for (const auto& [id, r] : queue_) {
    h.mix(static_cast<std::uint64_t>(id));
    h.mix(r.ops);
  }
  h.mix(static_cast<std::uint64_t>(jobs_completed_));
  h.mix(static_cast<std::uint64_t>(jobs_killed_));
  h.mix(static_cast<std::uint64_t>(outages_));
}

}  // namespace lsds::hosts
