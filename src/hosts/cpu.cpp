#include "hosts/cpu.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace lsds::hosts {

namespace {
constexpr double kOpsEpsilon = 1e-6;
}

const char* to_string(SharingPolicy p) {
  switch (p) {
    case SharingPolicy::kSpaceShared: return "space-shared";
    case SharingPolicy::kTimeShared: return "time-shared";
  }
  return "?";
}

CpuResource::CpuResource(core::Engine& engine, std::string name, unsigned cores, double speed,
                         SharingPolicy policy)
    : engine_(engine), name_(std::move(name)), cores_(cores), speed_(speed), policy_(policy) {
  assert(cores_ > 0 && speed_ > 0);
}

bool CpuResource::has_idle_core() const {
  if (policy_ == SharingPolicy::kSpaceShared) return running_.size() < cores_;
  return true;
}

void CpuResource::submit(JobId id, double ops, DoneFn on_done) {
  assert(id != kInvalidJob && ops >= 0);
  Running r{std::max(ops, kOpsEpsilon), 0, std::move(on_done)};
  if (policy_ == SharingPolicy::kSpaceShared && running_.size() >= cores_) {
    queue_.emplace_back(id, std::move(r));
    record_load();
    return;
  }
  progress_to_now();
  running_.emplace(id, std::move(r));
  record_load();
  resolve_and_reschedule();
}

void CpuResource::record_load() {
  load_.record(engine_.now(), static_cast<double>(running_.size() + queue_.size()));
}

void CpuResource::progress_to_now() {
  const double now = engine_.now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0) return;
  for (auto& [id, r] : running_) {
    const double done = std::min(r.rate * dt, r.remaining);
    r.remaining -= done;
    delivered_ops_ += done;
  }
}

void CpuResource::resolve_and_reschedule() {
  // Assign rates (zero while offline: progress freezes, state is kept).
  const std::size_t n = running_.size();
  if (n > 0) {
    double rate = 0;
    if (online_) {
      if (policy_ == SharingPolicy::kSpaceShared) {
        rate = speed_;  // each running job owns one core
      } else {
        rate = std::min(speed_, total_capacity() / static_cast<double>(n));
      }
    }
    for (auto& [id, r] : running_) r.rate = rate;
  }
  ++generation_;
  double soonest = std::numeric_limits<double>::infinity();
  for (const auto& [id, r] : running_) {
    if (r.rate > 0) soonest = std::min(soonest, r.remaining / r.rate);
  }
  if (soonest == std::numeric_limits<double>::infinity()) return;
  const std::uint64_t gen = generation_;
  engine_.schedule_in(soonest, [this, gen] { on_completion_event(gen); });
}

void CpuResource::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;
  progress_to_now();
  std::vector<JobId> done;
  for (const auto& [id, r] : running_) {
    if (r.remaining <= kOpsEpsilon) done.push_back(id);
  }
  if (done.empty()) {
    // Same float-livelock guard as FlowNetwork::on_completion_event: when
    // the residual service time is below the clock ulp, dt rounds to zero
    // and the epsilon test cannot fire; finish the job this event was
    // scheduled for (the minimal remaining/rate).
    JobId victim = kInvalidJob;
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [id, r] : running_) {
      if (r.rate <= 0) continue;
      const double eta = r.remaining / r.rate;
      if (eta < best) {
        best = eta;
        victim = id;
      }
    }
    if (victim != kInvalidJob) done.push_back(victim);
  }
  std::sort(done.begin(), done.end());
  std::vector<std::pair<JobId, DoneFn>> callbacks;
  callbacks.reserve(done.size());
  for (JobId id : done) {
    auto it = running_.find(id);
    callbacks.emplace_back(id, std::move(it->second.on_done));
    running_.erase(it);
    ++jobs_completed_;
  }
  try_dispatch();
  record_load();
  resolve_and_reschedule();
  // Callbacks last: they may resubmit work re-entrantly.
  for (auto& [id, cb] : callbacks) {
    if (cb) cb(id);
  }
}

void CpuResource::try_dispatch() {
  while (policy_ == SharingPolicy::kSpaceShared && running_.size() < cores_ && !queue_.empty()) {
    auto [id, r] = std::move(queue_.front());
    queue_.pop_front();
    running_.emplace(id, std::move(r));
  }
}

void CpuResource::set_online(bool up) {
  if (up == online_) return;
  progress_to_now();  // credit work done before the state change
  online_ = up;
  if (!up) ++outages_;
  resolve_and_reschedule();
}

double CpuResource::busy_ops() const { return delivered_ops_; }

double CpuResource::utilization(double t_end) const {
  if (t_end <= 0) return 0;
  // delivered_ops_ is only current up to last_update_; add nothing beyond —
  // callers should query after the horizon.
  return delivered_ops_ / (total_capacity() * t_end);
}

}  // namespace lsds::hosts
