// Storage: disks, mass storage (tape), and the files they hold.
//
// The taxonomy's host axis includes "the types of data storage facilities".
// A StorageDevice tracks capacity and per-file metadata (size, creation and
// last-access times, pin state — the hooks replication strategies need) and
// serializes timed I/O FIFO behind a single head (busy-until model). Mass
// storage adds a per-access mount latency, modeling MONARC's tape robots.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace lsds::hosts {

struct StoredFile {
  std::string lfn;  // logical file name
  double bytes = 0;
  double created = 0;
  double last_access = 0;
  std::uint64_t access_count = 0;
  bool pinned = false;  // pinned files are never eviction candidates
};

class StorageDevice {
 public:
  struct Spec {
    double capacity = 0;   // bytes
    double read_bw = 0;    // bytes/s
    double write_bw = 0;   // bytes/s
    double latency = 0;    // per-access seek/mount latency, seconds
  };

  StorageDevice(core::Engine& engine, std::string name, Spec spec);

  // --- catalog (instant metadata operations) -------------------------------

  /// Register a file if capacity allows. Returns false when full or dup.
  bool store(const std::string& lfn, double bytes, bool pinned = false);
  bool has(const std::string& lfn) const { return files_.count(lfn) > 0; }
  bool evict(const std::string& lfn);
  /// Least-recently-used unpinned file; nullopt when none.
  std::optional<std::string> lru_candidate() const;
  /// Least-frequently-used unpinned file; nullopt when none.
  std::optional<std::string> lfu_candidate() const;
  const StoredFile* file(const std::string& lfn) const;
  std::vector<std::string> list() const;
  std::size_t file_count() const { return files_.size(); }

  double used() const { return used_; }
  double capacity() const { return spec_.capacity; }
  double free() const { return spec_.capacity - used_; }

  // --- timed I/O (FIFO behind one head) ------------------------------------

  using IoDoneFn = std::function<void()>;

  /// Timed read of a stored file; bumps access stats. `on_done` fires when
  /// the head finishes. Returns false (no callback) if the file is absent.
  bool read(const std::string& lfn, IoDoneFn on_done);
  /// Timed write; registers the file on completion. Returns false without
  /// side effects when it cannot fit.
  bool write(const std::string& lfn, double bytes, IoDoneFn on_done);

  // --- statistics -----------------------------------------------------------

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  double bytes_read() const { return bytes_read_; }
  double bytes_written() const { return bytes_written_; }
  const std::string& name() const { return name_; }

 private:
  double schedule_io(double duration, IoDoneFn on_done);

  core::Engine& engine_;
  std::string name_;
  Spec spec_;
  std::map<std::string, StoredFile> files_;
  std::set<std::string> pending_writes_;  // capacity reserved, head busy
  double used_ = 0;
  double busy_until_ = 0;
  std::uint64_t reads_ = 0, writes_ = 0;
  double bytes_read_ = 0, bytes_written_ = 0;
};

/// Tape-robot convenience: a StorageDevice spec with a large mount latency
/// and modest bandwidth.
StorageDevice::Spec mass_storage_spec(double capacity, double bandwidth, double mount_latency);

}  // namespace lsds::hosts
