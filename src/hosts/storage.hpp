// Storage: disks, mass storage (tape), and the files they hold.
//
// The taxonomy's host axis includes "the types of data storage facilities".
// A StorageDevice tracks capacity and per-file metadata (size, creation and
// last-access times, pin state — the hooks replication strategies need) and
// times I/O under one of two sharing models:
//
//   * StorageSharing::kFifo (default) — the original busy-until model: one
//     head, accesses serialize FIFO, each paying the per-access seek/mount
//     latency. Closed-form, no solver involvement; traces are locked
//     byte-identical to the pre-resource-API framework by
//     tests/storage_sharing_test.cpp.
//   * StorageSharing::kMaxMin — the device registers a read-head and a
//     write-head capacity resource with a net::FlowNetwork
//     (attach_solver), and every read/write becomes a flow constrained by
//     that resource: N concurrent readers max-min share read_bw, exactly
//     like flows share a link — because to the solver a disk IS a link
//     without endpoints (the SimGrid DiskImpl design). Network transfers
//     whose endpoints sit on max-min devices pick up `source disk read +
//     route links + destination disk write` as one jointly-solved
//     constraint set via the FlowNetwork endpoint binder installed by
//     hosts::Grid.
//
// Both modes share the catalog (store/evict/LRU/LFU/pin) and statistics
// API unchanged. Mass storage adds a per-access mount latency, modeling
// MONARC's tape robots; in max-min mode the mount latency is the flow's
// access-latency phase, so robot mounts overlap while the tape heads
// contend.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "net/flow.hpp"

namespace lsds::hosts {

struct StoredFile {
  std::string lfn;  // logical file name
  double bytes = 0;
  double created = 0;
  double last_access = 0;
  std::uint64_t access_count = 0;
  bool pinned = false;  // pinned files are never eviction candidates
};

/// How concurrent accesses to one device contend. kFifo serializes behind a
/// busy-until head; kMaxMin max-min shares the head bandwidth through the
/// flow solver (requires attach_solver).
enum class StorageSharing { kFifo, kMaxMin };

class StorageDevice {
 public:
  struct Spec {
    double capacity = 0;   // bytes
    double read_bw = 0;    // bytes/s
    double write_bw = 0;   // bytes/s
    double latency = 0;    // per-access seek/mount latency, seconds
    StorageSharing sharing = StorageSharing::kFifo;
  };

  StorageDevice(core::Engine& engine, std::string name, Spec spec);

  // --- capacity-resource wiring (max-min mode) -----------------------------

  /// Register this device's read and write heads as capacity resources of
  /// `net`. Required before timed I/O when sharing == kMaxMin; a no-op in
  /// FIFO mode (FIFO devices never touch the solver — that is what keeps
  /// fifo traces byte-identical to the pre-solver framework).
  void attach_solver(net::FlowNetwork& net);
  bool solver_attached() const { return net_ != nullptr; }
  StorageSharing sharing() const { return spec_.sharing; }
  /// Resource ids of the heads (valid only after attach_solver).
  net::ResourceId read_resource() const { return read_res_; }
  net::ResourceId write_resource() const { return write_res_; }

  // --- catalog (instant metadata operations) -------------------------------

  /// Register a file if capacity allows. Returns false when full or dup.
  /// Throws std::invalid_argument when `bytes` is negative or non-finite.
  bool store(const std::string& lfn, double bytes, bool pinned = false);
  bool has(const std::string& lfn) const { return files_.count(lfn) > 0; }
  /// Remove a file. Pinned files are protected: evict refuses (returns
  /// false) until set_pinned(lfn, false).
  bool evict(const std::string& lfn);
  /// Pin/unpin a stored file. Returns false when absent.
  bool set_pinned(const std::string& lfn, bool pinned);
  /// Least-recently-used unpinned file; nullopt when none.
  std::optional<std::string> lru_candidate() const;
  /// Least-frequently-used unpinned file; nullopt when none.
  std::optional<std::string> lfu_candidate() const;
  const StoredFile* file(const std::string& lfn) const;
  std::vector<std::string> list() const;
  std::size_t file_count() const { return files_.size(); }

  double used() const { return used_; }
  double capacity() const { return spec_.capacity; }
  double free() const { return spec_.capacity - used_; }
  /// Per-access seek/mount latency from the spec.
  double access_latency() const { return spec_.latency; }

  // --- timed I/O -----------------------------------------------------------

  using IoDoneFn = std::function<void()>;

  /// Timed read of a stored file; bumps access stats. `on_done` fires when
  /// the head finishes (FIFO) or the flow drains (max-min). Returns false
  /// (no callback) if the file is absent.
  bool read(const std::string& lfn, IoDoneFn on_done);
  /// Timed write; reserves capacity immediately, registers the file on
  /// completion. Returns false without side effects when it cannot fit or
  /// the name exists. Throws std::invalid_argument on negative or
  /// non-finite `bytes`.
  bool write(const std::string& lfn, double bytes, IoDoneFn on_done);

  /// Heuristic cost of one more access right now, for placement decisions
  /// (the replica catalog ranks staging sources with this): FIFO = current
  /// queue wait + seek/mount latency; max-min = latency scaled by the
  /// number of accesses already sharing the heads. Deterministic.
  double estimated_access_delay() const;
  /// Timed I/O currently in flight (max-min mode; 0 in FIFO mode).
  std::size_t active_ios() const { return active_ios_; }

  // --- statistics -----------------------------------------------------------

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  double bytes_read() const { return bytes_read_; }
  double bytes_written() const { return bytes_written_; }
  const std::string& name() const { return name_; }

 private:
  double schedule_io(double duration, IoDoneFn on_done);
  void start_shared_io(double bytes, net::ResourceId head, IoDoneFn on_done);

  core::Engine& engine_;
  std::string name_;
  Spec spec_;
  net::FlowNetwork* net_ = nullptr;
  net::ResourceId read_res_ = net::kInvalidResource;
  net::ResourceId write_res_ = net::kInvalidResource;
  std::map<std::string, StoredFile> files_;
  std::set<std::string> pending_writes_;  // capacity reserved, head busy
  double used_ = 0;
  double busy_until_ = 0;
  std::size_t active_ios_ = 0;
  std::uint64_t reads_ = 0, writes_ = 0;
  double bytes_read_ = 0, bytes_written_ = 0;
};

/// Tape-robot convenience: a StorageDevice spec with a large mount latency
/// and modest bandwidth.
StorageDevice::Spec mass_storage_spec(double capacity, double bandwidth, double mount_latency,
                                      StorageSharing sharing = StorageSharing::kFifo);

}  // namespace lsds::hosts
