// Parallel Grid execution: Sites partitioned across logical processes.
//
// Grid (hosts/site.hpp) binds every site to ONE sequential engine; at LSDS
// scale that serial execution "can not be a reality" (the paper's execution
// axis). ParallelGrid is the threaded counterpart: sites — each with its
// CPU farm, storage and local model state — are partitioned across the LPs
// of a core::ParallelEngine (engine-hosted mode, one full core::Engine per
// LP), and every cross-site interaction travels through the deterministic
// cross-LP message path.
//
// The lookahead is not a config knob: it is *derived from the topology* as
// the minimum path latency between any two sites in different partitions
// (net/partition.hpp). Physics guarantees conservatism — no site can affect
// another sooner than the network can carry the news. Consequences:
//   * the topology-aware partitioner keeps LAN-latency clusters together,
//     which directly widens the windows (lookahead auto-shrinks only when
//     the cut is forced through low-latency links);
//   * when the derived lookahead is <= 0 (a zero-latency link crosses the
//     cut) conservative parallelism is impossible, and ParallelGrid falls
//     back to serial execution with a logged reason. The fallback runs the
//     *same* model code on 1 LP, so results are identical by construction.
//
// Cross-site data movement uses an analytic store-and-forward channel per
// ordered site pair: a transfer occupies the channel for bytes/bottleneck
// bandwidth of the path, queueing FIFO behind earlier transfers on the same
// pair, and arrives one path latency later. The law is computed at the
// source from static routing data, so serial and parallel runs produce
// bit-identical timestamps — the property the differential determinism
// suite (tests/parallel_grid_test.cpp) enforces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/parallel.hpp"
#include "hosts/site.hpp"
#include "net/partition.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/zone.hpp"
#include "stats/summary.hpp"

namespace lsds::hosts {

/// How to execute a ParallelGrid model.
struct ExecutionSpec {
  bool parallel = false;   // false = serial reference (1 LP, 1 thread)
  unsigned threads = 4;
  unsigned lps = 0;        // 0 = one LP per thread
  net::PartitionScheme partition = net::PartitionScheme::kTopology;
  /// Optional lookahead floor override (seconds). Effective lookahead is
  /// min(derived, override) when > 0 — it can narrow windows for
  /// experiments, never widen them past what the topology allows.
  double lookahead_override = 0;
  core::QueueKind queue = core::QueueKind::kBinaryHeap;
  std::uint64_t seed = 42;
  /// Flow-network solver configuration for the per-LP flow networks
  /// (hosts the `[network] incremental` INI toggle end to end).
  net::FlowNetwork::Config network{};
};

/// Outcome of a ParallelGrid run: the engine's window/message counters plus
/// the per-LP load rollup (stats/summary) the execution report prints.
struct ExecutionReport {
  bool parallel = false;            // false when fell back (or asked serial)
  std::string fallback_reason;      // empty unless a parallel request fell back
  unsigned lps = 1;
  unsigned threads = 1;
  double lookahead = 0;             // effective window length (+inf serial)
  net::PartitionScheme partition = net::PartitionScheme::kTopology;
  core::ParallelEngine::Stats engine;
  /// Events executed per LP — balance profile (mean/min/max/stddev).
  stats::Accumulator lp_events;
  /// max/mean of per-LP events — 1.0 is perfect balance.
  double imbalance() const {
    return lp_events.mean() > 0 ? lp_events.max() / lp_events.mean() : 1.0;
  }
};

class ParallelGrid {
 public:
  explicit ParallelGrid(ExecutionSpec spec) : spec_(spec) {}

  net::Topology& topology() { return topo_; }
  const net::Topology& topology() const { return topo_; }
  std::uint64_t master_seed() const { return spec_.seed; }

  /// Create a topology node and record a site spec for it. Sites are
  /// instantiated (bound to their partition's engine) by finalize().
  SiteId add_site(const SiteSpec& spec);

  /// Zone-backed platform: routes come from `zone`'s algorithmic provider
  /// instead of a flat graph. Call before any add_site_at; sites then
  /// attach to zone node ids (typically zone.host(i)) and the local
  /// topology stays unused. The zone must outlive the grid.
  void use_zone(const net::Zone& zone);
  /// Record a site attached to an existing platform node (zone mode, or a
  /// hand-built topology node).
  SiteId add_site_at(const SiteSpec& spec, net::NodeId node);

  /// Partition sites, derive the lookahead, build per-LP engines and
  /// instantiate every Site on its owner LP. Topology must not change
  /// afterwards.
  void finalize();
  bool finalized() const { return pe_ != nullptr; }

  // --- post-finalize introspection -----------------------------------------

  std::size_t site_count() const { return specs_.size(); }
  Site& site(SiteId id) { return *sites_[id]; }
  unsigned lp_of(SiteId id) const { return owner_[id]; }
  unsigned num_lps() const { return pe_->num_lps(); }
  core::Engine& engine_of(SiteId id) { return *pe_->lp(owner_[id]).engine(); }
  net::RouteProvider& routing() { return *provider_; }
  /// Flow network of the LP owning `id` — flow-level (max-min shared)
  /// transfers between sites of the SAME partition, driven from events on
  /// that LP. Sharing is partition-local by design; cross-partition data
  /// movement goes through transfer()'s analytic channels. Routes are
  /// pre-warmed at finalize() when flat (Routing's lazy cache is not
  /// thread-safe); zone providers answer from per-thread scratch and need
  /// no warming.
  net::FlowNetwork& flows_of(SiteId id) { return *flow_nets_[owner_[id]]; }
  /// Effective window length; +inf when serial (single LP).
  double lookahead() const { return lookahead_; }
  /// True when the run will actually be multi-LP.
  bool parallel() const { return pe_->num_lps() > 1; }
  const std::string& fallback_reason() const { return fallback_reason_; }

  /// Clock of the LP owning `id` (valid inside events on that LP).
  core::SimTime now_of(SiteId id) { return engine_of(id).now(); }

  // --- event API -----------------------------------------------------------
  //
  // `at` is the setup entry point (call before run()); `post` is the
  // cross-site path (call from an event running on `from`'s LP). A post
  // must respect the network: t >= now + path latency(from, to) — which
  // transfer() guarantees by construction. Violations would be clamped and
  // counted by the engine (Stats::lookahead_violations); the differential
  // suite asserts the count stays 0.

  /// Schedule `fn` on the LP owning `at_site` at absolute time `t`.
  void at(SiteId at_site, core::SimTime t, core::EventFn fn);

  /// Send an event from `from`'s LP to `to`'s LP, arriving at time `t`.
  void post(SiteId from, SiteId to, core::SimTime t, core::EventFn fn);

  /// Queue `bytes` on the (from, to) store-and-forward channel and deliver
  /// `fn` on `to`'s LP at the arrival time, which is returned:
  ///   start   = max(now, channel busy-until)
  ///   arrival = start + bytes / bottleneck_bw(path) + latency(path)
  /// Call from an event on `from`'s LP (or at setup time for t=0 sends).
  core::SimTime transfer(SiteId from, SiteId to, double bytes, core::EventFn on_arrival);

  /// Path helpers (static routing data; identical in serial and parallel).
  double path_latency(SiteId from, SiteId to);
  double transfer_duration(SiteId from, SiteId to, double bytes);

  /// Total bytes ever queued on the (from, to) channel.
  double bytes_sent(SiteId from, SiteId to) const;
  /// All non-empty channels in (from, to) order — deterministic; the
  /// differential suite compares this across LP counts.
  std::vector<std::tuple<SiteId, SiteId, double>> channel_bytes() const;

  // --- execution -----------------------------------------------------------

  /// Run to the horizon (or until drained) and return the report.
  ExecutionReport run(core::SimTime horizon = core::kInfTime);

 private:
  ExecutionSpec spec_;
  net::Topology topo_;
  std::vector<SiteSpec> specs_;
  std::vector<net::NodeId> nodes_;        // per site
  std::vector<unsigned> owner_;           // per site: LP index
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<net::Routing> routing_;
  const net::Zone* zone_ = nullptr;
  std::unique_ptr<net::ZoneRouting> zone_routing_;
  net::RouteProvider* provider_ = nullptr;
  std::unique_ptr<core::ParallelEngine> pe_;
  std::vector<std::unique_ptr<net::FlowNetwork>> flow_nets_;  // one per LP
  double lookahead_ = 0;
  std::string fallback_reason_;
  // Per ordered (from, to) pair: when the channel frees up, and bytes ever
  // sent. Indexed by `from`; mutated only from `from`'s LP.
  std::vector<std::map<SiteId, double>> chan_busy_;
  std::vector<std::map<SiteId, double>> chan_bytes_;
};

}  // namespace lsds::hosts
