#include "hosts/organizations.hpp"

#include "util/strings.hpp"

namespace lsds::hosts {

void build_central_model(Grid& grid, const CentralModelSpec& spec) {
  auto& topo = grid.topology();

  SiteSpec server = spec.server;
  if (server.name.empty()) server.name = "central";
  Site& srv = grid.add_site(server);

  const net::NodeId hub = topo.add_node("hub", net::NodeKind::kRouter);
  topo.add_link(srv.node(), hub, spec.server_bw, spec.server_latency);

  for (std::size_t i = 0; i < spec.num_clients; ++i) {
    SiteSpec client = spec.client;
    client.name = util::strformat("client%zu", i);
    Site& c = grid.add_site(client);
    topo.add_link(c.node(), hub, spec.client_bw, spec.client_latency);
  }
  grid.finalize();
}

void build_tier_model(Grid& grid, const TierModelSpec& spec) {
  auto& topo = grid.topology();

  SiteSpec t0 = spec.t0;
  if (t0.name.empty()) t0.name = "T0";
  Site& root = grid.add_site(t0);

  std::vector<net::NodeId> level{root.node()};
  for (std::size_t depth = 0; depth < spec.levels.size(); ++depth) {
    const TierLevelSpec& lvl = spec.levels[depth];
    std::vector<net::NodeId> next;
    std::size_t idx = 0;
    for (net::NodeId parent : level) {
      for (std::size_t c = 0; c < lvl.fanout; ++c) {
        SiteSpec site = lvl.site;
        site.name = util::strformat("T%zu_%zu", depth + 1, idx++);
        Site& child = grid.add_site(site);
        topo.add_link(parent, child.node(), lvl.uplink_bw, lvl.uplink_latency);
        next.push_back(child.node());
      }
    }
    level = std::move(next);
  }
  grid.finalize();
}

std::vector<SiteId> tier_sites(const Grid& grid, const TierModelSpec& spec, std::size_t depth) {
  // Sites were added breadth-first: T0 first, then each tier in order.
  std::vector<SiteId> out;
  std::size_t begin = 0;
  std::size_t count = 1;
  for (std::size_t d = 0; d <= depth; ++d) {
    if (d == depth) {
      for (std::size_t i = 0; i < count; ++i) {
        out.push_back(static_cast<SiteId>(begin + i));
      }
      return out;
    }
    begin += count;
    count *= spec.levels[d].fanout;
  }
  (void)grid;
  return out;
}

}  // namespace lsds::hosts
