#include "hosts/storage.hpp"

#include <algorithm>
#include <cassert>

namespace lsds::hosts {

StorageDevice::StorageDevice(core::Engine& engine, std::string name, Spec spec)
    : engine_(engine), name_(std::move(name)), spec_(spec) {
  assert(spec_.capacity > 0 && spec_.read_bw > 0 && spec_.write_bw > 0);
}

bool StorageDevice::store(const std::string& lfn, double bytes, bool pinned) {
  if (files_.count(lfn)) return false;
  if (used_ + bytes > spec_.capacity) return false;
  const double now = engine_.now();
  files_[lfn] = StoredFile{lfn, bytes, now, now, 0, pinned};
  used_ += bytes;
  return true;
}

bool StorageDevice::evict(const std::string& lfn) {
  auto it = files_.find(lfn);
  if (it == files_.end()) return false;
  used_ -= it->second.bytes;
  files_.erase(it);
  return true;
}

std::optional<std::string> StorageDevice::lru_candidate() const {
  const StoredFile* best = nullptr;
  for (const auto& [lfn, f] : files_) {
    if (f.pinned) continue;
    if (!best || f.last_access < best->last_access) best = &f;
  }
  if (!best) return std::nullopt;
  return best->lfn;
}

std::optional<std::string> StorageDevice::lfu_candidate() const {
  const StoredFile* best = nullptr;
  for (const auto& [lfn, f] : files_) {
    if (f.pinned) continue;
    if (!best || f.access_count < best->access_count ||
        (f.access_count == best->access_count && f.last_access < best->last_access)) {
      best = &f;
    }
  }
  if (!best) return std::nullopt;
  return best->lfn;
}

const StoredFile* StorageDevice::file(const std::string& lfn) const {
  auto it = files_.find(lfn);
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<std::string> StorageDevice::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [lfn, f] : files_) out.push_back(lfn);
  return out;
}

double StorageDevice::schedule_io(double duration, IoDoneFn on_done) {
  const double now = engine_.now();
  const double start = std::max(now, busy_until_) + spec_.latency;
  busy_until_ = start + duration;
  engine_.schedule_at(busy_until_, [cb = std::move(on_done)] {
    if (cb) cb();
  });
  return busy_until_;
}

bool StorageDevice::read(const std::string& lfn, IoDoneFn on_done) {
  auto it = files_.find(lfn);
  if (it == files_.end()) return false;
  it->second.last_access = engine_.now();
  ++it->second.access_count;
  ++reads_;
  bytes_read_ += it->second.bytes;
  schedule_io(it->second.bytes / spec_.read_bw, std::move(on_done));
  return true;
}

bool StorageDevice::write(const std::string& lfn, double bytes, IoDoneFn on_done) {
  if (files_.count(lfn) || pending_writes_.count(lfn)) return false;
  if (used_ + bytes > spec_.capacity) return false;
  // Reserve capacity immediately; the file becomes visible when the head
  // finishes.
  used_ += bytes;
  pending_writes_.insert(lfn);
  ++writes_;
  bytes_written_ += bytes;
  schedule_io(bytes / spec_.write_bw, [this, lfn, bytes, cb = std::move(on_done)] {
    const double now = engine_.now();
    pending_writes_.erase(lfn);
    files_[lfn] = StoredFile{lfn, bytes, now, now, 0, false};
    if (cb) cb();
  });
  return true;
}

StorageDevice::Spec mass_storage_spec(double capacity, double bandwidth, double mount_latency) {
  StorageDevice::Spec s;
  s.capacity = capacity;
  s.read_bw = bandwidth;
  s.write_bw = bandwidth;
  s.latency = mount_latency;
  return s;
}

}  // namespace lsds::hosts
