#include "hosts/storage.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace lsds::hosts {

namespace {
void validate_bytes(const char* op, double bytes) {
  if (!std::isfinite(bytes) || bytes < 0) {
    throw std::invalid_argument(std::string("StorageDevice::") + op +
                                ": bytes must be finite and >= 0");
  }
}
}  // namespace

StorageDevice::StorageDevice(core::Engine& engine, std::string name, Spec spec)
    : engine_(engine), name_(std::move(name)), spec_(spec) {
  assert(spec_.capacity > 0 && spec_.read_bw > 0 && spec_.write_bw > 0);
}

void StorageDevice::attach_solver(net::FlowNetwork& net) {
  if (spec_.sharing != StorageSharing::kMaxMin) return;  // FIFO: solver-free
  assert(net_ == nullptr && "StorageDevice: solver already attached");
  net_ = &net;
  read_res_ = net.add_resource(spec_.read_bw, name_ + ".read");
  write_res_ = net.add_resource(spec_.write_bw, name_ + ".write");
}

bool StorageDevice::store(const std::string& lfn, double bytes, bool pinned) {
  validate_bytes("store", bytes);
  if (files_.count(lfn)) return false;
  if (used_ + bytes > spec_.capacity) return false;
  const double now = engine_.now();
  files_[lfn] = StoredFile{lfn, bytes, now, now, 0, pinned};
  used_ += bytes;
  return true;
}

bool StorageDevice::evict(const std::string& lfn) {
  auto it = files_.find(lfn);
  if (it == files_.end()) return false;
  if (it->second.pinned) return false;  // pinned files survive eviction
  used_ -= it->second.bytes;
  files_.erase(it);
  return true;
}

bool StorageDevice::set_pinned(const std::string& lfn, bool pinned) {
  auto it = files_.find(lfn);
  if (it == files_.end()) return false;
  it->second.pinned = pinned;
  return true;
}

std::optional<std::string> StorageDevice::lru_candidate() const {
  const StoredFile* best = nullptr;
  for (const auto& [lfn, f] : files_) {
    if (f.pinned) continue;
    if (!best || f.last_access < best->last_access) best = &f;
  }
  if (!best) return std::nullopt;
  return best->lfn;
}

std::optional<std::string> StorageDevice::lfu_candidate() const {
  const StoredFile* best = nullptr;
  for (const auto& [lfn, f] : files_) {
    if (f.pinned) continue;
    if (!best || f.access_count < best->access_count ||
        (f.access_count == best->access_count && f.last_access < best->last_access)) {
      best = &f;
    }
  }
  if (!best) return std::nullopt;
  return best->lfn;
}

const StoredFile* StorageDevice::file(const std::string& lfn) const {
  auto it = files_.find(lfn);
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<std::string> StorageDevice::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [lfn, f] : files_) out.push_back(lfn);
  return out;
}

double StorageDevice::schedule_io(double duration, IoDoneFn on_done) {
  const double now = engine_.now();
  const double start = std::max(now, busy_until_) + spec_.latency;
  busy_until_ = start + duration;
  engine_.schedule_at(busy_until_, [cb = std::move(on_done)] {
    if (cb) cb();
  });
  return busy_until_;
}

void StorageDevice::start_shared_io(double bytes, net::ResourceId head, IoDoneFn on_done) {
  assert(net_ != nullptr &&
         "StorageDevice: max-min sharing requires attach_solver before timed I/O");
  ++active_ios_;
  net_->start_io(bytes, {head}, spec_.latency,
                 [this, cb = std::move(on_done)](net::FlowId) {
                   --active_ios_;
                   if (cb) cb();
                 });
}

bool StorageDevice::read(const std::string& lfn, IoDoneFn on_done) {
  auto it = files_.find(lfn);
  if (it == files_.end()) return false;
  it->second.last_access = engine_.now();
  ++it->second.access_count;
  ++reads_;
  bytes_read_ += it->second.bytes;
  if (spec_.sharing == StorageSharing::kMaxMin) {
    start_shared_io(it->second.bytes, read_res_, std::move(on_done));
  } else {
    schedule_io(it->second.bytes / spec_.read_bw, std::move(on_done));
  }
  return true;
}

bool StorageDevice::write(const std::string& lfn, double bytes, IoDoneFn on_done) {
  validate_bytes("write", bytes);
  if (files_.count(lfn) || pending_writes_.count(lfn)) return false;
  if (used_ + bytes > spec_.capacity) return false;
  // Reserve capacity immediately; the file becomes visible when the head
  // finishes.
  used_ += bytes;
  pending_writes_.insert(lfn);
  ++writes_;
  bytes_written_ += bytes;
  IoDoneFn finish = [this, lfn, bytes, cb = std::move(on_done)] {
    const double now = engine_.now();
    pending_writes_.erase(lfn);
    files_[lfn] = StoredFile{lfn, bytes, now, now, 0, false};
    if (cb) cb();
  };
  if (spec_.sharing == StorageSharing::kMaxMin) {
    start_shared_io(bytes, write_res_, std::move(finish));
  } else {
    schedule_io(bytes / spec_.write_bw, std::move(finish));
  }
  return true;
}

double StorageDevice::estimated_access_delay() const {
  if (spec_.sharing == StorageSharing::kFifo) {
    return std::max(0.0, busy_until_ - engine_.now()) + spec_.latency;
  }
  // Max-min: accesses overlap rather than queue; each concurrent I/O
  // shrinks the newcomer's fair share, so scale the access latency by the
  // current sharers as a placement-cost proxy.
  return spec_.latency * (1.0 + static_cast<double>(active_ios_));
}

StorageDevice::Spec mass_storage_spec(double capacity, double bandwidth, double mount_latency,
                                      StorageSharing sharing) {
  StorageDevice::Spec s;
  s.capacity = capacity;
  s.read_bw = bandwidth;
  s.write_bw = bandwidth;
  s.latency = mount_latency;
  s.sharing = sharing;
  return s;
}

}  // namespace lsds::hosts
