// CPU resources with the two allocation policies the surveyed simulators
// model (GridSim: "heterogeneous computing resources, both time and space
// shared"):
//
//   * space-shared — each job owns one core exclusively; excess jobs wait in
//     a FIFO queue (a cluster batch node);
//   * time-shared  — processor sharing: all admitted jobs progress
//     simultaneously, each at min(core_speed, total_capacity / n_jobs)
//     (an interactive timesharing node). Implemented with the same
//     progress/re-solve/reschedule pattern as the flow network, and
//     validated against the M/M/1-PS closed form in experiment E5.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "core/engine.hpp"
#include "core/failure.hpp"
#include "core/hash.hpp"
#include "hosts/job.hpp"
#include "stats/timeseries.hpp"

namespace lsds::hosts {

enum class SharingPolicy { kSpaceShared, kTimeShared };

const char* to_string(SharingPolicy p);

class CpuResource {
 public:
  using DoneFn = std::function<void(JobId)>;
  /// Fired per job lost to a fail-stop outage or returned from the queue;
  /// `lost_ops` is the work completed on this attempt and now lost (0 for
  /// jobs that were still queued).
  using KilledFn = std::function<void(JobId, double lost_ops)>;

  CpuResource(core::Engine& engine, std::string name, unsigned cores, double speed,
              SharingPolicy policy);

  /// Submit `ops` of work; `on_done` fires when it completes.
  void submit(JobId id, double ops, DoneFn on_done = nullptr);

  /// True when at least one core is idle (space-shared) / always admitted
  /// (time-shared).
  bool has_idle_core() const;

  /// Remove a job from service or from the wait queue without firing its
  /// completion callback (k-replication cancels the losing copies). When
  /// `done_ops` is non-null it receives the work completed on this attempt.
  /// Returns false if the job is unknown (already finished or never here).
  bool cancel(JobId id, double* done_ops = nullptr);

  /// Failure injection. Under kFailResume (default), while offline running
  /// jobs stop progressing and queued jobs stay queued; work resumes where
  /// it left off when the resource comes back. Under kFailStop, going
  /// offline kills every running job (progress is lost) and returns every
  /// queued job; each fires the KilledFn. Idempotent.
  void set_online(bool up);
  bool online() const { return online_; }
  std::uint64_t outages() const { return outages_; }

  /// Crash semantics applied by set_online(false). Switching policy while
  /// offline is the caller's foot-gun; set it before injecting failures.
  void set_failure_semantics(core::FailureSemantics s) { semantics_ = s; }
  core::FailureSemantics failure_semantics() const { return semantics_; }
  /// Observer for fail-stop kills. One handler per resource (the recovery
  /// layer); replaces any previous handler.
  void set_killed_handler(KilledFn fn) { killed_ = std::move(fn); }
  /// Observer for online/offline transitions (fires after kill callbacks);
  /// the recovery layer uses repairs to resume dispatching.
  using OnlineFn = std::function<void(bool up)>;
  void set_online_observer(OnlineFn fn) { online_observer_ = std::move(fn); }

  std::size_t running() const { return running_.size(); }
  std::size_t queued() const { return queue_.size(); }
  unsigned cores() const { return cores_; }
  double speed() const { return speed_; }
  double total_capacity() const { return speed_ * cores_; }
  SharingPolicy policy() const { return policy_; }
  const std::string& name() const { return name_; }

  // --- statistics ----------------------------------------------------------

  std::uint64_t jobs_completed() const { return jobs_completed_; }
  /// Jobs killed or returned by fail-stop outages.
  std::uint64_t jobs_killed() const { return jobs_killed_; }
  /// Integral of in-service work rate; busy_time/capacity/elapsed = utilization.
  double busy_ops() const;
  /// Utilization over [0, t]: delivered ops / (capacity * t).
  double utilization(double t_end) const;
  /// Cumulative time spent offline (up to now for an ongoing outage).
  double downtime() const;
  /// Fraction of [0, t_end] the resource was up — the availability metric
  /// of the dependability literature.
  double availability(double t_end) const;
  /// Load (jobs in service + queued) over time.
  const stats::TimeSeries& load_series() const { return load_; }

  /// Fold the resource's mutable state into `h` (mc state pruning; see
  /// core/hash.hpp). Running jobs are visited in sorted id order so equal
  /// states digest equal regardless of hash-map iteration order.
  void state_digest(core::StateHash& h) const;

 private:
  struct Running {
    double ops;  // total demand of this attempt (for lost-work accounting)
    double remaining;
    double rate = 0;
    DoneFn on_done;
    double submitted = 0;  // span bookkeeping (obs/span.hpp)
  };

  /// Publish a finished job-attempt span to the observability bus.
  void publish_span(JobId id, const Running& r, const char* status) const;

  void record_load();
  void progress_to_now();
  void resolve_and_reschedule();
  void on_completion_event(std::uint64_t generation);
  void try_dispatch();  // space-shared admission

  core::Engine& engine_;
  std::string name_;
  unsigned cores_;
  double speed_;
  SharingPolicy policy_;

  std::unordered_map<JobId, Running> running_;
  std::deque<std::pair<JobId, Running>> queue_;  // space-shared wait queue
  bool online_ = true;
  core::FailureSemantics semantics_ = core::FailureSemantics::kFailResume;
  KilledFn killed_;
  OnlineFn online_observer_;
  std::uint64_t outages_ = 0;
  double last_update_ = 0;
  double down_since_ = 0;
  double downtime_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_killed_ = 0;
  double delivered_ops_ = 0;
  stats::TimeSeries load_;
};

}  // namespace lsds::hosts
