#include "hosts/parallel_grid.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>

#include "util/log.hpp"

namespace lsds::hosts {

SiteId ParallelGrid::add_site(const SiteSpec& spec) {
  assert(!finalized() && "cannot add sites after finalize()");
  assert(zone_ == nullptr && "zone-backed grids attach sites with add_site_at");
  const auto id = static_cast<SiteId>(specs_.size());
  nodes_.push_back(topo_.add_node(spec.name, net::NodeKind::kHost));
  specs_.push_back(spec);
  return id;
}

void ParallelGrid::use_zone(const net::Zone& zone) {
  assert(!finalized() && specs_.empty() && "use_zone before adding sites");
  zone_ = &zone;
}

SiteId ParallelGrid::add_site_at(const SiteSpec& spec, net::NodeId node) {
  assert(!finalized() && "cannot add sites after finalize()");
  assert((zone_ ? node < zone_->node_count() : node < topo_.node_count()));
  const auto id = static_cast<SiteId>(specs_.size());
  nodes_.push_back(node);
  specs_.push_back(spec);
  return id;
}

void ParallelGrid::finalize() {
  assert(!finalized());
  if (zone_) {
    zone_routing_ = std::make_unique<net::ZoneRouting>(*zone_);
    provider_ = zone_routing_.get();
  } else {
    routing_ = std::make_unique<net::Routing>(topo_);
    provider_ = routing_.get();
  }

  unsigned lps = 1;
  unsigned threads = 1;
  lookahead_ = core::kInfTime;
  net::Partition part;
  if (spec_.parallel) {
    threads = std::max(1u, spec_.threads);
    lps = spec_.lps > 0 ? spec_.lps : threads;
    // A ZoneTree platform carries its partition structure and lookahead in
    // closed form — no all-pairs latency matrix.
    const auto* tree = dynamic_cast<const net::ZoneTree*>(zone_);
    part = tree ? net::partition_zone_tree(*tree, *provider_, nodes_, lps)
                : net::partition_sites(*provider_, nodes_, lps, spec_.partition);
    lps = part.parts;
    lookahead_ = part.lookahead;
    if (spec_.lookahead_override > 0) {
      lookahead_ = std::min(lookahead_, spec_.lookahead_override);
    }
    if (lps <= 1) {
      fallback_reason_ = "partitioning yielded a single LP";
    } else if (!(lookahead_ > 0)) {
      // A zero-latency path crosses the cut: no conservative window can
      // separate the partitions. Run serial — same model, same results.
      fallback_reason_ =
          "topology-derived lookahead <= 0 (zero-latency path crosses the partition cut)";
    }
    if (!fallback_reason_.empty()) {
      LSDS_LOG_WARN("parallel_grid: falling back to serial execution: %s",
                    fallback_reason_.c_str());
      lps = 1;
      threads = 1;
      lookahead_ = core::kInfTime;
    }
  }

  owner_.assign(specs_.size(), 0);
  if (lps > 1) owner_ = part.owner;

  core::ParallelEngine::Config pcfg;
  pcfg.num_lps = lps;
  pcfg.num_threads = threads;
  pcfg.lookahead = lookahead_;
  pcfg.queue = spec_.queue;
  pcfg.seed = spec_.seed;
  pcfg.hosted_engines = true;
  pe_ = std::make_unique<core::ParallelEngine>(pcfg);

  sites_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    sites_.push_back(std::make_unique<Site>(*pe_->lp(owner_[i]).engine(),
                                            static_cast<SiteId>(i), nodes_[i], specs_[i]));
  }
  chan_busy_.assign(specs_.size(), {});
  chan_bytes_.assign(specs_.size(), {});

  // Per-LP flow networks for partition-local flow-level transfers. When
  // flat, warm the routing cache for every site pair first: Routing::route
  // caches lazily and is not thread-safe, so all lookups LP threads might
  // trigger must be materialized here, single-threaded. Zone providers
  // compute routes into per-thread scratch and need no warming — which is
  // also what keeps million-host platforms affordable.
  if (!zone_) {
    for (std::size_t a = 0; a < nodes_.size(); ++a) {
      for (std::size_t b = 0; b < nodes_.size(); ++b) {
        if (a != b) routing_->route(nodes_[a], nodes_[b]);
      }
    }
  }
  flow_nets_.reserve(lps);
  for (unsigned lp = 0; lp < lps; ++lp) {
    flow_nets_.push_back(
        std::make_unique<net::FlowNetwork>(*pe_->lp(lp).engine(), *provider_, spec_.network));
  }

  // Per-LP storage ownership: a site's max-min devices register with its
  // owner LP's flow network ONLY — the resource lives where its events run,
  // so partition-local flows see endpoint disk constraints while cross-LP
  // movement stays on the analytic channels (whose store-and-forward law is
  // already computed at the source). Each LP's endpoint binder therefore
  // covers exactly its own sites; serial (1 LP) degenerates to the Grid
  // wiring, keeping serial-vs-parallel traces identical by construction.
  bool any_maxmin = false;
  for (const SiteSpec& s : specs_) {
    if (s.storage_sharing == StorageSharing::kMaxMin) {
      any_maxmin = true;
      break;
    }
  }
  if (any_maxmin) {
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      sites_[i]->attach_solver(*flow_nets_[owner_[i]]);
    }
    for (unsigned lp = 0; lp < lps; ++lp) {
      auto node_site = std::make_shared<std::unordered_map<net::NodeId, SiteId>>();
      for (std::size_t i = 0; i < sites_.size(); ++i) {
        if (owner_[i] == lp) node_site->emplace(nodes_[i], static_cast<SiteId>(i));
      }
      if (node_site->empty()) continue;
      flow_nets_[lp]->set_endpoint_binder(
          [this, node_site](net::NodeId src, net::NodeId dst,
                            std::vector<net::ResourceId>& resources, double& extra_latency) {
            auto sit = node_site->find(src);
            if (sit != node_site->end()) {
              StorageDevice& d = sites_[sit->second]->disk();
              if (d.sharing() == StorageSharing::kMaxMin) {
                resources.push_back(d.read_resource());
                extra_latency += d.access_latency();
              }
            }
            auto dit = node_site->find(dst);
            if (dit != node_site->end()) {
              StorageDevice& d = sites_[dit->second]->disk();
              if (d.sharing() == StorageSharing::kMaxMin) {
                resources.push_back(d.write_resource());
                extra_latency += d.access_latency();
              }
            }
          });
    }
  }
}

void ParallelGrid::at(SiteId at_site, core::SimTime t, core::EventFn fn) {
  assert(finalized());
  pe_->lp(owner_[at_site]).schedule_at(t, std::move(fn));
}

void ParallelGrid::post(SiteId from, SiteId to, core::SimTime t, core::EventFn fn) {
  assert(finalized());
  pe_->lp(owner_[from]).send(owner_[to], t, std::move(fn));
}

double ParallelGrid::path_latency(SiteId from, SiteId to) {
  return provider_->path_latency(nodes_[from], nodes_[to]);
}

double ParallelGrid::transfer_duration(SiteId from, SiteId to, double bytes) {
  const double bw = provider_->bottleneck_bandwidth(nodes_[from], nodes_[to]);
  assert(bw > 0 && "transfer over an unreachable or zero-bandwidth path");
  return bytes / bw + path_latency(from, to);
}

core::SimTime ParallelGrid::transfer(SiteId from, SiteId to, double bytes,
                                     core::EventFn on_arrival) {
  assert(finalized());
  const double bw = provider_->bottleneck_bandwidth(nodes_[from], nodes_[to]);
  assert(bw > 0 && "transfer over an unreachable or zero-bandwidth path");
  const core::SimTime now = pe_->lp(owner_[from]).now();
  double& busy = chan_busy_[from].try_emplace(to, 0).first->second;
  const core::SimTime start = std::max(now, busy);
  busy = start + bytes / bw;
  const core::SimTime arrival = busy + path_latency(from, to);
  chan_bytes_[from][to] += bytes;
  post(from, to, arrival, std::move(on_arrival));
  return arrival;
}

double ParallelGrid::bytes_sent(SiteId from, SiteId to) const {
  const auto it = chan_bytes_[from].find(to);
  return it == chan_bytes_[from].end() ? 0 : it->second;
}

std::vector<std::tuple<SiteId, SiteId, double>> ParallelGrid::channel_bytes() const {
  std::vector<std::tuple<SiteId, SiteId, double>> out;
  for (SiteId from = 0; from < static_cast<SiteId>(chan_bytes_.size()); ++from) {
    for (const auto& [to, bytes] : chan_bytes_[from]) {
      out.emplace_back(from, to, bytes);
    }
  }
  return out;
}

ExecutionReport ParallelGrid::run(core::SimTime horizon) {
  assert(finalized());
  ExecutionReport rep;
  rep.parallel = parallel();
  rep.fallback_reason = fallback_reason_;
  rep.lps = pe_->num_lps();
  rep.threads = spec_.parallel && fallback_reason_.empty() ? std::max(1u, spec_.threads) : 1;
  rep.lookahead = lookahead_;
  rep.partition = spec_.partition;
  rep.engine = pe_->run_until(horizon);
  for (std::uint64_t e : rep.engine.per_lp_events) {
    rep.lp_events.add(static_cast<double>(e));
  }
  return rep;
}

}  // namespace lsds::hosts
