#include "apps/trace_io.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace lsds::apps {

std::string workload_to_trace(const std::vector<TimedJob>& jobs,
                              const std::vector<std::pair<std::string, double>>& files) {
  std::ostringstream out;
  core::TraceWriter w(out);
  w.write_comment("lsds workload trace");
  for (const auto& [lfn, bytes] : files) {
    core::TraceEvent ev;
    ev.time = 0;
    ev.kind = "file";
    ev.attrs = {{"lfn", lfn}, {"bytes", util::strformat("%.9g", bytes)}};
    w.write(ev);
  }
  for (const auto& tj : jobs) {
    core::TraceEvent ev;
    ev.time = tj.arrival;
    ev.kind = "job";
    ev.attrs = {{"id", util::strformat("%llu", static_cast<unsigned long long>(tj.job.id))},
                {"ops", util::strformat("%.9g", tj.job.ops)}};
    if (tj.job.output_bytes > 0) {
      ev.attrs.emplace_back("output", util::strformat("%.9g", tj.job.output_bytes));
    }
    if (!tj.job.input_files.empty()) {
      ev.attrs.emplace_back("inputs", util::join(tj.job.input_files, ";"));
    }
    w.write(ev);
  }
  return out.str();
}

ParsedWorkload workload_from_trace(const std::string& text) {
  ParsedWorkload out;
  for (const auto& ev : core::TraceReader::parse_text(text)) {
    if (ev.kind == "file") {
      const auto lfn = ev.attr("lfn");
      if (!lfn) throw std::runtime_error("trace_io: file line missing lfn");
      out.files.emplace_back(*lfn, ev.num("bytes", 0));
    } else if (ev.kind == "job") {
      TimedJob tj;
      tj.arrival = ev.time;
      tj.job.id = static_cast<hosts::JobId>(ev.num("id", 0));
      if (tj.job.id == hosts::kInvalidJob) {
        throw std::runtime_error("trace_io: job line missing id");
      }
      tj.job.name = util::strformat("job%llu", static_cast<unsigned long long>(tj.job.id));
      tj.job.ops = ev.num("ops", 0);
      tj.job.output_bytes = ev.num("output", 0);
      if (auto inputs = ev.attr("inputs")) {
        for (auto& lfn : util::split(*inputs, ';')) {
          if (!lfn.empty()) tj.job.input_files.push_back(std::move(lfn));
        }
      }
      out.jobs.push_back(std::move(tj));
    }
    // Unknown kinds are skipped: traces may interleave monitoring samples.
  }
  return out;
}

}  // namespace lsds::apps
