#include "apps/swf.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace lsds::apps {

std::vector<SwfJob> parse_swf(const std::string& text) {
  std::vector<SwfJob> out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == ';') continue;
    const auto f = util::split_ws(trimmed);
    if (f.size() < 9) {
      throw std::runtime_error(
          util::strformat("swf: line %zu: expected >= 9 fields, got %zu", lineno, f.size()));
    }
    auto num = [&](std::size_t idx) {
      double v = 0;
      if (!util::parse_double(f[idx], v)) {
        throw std::runtime_error(util::strformat("swf: line %zu: field %zu ('%s') not numeric",
                                                 lineno, idx + 1, f[idx].c_str()));
      }
      return v;
    };
    const double id = num(0);
    const double submit = num(1);
    const double runtime = num(3);
    const double alloc_procs = num(4);
    const double req_procs = num(7);
    const double req_time = num(8);

    double procs = alloc_procs > 0 ? alloc_procs : req_procs;
    if (runtime <= 0 || procs <= 0) continue;  // cancelled/failed entry

    SwfJob j;
    j.submit_time = submit < 0 ? 0 : submit;
    j.job.id = static_cast<hosts::JobId>(id);
    j.job.cores = static_cast<unsigned>(procs);
    j.job.runtime_actual = runtime;
    j.job.runtime_estimate = req_time > 0 ? req_time : runtime;
    out.push_back(j);
  }
  return out;
}

std::vector<SwfJob> load_swf(const std::string& path) {
  std::ifstream fs(path);
  if (!fs) throw std::runtime_error("swf: cannot open " + path);
  std::ostringstream ss;
  ss << fs.rdbuf();
  return parse_swf(ss.str());
}

std::string to_swf(const std::vector<SwfJob>& jobs) {
  std::string out = "; lsds SWF export\n";
  for (const auto& j : jobs) {
    // Fields: id submit wait run alloc_procs cpu_used mem req_procs
    //         req_time req_mem status uid gid app queue part prev think
    out += util::strformat("%llu %.3f -1 %.3f %u -1 -1 %u %.3f -1 -1 -1 -1 -1 -1 -1 -1 -1\n",
                           static_cast<unsigned long long>(j.job.id), j.submit_time,
                           j.job.runtime_actual, j.job.cores, j.job.cores,
                           j.job.runtime_estimate);
  }
  return out;
}

std::vector<SwfJob> generate_swf_like(core::RngStream& rng, std::size_t n_jobs,
                                      double mean_interarrival, double mean_runtime,
                                      unsigned max_cores, double overestimate_factor) {
  std::vector<SwfJob> out;
  out.reserve(n_jobs);
  double t = 0;
  // Power-of-two widths dominate real traces; draw an exponent uniformly.
  unsigned max_exp = 0;
  while ((2u << max_exp) <= max_cores) ++max_exp;
  for (std::size_t i = 0; i < n_jobs; ++i) {
    t += rng.exponential(mean_interarrival);
    SwfJob j;
    j.submit_time = t;
    j.job.id = static_cast<hosts::JobId>(i + 1);
    const auto e = static_cast<unsigned>(rng.uniform_int(0, static_cast<std::int64_t>(max_exp)));
    j.job.cores = std::min(max_cores, 1u << e);
    j.job.runtime_actual = rng.exponential(mean_runtime) + 1.0;
    j.job.runtime_estimate = j.job.runtime_actual * rng.uniform(1.0, overestimate_factor);
    out.push_back(j);
  }
  return out;
}

}  // namespace lsds::apps
