#include "apps/activity.hpp"

#include <utility>

#include "util/strings.hpp"

namespace lsds::apps {

const char* to_string(ActivityKind k) {
  switch (k) {
    case ActivityKind::kProduction: return "production";
    case ActivityKind::kAnalysis: return "analysis";
    case ActivityKind::kInteractive: return "interactive";
  }
  return "?";
}

ActivitySpec default_activity(ActivityKind kind, std::size_t num_jobs, double scale) {
  ActivitySpec spec;
  spec.kind = kind;
  spec.num_jobs = num_jobs;
  switch (kind) {
    case ActivityKind::kProduction:
      spec.mean_think_time = 20;
      spec.mean_ops = 5000 * scale;
      spec.output_bytes = 2e9;  // raw data products to replicate
      break;
    case ActivityKind::kAnalysis:
      spec.mean_think_time = 10;
      spec.mean_ops = 1000 * scale;
      spec.inputs_per_job = 2;
      break;
    case ActivityKind::kInteractive:
      spec.mean_think_time = 2;
      spec.mean_ops = 50 * scale;
      break;
  }
  return spec;
}

core::Process run_activity(core::Engine& engine, ActivitySpec spec, hosts::SiteId origin,
                           hosts::JobId first_id, std::string rng_stream, SubmitFn submit) {
  auto& rng = engine.rng(rng_stream);
  for (std::size_t i = 0; i < spec.num_jobs; ++i) {
    co_await core::delay(engine, rng.exponential(spec.mean_think_time));
    hosts::Job job;
    job.id = first_id + static_cast<hosts::JobId>(i);
    job.name = util::strformat("%s-%llu", to_string(spec.kind),
                               static_cast<unsigned long long>(job.id));
    job.ops = rng.exponential(spec.mean_ops);
    job.output_bytes = spec.output_bytes;
    job.submit_time = engine.now();
    submit(origin, std::move(job));
  }
}

}  // namespace lsds::apps
