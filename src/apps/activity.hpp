// MONARC-style User/Activity objects.
//
// "Another set of components model the behavior of the applications and
// their interaction with users. Such components are the 'Users' or
// 'Activity' objects which are used to generate data processing jobs based
// on different scenarios." An Activity is a coroutine process bound to a
// site that emits jobs with stochastic think times — the LHC-flavored kinds
// are production (long, writes output data), analysis (reads files,
// medium), and interactive (short bursts).
#pragma once

#include <functional>
#include <string>

#include "core/engine.hpp"
#include "core/process.hpp"
#include "hosts/job.hpp"
#include "hosts/site.hpp"

namespace lsds::apps {

enum class ActivityKind { kProduction, kAnalysis, kInteractive };

const char* to_string(ActivityKind k);

struct ActivitySpec {
  ActivityKind kind = ActivityKind::kAnalysis;
  std::size_t num_jobs = 100;
  double mean_think_time = 10;  // exponential gap between submissions
  double mean_ops = 1000;       // exponential job length
  /// Production: bytes of output data produced per job.
  double output_bytes = 0;
  /// Analysis: number of (externally chosen) input files per job.
  std::size_t inputs_per_job = 0;
};

/// Callback invoked for each generated job, at its generation time. The
/// receiving facade routes it into its scheduler.
using SubmitFn = std::function<void(hosts::SiteId origin, hosts::Job job)>;

/// Per-kind defaults used by the MONARC facade (ops scaled to `scale`).
ActivitySpec default_activity(ActivityKind kind, std::size_t num_jobs, double scale);

/// Spawn the activity coroutine. Jobs get ids
/// [first_id, first_id + spec.num_jobs).
core::Process run_activity(core::Engine& engine, ActivitySpec spec, hosts::SiteId origin,
                           hosts::JobId first_id, std::string rng_stream, SubmitFn submit);

}  // namespace lsds::apps
