// Standard Workload Format (SWF) support.
//
// The Parallel Workloads Archive's SWF is the de-facto trace format for
// cluster/batch scheduling studies — exactly the "data sets collected by
// monitoring" input class of the taxonomy, for the batch-queue substrate.
// One job per line, 18 whitespace-separated fields; we consume the ones a
// rigid-job scheduler needs and preserve the rest:
//
//   1 job id | 2 submit time | 4 run time | 5 allocated processors |
//   8 requested processors | 9 requested (estimated) time
//
// Missing values are -1 by convention; the reader falls back sensibly
// (allocated <- requested, estimate <- runtime). Lines starting with ';'
// are header comments.
#pragma once

#include <string>
#include <vector>

#include "core/rng.hpp"
#include "middleware/batch_queue.hpp"

namespace lsds::apps {

struct SwfJob {
  middleware::BatchJob job;
  double submit_time = 0;
};

/// Parse SWF text. Jobs with non-positive runtime or processor count are
/// skipped (cancelled/failed entries), as is conventional.
std::vector<SwfJob> parse_swf(const std::string& text);
std::vector<SwfJob> load_swf(const std::string& path);

/// Serialize to SWF (fields we model; others written as -1).
std::string to_swf(const std::vector<SwfJob>& jobs);

/// Synthetic SWF-shaped workload: exponential interarrivals and runtimes,
/// log-uniform power-of-two-ish widths up to `max_cores`, user estimates
/// padded by a uniform factor in [1, overestimate_factor].
std::vector<SwfJob> generate_swf_like(core::RngStream& rng, std::size_t n_jobs,
                                      double mean_interarrival, double mean_runtime,
                                      unsigned max_cores, double overestimate_factor = 3.0);

}  // namespace lsds::apps
