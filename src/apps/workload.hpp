// Synthetic workload generation.
//
// The taxonomy's input-data axis: simulators accept "input data generators"
// and/or "data sets collected by monitoring". This module is the generator
// half; apps/trace_io.hpp converts workloads to and from the trace format
// for the monitoring half.
//
// Every draw comes from caller-supplied RngStreams, so workloads are
// reproducible and independent of model randomness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "hosts/job.hpp"

namespace lsds::apps {

enum class SizeDist { kConstant, kExponential, kLognormal, kWeibull, kPareto };

const char* to_string(SizeDist d);

struct SizeSpec {
  SizeDist dist = SizeDist::kConstant;
  double mean = 1000;   // ops (or bytes, for file sizes)
  double shape = 1.5;   // Weibull k / Pareto alpha / lognormal sigma
};

/// Draw one value from a SizeSpec.
double draw_size(core::RngStream& rng, const SizeSpec& spec);

struct TimedJob {
  double arrival = 0;
  hosts::Job job;
};

struct BagWorkloadSpec {
  std::size_t num_jobs = 100;
  /// Mean exponential interarrival; 0 = all jobs arrive at t=0.
  double mean_interarrival = 0;
  SizeSpec ops;
};

/// Independent compute jobs (bag-of-tasks).
std::vector<TimedJob> generate_bag(core::RngStream& rng, const BagWorkloadSpec& spec);

struct DataGridWorkloadSpec {
  std::size_t num_jobs = 200;
  double mean_interarrival = 10;
  SizeSpec ops;
  /// The file population jobs draw inputs from.
  std::size_t num_files = 100;
  SizeSpec file_bytes;
  /// Files per job and the Zipf skew of file popularity (0 = uniform).
  std::size_t files_per_job = 1;
  double zipf_exponent = 1.0;
};

struct DataGridWorkload {
  /// File catalog: lfn -> size.
  std::vector<std::pair<std::string, double>> files;
  std::vector<TimedJob> jobs;  // jobs reference lfns from `files`
};

/// Data-intensive jobs with Zipf-popular input files (the OptorSim /
/// ChicagoSim scenario shape).
DataGridWorkload generate_data_grid(core::RngStream& rng, const DataGridWorkloadSpec& spec);

/// Canonical lfn for file index i.
std::string file_lfn(std::size_t i);

}  // namespace lsds::apps
