#include "apps/workload.hpp"

#include <cassert>
#include <cmath>

#include "util/strings.hpp"

namespace lsds::apps {

const char* to_string(SizeDist d) {
  switch (d) {
    case SizeDist::kConstant: return "constant";
    case SizeDist::kExponential: return "exponential";
    case SizeDist::kLognormal: return "lognormal";
    case SizeDist::kWeibull: return "weibull";
    case SizeDist::kPareto: return "pareto";
  }
  return "?";
}

double draw_size(core::RngStream& rng, const SizeSpec& spec) {
  switch (spec.dist) {
    case SizeDist::kConstant:
      return spec.mean;
    case SizeDist::kExponential:
      return rng.exponential(spec.mean);
    case SizeDist::kLognormal: {
      // Parameterize so the *mean* equals spec.mean for the given sigma.
      const double sigma = spec.shape;
      const double mu = std::log(spec.mean) - sigma * sigma / 2.0;
      return rng.lognormal(mu, sigma);
    }
    case SizeDist::kWeibull: {
      // scale = mean / Gamma(1 + 1/k).
      const double k = spec.shape;
      const double scale = spec.mean / std::tgamma(1.0 + 1.0 / k);
      return rng.weibull(k, scale);
    }
    case SizeDist::kPareto: {
      // mean = alpha*xm/(alpha-1) -> xm = mean*(alpha-1)/alpha (alpha > 1).
      const double alpha = spec.shape;
      assert(alpha > 1.0);
      const double xm = spec.mean * (alpha - 1.0) / alpha;
      return rng.pareto(xm, alpha);
    }
  }
  return spec.mean;
}

std::vector<TimedJob> generate_bag(core::RngStream& rng, const BagWorkloadSpec& spec) {
  std::vector<TimedJob> out;
  out.reserve(spec.num_jobs);
  double t = 0;
  for (std::size_t i = 0; i < spec.num_jobs; ++i) {
    if (spec.mean_interarrival > 0) t += rng.exponential(spec.mean_interarrival);
    TimedJob tj;
    tj.arrival = t;
    tj.job.id = static_cast<hosts::JobId>(i + 1);
    tj.job.name = util::strformat("job%zu", i);
    tj.job.ops = draw_size(rng, spec.ops);
    out.push_back(std::move(tj));
  }
  return out;
}

std::string file_lfn(std::size_t i) { return util::strformat("lfn://file%05zu", i); }

DataGridWorkload generate_data_grid(core::RngStream& rng, const DataGridWorkloadSpec& spec) {
  DataGridWorkload out;
  out.files.reserve(spec.num_files);
  for (std::size_t i = 0; i < spec.num_files; ++i) {
    out.files.emplace_back(file_lfn(i), draw_size(rng, spec.file_bytes));
  }
  out.jobs.reserve(spec.num_jobs);
  double t = 0;
  for (std::size_t i = 0; i < spec.num_jobs; ++i) {
    if (spec.mean_interarrival > 0) t += rng.exponential(spec.mean_interarrival);
    TimedJob tj;
    tj.arrival = t;
    tj.job.id = static_cast<hosts::JobId>(i + 1);
    tj.job.name = util::strformat("job%zu", i);
    tj.job.ops = draw_size(rng, spec.ops);
    for (std::size_t f = 0; f < spec.files_per_job; ++f) {
      std::size_t idx;
      if (spec.zipf_exponent > 0) {
        idx = rng.zipf(spec.num_files, spec.zipf_exponent);
      } else {
        idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(spec.num_files) - 1));
      }
      tj.job.input_files.push_back(file_lfn(idx));
    }
    out.jobs.push_back(std::move(tj));
  }
  return out;
}

}  // namespace lsds::apps
