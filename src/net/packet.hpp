// Packet-level network model.
//
// The taxonomy's granularity axis: "the simulation of the network can model
// in detail the flow of each packet through the network, a time consuming
// operation that leads to better output results". This model does exactly
// that — every MTU-sized packet is an event chain across its route:
//
//   * per-link store-and-forward: serialization (size/bandwidth) behind the
//     packets already queued, then propagation latency;
//   * finite drop-tail queues per link (packets beyond the backlog cap are
//     dropped);
//   * a window transport per transfer: slow-start + AIMD congestion
//     avoidance, loss detected by drop notification with a retransmit
//     timeout, cumulative completion when all packets are acknowledged
//     (ACKs travel latency-only on the reverse path).
//
// It shares Topology/Routing with the flow-level model so experiment E4 can
// compare cost and accuracy of the two granularities on identical scenarios.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/engine.hpp"
#include "net/routing.hpp"

namespace lsds::net {

using TransferId = std::uint64_t;

class PacketNetwork {
 public:
  struct Config {
    double mtu = 1500;              // bytes per packet
    std::size_t queue_packets = 100;  // per-link drop-tail backlog cap
    double init_cwnd = 2;           // packets
    double init_ssthresh = 64;      // packets
    double min_rto = 0.2;           // seconds
  };

  using CompletionFn = std::function<void(TransferId)>;

  PacketNetwork(core::Engine& engine, RouteProvider& routing);  // default Config
  PacketNetwork(core::Engine& engine, RouteProvider& routing, Config cfg);

  /// Transfer `bytes` from src to dst; `on_complete` fires when the last
  /// packet is acknowledged. Throws std::invalid_argument when unreachable.
  TransferId start_transfer(NodeId src, NodeId dst, double bytes,
                            CompletionFn on_complete = nullptr);

  // --- statistics -----------------------------------------------------------

  struct Stats {
    std::uint64_t packets_sent = 0;      // first transmissions + retransmits
    std::uint64_t packets_delivered = 0; // reached the destination
    std::uint64_t packets_dropped = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t transfers_completed = 0;
  };
  const Stats& stats() const { return stats_; }
  std::uint64_t link_drops(LinkId l) const { return links_[l].drops; }
  std::size_t active_transfers() const { return transfers_.size(); }

 private:
  struct LinkState {
    double busy_until = 0;
    std::uint64_t drops = 0;
  };

  struct Transfer {
    TransferId id;
    std::vector<LinkId> links;
    double fwd_latency = 0;
    std::uint64_t total_packets = 0;
    std::uint64_t next_new_seq = 0;   // first never-sent packet
    std::uint64_t acked = 0;
    std::unordered_set<std::uint64_t> outstanding;  // sent, not yet acked/lost
    std::deque<std::uint64_t> retransmit_queue;
    double cwnd;
    double ssthresh;
    double srtt;  // smoothed RTT estimate for the RTO
    CompletionFn on_complete;
  };

  void pump(Transfer& tr);
  void send_packet(Transfer& tr, std::uint64_t seq);
  void forward(TransferId tid, std::uint64_t seq, std::size_t hop, double pkt_bytes);
  void on_delivered(TransferId tid, std::uint64_t seq);
  void on_ack(TransferId tid, std::uint64_t seq, double sent_at);
  void on_drop(TransferId tid, std::uint64_t seq);

  core::Engine& engine_;
  RouteProvider& routing_;
  Config cfg_;
  std::vector<LinkState> links_;
  std::unordered_map<TransferId, Transfer> transfers_;
  std::unordered_map<TransferId, std::unordered_map<std::uint64_t, double>> send_time_;
  TransferId next_id_ = 1;
  Stats stats_;
};

}  // namespace lsds::net
