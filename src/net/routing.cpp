#include "net/routing.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace lsds::net {

const Route& Routing::route(NodeId src, NodeId dst) {
  assert(src < topo_.node_count() && dst < topo_.node_count());
  assert(topo_.node_count() == cache_.size() &&
         "Topology gained nodes after Routing was constructed");
  if (cached_epoch_ == kNoEpoch) cached_epoch_ = topo_.epoch();
  assert(topo_.epoch() == cached_epoch_ &&
         "Topology mutated after Routing cached routes — cached paths dangle");
  if (cache_[src].empty()) run_dijkstra(src);
  return cache_[src][dst];
}

double Routing::path_latency(NodeId src, NodeId dst) {
  const Route& r = route(src, dst);
  return r.valid ? r.total_latency : std::numeric_limits<double>::infinity();
}

double Routing::bottleneck_bandwidth(NodeId src, NodeId dst) {
  const Route& r = route(src, dst);
  if (!r.valid || r.links.empty()) return 0;
  double bw = std::numeric_limits<double>::infinity();
  for (LinkId l : r.links) bw = std::min(bw, topo_.link(l).bandwidth);
  return bw;
}

void Routing::run_dijkstra(NodeId src) {
  const std::size_t n = topo_.node_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<LinkId> via_link(n, kInvalidLink);
  std::vector<NodeId> via_node(n, kInvalidNode);

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (LinkId l : topo_.links_of(u)) {
      const NodeId v = topo_.other_end(l, u);
      const double w = metric_ == RouteMetric::kLatency ? topo_.link(l).latency : 1.0;
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        via_link[v] = l;
        via_node[v] = u;
        pq.push({dist[v], v});
      }
    }
  }

  auto& routes = cache_[src];
  routes.assign(n, Route{});
  for (NodeId dst = 0; dst < n; ++dst) {
    Route& r = routes[dst];
    if (dist[dst] == kInf) continue;  // unreachable: r.valid stays false
    r.valid = true;
    for (NodeId cur = dst; cur != src; cur = via_node[cur]) {
      r.links.push_back(via_link[cur]);
      r.total_latency += topo_.link(via_link[cur]).latency;
    }
    std::reverse(r.links.begin(), r.links.end());
  }
}

}  // namespace lsds::net
