// Static shortest-path routing over a Topology.
//
// Paths are computed by Dijkstra with a pluggable metric (propagation
// latency by default, hop count as an option) and cached per source. All
// models (flow- and packet-level) share one Routing so both granularities
// simulate identical paths.
//
// RouteProvider is the abstraction every network consumer programs against:
// the flat, graph-backed Routing below and the algorithmic ZoneRouting
// (net/zone.hpp) both implement it. A provider answers route queries and
// exposes the per-link static data (count, bandwidth, latency) the flow- and
// packet-level models need — so a consumer never has to hold a Topology,
// which zone-backed platforms deliberately do not materialize.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace lsds::net {

enum class RouteMetric { kLatency, kHops };

struct Route {
  std::vector<LinkId> links;  // in order src -> dst
  double total_latency = 0;
  bool valid = false;
};

/// Common interface over flat (Routing) and zone-based (ZoneRouting) route
/// computation. Link ids are dense [0, link_count()) in every
/// implementation, so per-link arrays (FlowNetwork's rates, PacketNetwork's
/// queues) index directly.
class RouteProvider {
 public:
  virtual ~RouteProvider() = default;

  /// Route from src to dst. Returns an invalid Route when unreachable.
  /// The reference may be invalidated by the next route() call on the same
  /// provider (ZoneRouting answers from per-thread scratch); callers copy
  /// what they keep.
  virtual const Route& route(NodeId src, NodeId dst) = 0;

  /// Total propagation latency of the route; +inf when unreachable.
  virtual double path_latency(NodeId src, NodeId dst) = 0;

  /// Minimum bandwidth over the route's links — the store-and-forward
  /// serialization rate of the path; 0 when unreachable or src == dst.
  virtual double bottleneck_bandwidth(NodeId src, NodeId dst) = 0;

  virtual std::size_t node_count() const = 0;
  virtual std::size_t link_count() const = 0;
  virtual double link_bandwidth(LinkId id) const = 0;
  virtual double link_latency(LinkId id) const = 0;
};

class Routing : public RouteProvider {
 public:
  explicit Routing(const Topology& topo, RouteMetric metric = RouteMetric::kLatency)
      : topo_(topo), metric_(metric), cache_(topo.node_count()) {}

  /// Route from src to dst. Returns an invalid Route when unreachable.
  /// Cached; the topology must not change after the first query (asserted
  /// via Topology::epoch in Debug builds).
  const Route& route(NodeId src, NodeId dst) override;

  double path_latency(NodeId src, NodeId dst) override;
  double bottleneck_bandwidth(NodeId src, NodeId dst) override;

  std::size_t node_count() const override { return topo_.node_count(); }
  std::size_t link_count() const override { return topo_.link_count(); }
  double link_bandwidth(LinkId id) const override { return topo_.link(id).bandwidth; }
  double link_latency(LinkId id) const override { return topo_.link(id).latency; }

  const Topology& topology() const { return topo_; }

 private:
  void run_dijkstra(NodeId src);

  const Topology& topo_;
  RouteMetric metric_;
  // cache_[src] is empty until Dijkstra ran for src, then has node_count entries.
  std::vector<std::vector<Route>> cache_;
  // Topology::epoch at the first cached query; kNoEpoch until then. Every
  // later query asserts the topology has not mutated since — the cached
  // Routes hold link ids into the old graph and would silently dangle.
  static constexpr std::uint64_t kNoEpoch = static_cast<std::uint64_t>(-1);
  std::uint64_t cached_epoch_ = kNoEpoch;
};

}  // namespace lsds::net
