// Static shortest-path routing over a Topology.
//
// Paths are computed by Dijkstra with a pluggable metric (propagation
// latency by default, hop count as an option) and cached per source. All
// models (flow- and packet-level) share one Routing so both granularities
// simulate identical paths.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace lsds::net {

enum class RouteMetric { kLatency, kHops };

struct Route {
  std::vector<LinkId> links;  // in order src -> dst
  double total_latency = 0;
  bool valid = false;
};

class Routing {
 public:
  explicit Routing(const Topology& topo, RouteMetric metric = RouteMetric::kLatency)
      : topo_(topo), metric_(metric), cache_(topo.node_count()) {}

  /// Route from src to dst. Returns an invalid Route when unreachable.
  /// Cached; the topology must not change after the first query.
  const Route& route(NodeId src, NodeId dst);

  /// Total propagation latency of the route; +inf when unreachable.
  double path_latency(NodeId src, NodeId dst);

  /// Minimum bandwidth over the route's links — the store-and-forward
  /// serialization rate of the path; 0 when unreachable or src == dst.
  double bottleneck_bandwidth(NodeId src, NodeId dst);

  const Topology& topology() const { return topo_; }

 private:
  void run_dijkstra(NodeId src);

  const Topology& topo_;
  RouteMetric metric_;
  // cache_[src] is empty until Dijkstra ran for src, then has node_count entries.
  std::vector<std::vector<Route>> cache_;
};

}  // namespace lsds::net
