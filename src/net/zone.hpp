// Hierarchical routing zones: million-host platforms without a flat graph.
//
// The paper's scalability complaint is that grid/P2P simulators top out
// orders of magnitude below real platform sizes. The flat
// Topology + Routing pair is one reason why: per-source Dijkstra caches are
// O(N^2) memory and O(N * E log N) time. A Zone stores no per-pair state at
// all — hosts and links live in a compact struct-of-arrays/closed-form
// store, and route(src, dst) is computed *algorithmically* from coordinates
// (SimGrid's hierarchical-zone trick, the one its longevity paper credits
// for reaching millions of hosts).
//
// Zone kinds:
//   * StarZone     — n hosts around one hub; route = host link(s).
//   * ClusterZone  — n hosts on an access switch with a backbone uplink to
//                    the zone gateway (a site farm / cabinet).
//   * FatTreeZone  — an extended generalized fat tree XGFT(h; m1..mh;
//                    w1..wh): level-0 hosts, h switch levels, every level-
//                    (l-1) node wired to w_l parents. Routes are derived
//                    purely from the mixed-radix digits of the endpoint
//                    indices.
//   * ZoneTree     — recursive composition: child zones joined by backbone
//                    links to a root router; cross-child routes are
//                    child-segment + backbone + child-segment.
//
// Canonical numbering (the differential contract): every zone numbers its
// hosts first, switches after, and composition places the backbone router
// last. Zone::to_topology() materializes the equivalent flat graph with
// *identical* node and link ids, and the canonical route policy is chosen
// so that ZoneRouting's answers are byte-identical — same Route.links, same
// total_latency bit pattern — to net::Routing's Dijkstra over that graph.
// tests/zone_routing_test.cpp locks this in for every zone kind.
//
// For the fat tree the canonical up-path policy (UpPolicy::kLowestIndex,
// all parent digits 0) mirrors Dijkstra's deterministic tie-break (first
// relaxation wins; the pop order is (dist, NodeId) ascending and the id
// layout makes "parent digit 0" the smallest id among equal-cost parents).
// UpPolicy::kDmodK spreads up-links by destination digits instead
// (D-mod-k style): same latency and bottleneck, different equal-cost link
// choice — useful for contention studies, verified by the weaker
// latency/validity differential.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"

namespace lsds::net {

/// A routing zone: a platform fragment whose routes are computed from node
/// coordinates instead of stored per pair. Node ids are zone-local and
/// dense in [0, node_count()); link ids dense in [0, link_count()).
/// Addressable route endpoints are hosts and the gateway (tree-shaped zones
/// accept any node).
class Zone {
 public:
  virtual ~Zone() = default;

  virtual std::size_t node_count() const = 0;
  virtual std::size_t link_count() const = 0;
  /// Number of hosts (compute endpoints) in the zone.
  virtual std::size_t host_count() const = 0;
  /// Node id of the i-th host, i in [0, host_count()).
  virtual NodeId host(std::size_t i) const = 0;
  virtual bool is_host(NodeId n) const = 0;
  /// The node through which traffic enters/leaves when this zone is
  /// composed into a ZoneTree.
  virtual NodeId gateway() const = 0;

  virtual double link_bandwidth(LinkId id) const = 0;
  virtual double link_latency(LinkId id) const = 0;
  /// Endpoints of a link, in canonical (lower-level, upper-level) order.
  virtual std::pair<NodeId, NodeId> link_ends(LinkId id) const = 0;

  /// Append the link ids of the canonical route src -> dst (in path order)
  /// to `out`. src == dst appends nothing.
  virtual void append_route(NodeId src, NodeId dst, std::vector<LinkId>& out) const = 0;

  /// Materialize the equivalent flat graph with identical node/link
  /// numbering — the reference the differential suite Dijkstras over.
  /// O(nodes + links) memory; intended for small zones and tests.
  Topology to_topology() const;
};

// --- star ------------------------------------------------------------------

struct StarSpec {
  std::size_t hosts = 0;
  double bandwidth = 1e9;  // per host link, bytes/s
  double latency = 1e-4;   // per host link, seconds
};

/// n hosts (ids [0, n)) around a hub router (id n, the gateway); link i
/// connects host i to the hub.
class StarZone final : public Zone {
 public:
  /// Throws std::invalid_argument on hosts == 0 or bandwidth <= 0.
  explicit StarZone(const StarSpec& spec);

  std::size_t node_count() const override { return spec_.hosts + 1; }
  std::size_t link_count() const override { return spec_.hosts; }
  std::size_t host_count() const override { return spec_.hosts; }
  NodeId host(std::size_t i) const override { return static_cast<NodeId>(i); }
  bool is_host(NodeId n) const override { return n < spec_.hosts; }
  NodeId gateway() const override { return static_cast<NodeId>(spec_.hosts); }

  double link_bandwidth(LinkId) const override { return spec_.bandwidth; }
  double link_latency(LinkId) const override { return spec_.latency; }
  std::pair<NodeId, NodeId> link_ends(LinkId id) const override;
  void append_route(NodeId src, NodeId dst, std::vector<LinkId>& out) const override;

 private:
  StarSpec spec_;
};

// --- cluster ---------------------------------------------------------------

struct ClusterSpec {
  std::size_t hosts = 0;
  double host_bandwidth = 1e9;      // host <-> access switch
  double host_latency = 1e-4;
  double backbone_bandwidth = 10e9; // access switch <-> gateway
  double backbone_latency = 1e-3;
};

/// n hosts (ids [0, n)) on an access switch (id n) with one backbone uplink
/// to the gateway (id n + 1). Link i < n connects host i to the switch;
/// link n is the backbone.
class ClusterZone final : public Zone {
 public:
  /// Throws std::invalid_argument on hosts == 0 or non-positive bandwidth.
  explicit ClusterZone(const ClusterSpec& spec);

  std::size_t node_count() const override { return spec_.hosts + 2; }
  std::size_t link_count() const override { return spec_.hosts + 1; }
  std::size_t host_count() const override { return spec_.hosts; }
  NodeId host(std::size_t i) const override { return static_cast<NodeId>(i); }
  bool is_host(NodeId n) const override { return n < spec_.hosts; }
  NodeId gateway() const override { return static_cast<NodeId>(spec_.hosts + 1); }

  double link_bandwidth(LinkId id) const override {
    return id < spec_.hosts ? spec_.host_bandwidth : spec_.backbone_bandwidth;
  }
  double link_latency(LinkId id) const override {
    return id < spec_.hosts ? spec_.host_latency : spec_.backbone_latency;
  }
  std::pair<NodeId, NodeId> link_ends(LinkId id) const override;
  void append_route(NodeId src, NodeId dst, std::vector<LinkId>& out) const override;

 private:
  ClusterSpec spec_;
};

// --- fat tree --------------------------------------------------------------

/// XGFT(h; m1..mh; w1..wh): children[l-1] = m_l is the down-fanout at level
/// l, parents[l-1] = w_l the number of parallel parents every level-(l-1)
/// node has at level l. Hosts = m1 * ... * mh. bandwidth/latency[l-1]
/// describe the level-l links (between levels l-1 and l).
struct FatTreeSpec {
  std::vector<std::uint32_t> children;
  std::vector<std::uint32_t> parents;
  std::vector<double> bandwidth;
  std::vector<double> latency;

  enum class UpPolicy {
    /// Always take parent digit 0 — the canonical policy, byte-identical to
    /// flat Dijkstra (its (dist, id)-ordered tie-break lands on the same
    /// links by construction of the id layout).
    kLowestIndex,
    /// Spread up-links by the destination's index digits (D-mod-k style):
    /// same latency/bottleneck, load spread across equal-cost parents.
    kDmodK,
  };
  UpPolicy up = UpPolicy::kLowestIndex;
};

/// Nodes: hosts first ([0, P)), then switch levels 1..h bottom-up. A
/// level-l node's id encodes its coordinates: within the level the index is
/// x * W_l + y where x numbers the subtree position (digits x_{l+1}..x_h)
/// and y the parent choices made on the way up (digits y_l..y_1, y_l most
/// significant — this digit order is what makes kLowestIndex match
/// Dijkstra's smallest-id tie-break). The gateway is the all-zero top
/// switch. Level-l links are numbered child-major: child_index * w_l +
/// parent_digit, levels concatenated.
class FatTreeZone final : public Zone {
 public:
  /// Throws std::invalid_argument on empty/mismatched level vectors,
  /// zero fan-outs, non-positive bandwidth, or non-positive latency
  /// (equal-cost tie-breaks are only well-defined with real link costs).
  explicit FatTreeZone(const FatTreeSpec& spec);

  std::size_t node_count() const override { return total_nodes_; }
  std::size_t link_count() const override { return total_links_; }
  std::size_t host_count() const override { return hosts_; }
  NodeId host(std::size_t i) const override { return static_cast<NodeId>(i); }
  bool is_host(NodeId n) const override { return n < hosts_; }
  NodeId gateway() const override {
    // First (all-zero) switch of the top level; node_off_.back() is the
    // one-past-the-end sentinel.
    return static_cast<NodeId>(node_off_[node_off_.size() - 2]);
  }

  double link_bandwidth(LinkId id) const override;
  double link_latency(LinkId id) const override;
  std::pair<NodeId, NodeId> link_ends(LinkId id) const override;
  void append_route(NodeId src, NodeId dst, std::vector<LinkId>& out) const override;

  std::size_t levels() const { return spec_.children.size(); }
  const FatTreeSpec& spec() const { return spec_; }

 private:
  std::size_t level_of_link(LinkId id) const;
  /// Local index of the level-l parent of level-(l-1) local `c` reached via
  /// parent digit `y_l`.
  std::size_t parent_local(std::size_t l, std::size_t c, std::size_t y_l) const;

  FatTreeSpec spec_;
  std::size_t hosts_ = 0;
  std::size_t total_nodes_ = 0;
  std::size_t total_links_ = 0;
  // Per level l in [0, h]: W_[l] = w1*..*wl, M_[l] = m1*..*ml,
  // node_off_[l] = first node id of level l (node_off_[h+1] = total).
  std::vector<std::size_t> W_, M_, node_off_;
  // Per level l in [1, h]: first link id of the level-l link block.
  std::vector<std::size_t> link_off_;
};

// --- recursive composition -------------------------------------------------

/// Child zones joined over a backbone: every child's gateway gets one
/// backbone link to a root router. Child c's nodes occupy
/// [child_offset(c), child_offset(c) + child.node_count()); the root router
/// is the last node (and this zone's gateway, so ZoneTrees nest). Child
/// link blocks come first (in child order), then one backbone link per
/// child. Cross-child routes are src-child segment to its gateway, two
/// backbone hops, then gateway-to-dst segment — the composition the
/// invariance tests assert.
class ZoneTree final : public Zone {
 public:
  ZoneTree() = default;

  /// Attach a child reached over a backbone link with the given bandwidth/
  /// latency. Returns the child index. Add all children before routing.
  std::size_t add_child(std::unique_ptr<Zone> child, double backbone_bandwidth,
                        double backbone_latency);

  std::size_t child_count() const { return children_.size(); }
  const Zone& child(std::size_t c) const { return *children_[c]; }
  NodeId child_offset(std::size_t c) const { return static_cast<NodeId>(node_off_[c]); }
  /// Child index owning node `n`; child_count() for the root router.
  std::size_t child_of(NodeId n) const;
  double backbone_latency(std::size_t c) const { return bb_latency_[c]; }
  double backbone_bandwidth(std::size_t c) const { return bb_bandwidth_[c]; }

  std::size_t node_count() const override { return total_nodes_ + 1; }
  std::size_t link_count() const override { return total_links_ + children_.size(); }
  std::size_t host_count() const override { return total_hosts_; }
  NodeId host(std::size_t i) const override;
  bool is_host(NodeId n) const override;
  NodeId gateway() const override { return static_cast<NodeId>(total_nodes_); }

  double link_bandwidth(LinkId id) const override;
  double link_latency(LinkId id) const override;
  std::pair<NodeId, NodeId> link_ends(LinkId id) const override;
  void append_route(NodeId src, NodeId dst, std::vector<LinkId>& out) const override;

 private:
  std::vector<std::unique_ptr<Zone>> children_;
  std::vector<double> bb_bandwidth_, bb_latency_;
  std::vector<std::size_t> node_off_, link_off_, host_off_;  // per child
  std::size_t total_nodes_ = 0, total_links_ = 0, total_hosts_ = 0;
};

// --- provider --------------------------------------------------------------

/// RouteProvider over a Zone: answers from per-thread scratch (no cache, no
/// per-pair state), so unlike Routing it is safe to query concurrently from
/// LP threads. total_latency accumulates in reverse path order to mirror
/// Routing's Dijkstra reconstruction bit for bit.
class ZoneRouting final : public RouteProvider {
 public:
  explicit ZoneRouting(const Zone& zone) : zone_(zone) {}

  const Route& route(NodeId src, NodeId dst) override;
  double path_latency(NodeId src, NodeId dst) override;
  double bottleneck_bandwidth(NodeId src, NodeId dst) override;

  std::size_t node_count() const override { return zone_.node_count(); }
  std::size_t link_count() const override { return zone_.link_count(); }
  double link_bandwidth(LinkId id) const override { return zone_.link_bandwidth(id); }
  double link_latency(LinkId id) const override { return zone_.link_latency(id); }

  const Zone& zone() const { return zone_; }

 private:
  const Zone& zone_;
};

}  // namespace lsds::net
