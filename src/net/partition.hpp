// Topology partitioning for parallel execution.
//
// A conservative parallel simulation is only as good as its lookahead, and
// the lookahead of a partitioned network model is the minimum communication
// latency between any two sites placed in *different* partitions: an event
// at one site cannot affect another site sooner than the propagation delay
// of the path between them. Partitioning therefore decides performance
// twice — balance (equal work per LP) and lookahead (keep low-latency pairs
// together so the windows stay wide).
//
// Two schemes:
//   * kRoundRobin — site i goes to partition i % parts. The baseline: fair
//     by count, oblivious to the topology, and it happily cuts LAN-latency
//     edges (small or zero lookahead).
//   * kTopology — a METIS-flavored greedy: k-center seeds spread far apart
//     in latency space, then balanced growth that assigns each site to the
//     nearest seed block. Low-latency clusters (a site farm, a campus) stay
//     in one partition, so the cut — and hence the lookahead — runs along
//     the expensive WAN links.
#pragma once

#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"

namespace lsds::net {

enum class PartitionScheme { kRoundRobin, kTopology };

const char* to_string(PartitionScheme s);

struct Partition {
  /// owner[i] = partition of the i-th site (index into the `sites` argument,
  /// not NodeId). All values < parts.
  std::vector<unsigned> owner;
  unsigned parts = 1;
  /// Minimum path latency between sites in different partitions — the
  /// topology-derived lookahead. +inf when parts == 1 or nothing is cut;
  /// <= 0 means the cut crosses a zero-latency path and conservative
  /// parallel execution is impossible (callers fall back to serial).
  double lookahead = 0;
};

/// Partition `sites` (topology nodes hosting model state) into `parts`
/// blocks. `routing` supplies path latencies; it is also used to derive the
/// resulting lookahead. parts is clamped to [1, sites.size()].
Partition partition_sites(RouteProvider& routing, const std::vector<NodeId>& sites, unsigned parts,
                          PartitionScheme scheme);

/// The lookahead of an externally supplied assignment (e.g. a hand-written
/// placement): min cross-partition path latency, +inf when nothing is cut.
double derive_lookahead(RouteProvider& routing, const std::vector<NodeId>& sites,
                        const std::vector<unsigned>& owner);

class ZoneTree;

/// Zone-structure partitioner for a ZoneTree platform: children map to
/// partitions whole (a child zone is a latency cluster by construction, so
/// the cut always runs along backbone links), and the lookahead comes from
/// the star shape in O(sites) route evaluations instead of an O(sites^2)
/// latency matrix — every cross-child path goes through the root, so the
/// min cross-partition latency is the smallest pair sum of per-site
/// root latencies over two different partitions.
Partition partition_zone_tree(const ZoneTree& tree, RouteProvider& routing,
                              const std::vector<NodeId>& sites, unsigned parts);

}  // namespace lsds::net
