// Network topology: nodes (hosts, routers) and links.
//
// The taxonomy's network axis covers "routers, switches and other devices"
// plus the granularity of simulation. The topology is shared by both
// granularities (flow-level net/flow.hpp, packet-level net/packet.hpp).
//
// Links are undirected with a single shared capacity (a full-duplex pair can
// be modeled as two links). Builders construct the standard experiment
// shapes: star, dumbbell, tier tree (MONARC's hierarchy), ring, full mesh
// and connected random graphs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/rng.hpp"

namespace lsds::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

enum class NodeKind { kHost, kRouter };

struct NodeInfo {
  std::string name;
  NodeKind kind = NodeKind::kHost;
};

struct LinkInfo {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double bandwidth = 0;  // bytes/second, shared by all traffic on the link
  double latency = 0;    // propagation delay, seconds
  std::string name;
};

class Topology {
 public:
  NodeId add_node(std::string name, NodeKind kind = NodeKind::kHost);
  LinkId add_link(NodeId a, NodeId b, double bandwidth, double latency, std::string name = "");

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  /// Mutation counter: bumped by every add_node/add_link. Consumers that
  /// cache derived data (net::Routing's per-source path caches) capture the
  /// epoch at first query and assert it never moves afterwards — mutating a
  /// topology under a live Routing would silently dangle cached routes.
  std::uint64_t epoch() const { return epoch_; }
  const NodeInfo& node(NodeId id) const { return nodes_[id]; }
  const LinkInfo& link(LinkId id) const { return links_[id]; }

  /// Links incident to `n`.
  const std::vector<LinkId>& links_of(NodeId n) const { return adjacency_[n]; }
  /// The endpoint of `l` that is not `n`.
  NodeId other_end(LinkId l, NodeId n) const;
  /// Node lookup by name; kInvalidNode if absent.
  NodeId find_node(const std::string& name) const;

  /// True when every node can reach every other node.
  bool connected() const;

  // --- builders -----------------------------------------------------------

  /// `n_leaves` hosts around one central router.
  static Topology star(std::size_t n_leaves, double bw, double lat);

  /// Classic congestion-study shape: left hosts - L - R - right hosts with a
  /// shared bottleneck link L-R.
  static Topology dumbbell(std::size_t n_left, std::size_t n_right, double access_bw,
                           double access_lat, double bottleneck_bw, double bottleneck_lat);

  /// Balanced tree: fanout[i] children at depth i+1; link (bw, lat) per
  /// level. Node 0 is the root. This is the MONARC tier shape (T0 root,
  /// T1 children, T2 grandchildren).
  static Topology tier_tree(const std::vector<std::size_t>& fanout,
                            const std::vector<double>& bw, const std::vector<double>& lat);

  static Topology ring(std::size_t n, double bw, double lat);
  static Topology full_mesh(std::size_t n, double bw, double lat);

  /// Connected random graph: a random spanning tree plus `extra_links`
  /// random chords. Deterministic for a given stream.
  static Topology random_connected(std::size_t n, std::size_t extra_links, double bw, double lat,
                                   core::RngStream& rng);

  // --- text serialization --------------------------------------------------
  //
  // Line format ('#' comments allowed):
  //   node <name> [router]
  //   link <a> <b> <bandwidth> <latency> [link-name]
  // Bandwidth and latency accept units ("1Gbps", "15ms"); see util/units.

  std::string to_text() const;
  /// Throws std::runtime_error on malformed input or unknown node names.
  static Topology from_text(std::string_view text);
  static Topology load(const std::string& path);
  bool save(const std::string& path) const;

 private:
  std::vector<NodeInfo> nodes_;
  std::vector<LinkInfo> links_;
  std::vector<std::vector<LinkId>> adjacency_;
  std::uint64_t epoch_ = 0;
};

}  // namespace lsds::net
