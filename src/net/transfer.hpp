// FTP-like file transfer service on top of the flow-level network.
//
// Adds what raw flows lack: per-(src,dst) concurrent-stream limits (GridFTP
// style) with FIFO queueing, and per-transfer records for analysis. This is
// the "higher-level application protocols such as FTP" rung of the
// taxonomy's protocol axis; the data-grid facades (OptorSim, MONARC) move
// all replicas through it.
//
// Every transfer dials through FlowNetwork::start_flow_checked, so when the
// grid's sites carry max-min storage (the endpoint binder is installed) each
// stream is automatically constrained by `source disk read + route links +
// destination disk write` as one jointly-solved set — disk-aware transfers
// end to end, with no TransferService configuration.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "net/flow.hpp"
#include "stats/summary.hpp"

namespace lsds::net {

struct TransferRecord {
  std::uint64_t id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double bytes = 0;
  double submit_time = 0;
  double start_time = 0;   // when the flow actually started (after queueing)
  double finish_time = 0;
  /// Dial attempts made (> 1 when fail-stop outages forced retries).
  std::uint32_t attempts = 1;
  /// True when the transfer gave up after max_attempts aborts.
  bool failed = false;
};

class TransferService {
 public:
  struct Config {
    /// Max simultaneous streams per (src,dst) pair; 0 = unlimited.
    std::size_t max_streams_per_pair = 0;
    /// Retry budget under fail-stop link semantics: total dial attempts per
    /// transfer. 1 = no retry (an abort is a permanent failure), 0 =
    /// unlimited. Aborted attempts are re-dialed after an exponential
    /// backoff instead of hanging on the dead link.
    std::size_t max_attempts = 1;
    /// Backoff schedule, validated at construction: retry_backoff must be
    /// > 0, backoff_factor >= 1, backoff_cap finite and >= 0 (NaN fails all
    /// three). Invalid values throw std::invalid_argument.
    double retry_backoff = 1.0;   // delay before the first re-dial
    double backoff_factor = 2.0;  // growth per further re-dial
    double backoff_cap = 60.0;    // ceiling on the re-dial delay
  };

  using DoneFn = std::function<void(const TransferRecord&)>;

  TransferService(core::Engine& engine, FlowNetwork& net);  // default Config
  TransferService(core::Engine& engine, FlowNetwork& net, Config cfg);

  /// Queue a transfer; `on_done` fires at completion with the full record.
  std::uint64_t submit(NodeId src, NodeId dst, double bytes, DoneFn on_done = nullptr);

  // --- statistics -----------------------------------------------------------

  /// Durations (start -> finish) of completed transfers.
  const stats::SampleSet& durations() const { return durations_; }
  /// Queueing delays (submit -> start).
  const stats::SampleSet& queue_waits() const { return waits_; }
  double bytes_completed() const { return bytes_completed_; }
  std::uint64_t completed() const { return completed_; }
  /// Re-dials after fail-stop aborts.
  std::uint64_t retries() const { return retries_; }
  /// Transfers that exhausted their attempt budget.
  std::uint64_t failed() const { return failed_count_; }
  std::size_t queued() const;

 private:
  struct Pending {
    TransferRecord rec;
    DoneFn on_done;
  };
  using PairKey = std::pair<NodeId, NodeId>;

  void try_start(PairKey key);
  void start_now(Pending p);
  void dial(std::shared_ptr<Pending> p);

  core::Engine& engine_;
  FlowNetwork& net_;
  Config cfg_;
  std::map<PairKey, std::deque<Pending>> queues_;
  std::map<PairKey, std::size_t> in_flight_;
  stats::SampleSet durations_;
  stats::SampleSet waits_;
  double bytes_completed_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t failed_count_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace lsds::net
