// Flow-level network model with progressive max-min fair bandwidth sharing.
//
// This is the granularity the paper describes as modeling "only the flows of
// packets going from one end to another in the network" — the approach
// SimGrid made standard for Grid simulation. A transfer is a fluid flow that
// receives a max-min fair share of every link on its (static) route:
//
//   repeat: find the most constrained link (remaining capacity / unfixed
//   flows), fix those flows at that fair share, remove them, until all
//   flows are fixed.
//
// Whenever the set of active flows changes, shares are re-solved and byte
// progress is settled lazily from per-flow anchors (each flow's remaining is
// a closed form of its last rate change — no global per-event progression
// pass). Two further scalability mechanisms (SimGrid's lazy/partial-resolve
// lesson) keep the hot path sub-global:
//
//   * The bandwidth-sharing constraint graph is partitioned into connected
//     components by a union-find over shared links, maintained incrementally
//     on flow add/remove and link-state change. A change re-solves only the
//     dirty component(s); every other flow keeps its rate — and its pending
//     completion event — untouched. Components only merge between periodic
//     rebuilds, so a re-solve may cover a stale super-component; that is a
//     pure performance matter, never a correctness one, because the weighted
//     max-min allocation of disconnected flow sets decomposes exactly.
//   * Completion events are per-flow: a re-solve reschedules only the flows
//     whose rate actually changed (bitwise), tombstoning the superseded
//     event in O(1) via core::Engine::cancel.
//
// Determinism: the bottleneck scan walks links in ascending LinkId order and
// flows in ascending FlowId order, so tie-broken bottleneck selection is
// deterministic by construction — and the incremental solver produces
// byte-identical traces to the full solver (Config::incremental = false),
// locked in by tests/flow_incremental_test.cpp across all queue kinds.
// The model is validated against closed forms in tests/net_test.cpp
// (max-min invariants as TEST_P properties) and in experiment E5.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/failure.hpp"
#include "net/routing.hpp"
#include "stats/timeseries.hpp"

namespace lsds::net {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

class FlowNetwork {
 public:
  using CompletionFn = std::function<void(FlowId)>;
  /// Fired when a flow is aborted by a fail-stop link outage.
  using ErrorFn = std::function<void(FlowId)>;

  struct Config {
    /// Re-solve only the connected component(s) of the constraint graph
    /// dirtied by a change (default). false = re-solve globally on every
    /// change — the reference solver the differential suite compares
    /// against; both produce byte-identical traces.
    bool incremental = true;
  };

  FlowNetwork(core::Engine& engine, RouteProvider& routing, Config cfg);
  FlowNetwork(core::Engine& engine, RouteProvider& routing)
      : FlowNetwork(engine, routing, Config{}) {}

  const Config& config() const { return cfg_; }

  /// Begin a transfer of `bytes` from src to dst. The flow first experiences
  /// the route's propagation latency, then shares bandwidth. `on_complete`
  /// fires when the last byte arrives. src == dst completes after zero time.
  /// Throws std::invalid_argument when dst is unreachable.
  FlowId start_flow(NodeId src, NodeId dst, double bytes, CompletionFn on_complete = nullptr);

  /// Weighted variant: the max-min shares become weighted — on a saturated
  /// link, a weight-2 flow receives twice the rate of a weight-1 flow
  /// (SimGrid-style flow priorities). weight must be > 0.
  FlowId start_flow_weighted(NodeId src, NodeId dst, double bytes, double weight,
                             CompletionFn on_complete = nullptr, ErrorFn on_error = nullptr);

  /// Failure-aware variant: under kFailStop link semantics, `on_error`
  /// fires (instead of the flow hanging) when an outage hits the route —
  /// including a route that is already down at start time. The recovery
  /// layer (net/transfer.hpp retries) builds on this.
  FlowId start_flow_checked(NodeId src, NodeId dst, double bytes, CompletionFn on_complete,
                            ErrorFn on_error) {
    return start_flow_weighted(src, dst, bytes, 1.0, std::move(on_complete),
                               std::move(on_error));
  }

  /// Abort an in-flight flow. Returns false if already finished/unknown.
  bool cancel(FlowId id);

  /// Failure injection. Under kFailResume (default), a down link
  /// contributes zero capacity, so every flow crossing it stalls (rate 0)
  /// until the link returns — a transport connection riding out a flap.
  /// Under kFailStop, every flow whose route crosses the failed link is
  /// aborted: it is removed and its on_error (when provided) fires.
  /// Routing is static — flows are never re-routed around outages.
  void set_link_up(LinkId id, bool up);
  bool link_up(LinkId id) const { return link_up_[id]; }

  /// Crash semantics applied by set_link_up(false) to flows in flight.
  void set_failure_semantics(core::FailureSemantics s) { semantics_ = s; }
  core::FailureSemantics failure_semantics() const { return semantics_; }

  // --- inspection --------------------------------------------------------

  /// The route provider (flat Routing or zone-backed ZoneRouting) this
  /// network models traffic over. Link ids below index its link space.
  const RouteProvider& routing() const { return routing_; }
  std::size_t link_count() const { return routing_.link_count(); }
  double link_bandwidth(LinkId id) const { return routing_.link_bandwidth(id); }
  std::size_t active_flows() const { return flows_.size(); }
  /// Flows past the latency phase, currently sharing bandwidth.
  std::size_t sharing_flows() const { return sharing_count_; }
  /// Current fair-share rate of a flow (0 when latency-phase or unknown).
  double flow_rate(FlowId id) const;
  /// Sum of flow rates currently allocated on a link.
  double link_load(LinkId id) const { return link_rate_[id]; }
  double link_utilization(LinkId id) const {
    return link_rate_[id] / routing_.link_bandwidth(id);
  }

  // --- statistics ---------------------------------------------------------

  double total_bytes_delivered() const;
  std::uint64_t flows_completed() const { return flows_completed_; }
  /// Flows killed by fail-stop link outages.
  std::uint64_t flows_aborted() const { return flows_aborted_; }
  /// Cumulative bytes carried per link (settled + in-flight anchors).
  double link_bytes(LinkId id) const;
  /// Max-min re-solves since construction, and flows re-rated by them —
  /// the work counters bench_flow_scaling reports (full re-rates every
  /// sharing flow per solve; incremental only the dirty component).
  std::uint64_t solves() const { return solves_; }
  std::uint64_t flows_rerated() const { return flows_rerated_; }

  /// Opt-in utilization time series (records at every re-solve).
  void track_link(LinkId id);
  const stats::TimeSeries& link_series(LinkId id) const;

 private:
  struct Flow {
    FlowId id = kInvalidFlow;
    std::vector<LinkId> links;
    /// Bytes left at `anchor_t`. The live value is the closed form
    /// remaining - rate * (now - anchor_t): byte accounting is settled only
    /// when the rate changes, never per event — so the arithmetic (and its
    /// float rounding) depends only on the rate-change sequence, which the
    /// incremental and full solvers produce identically.
    double remaining = 0;
    double anchor_t = 0;
    double rate = 0;
    double weight = 1.0;
    bool sharing = false;  // false during the latency phase
    CompletionFn on_complete;
    ErrorFn on_error;
    /// Pending completion event while sharing with rate > 0; superseded
    /// events are cancelled (O(1) tombstone) before a reschedule.
    core::EventHandle completion{};
    // Span bookkeeping (obs/span.hpp): endpoints, demand and start time.
    NodeId src = 0;
    NodeId dst = 0;
    double bytes = 0;
    double started = 0;
  };

  /// Publish a completed/aborted flow span to the observability bus.
  void publish_span(const Flow& flow, const char* status) const;

  void activate(FlowId id);
  /// Settle a flow's transferred bytes from its anchor up to now at
  /// `old_rate`, crediting the global and per-link byte counters, and
  /// re-anchor at now. Called exactly when a flow's rate changes or the
  /// flow leaves — never on unrelated events.
  void settle(Flow& flow, double old_rate);
  /// Re-solve max-min shares for the dirty flow set (everything when
  /// Config::incremental is off) and reschedule the completion event of
  /// every flow whose rate changed.
  void resolve_and_reschedule();
  /// Fills scratch_members_ (ascending FlowId) and scratch_links_
  /// (ascending LinkId) with the flow set to re-solve and the links whose
  /// rates it determines.
  void collect_dirty();
  /// Weighted max-min over scratch_members_ / scratch_links_; updates
  /// Flow::rate and link_rate_. Deterministic by construction: both scans
  /// run in ascending id order.
  void solve_members();
  void on_completion_event(FlowId id);
  void finish_flow(FlowId id);
  /// Bookkeeping when a sharing flow leaves (finish/cancel/abort): cancels
  /// its pending completion event and dirties its links.
  void detach_sharing(Flow& flow);

  // --- constraint-graph components (incremental mode) ---------------------
  LinkId dsu_find(LinkId l);
  void dsu_unite(LinkId a, LinkId b);
  /// Union-find only ever merges; removals leave it over-merged (a stale
  /// super-component is re-solved — correct, just wider than needed). When
  /// enough removals accumulate, rebuild the partition from live flows.
  void maybe_rebuild_components();

  core::Engine& engine_;
  RouteProvider& routing_;
  Config cfg_;
  core::FailureSemantics semantics_ = core::FailureSemantics::kFailResume;
  /// Ordered so every per-flow scan (progression, member collection,
  /// fail-stop dooming) walks ascending FlowId — determinism by
  /// construction instead of by accident of hash layout.
  std::map<FlowId, Flow> flows_;
  std::size_t sharing_count_ = 0;
  std::vector<double> link_rate_;
  std::vector<double> link_bytes_;
  std::vector<char> link_up_;
  std::unordered_map<LinkId, stats::TimeSeries> tracked_;
  FlowId next_id_ = 1;
  double bytes_delivered_ = 0;  // settled segments only; see settle()
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_aborted_ = 0;
  std::uint64_t solves_ = 0;
  std::uint64_t flows_rerated_ = 0;

  // Component tracking: parent pointers over links, member flow ids per
  // component root. Member lists may hold ids of flows that already left
  // (filtered on use, compacted at rebuild).
  std::vector<LinkId> dsu_parent_;
  std::unordered_map<LinkId, std::vector<FlowId>> comp_members_;
  std::size_t stale_members_ = 0;
  std::vector<LinkId> dirty_links_;

  // Per-solve scratch, reserved once and reused (no per-call allocation).
  std::vector<Flow*> scratch_members_;
  std::vector<double> scratch_old_rate_;
  std::vector<char> scratch_fixed_;
  std::vector<LinkId> scratch_links_;
  std::vector<double> solve_cap_;       // indexed by LinkId
  std::vector<double> solve_wsum_;      // indexed by LinkId
  std::vector<std::uint32_t> link_mark_;  // epoch stamps, indexed by LinkId
  std::uint32_t mark_epoch_ = 0;
};

}  // namespace lsds::net
