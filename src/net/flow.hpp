// Flow-level network model with progressive max-min fair bandwidth sharing.
//
// This is the granularity the paper describes as modeling "only the flows of
// packets going from one end to another in the network" — the approach
// SimGrid made standard for Grid simulation. A transfer is a fluid flow that
// receives a max-min fair share of every link on its (static) route:
//
//   repeat: find the most constrained link (remaining capacity / unfixed
//   flows), fix those flows at that fair share, remove them, until all
//   flows are fixed.
//
// Whenever the set of active flows changes, all flows are progressed to the
// current instant, shares are re-solved, and the earliest completion is
// (re)scheduled. The model is validated against closed forms in
// tests/net_flow_test.cpp (max-min invariants as TEST_P properties) and in
// experiment E5.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/failure.hpp"
#include "net/routing.hpp"
#include "stats/timeseries.hpp"

namespace lsds::net {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

class FlowNetwork {
 public:
  using CompletionFn = std::function<void(FlowId)>;
  /// Fired when a flow is aborted by a fail-stop link outage.
  using ErrorFn = std::function<void(FlowId)>;

  FlowNetwork(core::Engine& engine, Routing& routing);

  /// Begin a transfer of `bytes` from src to dst. The flow first experiences
  /// the route's propagation latency, then shares bandwidth. `on_complete`
  /// fires when the last byte arrives. src == dst completes after zero time.
  /// Throws std::invalid_argument when dst is unreachable.
  FlowId start_flow(NodeId src, NodeId dst, double bytes, CompletionFn on_complete = nullptr);

  /// Weighted variant: the max-min shares become weighted — on a saturated
  /// link, a weight-2 flow receives twice the rate of a weight-1 flow
  /// (SimGrid-style flow priorities). weight must be > 0.
  FlowId start_flow_weighted(NodeId src, NodeId dst, double bytes, double weight,
                             CompletionFn on_complete = nullptr, ErrorFn on_error = nullptr);

  /// Failure-aware variant: under kFailStop link semantics, `on_error`
  /// fires (instead of the flow hanging) when an outage hits the route —
  /// including a route that is already down at start time. The recovery
  /// layer (net/transfer.hpp retries) builds on this.
  FlowId start_flow_checked(NodeId src, NodeId dst, double bytes, CompletionFn on_complete,
                            ErrorFn on_error) {
    return start_flow_weighted(src, dst, bytes, 1.0, std::move(on_complete),
                               std::move(on_error));
  }

  /// Abort an in-flight flow. Returns false if already finished/unknown.
  bool cancel(FlowId id);

  /// Failure injection. Under kFailResume (default), a down link
  /// contributes zero capacity, so every flow crossing it stalls (rate 0)
  /// until the link returns — a transport connection riding out a flap.
  /// Under kFailStop, every flow whose route crosses the failed link is
  /// aborted: it is removed and its on_error (when provided) fires.
  /// Routing is static — flows are never re-routed around outages.
  void set_link_up(LinkId id, bool up);
  bool link_up(LinkId id) const { return link_up_[id]; }

  /// Crash semantics applied by set_link_up(false) to flows in flight.
  void set_failure_semantics(core::FailureSemantics s) { semantics_ = s; }
  core::FailureSemantics failure_semantics() const { return semantics_; }

  // --- inspection --------------------------------------------------------

  const Topology& topology() const { return routing_.topology(); }
  std::size_t active_flows() const { return flows_.size(); }
  /// Current fair-share rate of a flow (0 when latency-phase or unknown).
  double flow_rate(FlowId id) const;
  /// Sum of flow rates currently allocated on a link.
  double link_load(LinkId id) const { return link_rate_[id]; }
  double link_utilization(LinkId id) const {
    return link_rate_[id] / routing_.topology().link(id).bandwidth;
  }

  // --- statistics ---------------------------------------------------------

  double total_bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t flows_completed() const { return flows_completed_; }
  /// Flows killed by fail-stop link outages.
  std::uint64_t flows_aborted() const { return flows_aborted_; }
  /// Cumulative bytes carried per link.
  double link_bytes(LinkId id) const { return link_bytes_[id]; }

  /// Opt-in utilization time series (records at every re-solve).
  void track_link(LinkId id);
  const stats::TimeSeries& link_series(LinkId id) const;

 private:
  struct Flow {
    FlowId id;
    std::vector<LinkId> links;
    double remaining;
    double rate = 0;
    double weight = 1.0;
    bool sharing = false;  // false during the latency phase
    CompletionFn on_complete;
    ErrorFn on_error;
    // Span bookkeeping (obs/span.hpp): endpoints, demand and start time.
    NodeId src = 0;
    NodeId dst = 0;
    double bytes = 0;
    double started = 0;
  };

  /// Publish a completed/aborted flow span to the observability bus.
  void publish_span(const Flow& flow, const char* status) const;

  void activate(FlowId id);
  /// Progress all sharing flows to now, crediting per-link byte counters.
  void progress_to_now();
  /// Re-solve max-min shares and reschedule the next completion event.
  void resolve_and_reschedule();
  void solve_maxmin();
  void on_completion_event(std::uint64_t generation);
  void finish_flow(FlowId id);

  core::Engine& engine_;
  Routing& routing_;
  core::FailureSemantics semantics_ = core::FailureSemantics::kFailResume;
  std::unordered_map<FlowId, Flow> flows_;
  std::vector<double> link_rate_;
  std::vector<double> link_bytes_;
  std::vector<char> link_up_;
  std::unordered_map<LinkId, stats::TimeSeries> tracked_;
  FlowId next_id_ = 1;
  double last_update_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale completion events
  double bytes_delivered_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_aborted_ = 0;
};

}  // namespace lsds::net
