// Flow-level network model with progressive max-min fair sharing over
// generic CAPACITY RESOURCES.
//
// This is the granularity the paper describes as modeling "only the flows of
// packets going from one end to another in the network" — the approach
// SimGrid made standard for Grid simulation. A transfer is a fluid flow that
// receives a max-min fair share of every *capacity resource* it crosses:
//
//   repeat: find the most constrained resource (remaining capacity /
//   unfixed weight), fix those flows at that fair share, remove them,
//   until all flows are fixed.
//
// A capacity resource is anything whose capacity is max-min shared among
// the flows crossing it. The solver knows two implementations of the
// concept, unified in ONE dense id space so every per-resource array
// (capacity, failure state, rate, bytes, dirty-component membership)
// indexes directly:
//
//   * links        — ids [0, link_count()): capacity comes from the
//     RouteProvider's static link table; membership from the flow's route.
//   * registered resources — ids from add_resource(): capacity stored
//     here and adjustable at runtime (set_resource_capacity). This is how
//     disks join the constraint graph (hosts/storage.hpp registers one
//     read-head and one write-head resource per max-min device), so a
//     transfer's constraint set becomes
//
//         source disk read + route links + destination disk write
//
//     solved jointly and incrementally — SimGrid's DiskImpl lesson: a disk
//     is just another constraint in the same LMM system as the links.
//
// Whenever the set of active flows changes, shares are re-solved and byte
// progress is settled lazily from per-flow anchors (each flow's remaining is
// a closed form of its last rate change — no global per-event progression
// pass). Two further scalability mechanisms (SimGrid's lazy/partial-resolve
// lesson) keep the hot path sub-global:
//
//   * The sharing constraint graph is partitioned into connected components
//     by a union-find over shared resources, maintained incrementally on
//     flow add/remove and resource-state change (a disk capacity change
//     dirties exactly the component that disk anchors). A change re-solves
//     only the dirty component(s); every other flow keeps its rate — and
//     its pending completion event — untouched. Components only merge
//     between periodic rebuilds, so a re-solve may cover a stale
//     super-component; that is a pure performance matter, never a
//     correctness one, because the weighted max-min allocation of
//     disconnected flow sets decomposes exactly.
//   * Completion events are per-flow: a re-solve reschedules only the flows
//     whose rate actually changed (bitwise), tombstoning the superseded
//     event in O(1) via core::Engine::cancel.
//
// Determinism: the bottleneck scan walks resources in ascending ResourceId
// order and flows in ascending FlowId order, so tie-broken bottleneck
// selection is deterministic by construction — and the incremental solver
// produces byte-identical traces to the full solver (Config::incremental =
// false), locked in by tests/flow_incremental_test.cpp (links only) and
// tests/storage_sharing_test.cpp (joint disk + link constraint sets) across
// all queue kinds. The model is validated against closed forms in
// tests/net_test.cpp (max-min invariants as TEST_P properties) and in
// experiments E5 and E15.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/failure.hpp"
#include "net/routing.hpp"
#include "stats/timeseries.hpp"

namespace lsds::net {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

/// Dense id of a capacity resource in a FlowNetwork: link ids [0,
/// link_count()) followed by registered (non-link) resources in
/// registration order. LinkId values are valid ResourceIds unchanged.
using ResourceId = LinkId;
inline constexpr ResourceId kInvalidResource = kInvalidLink;

class FlowNetwork {
 public:
  using CompletionFn = std::function<void(FlowId)>;
  /// Fired when a flow is aborted by a fail-stop resource outage.
  using ErrorFn = std::function<void(FlowId)>;

  struct Config {
    /// Re-solve only the connected component(s) of the constraint graph
    /// dirtied by a change (default). false = re-solve globally on every
    /// change — the reference solver the differential suite compares
    /// against; both produce byte-identical traces.
    bool incremental = true;
  };

  /// Everything that defines a flow. `resources` are extra capacity
  /// constraints joined with the route's links (e.g. the source disk's read
  /// head and the destination disk's write head); `extra_latency` is added
  /// to the route's propagation latency (e.g. tape mount time).
  struct FlowSpec {
    NodeId src = 0;
    NodeId dst = 0;
    double bytes = 0;
    double weight = 1.0;
    std::vector<ResourceId> resources;
    double extra_latency = 0;
    /// Consult the endpoint binder (set_endpoint_binder) for additional
    /// endpoint resources/latency. start_io sets this false: a pure-device
    /// I/O names its constraints explicitly.
    bool bind_endpoints = true;
    CompletionFn on_complete;
    ErrorFn on_error;
  };

  /// Appends endpoint capacity resources (and extra access latency) for a
  /// (src, dst) flow — installed by hosts::Grid when sites carry max-min
  /// storage, so TransferService, the replica facades and every raw
  /// start_flow call become disk-constrained end to end with no call-site
  /// changes. Must be deterministic (pure in (src, dst)).
  using EndpointBinder =
      std::function<void(NodeId src, NodeId dst, std::vector<ResourceId>& resources,
                         double& extra_latency)>;

  FlowNetwork(core::Engine& engine, RouteProvider& routing, Config cfg);
  FlowNetwork(core::Engine& engine, RouteProvider& routing)
      : FlowNetwork(engine, routing, Config{}) {}

  const Config& config() const { return cfg_; }

  // --- capacity resources --------------------------------------------------

  /// Register a non-link capacity resource (a disk head, a tape robot…).
  /// Returns its id in the same dense space links occupy. Capacity must be
  /// > 0 and finite (throws std::invalid_argument otherwise). Resources can
  /// be registered at any time; ids are stable for the network's lifetime.
  ResourceId add_resource(double capacity, std::string name = {});
  /// Number of registered (non-link) resources.
  std::size_t resource_count() const { return extra_caps_.size(); }
  /// Total resources = links + registered.
  std::size_t total_resources() const { return n_links_ + extra_caps_.size(); }

  /// Live capacity of any resource (link table or registered store).
  double resource_capacity(ResourceId id) const {
    return id < n_links_ ? routing_.link_bandwidth(id) : extra_caps_[id - n_links_];
  }
  /// Change a registered resource's capacity (degraded RAID, robot taken
  /// offline for maintenance at reduced throughput…). Dirties exactly the
  /// resource's component; the incremental re-solve covers the rate change.
  /// Only registered resources are mutable (links are owned by the
  /// RouteProvider); throws std::invalid_argument on a link id or a
  /// non-finite/non-positive capacity.
  void set_resource_capacity(ResourceId id, double capacity);
  const std::string& resource_name(ResourceId id) const;

  /// Begin a transfer of `bytes` from src to dst. The flow first experiences
  /// the route's propagation latency (+ any bound endpoint access latency),
  /// then shares capacity. `on_complete` fires when the last byte arrives.
  /// src == dst completes after the latency alone unless endpoint resources
  /// are bound (a local copy still contends for its disk). Throws
  /// std::invalid_argument when dst is unreachable.
  FlowId start_flow(NodeId src, NodeId dst, double bytes, CompletionFn on_complete = nullptr);

  /// Weighted variant: the max-min shares become weighted — on a saturated
  /// resource, a weight-2 flow receives twice the rate of a weight-1 flow
  /// (SimGrid-style flow priorities). weight must be > 0.
  FlowId start_flow_weighted(NodeId src, NodeId dst, double bytes, double weight,
                             CompletionFn on_complete = nullptr, ErrorFn on_error = nullptr);

  /// Failure-aware variant: under kFailStop semantics, `on_error` fires
  /// (instead of the flow hanging) when an outage hits the constraint set —
  /// including a route that is already down at start time. The recovery
  /// layer (net/transfer.hpp retries) builds on this.
  FlowId start_flow_checked(NodeId src, NodeId dst, double bytes, CompletionFn on_complete,
                            ErrorFn on_error) {
    return start_flow_weighted(src, dst, bytes, 1.0, std::move(on_complete),
                               std::move(on_error));
  }

  /// Fully general entry point — every other start_* delegates here.
  FlowId start_flow_spec(FlowSpec spec);

  /// Pure device I/O: a flow constrained ONLY by the given resources (no
  /// route, no links), with `access_latency` as its latency phase. This is
  /// how a max-min StorageDevice times reads and writes.
  FlowId start_io(double bytes, std::vector<ResourceId> resources, double access_latency,
                  CompletionFn on_complete, ErrorFn on_error = nullptr);

  /// Install/replace the endpoint binder (nullptr clears). See
  /// EndpointBinder; hosts::Grid::finalize installs one when any site's
  /// storage is max-min shared.
  void set_endpoint_binder(EndpointBinder binder) { binder_ = std::move(binder); }
  bool has_endpoint_binder() const { return static_cast<bool>(binder_); }

  /// Abort an in-flight flow. Returns false if already finished/unknown.
  bool cancel(FlowId id);

  /// Failure injection, uniformly over the resource space. Under
  /// kFailResume (default), a down resource contributes zero capacity, so
  /// every flow crossing it stalls (rate 0) until it returns — a transport
  /// connection riding out a flap, or I/O frozen while a disk resets. Under
  /// kFailStop, every flow whose constraint set crosses the failed resource
  /// is aborted: it is removed and its on_error (when provided) fires.
  /// Routing is static — flows are never re-routed around outages.
  void set_resource_up(ResourceId id, bool up);
  bool resource_up(ResourceId id) const { return res_up_[id]; }
  /// Link-flavored aliases (the pre-resource API, still the common case).
  void set_link_up(LinkId id, bool up) { set_resource_up(id, up); }
  bool link_up(LinkId id) const { return res_up_[id]; }

  /// Crash semantics applied by set_resource_up(false) to flows in flight.
  void set_failure_semantics(core::FailureSemantics s) { semantics_ = s; }
  core::FailureSemantics failure_semantics() const { return semantics_; }

  // --- inspection --------------------------------------------------------

  /// The route provider (flat Routing or zone-backed ZoneRouting) this
  /// network models traffic over. Link ids below index its link space.
  const RouteProvider& routing() const { return routing_; }
  std::size_t link_count() const { return n_links_; }
  double link_bandwidth(LinkId id) const { return routing_.link_bandwidth(id); }
  std::size_t active_flows() const { return flows_.size(); }
  /// Flows past the latency phase, currently sharing capacity.
  std::size_t sharing_flows() const { return sharing_count_; }
  /// Current fair-share rate of a flow (0 when latency-phase or unknown).
  double flow_rate(FlowId id) const;
  /// Sum of flow rates currently allocated on a resource.
  double resource_load(ResourceId id) const { return res_rate_[id]; }
  double link_load(LinkId id) const { return res_rate_[id]; }
  double resource_utilization(ResourceId id) const {
    return res_rate_[id] / resource_capacity(id);
  }
  double link_utilization(LinkId id) const { return resource_utilization(id); }

  // --- statistics ---------------------------------------------------------

  double total_bytes_delivered() const;
  std::uint64_t flows_completed() const { return flows_completed_; }
  /// Flows killed by fail-stop resource outages.
  std::uint64_t flows_aborted() const { return flows_aborted_; }
  /// Cumulative bytes carried per resource (settled + in-flight anchors).
  double resource_bytes(ResourceId id) const;
  double link_bytes(LinkId id) const { return resource_bytes(id); }
  /// Max-min re-solves since construction, and flows re-rated by them —
  /// the work counters bench_flow_scaling reports (full re-rates every
  /// sharing flow per solve; incremental only the dirty component).
  std::uint64_t solves() const { return solves_; }
  std::uint64_t flows_rerated() const { return flows_rerated_; }

  /// Opt-in utilization time series (records at every re-solve). Works for
  /// links and registered resources alike.
  void track_link(ResourceId id);
  const stats::TimeSeries& link_series(ResourceId id) const;

 private:
  struct Flow {
    FlowId id = kInvalidFlow;
    /// The flow's constraint set: route links in path order, then any extra
    /// capacity resources (endpoint disks). Uniform ids — the solver never
    /// distinguishes.
    std::vector<ResourceId> resources;
    /// Bytes left at `anchor_t`. The live value is the closed form
    /// remaining - rate * (now - anchor_t): byte accounting is settled only
    /// when the rate changes, never per event — so the arithmetic (and its
    /// float rounding) depends only on the rate-change sequence, which the
    /// incremental and full solvers produce identically.
    double remaining = 0;
    double anchor_t = 0;
    double rate = 0;
    double weight = 1.0;
    bool sharing = false;  // false during the latency phase
    CompletionFn on_complete;
    ErrorFn on_error;
    /// Pending completion event while sharing with rate > 0; superseded
    /// events are cancelled (O(1) tombstone) before a reschedule.
    core::EventHandle completion{};
    // Span bookkeeping (obs/span.hpp): endpoints, demand and start time.
    NodeId src = 0;
    NodeId dst = 0;
    double bytes = 0;
    double started = 0;
  };

  /// Publish a completed/aborted flow span to the observability bus.
  void publish_span(const Flow& flow, const char* status) const;

  void activate(FlowId id);
  /// Settle a flow's transferred bytes from its anchor up to now at
  /// `old_rate`, crediting the global and per-resource byte counters, and
  /// re-anchor at now. Called exactly when a flow's rate changes or the
  /// flow leaves — never on unrelated events.
  void settle(Flow& flow, double old_rate);
  /// Re-solve max-min shares for the dirty flow set (everything when
  /// Config::incremental is off) and reschedule the completion event of
  /// every flow whose rate changed.
  void resolve_and_reschedule();
  /// Fills scratch_members_ (ascending FlowId) and scratch_res_ (ascending
  /// ResourceId) with the flow set to re-solve and the resources whose
  /// rates it determines.
  void collect_dirty();
  /// Weighted max-min over scratch_members_ / scratch_res_; updates
  /// Flow::rate and res_rate_. Deterministic by construction: both scans
  /// run in ascending id order.
  void solve_members();
  void on_completion_event(FlowId id);
  void finish_flow(FlowId id);
  /// Bookkeeping when a sharing flow leaves (finish/cancel/abort): cancels
  /// its pending completion event and dirties its resources.
  void detach_sharing(Flow& flow);

  // --- constraint-graph components (incremental mode) ---------------------
  ResourceId dsu_find(ResourceId r);
  void dsu_unite(ResourceId a, ResourceId b);
  /// Union-find only ever merges; removals leave it over-merged (a stale
  /// super-component is re-solved — correct, just wider than needed). When
  /// enough removals accumulate, rebuild the partition from live flows.
  void maybe_rebuild_components();

  core::Engine& engine_;
  RouteProvider& routing_;
  Config cfg_;
  core::FailureSemantics semantics_ = core::FailureSemantics::kFailResume;
  /// Ordered so every per-flow scan (progression, member collection,
  /// fail-stop dooming) walks ascending FlowId — determinism by
  /// construction instead of by accident of hash layout.
  std::map<FlowId, Flow> flows_;
  std::size_t sharing_count_ = 0;
  /// Links [0, n_links_), registered resources after. All per-resource
  /// arrays below span the full space and grow on add_resource.
  std::size_t n_links_ = 0;
  std::vector<double> extra_caps_;         // registered resources only
  std::vector<std::string> extra_names_;   // registered resources only
  std::vector<double> res_rate_;
  std::vector<double> res_bytes_;
  std::vector<char> res_up_;
  EndpointBinder binder_;
  std::unordered_map<ResourceId, stats::TimeSeries> tracked_;
  FlowId next_id_ = 1;
  double bytes_delivered_ = 0;  // settled segments only; see settle()
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_aborted_ = 0;
  std::uint64_t solves_ = 0;
  std::uint64_t flows_rerated_ = 0;

  // Component tracking: parent pointers over resources, member flow ids per
  // component root. Member lists may hold ids of flows that already left
  // (filtered on use, compacted at rebuild).
  std::vector<ResourceId> dsu_parent_;
  std::unordered_map<ResourceId, std::vector<FlowId>> comp_members_;
  std::size_t stale_members_ = 0;
  std::vector<ResourceId> dirty_res_;

  // Per-solve scratch, reserved once and reused (no per-call allocation).
  std::vector<Flow*> scratch_members_;
  std::vector<double> scratch_old_rate_;
  std::vector<char> scratch_fixed_;
  std::vector<ResourceId> scratch_res_;
  std::vector<double> solve_cap_;       // indexed by ResourceId
  std::vector<double> solve_wsum_;      // indexed by ResourceId
  std::vector<std::uint32_t> res_mark_;  // epoch stamps, indexed by ResourceId
  std::uint32_t mark_epoch_ = 0;
};

}  // namespace lsds::net
