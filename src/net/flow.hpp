// Flow-level network model with progressive max-min fair bandwidth sharing.
//
// This is the granularity the paper describes as modeling "only the flows of
// packets going from one end to another in the network" — the approach
// SimGrid made standard for Grid simulation. A transfer is a fluid flow that
// receives a max-min fair share of every link on its (static) route:
//
//   repeat: find the most constrained link (remaining capacity / unfixed
//   flows), fix those flows at that fair share, remove them, until all
//   flows are fixed.
//
// Whenever the set of active flows changes, all flows are progressed to the
// current instant, shares are re-solved, and the earliest completion is
// (re)scheduled. The model is validated against closed forms in
// tests/net_flow_test.cpp (max-min invariants as TEST_P properties) and in
// experiment E5.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "net/routing.hpp"
#include "stats/timeseries.hpp"

namespace lsds::net {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

class FlowNetwork {
 public:
  using CompletionFn = std::function<void(FlowId)>;

  FlowNetwork(core::Engine& engine, Routing& routing);

  /// Begin a transfer of `bytes` from src to dst. The flow first experiences
  /// the route's propagation latency, then shares bandwidth. `on_complete`
  /// fires when the last byte arrives. src == dst completes after zero time.
  /// Throws std::invalid_argument when dst is unreachable.
  FlowId start_flow(NodeId src, NodeId dst, double bytes, CompletionFn on_complete = nullptr);

  /// Weighted variant: the max-min shares become weighted — on a saturated
  /// link, a weight-2 flow receives twice the rate of a weight-1 flow
  /// (SimGrid-style flow priorities). weight must be > 0.
  FlowId start_flow_weighted(NodeId src, NodeId dst, double bytes, double weight,
                             CompletionFn on_complete = nullptr);

  /// Abort an in-flight flow. Returns false if already finished/unknown.
  bool cancel(FlowId id);

  /// Failure injection: a down link contributes zero capacity, so every
  /// flow crossing it stalls (rate 0) until the link returns. Routing is
  /// static — flows are not re-routed around outages, they wait them out
  /// (the behavior of a transport connection riding out a flap).
  void set_link_up(LinkId id, bool up);
  bool link_up(LinkId id) const { return link_up_[id]; }

  // --- inspection --------------------------------------------------------

  const Topology& topology() const { return routing_.topology(); }
  std::size_t active_flows() const { return flows_.size(); }
  /// Current fair-share rate of a flow (0 when latency-phase or unknown).
  double flow_rate(FlowId id) const;
  /// Sum of flow rates currently allocated on a link.
  double link_load(LinkId id) const { return link_rate_[id]; }
  double link_utilization(LinkId id) const {
    return link_rate_[id] / routing_.topology().link(id).bandwidth;
  }

  // --- statistics ---------------------------------------------------------

  double total_bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t flows_completed() const { return flows_completed_; }
  /// Cumulative bytes carried per link.
  double link_bytes(LinkId id) const { return link_bytes_[id]; }

  /// Opt-in utilization time series (records at every re-solve).
  void track_link(LinkId id);
  const stats::TimeSeries& link_series(LinkId id) const;

 private:
  struct Flow {
    FlowId id;
    std::vector<LinkId> links;
    double remaining;
    double rate = 0;
    double weight = 1.0;
    bool sharing = false;  // false during the latency phase
    CompletionFn on_complete;
  };

  void activate(FlowId id);
  /// Progress all sharing flows to now, crediting per-link byte counters.
  void progress_to_now();
  /// Re-solve max-min shares and reschedule the next completion event.
  void resolve_and_reschedule();
  void solve_maxmin();
  void on_completion_event(std::uint64_t generation);
  void finish_flow(FlowId id);

  core::Engine& engine_;
  Routing& routing_;
  std::unordered_map<FlowId, Flow> flows_;
  std::vector<double> link_rate_;
  std::vector<double> link_bytes_;
  std::vector<char> link_up_;
  std::unordered_map<LinkId, stats::TimeSeries> tracked_;
  FlowId next_id_ = 1;
  double last_update_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale completion events
  double bytes_delivered_ = 0;
  std::uint64_t flows_completed_ = 0;
};

}  // namespace lsds::net
