#include "net/flow.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "obs/span.hpp"

namespace lsds::net {

namespace {
// A flow is "done" when its residue is below one millionth of a byte —
// absorbs float error from progressing to the scheduled completion instant.
constexpr double kByteEpsilon = 1e-6;
}  // namespace

FlowNetwork::FlowNetwork(core::Engine& engine, Routing& routing)
    : engine_(engine),
      routing_(routing),
      link_rate_(routing.topology().link_count(), 0.0),
      link_bytes_(routing.topology().link_count(), 0.0),
      link_up_(routing.topology().link_count(), 1) {}

void FlowNetwork::set_link_up(LinkId id, bool up) {
  if (static_cast<bool>(link_up_[id]) == up) return;
  progress_to_now();
  link_up_[id] = up ? 1 : 0;
  // Fail-stop: the outage severs every connection crossing the link. Abort
  // them all (latency-phase flows included — their handshake dies too).
  std::vector<std::pair<FlowId, ErrorFn>> aborted;
  if (!up && semantics_ == core::FailureSemantics::kFailStop) {
    std::vector<FlowId> doomed;
    for (const auto& [fid, flow] : flows_) {
      if (std::find(flow.links.begin(), flow.links.end(), id) != flow.links.end()) {
        doomed.push_back(fid);
      }
    }
    std::sort(doomed.begin(), doomed.end());  // deterministic callback order
    for (FlowId fid : doomed) {
      auto it = flows_.find(fid);
      publish_span(it->second, "aborted");
      aborted.emplace_back(fid, std::move(it->second.on_error));
      flows_.erase(it);
      ++flows_aborted_;
    }
  }
  resolve_and_reschedule();
  // Callbacks last: they may start replacement flows re-entrantly.
  for (auto& [fid, cb] : aborted) {
    if (cb) cb(fid);
  }
}

FlowId FlowNetwork::start_flow(NodeId src, NodeId dst, double bytes, CompletionFn on_complete) {
  return start_flow_weighted(src, dst, bytes, 1.0, std::move(on_complete));
}

FlowId FlowNetwork::start_flow_weighted(NodeId src, NodeId dst, double bytes, double weight,
                                        CompletionFn on_complete, ErrorFn on_error) {
  assert(bytes >= 0);
  assert(weight > 0);
  const Route& route = routing_.route(src, dst);
  if (src != dst && !route.valid) {
    throw std::invalid_argument("FlowNetwork: no route between nodes");
  }
  const FlowId id = next_id_++;
  Flow flow{id,     src == dst ? std::vector<LinkId>{} : route.links,
            bytes,  0,
            weight, false,
            std::move(on_complete), std::move(on_error),
            src,    dst,
            bytes,  engine_.now()};
  // Fail-stop + route already down = connection refused: fail asynchronously
  // (callers expect the error after start_flow returns), never admit the flow.
  if (semantics_ == core::FailureSemantics::kFailStop) {
    for (LinkId l : flow.links) {
      if (!link_up_[l]) {
        ++flows_aborted_;
        publish_span(flow, "refused");
        engine_.schedule_in(0, [cb = std::move(flow.on_error), id] {
          if (cb) cb(id);
        });
        return id;
      }
    }
  }
  flows_.emplace(id, std::move(flow));

  const double latency = src == dst ? 0.0 : route.total_latency;
  if (bytes <= kByteEpsilon || flows_.at(id).links.empty()) {
    // Pure-latency delivery (empty payload or local copy).
    engine_.schedule_in(latency, [this, id, bytes] {
      auto it = flows_.find(id);
      if (it == flows_.end()) return;  // cancelled
      bytes_delivered_ += bytes;
      finish_flow(id);
    });
    return id;
  }
  engine_.schedule_in(latency, [this, id] { activate(id); });
  return id;
}

void FlowNetwork::activate(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;  // cancelled during the latency phase
  progress_to_now();
  it->second.sharing = true;
  resolve_and_reschedule();
}

bool FlowNetwork::cancel(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  progress_to_now();
  publish_span(it->second, "cancelled");
  flows_.erase(it);
  resolve_and_reschedule();
  return true;
}

double FlowNetwork::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::track_link(LinkId id) { tracked_.emplace(id, stats::TimeSeries{}); }

const stats::TimeSeries& FlowNetwork::link_series(LinkId id) const { return tracked_.at(id); }

void FlowNetwork::progress_to_now() {
  const double now = engine_.now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0) return;
  for (auto& [id, flow] : flows_) {
    if (!flow.sharing || flow.rate <= 0) continue;
    const double moved = std::min(flow.rate * dt, flow.remaining);
    flow.remaining -= moved;
    bytes_delivered_ += moved;
    for (LinkId l : flow.links) link_bytes_[l] += moved;
  }
}

void FlowNetwork::solve_maxmin() {
  std::fill(link_rate_.begin(), link_rate_.end(), 0.0);

  // Gather sharing flows and per-link membership. Weighted max-min: the
  // bottleneck metric is capacity per unit of unfixed *weight*, and a flow
  // fixed at a bottleneck receives weight * that unit rate.
  struct LinkState {
    double cap_remaining;
    double weight_unfixed = 0;
  };
  std::unordered_map<LinkId, LinkState> links;
  std::vector<Flow*> unfixed;
  for (auto& [id, flow] : flows_) {
    flow.rate = 0;
    if (!flow.sharing) continue;
    unfixed.push_back(&flow);
    for (LinkId l : flow.links) {
      auto [it, inserted] = links.try_emplace(l, LinkState{0, 0});
      if (inserted) {
        it->second.cap_remaining = link_up_[l] ? routing_.topology().link(l).bandwidth : 0.0;
      }
      it->second.weight_unfixed += flow.weight;
    }
  }

  std::vector<char> fixed(unfixed.size(), 0);
  std::size_t n_left = unfixed.size();
  // Residual weight below this is floating-point dust from the weighted
  // subtractions, not a real unfixed flow.
  constexpr double kWeightEpsilon = 1e-9;
  while (n_left > 0) {
    // Most constrained link: min per-weight share among links with unfixed
    // flows.
    double best = std::numeric_limits<double>::infinity();
    LinkId best_link = kInvalidLink;
    for (const auto& [l, st] : links) {
      if (st.weight_unfixed <= kWeightEpsilon) continue;
      const double fair = st.cap_remaining / st.weight_unfixed;
      if (fair < best) {
        best = fair;
        best_link = l;
      }
    }
    if (best_link == kInvalidLink) break;  // defensive: shouldn't happen
    // Fix every unfixed flow crossing the bottleneck at weight * unit rate.
    bool progressed = false;
    for (std::size_t i = 0; i < unfixed.size(); ++i) {
      if (fixed[i]) continue;
      Flow* f = unfixed[i];
      const bool on_bottleneck =
          std::find(f->links.begin(), f->links.end(), best_link) != f->links.end();
      if (!on_bottleneck) continue;
      f->rate = best * f->weight;
      fixed[i] = 1;
      progressed = true;
      --n_left;
      for (LinkId l : f->links) {
        auto& st = links.at(l);
        st.cap_remaining = std::max(0.0, st.cap_remaining - f->rate);
        st.weight_unfixed = std::max(0.0, st.weight_unfixed - f->weight);
      }
    }
    if (!progressed) {
      // All remaining weight on the chosen link was epsilon dust; zero it
      // out so the link stops being selected. (Never happens with integer
      // weights, but fractional weights can leave residue.)
      links.at(best_link).weight_unfixed = 0;
    }
  }

  for (Flow* f : unfixed) {
    for (LinkId l : f->links) link_rate_[l] += f->rate;
  }

  for (auto& [l, series] : tracked_) {
    series.record(engine_.now(), link_rate_[l] / routing_.topology().link(l).bandwidth);
  }
}

void FlowNetwork::resolve_and_reschedule() {
  solve_maxmin();
  ++generation_;
  // Earliest completion among sharing flows.
  double soonest = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (!flow.sharing || flow.rate <= 0) continue;
    soonest = std::min(soonest, flow.remaining / flow.rate);
  }
  if (soonest == std::numeric_limits<double>::infinity()) return;
  const std::uint64_t gen = generation_;
  engine_.schedule_in(soonest, [this, gen] { on_completion_event(gen); });
}

void FlowNetwork::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer re-solve
  progress_to_now();
  // Collect every flow that just drained (simultaneous completions happen).
  std::vector<FlowId> done;
  for (const auto& [id, flow] : flows_) {
    if (flow.sharing && flow.remaining <= kByteEpsilon) done.push_back(id);
  }
  if (done.empty()) {
    // Guard against float livelock: when the residual transfer time is
    // below the clock's representable increment (ulp), progress_to_now sees
    // dt == 0 and the epsilon test never fires. The membership generation
    // is unchanged, so the flow this event was scheduled for is exactly the
    // one with the minimal remaining/rate — finish it directly.
    FlowId victim = kInvalidFlow;
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [id, flow] : flows_) {
      if (!flow.sharing || flow.rate <= 0) continue;
      const double eta = flow.remaining / flow.rate;
      if (eta < best) {
        best = eta;
        victim = id;
      }
    }
    if (victim != kInvalidFlow) done.push_back(victim);
  }
  std::sort(done.begin(), done.end());  // deterministic callback order
  for (FlowId id : done) {
    // A callback may have cancelled a sibling completion re-entrantly.
    if (flows_.count(id)) finish_flow(id);
  }
  resolve_and_reschedule();
}

void FlowNetwork::finish_flow(FlowId id) {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  publish_span(it->second, "done");
  CompletionFn cb = std::move(it->second.on_complete);
  flows_.erase(it);
  ++flows_completed_;
  if (cb) cb(id);
}

void FlowNetwork::publish_span(const Flow& flow, const char* status) const {
  const auto& bus = obs::SpanBus::global();
  if (!bus.enabled()) return;
  obs::Span s;
  s.kind = "flow";
  s.status = status;
  s.id = flow.id;
  s.t0 = flow.started;
  s.t1 = engine_.now();
  s.quantity = flow.bytes;
  s.src = flow.src;
  s.dst = flow.dst;
  bus.publish(s);
}

}  // namespace lsds::net
