#include "net/flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/span.hpp"

namespace lsds::net {

namespace {
// A flow is "done" when its residue is below one millionth of a byte —
// absorbs float error from progressing to the scheduled completion instant.
constexpr double kByteEpsilon = 1e-6;
// Residual weight below this is floating-point dust from the weighted
// subtractions, not a real unfixed flow.
constexpr double kWeightEpsilon = 1e-9;
}  // namespace

FlowNetwork::FlowNetwork(core::Engine& engine, RouteProvider& routing, Config cfg)
    : engine_(engine),
      routing_(routing),
      cfg_(cfg),
      n_links_(routing.link_count()),
      res_rate_(routing.link_count(), 0.0),
      res_bytes_(routing.link_count(), 0.0),
      res_up_(routing.link_count(), 1),
      dsu_parent_(routing.link_count()),
      solve_cap_(routing.link_count(), 0.0),
      solve_wsum_(routing.link_count(), 0.0),
      res_mark_(routing.link_count(), 0) {
  std::iota(dsu_parent_.begin(), dsu_parent_.end(), ResourceId{0});
  scratch_members_.reserve(64);
  scratch_old_rate_.reserve(64);
  scratch_fixed_.reserve(64);
  scratch_res_.reserve(64);
  dirty_res_.reserve(16);
}

ResourceId FlowNetwork::add_resource(double capacity, std::string name) {
  if (!std::isfinite(capacity) || capacity <= 0) {
    throw std::invalid_argument("FlowNetwork::add_resource: capacity must be finite and > 0");
  }
  const ResourceId id = static_cast<ResourceId>(total_resources());
  extra_caps_.push_back(capacity);
  extra_names_.push_back(std::move(name));
  res_rate_.push_back(0.0);
  res_bytes_.push_back(0.0);
  res_up_.push_back(1);
  dsu_parent_.push_back(id);
  solve_cap_.push_back(0.0);
  solve_wsum_.push_back(0.0);
  res_mark_.push_back(0);
  return id;
}

void FlowNetwork::set_resource_capacity(ResourceId id, double capacity) {
  if (id < n_links_ || id >= total_resources()) {
    throw std::invalid_argument(
        "FlowNetwork::set_resource_capacity: not a registered resource (links are owned by "
        "the RouteProvider)");
  }
  if (!std::isfinite(capacity) || capacity <= 0) {
    throw std::invalid_argument(
        "FlowNetwork::set_resource_capacity: capacity must be finite and > 0");
  }
  double& cap = extra_caps_[id - n_links_];
  if (cap == capacity) return;
  cap = capacity;
  // Dirty exactly this resource's component: the incremental re-solve picks
  // up the new capacity there and touches nothing else.
  if (cfg_.incremental) dirty_res_.push_back(id);
  resolve_and_reschedule();
}

const std::string& FlowNetwork::resource_name(ResourceId id) const {
  static const std::string kLinkName = "link";
  return id < n_links_ ? kLinkName : extra_names_[id - n_links_];
}

void FlowNetwork::set_resource_up(ResourceId id, bool up) {
  if (static_cast<bool>(res_up_[id]) == up) return;
  res_up_[id] = up ? 1 : 0;
  if (cfg_.incremental) dirty_res_.push_back(id);
  // Fail-stop: the outage severs every connection crossing the resource (a
  // dead link drops the circuit; a dead disk kills the I/O). Abort them all
  // (latency-phase flows included — their handshake dies too).
  std::vector<std::pair<FlowId, ErrorFn>> aborted;
  if (!up && semantics_ == core::FailureSemantics::kFailStop) {
    std::vector<FlowId> doomed;  // flows_ is ordered: ascending-id callbacks
    for (const auto& [fid, flow] : flows_) {
      if (std::find(flow.resources.begin(), flow.resources.end(), id) !=
          flow.resources.end()) {
        doomed.push_back(fid);
      }
    }
    for (FlowId fid : doomed) {
      auto it = flows_.find(fid);
      settle(it->second, it->second.rate);
      publish_span(it->second, "aborted");
      detach_sharing(it->second);
      aborted.emplace_back(fid, std::move(it->second.on_error));
      flows_.erase(it);
      ++flows_aborted_;
    }
  }
  resolve_and_reschedule();
  // Callbacks last: they may start replacement flows re-entrantly.
  for (auto& [fid, cb] : aborted) {
    if (cb) cb(fid);
  }
}

FlowId FlowNetwork::start_flow(NodeId src, NodeId dst, double bytes, CompletionFn on_complete) {
  return start_flow_weighted(src, dst, bytes, 1.0, std::move(on_complete));
}

FlowId FlowNetwork::start_flow_weighted(NodeId src, NodeId dst, double bytes, double weight,
                                        CompletionFn on_complete, ErrorFn on_error) {
  FlowSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.bytes = bytes;
  spec.weight = weight;
  spec.on_complete = std::move(on_complete);
  spec.on_error = std::move(on_error);
  return start_flow_spec(std::move(spec));
}

FlowId FlowNetwork::start_io(double bytes, std::vector<ResourceId> resources,
                             double access_latency, CompletionFn on_complete, ErrorFn on_error) {
  FlowSpec spec;
  spec.bytes = bytes;
  spec.resources = std::move(resources);
  spec.extra_latency = access_latency;
  spec.bind_endpoints = false;
  spec.on_complete = std::move(on_complete);
  spec.on_error = std::move(on_error);
  return start_flow_spec(std::move(spec));
}

FlowId FlowNetwork::start_flow_spec(FlowSpec spec) {
  assert(spec.bytes >= 0);
  assert(spec.weight > 0);
  double latency = spec.extra_latency;
  std::vector<ResourceId> resources;
  if (spec.src != spec.dst) {
    const Route& route = routing_.route(spec.src, spec.dst);
    if (!route.valid) {
      throw std::invalid_argument("FlowNetwork: no route between nodes");
    }
    resources = route.links;
    latency += route.total_latency;
  }
  // Endpoint binding joins the storage constraints: source disk read + route
  // links + destination disk write, one constraint set for the solver.
  if (spec.bind_endpoints && binder_) binder_(spec.src, spec.dst, resources, latency);
  resources.insert(resources.end(), spec.resources.begin(), spec.resources.end());

  const FlowId id = next_id_++;
  Flow flow;
  flow.id = id;
  flow.resources = std::move(resources);
  flow.remaining = spec.bytes;
  flow.weight = spec.weight;
  flow.on_complete = std::move(spec.on_complete);
  flow.on_error = std::move(spec.on_error);
  flow.src = spec.src;
  flow.dst = spec.dst;
  flow.bytes = spec.bytes;
  flow.started = engine_.now();
  // Fail-stop + constraint set already down = connection refused: fail
  // asynchronously (callers expect the error after start returns), never
  // admit the flow.
  if (semantics_ == core::FailureSemantics::kFailStop) {
    for (ResourceId r : flow.resources) {
      if (!res_up_[r]) {
        ++flows_aborted_;
        publish_span(flow, "refused");
        engine_.schedule_in(0, [cb = std::move(flow.on_error), id] {
          if (cb) cb(id);
        });
        return id;
      }
    }
  }
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  assert(inserted);

  if (spec.bytes <= kByteEpsilon || it->second.resources.empty()) {
    // Pure-latency delivery (empty payload, or a local copy with no bound
    // storage constraints).
    engine_.schedule_in(latency, [this, id, bytes = spec.bytes] {
      auto fit = flows_.find(id);
      if (fit == flows_.end()) return;  // cancelled
      bytes_delivered_ += bytes;
      finish_flow(id);
    });
    return id;
  }
  engine_.schedule_in(latency, [this, id] { activate(id); });
  return id;
}

void FlowNetwork::activate(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;  // cancelled during the latency phase
  Flow& flow = it->second;
  flow.sharing = true;
  flow.anchor_t = engine_.now();
  ++sharing_count_;
  if (cfg_.incremental) {
    const ResourceId anchor = flow.resources.front();
    for (ResourceId r : flow.resources) dsu_unite(anchor, r);
    comp_members_[dsu_find(anchor)].push_back(id);
    dirty_res_.push_back(anchor);
  }
  resolve_and_reschedule();
}

bool FlowNetwork::cancel(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  settle(it->second, it->second.rate);
  publish_span(it->second, "cancelled");
  const bool was_sharing = it->second.sharing;
  detach_sharing(it->second);
  flows_.erase(it);
  // A latency-phase flow never held capacity: nothing to re-solve.
  if (was_sharing) resolve_and_reschedule();
  return true;
}

double FlowNetwork::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::track_link(ResourceId id) { tracked_.emplace(id, stats::TimeSeries{}); }

const stats::TimeSeries& FlowNetwork::link_series(ResourceId id) const { return tracked_.at(id); }

void FlowNetwork::settle(Flow& flow, double old_rate) {
  const double now = engine_.now();
  const double dt = now - flow.anchor_t;
  flow.anchor_t = now;
  if (dt <= 0 || !flow.sharing || old_rate <= 0) return;
  const double moved = std::min(old_rate * dt, flow.remaining);
  flow.remaining -= moved;
  bytes_delivered_ += moved;
  for (ResourceId r : flow.resources) res_bytes_[r] += moved;
}

double FlowNetwork::total_bytes_delivered() const {
  // Settled segments plus every live flow's in-flight bytes since its
  // anchor, summed in ascending-FlowId order (deterministic and identical
  // under either solver, because anchors sit at rate-change instants).
  double total = bytes_delivered_;
  const double now = engine_.now();
  for (const auto& [id, flow] : flows_) {
    if (!flow.sharing || flow.rate <= 0) continue;
    total += std::min(flow.rate * (now - flow.anchor_t), flow.remaining);
  }
  return total;
}

double FlowNetwork::resource_bytes(ResourceId id) const {
  double total = res_bytes_[id];
  const double now = engine_.now();
  for (const auto& [fid, flow] : flows_) {
    if (!flow.sharing || flow.rate <= 0) continue;
    if (std::find(flow.resources.begin(), flow.resources.end(), id) == flow.resources.end()) {
      continue;
    }
    total += std::min(flow.rate * (now - flow.anchor_t), flow.remaining);
  }
  return total;
}

void FlowNetwork::detach_sharing(Flow& flow) {
  if (!flow.sharing) return;
  flow.sharing = false;
  --sharing_count_;
  if (flow.completion.valid()) {
    engine_.cancel(flow.completion);
    flow.completion = {};
  }
  if (cfg_.incremental) {
    // The departing flow's resources must be re-solved (and zeroed when it
    // was their last user); its component entry goes stale until the next
    // rebuild.
    ++stale_members_;
    for (ResourceId r : flow.resources) dirty_res_.push_back(r);
  }
}

ResourceId FlowNetwork::dsu_find(ResourceId r) {
  while (dsu_parent_[r] != r) {
    dsu_parent_[r] = dsu_parent_[dsu_parent_[r]];  // path halving
    r = dsu_parent_[r];
  }
  return r;
}

void FlowNetwork::dsu_unite(ResourceId a, ResourceId b) {
  const ResourceId ra = dsu_find(a);
  const ResourceId rb = dsu_find(b);
  if (ra == rb) return;
  const auto list_size = [this](ResourceId r) {
    auto it = comp_members_.find(r);
    return it == comp_members_.end() ? std::size_t{0} : it->second.size();
  };
  // Small-to-large: the shorter member list is appended to the longer, so a
  // flow id moves lists O(log n) times. Ties go to the smaller root id —
  // fully determined by ids and sizes, never by hash layout.
  ResourceId win = ra;
  ResourceId lose = rb;
  const std::size_t sa = list_size(ra);
  const std::size_t sb = list_size(rb);
  if (sb > sa || (sb == sa && rb < ra)) {
    win = rb;
    lose = ra;
  }
  dsu_parent_[lose] = win;
  auto it = comp_members_.find(lose);
  if (it == comp_members_.end()) return;
  std::vector<FlowId> moved = std::move(it->second);
  comp_members_.erase(it);
  auto& dst = comp_members_[win];
  if (dst.empty()) {
    dst = std::move(moved);
  } else {
    dst.insert(dst.end(), moved.begin(), moved.end());
  }
}

void FlowNetwork::maybe_rebuild_components() {
  // Removals leave the union-find over-merged (supersets stay correct but
  // shrink the incrementality win). Rebuild from live flows once the stale
  // entries outnumber the live ones.
  if (stale_members_ < 64 || stale_members_ < sharing_count_) return;
  std::iota(dsu_parent_.begin(), dsu_parent_.end(), ResourceId{0});
  comp_members_.clear();
  stale_members_ = 0;
  for (auto& [id, flow] : flows_) {
    if (!flow.sharing) continue;
    const ResourceId anchor = flow.resources.front();
    for (ResourceId r : flow.resources) dsu_unite(anchor, r);
    comp_members_[dsu_find(anchor)].push_back(id);
  }
}

void FlowNetwork::collect_dirty() {
  scratch_members_.clear();
  scratch_res_.clear();
  if (!cfg_.incremental) {
    // Full reference solver: every sharing flow, every resource, every time.
    std::fill(res_rate_.begin(), res_rate_.end(), 0.0);
    ++mark_epoch_;
    for (auto& [id, flow] : flows_) {
      if (!flow.sharing) continue;
      scratch_members_.push_back(&flow);
      for (ResourceId r : flow.resources) {
        if (res_mark_[r] != mark_epoch_) {
          res_mark_[r] = mark_epoch_;
          scratch_res_.push_back(r);
        }
      }
    }
    std::sort(scratch_res_.begin(), scratch_res_.end());
    return;
  }
  if (dirty_res_.empty()) return;
  maybe_rebuild_components();
  // Dirty component roots -> live member flows (compacting stale ids as we
  // pass). flows_ is ordered but member lists are not; sort afterwards so
  // the solve walks flows in ascending id order, exactly like the full
  // solver restricted to these components.
  ++mark_epoch_;
  for (ResourceId r : dirty_res_) {
    const ResourceId root = dsu_find(r);
    if (res_mark_[root] == mark_epoch_) continue;
    res_mark_[root] = mark_epoch_;
    auto it = comp_members_.find(root);
    if (it == comp_members_.end()) continue;
    auto& list = it->second;
    std::size_t kept = 0;
    for (FlowId fid : list) {
      auto fit = flows_.find(fid);
      if (fit == flows_.end() || !fit->second.sharing) continue;  // stale entry
      list[kept++] = fid;
      scratch_members_.push_back(&fit->second);
    }
    stale_members_ -= list.size() - kept;
    list.resize(kept);
  }
  std::sort(scratch_members_.begin(), scratch_members_.end(),
            [](const Flow* a, const Flow* b) { return a->id < b->id; });
  // Resources to re-solve: every member's constraint set plus the explicitly
  // dirtied ones (a departed flow's resources must be zeroed even when no
  // member remains on them).
  ++mark_epoch_;
  for (const Flow* f : scratch_members_) {
    for (ResourceId r : f->resources) {
      if (res_mark_[r] != mark_epoch_) {
        res_mark_[r] = mark_epoch_;
        scratch_res_.push_back(r);
      }
    }
  }
  for (ResourceId r : dirty_res_) {
    if (res_mark_[r] != mark_epoch_) {
      res_mark_[r] = mark_epoch_;
      scratch_res_.push_back(r);
    }
  }
  std::sort(scratch_res_.begin(), scratch_res_.end());
}

void FlowNetwork::solve_members() {
  ++solves_;
  flows_rerated_ += scratch_members_.size();
  for (ResourceId r : scratch_res_) {
    solve_cap_[r] = res_up_[r] ? resource_capacity(r) : 0.0;
    solve_wsum_[r] = 0.0;
    res_rate_[r] = 0.0;
  }
  // Weighted max-min: the bottleneck metric is capacity per unit of unfixed
  // *weight*, and a flow fixed at a bottleneck receives weight * that unit
  // rate.
  scratch_old_rate_.clear();
  for (Flow* f : scratch_members_) {
    scratch_old_rate_.push_back(f->rate);
    f->rate = 0;
    for (ResourceId r : f->resources) solve_wsum_[r] += f->weight;
  }
  scratch_fixed_.assign(scratch_members_.size(), 0);
  std::size_t n_left = scratch_members_.size();
  while (n_left > 0) {
    // Most constrained resource: min per-weight share among resources with
    // unfixed flows. Ascending-ResourceId scan with a strict '<' makes the
    // tie-break (equal fair shares) the smallest resource id, by
    // construction.
    double best = std::numeric_limits<double>::infinity();
    ResourceId best_res = kInvalidResource;
    for (ResourceId r : scratch_res_) {
      if (solve_wsum_[r] <= kWeightEpsilon) continue;
      const double fair = solve_cap_[r] / solve_wsum_[r];
      if (fair < best) {
        best = fair;
        best_res = r;
      }
    }
    if (best_res == kInvalidResource) break;  // defensive: shouldn't happen
    // Fix every unfixed flow crossing the bottleneck at weight * unit rate.
    bool progressed = false;
    for (std::size_t i = 0; i < scratch_members_.size(); ++i) {
      if (scratch_fixed_[i]) continue;
      Flow* f = scratch_members_[i];
      const bool on_bottleneck =
          std::find(f->resources.begin(), f->resources.end(), best_res) != f->resources.end();
      if (!on_bottleneck) continue;
      f->rate = best * f->weight;
      scratch_fixed_[i] = 1;
      progressed = true;
      --n_left;
      for (ResourceId r : f->resources) {
        solve_cap_[r] = std::max(0.0, solve_cap_[r] - f->rate);
        solve_wsum_[r] = std::max(0.0, solve_wsum_[r] - f->weight);
      }
    }
    if (!progressed) {
      // All remaining weight on the chosen resource was epsilon dust; zero
      // it out so the resource stops being selected. (Never happens with
      // integer weights, but fractional weights can leave residue.)
      solve_wsum_[best_res] = 0;
    }
  }

  for (const Flow* f : scratch_members_) {
    for (ResourceId r : f->resources) res_rate_[r] += f->rate;
  }
}

void FlowNetwork::resolve_and_reschedule() {
  collect_dirty();
  solve_members();
  dirty_res_.clear();

  for (auto& [r, series] : tracked_) {
    series.record(engine_.now(), res_rate_[r] / resource_capacity(r));
  }

  // Reschedule only the flows whose fair share moved: with a piecewise-
  // linear remaining, an unchanged rate means an unchanged absolute
  // completion instant, so the pending event stays valid. Members are in
  // ascending flow id order -> deterministic event sequence numbers.
  for (std::size_t i = 0; i < scratch_members_.size(); ++i) {
    Flow* f = scratch_members_[i];
    if (f->rate == scratch_old_rate_[i]) continue;
    settle(*f, scratch_old_rate_[i]);
    if (f->completion.valid()) {
      engine_.cancel(f->completion);  // O(1) tombstone; skipped at pop
      f->completion = {};
    }
    if (f->rate > 0) {
      f->completion = engine_.schedule_in(f->remaining / f->rate,
                                          [this, id = f->id] { on_completion_event(id); });
    }
  }
}

void FlowNetwork::on_completion_event(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;  // defensive: cancelled events never fire
  it->second.completion = {};      // consumed by this firing
  // The event was scheduled at this flow's completion instant under its
  // current rate (any rate change would have rescheduled it), so the flow
  // is done — settling leaves at most float dust in `remaining`, and when
  // the residual transfer time is below the clock's ulp the residue could
  // never drain at all. Finish directly either way.
  finish_flow(id);
  resolve_and_reschedule();
}

void FlowNetwork::finish_flow(FlowId id) {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  settle(it->second, it->second.rate);
  publish_span(it->second, "done");
  CompletionFn cb = std::move(it->second.on_complete);
  detach_sharing(it->second);
  flows_.erase(it);
  ++flows_completed_;
  if (cb) cb(id);
}

void FlowNetwork::publish_span(const Flow& flow, const char* status) const {
  const auto& bus = obs::SpanBus::global();
  if (!bus.enabled()) return;
  obs::Span s;
  s.kind = "flow";
  s.status = status;
  s.id = flow.id;
  s.t0 = flow.started;
  s.t1 = engine_.now();
  s.quantity = flow.bytes;
  s.src = flow.src;
  s.dst = flow.dst;
  bus.publish(s);
}

}  // namespace lsds::net
