#include "net/topology.hpp"

#include <cassert>
#include <deque>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"
#include "util/units.hpp"

namespace lsds::net {

NodeId Topology::add_node(std::string name, NodeKind kind) {
  nodes_.push_back({std::move(name), kind});
  adjacency_.emplace_back();
  ++epoch_;
  return static_cast<NodeId>(nodes_.size() - 1);
}

LinkId Topology::add_link(NodeId a, NodeId b, double bandwidth, double latency,
                          std::string name) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  assert(bandwidth > 0 && latency >= 0);
  if (name.empty()) name = nodes_[a].name + "--" + nodes_[b].name;
  links_.push_back({a, b, bandwidth, latency, std::move(name)});
  const auto id = static_cast<LinkId>(links_.size() - 1);
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  ++epoch_;
  return id;
}

NodeId Topology::other_end(LinkId l, NodeId n) const {
  const LinkInfo& li = links_[l];
  return li.a == n ? li.b : li.a;
}

NodeId Topology::find_node(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

bool Topology::connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<NodeId> frontier{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop_front();
    for (LinkId l : adjacency_[n]) {
      const NodeId m = other_end(l, n);
      if (!seen[m]) {
        seen[m] = true;
        ++visited;
        frontier.push_back(m);
      }
    }
  }
  return visited == nodes_.size();
}

Topology Topology::star(std::size_t n_leaves, double bw, double lat) {
  Topology t;
  const NodeId hub = t.add_node("hub", NodeKind::kRouter);
  for (std::size_t i = 0; i < n_leaves; ++i) {
    const NodeId leaf = t.add_node(util::strformat("host%zu", i));
    t.add_link(hub, leaf, bw, lat);
  }
  return t;
}

Topology Topology::dumbbell(std::size_t n_left, std::size_t n_right, double access_bw,
                            double access_lat, double bottleneck_bw, double bottleneck_lat) {
  Topology t;
  const NodeId l = t.add_node("L", NodeKind::kRouter);
  const NodeId r = t.add_node("R", NodeKind::kRouter);
  t.add_link(l, r, bottleneck_bw, bottleneck_lat, "bottleneck");
  for (std::size_t i = 0; i < n_left; ++i) {
    const NodeId h = t.add_node(util::strformat("left%zu", i));
    t.add_link(h, l, access_bw, access_lat);
  }
  for (std::size_t i = 0; i < n_right; ++i) {
    const NodeId h = t.add_node(util::strformat("right%zu", i));
    t.add_link(h, r, access_bw, access_lat);
  }
  return t;
}

Topology Topology::tier_tree(const std::vector<std::size_t>& fanout,
                             const std::vector<double>& bw, const std::vector<double>& lat) {
  assert(fanout.size() == bw.size() && fanout.size() == lat.size());
  Topology t;
  std::vector<NodeId> level{t.add_node("T0", NodeKind::kHost)};
  for (std::size_t depth = 0; depth < fanout.size(); ++depth) {
    std::vector<NodeId> next;
    std::size_t idx = 0;
    for (NodeId parent : level) {
      for (std::size_t c = 0; c < fanout[depth]; ++c) {
        const NodeId child =
            t.add_node(util::strformat("T%zu_%zu", depth + 1, idx++), NodeKind::kHost);
        t.add_link(parent, child, bw[depth], lat[depth]);
        next.push_back(child);
      }
    }
    level = std::move(next);
  }
  return t;
}

Topology Topology::ring(std::size_t n, double bw, double lat) {
  assert(n >= 3);
  Topology t;
  for (std::size_t i = 0; i < n; ++i) t.add_node(util::strformat("node%zu", i));
  for (std::size_t i = 0; i < n; ++i) {
    t.add_link(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n), bw, lat);
  }
  return t;
}

Topology Topology::full_mesh(std::size_t n, double bw, double lat) {
  Topology t;
  for (std::size_t i = 0; i < n; ++i) t.add_node(util::strformat("node%zu", i));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      t.add_link(static_cast<NodeId>(i), static_cast<NodeId>(j), bw, lat);
    }
  }
  return t;
}

std::string Topology::to_text() const {
  std::string out = "# lsds topology\n";
  for (const NodeInfo& n : nodes_) {
    out += "node " + n.name;
    if (n.kind == NodeKind::kRouter) out += " router";
    out += "\n";
  }
  for (const LinkInfo& l : links_) {
    out += util::strformat("link %s %s %.9gbps %.9gs %s\n", nodes_[l.a].name.c_str(),
                           nodes_[l.b].name.c_str(), l.bandwidth * 8.0, l.latency,
                           l.name.c_str());
  }
  return out;
}

Topology Topology::from_text(std::string_view text) {
  Topology t;
  std::istringstream in{std::string(text)};
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = util::split_ws(line);
    auto fail = [&](const char* why) {
      throw std::runtime_error(util::strformat("topology: line %zu: %s", lineno, why));
    };
    if (fields[0] == "node") {
      if (fields.size() < 2) fail("node needs a name");
      if (t.find_node(fields[1]) != kInvalidNode) fail("duplicate node name");
      const NodeKind kind =
          (fields.size() >= 3 && fields[2] == "router") ? NodeKind::kRouter : NodeKind::kHost;
      t.add_node(fields[1], kind);
    } else if (fields[0] == "link") {
      if (fields.size() < 5) fail("link needs: <a> <b> <bandwidth> <latency>");
      const NodeId a = t.find_node(fields[1]);
      const NodeId b = t.find_node(fields[2]);
      if (a == kInvalidNode || b == kInvalidNode) fail("link references unknown node");
      double bw = 0, lat = 0;
      if (!util::parse_rate(fields[3], bw)) fail("bad bandwidth (need a unit, e.g. 1Gbps)");
      if (!util::parse_duration(fields[4], lat)) fail("bad latency (e.g. 15ms)");
      t.add_link(a, b, bw, lat, fields.size() >= 6 ? fields[5] : "");
    } else {
      fail("expected 'node' or 'link'");
    }
  }
  return t;
}

Topology Topology::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("topology: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return from_text(ss.str());
}

bool Topology::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_text();
  return static_cast<bool>(f);
}

Topology Topology::random_connected(std::size_t n, std::size_t extra_links, double bw, double lat,
                                    core::RngStream& rng) {
  assert(n >= 2);
  Topology t;
  for (std::size_t i = 0; i < n; ++i) t.add_node(util::strformat("node%zu", i));
  // Random spanning tree: attach node i to a uniformly random earlier node.
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    t.add_link(static_cast<NodeId>(i), parent, bw, lat);
  }
  // Random chords, avoiding self-loops (duplicates allowed: parallel paths).
  for (std::size_t k = 0; k < extra_links; ++k) {
    const auto a = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto b = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    if (b >= a) ++b;
    t.add_link(a, b, bw, lat);
  }
  return t;
}

}  // namespace lsds::net
