#include "net/zone.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

namespace lsds::net {

// --- Zone ------------------------------------------------------------------

Topology Zone::to_topology() const {
  Topology topo;
  const std::size_t n = node_count();
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<NodeId>(i);
    topo.add_node((is_host(id) ? "h" : "n") + std::to_string(i),
                  is_host(id) ? NodeKind::kHost : NodeKind::kRouter);
  }
  const std::size_t m = link_count();
  for (std::size_t i = 0; i < m; ++i) {
    const auto id = static_cast<LinkId>(i);
    const auto [a, b] = link_ends(id);
    topo.add_link(a, b, link_bandwidth(id), link_latency(id));
  }
  return topo;
}

// --- StarZone --------------------------------------------------------------

StarZone::StarZone(const StarSpec& spec) : spec_(spec) {
  if (spec.hosts == 0) throw std::invalid_argument("StarZone: hosts must be > 0");
  if (!(spec.bandwidth > 0)) throw std::invalid_argument("StarZone: bandwidth must be > 0");
  if (!(spec.latency >= 0)) throw std::invalid_argument("StarZone: latency must be >= 0");
}

std::pair<NodeId, NodeId> StarZone::link_ends(LinkId id) const {
  assert(id < link_count());
  return {static_cast<NodeId>(id), gateway()};
}

void StarZone::append_route(NodeId src, NodeId dst, std::vector<LinkId>& out) const {
  assert(src < node_count() && dst < node_count());
  if (src == dst) return;
  if (src != gateway()) out.push_back(static_cast<LinkId>(src));
  if (dst != gateway()) out.push_back(static_cast<LinkId>(dst));
}

// --- ClusterZone -----------------------------------------------------------

ClusterZone::ClusterZone(const ClusterSpec& spec) : spec_(spec) {
  if (spec.hosts == 0) throw std::invalid_argument("ClusterZone: hosts must be > 0");
  if (!(spec.host_bandwidth > 0) || !(spec.backbone_bandwidth > 0)) {
    throw std::invalid_argument("ClusterZone: bandwidth must be > 0");
  }
  if (!(spec.host_latency >= 0) || !(spec.backbone_latency >= 0)) {
    throw std::invalid_argument("ClusterZone: latency must be >= 0");
  }
}

std::pair<NodeId, NodeId> ClusterZone::link_ends(LinkId id) const {
  assert(id < link_count());
  const auto sw = static_cast<NodeId>(spec_.hosts);
  if (id < spec_.hosts) return {static_cast<NodeId>(id), sw};
  return {sw, gateway()};
}

void ClusterZone::append_route(NodeId src, NodeId dst, std::vector<LinkId>& out) const {
  assert(src < node_count() && dst < node_count());
  if (src == dst) return;
  // Path graph host -- switch -- gateway, centered on the switch: climb
  // from src, descend to dst.
  const auto backbone = static_cast<LinkId>(spec_.hosts);
  if (is_host(src)) out.push_back(static_cast<LinkId>(src));
  if (src == gateway()) out.push_back(backbone);
  if (dst == gateway()) out.push_back(backbone);
  if (is_host(dst)) out.push_back(static_cast<LinkId>(dst));
}

// --- FatTreeZone -----------------------------------------------------------

FatTreeZone::FatTreeZone(const FatTreeSpec& spec) : spec_(spec) {
  const std::size_t h = spec.children.size();
  if (h == 0) throw std::invalid_argument("FatTreeZone: at least one level required");
  if (spec.parents.size() != h || spec.bandwidth.size() != h || spec.latency.size() != h) {
    throw std::invalid_argument("FatTreeZone: children/parents/bandwidth/latency sizes differ");
  }
  for (std::size_t l = 0; l < h; ++l) {
    if (spec.children[l] == 0 || spec.parents[l] == 0) {
      throw std::invalid_argument("FatTreeZone: fan-outs must be > 0");
    }
    if (!(spec.bandwidth[l] > 0)) throw std::invalid_argument("FatTreeZone: bandwidth must be > 0");
    // Strictly positive: with zero-cost links every path ties and "the"
    // shortest route is no longer well-defined against a flat reference.
    if (!(spec.latency[l] > 0)) throw std::invalid_argument("FatTreeZone: latency must be > 0");
  }

  W_.assign(h + 1, 1);
  M_.assign(h + 1, 1);
  for (std::size_t l = 1; l <= h; ++l) {
    W_[l] = W_[l - 1] * spec.parents[l - 1];
    M_[l] = M_[l - 1] * spec.children[l - 1];
    if (M_[l] > (std::size_t{1} << 30) || W_[l] > (std::size_t{1} << 30)) {
      throw std::invalid_argument("FatTreeZone: platform too large (> 2^30 per dimension)");
    }
  }
  hosts_ = M_[h];

  node_off_.assign(h + 2, 0);
  link_off_.assign(h + 1, 0);
  std::size_t nodes = 0, links = 0;
  for (std::size_t l = 0; l <= h; ++l) {
    node_off_[l] = nodes;
    const std::size_t level_nodes = (hosts_ / M_[l]) * W_[l];
    if (l >= 1) {
      link_off_[l] = links;
      links += (hosts_ / M_[l - 1]) * W_[l - 1] * spec.parents[l - 1];
    }
    nodes += level_nodes;
  }
  node_off_[h + 1] = nodes;
  total_nodes_ = nodes;
  total_links_ = links;
  if (total_nodes_ > static_cast<std::size_t>(kInvalidNode) - 2) {
    throw std::invalid_argument("FatTreeZone: node count overflows NodeId");
  }
}

std::size_t FatTreeZone::level_of_link(LinkId id) const {
  assert(id < total_links_);
  std::size_t l = spec_.children.size();
  while (l > 1 && link_off_[l] > id) --l;
  return l;
}

std::size_t FatTreeZone::parent_local(std::size_t l, std::size_t c, std::size_t y_l) const {
  const std::size_t x = c / W_[l - 1];
  const std::size_t y = c % W_[l - 1];
  return (x / spec_.children[l - 1]) * W_[l] + (y_l * W_[l - 1] + y);
}

double FatTreeZone::link_bandwidth(LinkId id) const {
  return spec_.bandwidth[level_of_link(id) - 1];
}

double FatTreeZone::link_latency(LinkId id) const {
  return spec_.latency[level_of_link(id) - 1];
}

std::pair<NodeId, NodeId> FatTreeZone::link_ends(LinkId id) const {
  const std::size_t l = level_of_link(id);
  const std::size_t rem = id - link_off_[l];
  const std::size_t w = spec_.parents[l - 1];
  const std::size_t c = rem / w;
  const std::size_t y_l = rem % w;
  return {static_cast<NodeId>(node_off_[l - 1] + c),
          static_cast<NodeId>(node_off_[l] + parent_local(l, c, y_l))};
}

void FatTreeZone::append_route(NodeId src, NodeId dst, std::vector<LinkId>& out) const {
  if (src == dst) return;
  const NodeId gw = gateway();
  assert((is_host(src) || src == gw) && (is_host(dst) || dst == gw) &&
         "FatTreeZone routes between hosts and the gateway");
  const std::size_t h = spec_.children.size();

  // Levels to climb: the lowest level whose subtree contains both endpoints
  // (all h levels when one endpoint is the gateway).
  std::size_t levels_up = h;
  if (src != gw && dst != gw) {
    levels_up = 1;
    while (src / M_[levels_up] != dst / M_[levels_up]) ++levels_up;
  }

  // Parent digit per climbed level. Routes that start or end at the
  // gateway are pinned to the all-zero switches; otherwise the policy
  // picks among the w_l equal-cost parents.
  auto y_digit = [&](std::size_t l) -> std::size_t {
    if (src == gw || dst == gw) return 0;
    if (spec_.up == FatTreeSpec::UpPolicy::kLowestIndex) return 0;
    return (dst / W_[l - 1]) % spec_.parents[l - 1];  // kDmodK
  };

  // Up phase: src's local index at level 0 is src itself (the gateway's
  // local index at the top level is 0).
  std::size_t cur = src == gw ? 0 : src;
  if (src != gw) {
    for (std::size_t l = 1; l <= levels_up; ++l) {
      const std::size_t y_l = y_digit(l);
      out.push_back(static_cast<LinkId>(link_off_[l] + cur * spec_.parents[l - 1] + y_l));
      cur = parent_local(l, cur, y_l);
    }
  }
  if (dst == gw) {
    assert(node_off_[h] + cur == gw);
    return;
  }

  // Down phase: peel the stored parent digits back off, steering by dst's
  // subtree digits.
  for (std::size_t l = levels_up; l >= 1; --l) {
    const std::size_t px = cur / W_[l];
    const std::size_t py = cur % W_[l];
    const std::size_t y_l = py / W_[l - 1];
    const std::size_t cy = py % W_[l - 1];
    const std::size_t x_l = (dst / M_[l - 1]) % spec_.children[l - 1];
    const std::size_t child = (px * spec_.children[l - 1] + x_l) * W_[l - 1] + cy;
    out.push_back(static_cast<LinkId>(link_off_[l] + child * spec_.parents[l - 1] + y_l));
    cur = child;
  }
  assert(cur == dst);
}

// --- ZoneTree --------------------------------------------------------------

std::size_t ZoneTree::add_child(std::unique_ptr<Zone> child, double backbone_bandwidth,
                                double backbone_latency) {
  if (!(backbone_bandwidth > 0)) throw std::invalid_argument("ZoneTree: bandwidth must be > 0");
  if (!(backbone_latency >= 0)) throw std::invalid_argument("ZoneTree: latency must be >= 0");
  node_off_.push_back(total_nodes_);
  link_off_.push_back(total_links_);
  host_off_.push_back(total_hosts_);
  total_nodes_ += child->node_count();
  total_links_ += child->link_count();
  total_hosts_ += child->host_count();
  bb_bandwidth_.push_back(backbone_bandwidth);
  bb_latency_.push_back(backbone_latency);
  children_.push_back(std::move(child));
  return children_.size() - 1;
}

std::size_t ZoneTree::child_of(NodeId n) const {
  assert(n < node_count());
  if (n >= total_nodes_) return children_.size();  // root router
  const auto it = std::upper_bound(node_off_.begin(), node_off_.end(), static_cast<std::size_t>(n));
  return static_cast<std::size_t>(it - node_off_.begin()) - 1;
}

NodeId ZoneTree::host(std::size_t i) const {
  assert(i < total_hosts_);
  const auto it = std::upper_bound(host_off_.begin(), host_off_.end(), i);
  const std::size_t c = static_cast<std::size_t>(it - host_off_.begin()) - 1;
  return static_cast<NodeId>(node_off_[c] + children_[c]->host(i - host_off_[c]));
}

bool ZoneTree::is_host(NodeId n) const {
  const std::size_t c = child_of(n);
  if (c == children_.size()) return false;
  return children_[c]->is_host(n - static_cast<NodeId>(node_off_[c]));
}

double ZoneTree::link_bandwidth(LinkId id) const {
  if (id >= total_links_) return bb_bandwidth_[id - total_links_];
  const auto it = std::upper_bound(link_off_.begin(), link_off_.end(), static_cast<std::size_t>(id));
  const std::size_t c = static_cast<std::size_t>(it - link_off_.begin()) - 1;
  return children_[c]->link_bandwidth(id - static_cast<LinkId>(link_off_[c]));
}

double ZoneTree::link_latency(LinkId id) const {
  if (id >= total_links_) return bb_latency_[id - total_links_];
  const auto it = std::upper_bound(link_off_.begin(), link_off_.end(), static_cast<std::size_t>(id));
  const std::size_t c = static_cast<std::size_t>(it - link_off_.begin()) - 1;
  return children_[c]->link_latency(id - static_cast<LinkId>(link_off_[c]));
}

std::pair<NodeId, NodeId> ZoneTree::link_ends(LinkId id) const {
  assert(id < link_count());
  if (id >= total_links_) {
    const std::size_t c = id - total_links_;
    return {static_cast<NodeId>(node_off_[c] + children_[c]->gateway()), gateway()};
  }
  const auto it = std::upper_bound(link_off_.begin(), link_off_.end(), static_cast<std::size_t>(id));
  const std::size_t c = static_cast<std::size_t>(it - link_off_.begin()) - 1;
  const auto [a, b] = children_[c]->link_ends(id - static_cast<LinkId>(link_off_[c]));
  return {static_cast<NodeId>(node_off_[c] + a), static_cast<NodeId>(node_off_[c] + b)};
}

void ZoneTree::append_route(NodeId src, NodeId dst, std::vector<LinkId>& out) const {
  assert(src < node_count() && dst < node_count());
  if (src == dst) return;
  const std::size_t cs = child_of(src);
  const std::size_t cd = child_of(dst);

  // Offsets child link ids appended by a nested call into this zone's space.
  auto climb = [&](std::size_t c, NodeId from, NodeId to) {
    const std::size_t before = out.size();
    children_[c]->append_route(from, to, out);
    for (std::size_t i = before; i < out.size(); ++i) {
      out[i] = static_cast<LinkId>(out[i] + link_off_[c]);
    }
  };
  const auto bb_link = [&](std::size_t c) { return static_cast<LinkId>(total_links_ + c); };

  if (cs == cd) {  // both inside one child (neither is the root)
    climb(cs, src - static_cast<NodeId>(node_off_[cs]), dst - static_cast<NodeId>(node_off_[cs]));
    return;
  }
  if (cs != children_.size()) {  // src side: up to its gateway, onto the backbone
    climb(cs, src - static_cast<NodeId>(node_off_[cs]), children_[cs]->gateway());
    out.push_back(bb_link(cs));
  }
  if (cd != children_.size()) {  // dst side: off the backbone, down from its gateway
    out.push_back(bb_link(cd));
    climb(cd, children_[cd]->gateway(), dst - static_cast<NodeId>(node_off_[cd]));
  }
}

// --- ZoneRouting -----------------------------------------------------------

const Route& ZoneRouting::route(NodeId src, NodeId dst) {
  assert(src < zone_.node_count() && dst < zone_.node_count());
  // Per-thread scratch: ZoneRouting keeps no per-pair state, so concurrent
  // LP threads each fill their own Route (unlike Routing's shared cache).
  static thread_local Route scratch;
  scratch.links.clear();
  scratch.total_latency = 0;
  scratch.valid = true;
  zone_.append_route(src, dst, scratch.links);
  // Reverse path order: Routing's Dijkstra reconstructs dst -> src, so its
  // total_latency sums in that order — match it bit for bit.
  for (auto it = scratch.links.rbegin(); it != scratch.links.rend(); ++it) {
    scratch.total_latency += zone_.link_latency(*it);
  }
  return scratch;
}

double ZoneRouting::path_latency(NodeId src, NodeId dst) { return route(src, dst).total_latency; }

double ZoneRouting::bottleneck_bandwidth(NodeId src, NodeId dst) {
  const Route& r = route(src, dst);
  if (r.links.empty()) return 0;
  double bw = std::numeric_limits<double>::infinity();
  for (LinkId l : r.links) bw = std::min(bw, zone_.link_bandwidth(l));
  return bw;
}

}  // namespace lsds::net
