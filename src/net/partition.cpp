#include "net/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "net/zone.hpp"

namespace lsds::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// All-pairs site latency matrix (n Dijkstras over the cached Routing).
std::vector<std::vector<double>> latency_matrix(RouteProvider& routing,
                                                const std::vector<NodeId>& sites) {
  const std::size_t n = sites.size();
  std::vector<std::vector<double>> lat(n, std::vector<double>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) lat[i][j] = routing.path_latency(sites[i], sites[j]);
    }
  }
  return lat;
}

}  // namespace

const char* to_string(PartitionScheme s) {
  switch (s) {
    case PartitionScheme::kRoundRobin: return "round-robin";
    case PartitionScheme::kTopology: return "metis-ish";
  }
  return "?";
}

double derive_lookahead(RouteProvider& routing, const std::vector<NodeId>& sites,
                        const std::vector<unsigned>& owner) {
  assert(owner.size() == sites.size());
  double la = kInf;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      if (owner[i] == owner[j]) continue;
      la = std::min(la, routing.path_latency(sites[i], sites[j]));
    }
  }
  return la;
}

Partition partition_sites(RouteProvider& routing, const std::vector<NodeId>& sites, unsigned parts,
                          PartitionScheme scheme) {
  const std::size_t n = sites.size();
  Partition p;
  p.parts = std::max(1u, std::min<unsigned>(parts, static_cast<unsigned>(std::max<std::size_t>(n, 1))));
  p.owner.assign(n, 0);
  if (p.parts == 1 || n <= 1) {
    p.lookahead = kInf;
    return p;
  }

  if (scheme == PartitionScheme::kRoundRobin) {
    for (std::size_t i = 0; i < n; ++i) {
      p.owner[i] = static_cast<unsigned>(i % p.parts);
    }
    p.lookahead = derive_lookahead(routing, sites, p.owner);
    return p;
  }

  // kTopology. Seeds by k-center: site 0 seeds block 0, each further seed is
  // the site farthest (in min latency) from the seeds chosen so far — seeds
  // land across WAN boundaries, one per latency cluster.
  const auto lat = latency_matrix(routing, sites);
  std::vector<std::size_t> seeds{0};
  std::vector<char> is_seed(n, 0);
  is_seed[0] = 1;
  while (seeds.size() < p.parts) {
    // Candidates are non-seed sites only: a seed is at distance 0 from
    // itself, so an all-zero-latency cluster would otherwise re-pick seed 0
    // forever and leave a block with no distinct seed to grow from.
    std::size_t best = 0;
    double best_d = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (is_seed[i]) continue;
      double d = kInf;
      for (std::size_t s : seeds) d = std::min(d, lat[i][s]);
      if (d > best_d) {
        best_d = d;
        best = i;
      }
    }
    seeds.push_back(best);
    is_seed[best] = 1;
  }

  // Balanced greedy growth: every non-seed site, in order of how strongly it
  // prefers its nearest block, joins the nearest block with spare capacity.
  // Zero-latency neighbors sort first, so LAN clusters are absorbed before
  // blocks fill up.
  const std::size_t cap = (n + p.parts - 1) / p.parts;  // ceil(n / parts)
  std::vector<unsigned> owner(n, static_cast<unsigned>(-1));
  std::vector<std::size_t> load(p.parts, 0);
  for (std::size_t b = 0; b < seeds.size(); ++b) {
    owner[seeds[b]] = static_cast<unsigned>(b);
    ++load[b];
  }
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < n; ++i) {
    if (owner[i] == static_cast<unsigned>(-1)) todo.push_back(i);
  }
  std::sort(todo.begin(), todo.end(), [&](std::size_t a, std::size_t b) {
    double da = kInf, db = kInf;
    for (std::size_t s : seeds) da = std::min(da, lat[a][s]);
    for (std::size_t s : seeds) db = std::min(db, lat[b][s]);
    if (da != db) return da < db;
    return a < b;  // deterministic tiebreak
  });
  for (std::size_t i : todo) {
    unsigned best_b = 0;
    double best_d = kInf;
    bool placed = false;
    for (unsigned b = 0; b < p.parts; ++b) {
      if (load[b] >= cap) continue;
      const double d = lat[i][seeds[b]];
      if (!placed || d < best_d) {
        best_b = b;
        best_d = d;
        placed = true;
      }
    }
    assert(placed && "capacity ceil(n/parts) * parts >= n");
    owner[i] = best_b;
    ++load[best_b];
  }

  p.owner = std::move(owner);
  p.lookahead = derive_lookahead(routing, sites, p.owner);
  return p;
}

Partition partition_zone_tree(const ZoneTree& tree, RouteProvider& routing,
                              const std::vector<NodeId>& sites, unsigned parts) {
  const std::size_t n = sites.size();
  const std::size_t kids = tree.child_count();
  Partition p;
  p.parts = static_cast<unsigned>(
      std::max<std::size_t>(1, std::min<std::size_t>({parts, n > 0 ? n : 1, kids > 0 ? kids : 1})));
  p.owner.assign(n, 0);
  if (p.parts == 1 || n <= 1) {
    p.lookahead = kInf;
    return p;
  }

  // Children stay whole: contiguous child ranges map onto partitions. Sites
  // on the root router (rare) join partition 0.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = tree.child_of(sites[i]);
    p.owner[i] = c >= kids ? 0 : static_cast<unsigned>(c * p.parts / kids);
  }

  // Lookahead from the star structure: the latency between sites in
  // different children is root_lat(s) + root_lat(t) exactly, so the min cut
  // latency is the smallest such pair sum across two partitions — found
  // from each partition's min root latency, no all-pairs sweep.
  std::vector<double> part_min(p.parts, kInf);
  const NodeId root = tree.gateway();
  for (std::size_t i = 0; i < n; ++i) {
    part_min[p.owner[i]] = std::min(part_min[p.owner[i]], routing.path_latency(sites[i], root));
  }
  double lo1 = kInf, lo2 = kInf;  // two smallest partition minima
  for (double v : part_min) {
    if (v < lo1) {
      lo2 = lo1;
      lo1 = v;
    } else {
      lo2 = std::min(lo2, v);
    }
  }
  double la = lo1 + lo2;
  // Shave a hair off to stay conservative against floating-point
  // reassociation: the closed form sums the same latencies as the actual
  // route but in a different order.
  if (std::isfinite(la)) la *= 1.0 - 1e-9;
  p.lookahead = la;
  return p;
}

}  // namespace lsds::net
