#include "net/transfer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lsds::net {

TransferService::TransferService(core::Engine& engine, FlowNetwork& net)
    : TransferService(engine, net, Config{}) {}

TransferService::TransferService(core::Engine& engine, FlowNetwork& net, Config cfg)
    : engine_(engine), net_(net), cfg_(cfg) {
  // Negated comparisons so NaN fails every check: a NaN backoff would
  // silently schedule re-dials at a NaN timestamp, which the engine clamps
  // to now — an accidental zero-delay retry storm.
  if (!(cfg_.retry_backoff > 0)) {
    throw std::invalid_argument("TransferService: retry_backoff must be > 0");
  }
  if (!(cfg_.backoff_factor >= 1)) {
    throw std::invalid_argument("TransferService: backoff_factor must be >= 1");
  }
  if (!(cfg_.backoff_cap >= 0) || !std::isfinite(cfg_.backoff_cap)) {
    throw std::invalid_argument("TransferService: backoff_cap must be finite and >= 0");
  }
}

std::uint64_t TransferService::submit(NodeId src, NodeId dst, double bytes, DoneFn on_done) {
  Pending p;
  p.rec.id = next_id_++;
  p.rec.src = src;
  p.rec.dst = dst;
  p.rec.bytes = bytes;
  p.rec.submit_time = engine_.now();
  p.on_done = std::move(on_done);
  const std::uint64_t id = p.rec.id;

  const PairKey key{src, dst};
  if (cfg_.max_streams_per_pair > 0 && in_flight_[key] >= cfg_.max_streams_per_pair) {
    queues_[key].push_back(std::move(p));
  } else {
    ++in_flight_[key];
    start_now(std::move(p));
  }
  return id;
}

std::size_t TransferService::queued() const {
  std::size_t n = 0;
  for (const auto& [key, q] : queues_) n += q.size();
  return n;
}

void TransferService::start_now(Pending p) {
  p.rec.start_time = engine_.now();
  waits_.add(p.rec.start_time - p.rec.submit_time);
  dial(std::make_shared<Pending>(std::move(p)));
}

void TransferService::dial(std::shared_ptr<Pending> p) {
  const PairKey key{p->rec.src, p->rec.dst};
  auto done = [this, p, key](FlowId) {
    p->rec.finish_time = engine_.now();
    durations_.add(p->rec.finish_time - p->rec.start_time);
    bytes_completed_ += p->rec.bytes;
    ++completed_;
    --in_flight_[key];
    if (p->on_done) p->on_done(p->rec);
    try_start(key);
  };
  // Fail-stop abort: re-dial after exponential backoff; the stream slot
  // stays held (the pair is still "connecting"). A transfer that exhausts
  // its attempt budget completes as failed.
  auto err = [this, p, key](FlowId) {
    if (cfg_.max_attempts > 0 && p->rec.attempts >= cfg_.max_attempts) {
      p->rec.finish_time = engine_.now();
      p->rec.failed = true;
      ++failed_count_;
      --in_flight_[key];
      if (p->on_done) p->on_done(p->rec);
      try_start(key);
      return;
    }
    const double delay =
        std::min(cfg_.retry_backoff * std::pow(cfg_.backoff_factor,
                                               static_cast<double>(p->rec.attempts - 1)),
                 cfg_.backoff_cap);
    ++p->rec.attempts;
    ++retries_;
    engine_.schedule_in(delay, [this, p] { dial(p); });
  };
  net_.start_flow_checked(p->rec.src, p->rec.dst, p->rec.bytes, std::move(done), std::move(err));
}

void TransferService::try_start(PairKey key) {
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) return;
  if (cfg_.max_streams_per_pair > 0 && in_flight_[key] >= cfg_.max_streams_per_pair) return;
  Pending p = std::move(it->second.front());
  it->second.pop_front();
  ++in_flight_[key];
  start_now(std::move(p));
}

}  // namespace lsds::net
