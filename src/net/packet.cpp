#include "net/packet.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace lsds::net {

PacketNetwork::PacketNetwork(core::Engine& engine, RouteProvider& routing)
    : PacketNetwork(engine, routing, Config{}) {}

PacketNetwork::PacketNetwork(core::Engine& engine, RouteProvider& routing, Config cfg)
    : engine_(engine), routing_(routing), cfg_(cfg), links_(routing.link_count()) {}

TransferId PacketNetwork::start_transfer(NodeId src, NodeId dst, double bytes,
                                         CompletionFn on_complete) {
  const Route& route = routing_.route(src, dst);
  if (src != dst && !route.valid) {
    throw std::invalid_argument("PacketNetwork: no route between nodes");
  }
  const TransferId id = next_id_++;
  Transfer tr;
  tr.id = id;
  tr.links = src == dst ? std::vector<LinkId>{} : route.links;
  tr.fwd_latency = src == dst ? 0.0 : route.total_latency;
  tr.total_packets = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                                     std::ceil(bytes / cfg_.mtu)));
  tr.cwnd = cfg_.init_cwnd;
  tr.ssthresh = cfg_.init_ssthresh;
  tr.srtt = 2.0 * tr.fwd_latency + 0.001;  // initial guess: RTT + 1ms
  tr.on_complete = std::move(on_complete);

  if (tr.links.empty()) {
    // Local copy: complete immediately (next event).
    engine_.schedule_in(0, [this, id] {
      auto it = transfers_.find(id);
      if (it == transfers_.end()) return;
      ++stats_.transfers_completed;
      auto cb = std::move(it->second.on_complete);
      transfers_.erase(it);
      if (cb) cb(id);
    });
    transfers_.emplace(id, std::move(tr));
    return id;
  }

  auto [it, ok] = transfers_.emplace(id, std::move(tr));
  pump(it->second);
  return id;
}

void PacketNetwork::pump(Transfer& tr) {
  const auto window = static_cast<std::uint64_t>(std::max(1.0, std::floor(tr.cwnd)));
  while (tr.outstanding.size() < window) {
    std::uint64_t seq;
    if (!tr.retransmit_queue.empty()) {
      seq = tr.retransmit_queue.front();
      tr.retransmit_queue.pop_front();
      ++stats_.retransmits;
    } else if (tr.next_new_seq < tr.total_packets) {
      seq = tr.next_new_seq++;
    } else {
      return;  // nothing left to send
    }
    send_packet(tr, seq);
  }
}

void PacketNetwork::send_packet(Transfer& tr, std::uint64_t seq) {
  tr.outstanding.insert(seq);
  send_time_[tr.id][seq] = engine_.now();
  ++stats_.packets_sent;
  forward(tr.id, seq, 0, cfg_.mtu);
}

void PacketNetwork::forward(TransferId tid, std::uint64_t seq, std::size_t hop,
                            double pkt_bytes) {
  auto it = transfers_.find(tid);
  if (it == transfers_.end()) return;
  Transfer& tr = it->second;
  if (hop >= tr.links.size()) {
    on_delivered(tid, seq);
    return;
  }
  const LinkId lid = tr.links[hop];
  LinkState& link = links_[lid];
  const double now = engine_.now();
  const double tx = pkt_bytes / routing_.link_bandwidth(lid);

  // Drop-tail: backlog expressed in packets of this size.
  const double backlog = std::max(0.0, link.busy_until - now);
  if (backlog / tx >= static_cast<double>(cfg_.queue_packets)) {
    ++link.drops;
    ++stats_.packets_dropped;
    on_drop(tid, seq);
    return;
  }

  const double start = std::max(now, link.busy_until);
  link.busy_until = start + tx;
  const double arrival = start + tx + routing_.link_latency(lid);
  engine_.schedule_at(arrival, [this, tid, seq, hop, pkt_bytes] {
    forward(tid, seq, hop + 1, pkt_bytes);
  });
}

void PacketNetwork::on_delivered(TransferId tid, std::uint64_t seq) {
  ++stats_.packets_delivered;
  auto it = transfers_.find(tid);
  if (it == transfers_.end()) return;
  // ACK returns over the reverse path, latency-only (ACKs are tiny).
  const double back = it->second.fwd_latency;
  const double sent_at = send_time_[tid].count(seq) ? send_time_[tid][seq] : engine_.now();
  engine_.schedule_in(back, [this, tid, seq, sent_at] { on_ack(tid, seq, sent_at); });
}

void PacketNetwork::on_ack(TransferId tid, std::uint64_t seq, double sent_at) {
  auto it = transfers_.find(tid);
  if (it == transfers_.end()) return;
  Transfer& tr = it->second;
  if (!tr.outstanding.erase(seq)) return;  // duplicate (retransmit raced the original)
  send_time_[tid].erase(seq);
  ++tr.acked;

  // RTT estimate and window growth.
  const double rtt = engine_.now() - sent_at;
  tr.srtt = 0.875 * tr.srtt + 0.125 * rtt;
  if (tr.cwnd < tr.ssthresh) {
    tr.cwnd += 1.0;  // slow start
  } else {
    tr.cwnd += 1.0 / tr.cwnd;  // congestion avoidance
  }

  if (tr.acked >= tr.total_packets) {
    ++stats_.transfers_completed;
    auto cb = std::move(tr.on_complete);
    send_time_.erase(tid);
    transfers_.erase(it);
    if (cb) cb(tid);
    return;
  }
  pump(tr);
}

void PacketNetwork::on_drop(TransferId tid, std::uint64_t seq) {
  auto it = transfers_.find(tid);
  if (it == transfers_.end()) return;
  Transfer& tr = it->second;
  if (!tr.outstanding.erase(seq)) return;
  send_time_[tid].erase(seq);

  // Multiplicative decrease.
  tr.ssthresh = std::max(1.0, tr.cwnd / 2.0);
  tr.cwnd = std::max(1.0, tr.cwnd / 2.0);

  // Retransmit after an RTO; the timeout models loss-detection delay.
  const double rto = std::max(cfg_.min_rto, 2.0 * tr.srtt);
  const TransferId id = tr.id;
  engine_.schedule_in(rto, [this, id, seq] {
    auto jt = transfers_.find(id);
    if (jt == transfers_.end()) return;
    jt->second.retransmit_queue.push_back(seq);
    pump(jt->second);
  });
}

}  // namespace lsds::net
