# Empty dependencies file for cluster_backfill.
# This may be replaced when dependencies are built.
