file(REMOVE_RECURSE
  "CMakeFiles/cluster_backfill.dir/cluster_backfill.cpp.o"
  "CMakeFiles/cluster_backfill.dir/cluster_backfill.cpp.o.d"
  "cluster_backfill"
  "cluster_backfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_backfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
