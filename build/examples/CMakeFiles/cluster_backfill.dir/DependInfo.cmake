
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cluster_backfill.cpp" "examples/CMakeFiles/cluster_backfill.dir/cluster_backfill.cpp.o" "gcc" "examples/CMakeFiles/cluster_backfill.dir/cluster_backfill.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lsds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/lsds_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lsds_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/hosts/CMakeFiles/lsds_hosts.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lsds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lsds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lsds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
