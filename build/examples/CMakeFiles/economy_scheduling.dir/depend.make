# Empty dependencies file for economy_scheduling.
# This may be replaced when dependencies are built.
