file(REMOVE_RECURSE
  "CMakeFiles/economy_scheduling.dir/economy_scheduling.cpp.o"
  "CMakeFiles/economy_scheduling.dir/economy_scheduling.cpp.o.d"
  "economy_scheduling"
  "economy_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economy_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
