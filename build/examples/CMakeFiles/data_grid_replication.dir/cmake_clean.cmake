file(REMOVE_RECURSE
  "CMakeFiles/data_grid_replication.dir/data_grid_replication.cpp.o"
  "CMakeFiles/data_grid_replication.dir/data_grid_replication.cpp.o.d"
  "data_grid_replication"
  "data_grid_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_grid_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
