# Empty compiler generated dependencies file for data_grid_replication.
# This may be replaced when dependencies are built.
