# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lhc_tier_model.
