# Empty compiler generated dependencies file for lhc_tier_model.
# This may be replaced when dependencies are built.
