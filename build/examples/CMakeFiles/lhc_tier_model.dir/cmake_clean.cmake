file(REMOVE_RECURSE
  "CMakeFiles/lhc_tier_model.dir/lhc_tier_model.cpp.o"
  "CMakeFiles/lhc_tier_model.dir/lhc_tier_model.cpp.o.d"
  "lhc_tier_model"
  "lhc_tier_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhc_tier_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
