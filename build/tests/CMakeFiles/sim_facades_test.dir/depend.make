# Empty dependencies file for sim_facades_test.
# This may be replaced when dependencies are built.
