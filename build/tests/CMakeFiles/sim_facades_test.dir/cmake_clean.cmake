file(REMOVE_RECURSE
  "CMakeFiles/sim_facades_test.dir/sim_facades_test.cpp.o"
  "CMakeFiles/sim_facades_test.dir/sim_facades_test.cpp.o.d"
  "sim_facades_test"
  "sim_facades_test.pdb"
  "sim_facades_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_facades_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
