file(REMOVE_RECURSE
  "CMakeFiles/batch_queue_test.dir/batch_queue_test.cpp.o"
  "CMakeFiles/batch_queue_test.dir/batch_queue_test.cpp.o.d"
  "batch_queue_test"
  "batch_queue_test.pdb"
  "batch_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
