# Empty dependencies file for batch_queue_test.
# This may be replaced when dependencies are built.
