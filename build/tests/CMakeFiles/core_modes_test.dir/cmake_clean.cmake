file(REMOVE_RECURSE
  "CMakeFiles/core_modes_test.dir/core_modes_test.cpp.o"
  "CMakeFiles/core_modes_test.dir/core_modes_test.cpp.o.d"
  "core_modes_test"
  "core_modes_test.pdb"
  "core_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
