# Empty compiler generated dependencies file for core_modes_test.
# This may be replaced when dependencies are built.
