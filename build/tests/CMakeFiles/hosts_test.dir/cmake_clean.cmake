file(REMOVE_RECURSE
  "CMakeFiles/hosts_test.dir/hosts_test.cpp.o"
  "CMakeFiles/hosts_test.dir/hosts_test.cpp.o.d"
  "hosts_test"
  "hosts_test.pdb"
  "hosts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
