file(REMOVE_RECURSE
  "CMakeFiles/stats_methods_test.dir/stats_methods_test.cpp.o"
  "CMakeFiles/stats_methods_test.dir/stats_methods_test.cpp.o.d"
  "stats_methods_test"
  "stats_methods_test.pdb"
  "stats_methods_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_methods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
