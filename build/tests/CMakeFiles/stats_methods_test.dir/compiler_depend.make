# Empty compiler generated dependencies file for stats_methods_test.
# This may be replaced when dependencies are built.
