# Empty dependencies file for swf_test.
# This may be replaced when dependencies are built.
