# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/core_queue_test[1]_include.cmake")
include("/root/repo/build/tests/core_engine_test[1]_include.cmake")
include("/root/repo/build/tests/core_rng_test[1]_include.cmake")
include("/root/repo/build/tests/core_process_test[1]_include.cmake")
include("/root/repo/build/tests/core_modes_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/hosts_test[1]_include.cmake")
include("/root/repo/build/tests/middleware_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/taxonomy_test[1]_include.cmake")
include("/root/repo/build/tests/sim_facades_test[1]_include.cmake")
include("/root/repo/build/tests/p2p_test[1]_include.cmake")
include("/root/repo/build/tests/failures_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_test[1]_include.cmake")
include("/root/repo/build/tests/stats_methods_test[1]_include.cmake")
include("/root/repo/build/tests/batch_queue_test[1]_include.cmake")
include("/root/repo/build/tests/util_log_test[1]_include.cmake")
include("/root/repo/build/tests/swf_test[1]_include.cmake")
