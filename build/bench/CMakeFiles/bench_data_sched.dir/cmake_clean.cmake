file(REMOVE_RECURSE
  "CMakeFiles/bench_data_sched.dir/bench_data_sched.cpp.o"
  "CMakeFiles/bench_data_sched.dir/bench_data_sched.cpp.o.d"
  "bench_data_sched"
  "bench_data_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
