# Empty dependencies file for bench_data_sched.
# This may be replaced when dependencies are built.
