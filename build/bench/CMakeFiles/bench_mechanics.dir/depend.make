# Empty dependencies file for bench_mechanics.
# This may be replaced when dependencies are built.
