file(REMOVE_RECURSE
  "CMakeFiles/bench_mechanics.dir/bench_mechanics.cpp.o"
  "CMakeFiles/bench_mechanics.dir/bench_mechanics.cpp.o.d"
  "bench_mechanics"
  "bench_mechanics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mechanics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
