# Empty dependencies file for bench_event_queues.
# This may be replaced when dependencies are built.
