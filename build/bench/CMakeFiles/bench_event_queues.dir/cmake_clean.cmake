file(REMOVE_RECURSE
  "CMakeFiles/bench_event_queues.dir/bench_event_queues.cpp.o"
  "CMakeFiles/bench_event_queues.dir/bench_event_queues.cpp.o.d"
  "bench_event_queues"
  "bench_event_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
