file(REMOVE_RECURSE
  "CMakeFiles/bench_execution.dir/bench_execution.cpp.o"
  "CMakeFiles/bench_execution.dir/bench_execution.cpp.o.d"
  "bench_execution"
  "bench_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
