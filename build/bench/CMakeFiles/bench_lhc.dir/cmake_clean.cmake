file(REMOVE_RECURSE
  "CMakeFiles/bench_lhc.dir/bench_lhc.cpp.o"
  "CMakeFiles/bench_lhc.dir/bench_lhc.cpp.o.d"
  "bench_lhc"
  "bench_lhc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lhc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
