# Empty compiler generated dependencies file for bench_lhc.
# This may be replaced when dependencies are built.
