# Empty compiler generated dependencies file for lsds_stats.
# This may be replaced when dependencies are built.
