
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/analytical.cpp" "src/stats/CMakeFiles/lsds_stats.dir/analytical.cpp.o" "gcc" "src/stats/CMakeFiles/lsds_stats.dir/analytical.cpp.o.d"
  "/root/repo/src/stats/batch_means.cpp" "src/stats/CMakeFiles/lsds_stats.dir/batch_means.cpp.o" "gcc" "src/stats/CMakeFiles/lsds_stats.dir/batch_means.cpp.o.d"
  "/root/repo/src/stats/gnuplot.cpp" "src/stats/CMakeFiles/lsds_stats.dir/gnuplot.cpp.o" "gcc" "src/stats/CMakeFiles/lsds_stats.dir/gnuplot.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/lsds_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/lsds_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/lsds_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/lsds_stats.dir/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/stats/CMakeFiles/lsds_stats.dir/table.cpp.o" "gcc" "src/stats/CMakeFiles/lsds_stats.dir/table.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/stats/CMakeFiles/lsds_stats.dir/timeseries.cpp.o" "gcc" "src/stats/CMakeFiles/lsds_stats.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lsds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
