file(REMOVE_RECURSE
  "CMakeFiles/lsds_stats.dir/analytical.cpp.o"
  "CMakeFiles/lsds_stats.dir/analytical.cpp.o.d"
  "CMakeFiles/lsds_stats.dir/batch_means.cpp.o"
  "CMakeFiles/lsds_stats.dir/batch_means.cpp.o.d"
  "CMakeFiles/lsds_stats.dir/gnuplot.cpp.o"
  "CMakeFiles/lsds_stats.dir/gnuplot.cpp.o.d"
  "CMakeFiles/lsds_stats.dir/histogram.cpp.o"
  "CMakeFiles/lsds_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/lsds_stats.dir/summary.cpp.o"
  "CMakeFiles/lsds_stats.dir/summary.cpp.o.d"
  "CMakeFiles/lsds_stats.dir/table.cpp.o"
  "CMakeFiles/lsds_stats.dir/table.cpp.o.d"
  "CMakeFiles/lsds_stats.dir/timeseries.cpp.o"
  "CMakeFiles/lsds_stats.dir/timeseries.cpp.o.d"
  "liblsds_stats.a"
  "liblsds_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsds_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
