file(REMOVE_RECURSE
  "liblsds_stats.a"
)
