file(REMOVE_RECURSE
  "CMakeFiles/lsds_taxonomy.dir/registry.cpp.o"
  "CMakeFiles/lsds_taxonomy.dir/registry.cpp.o.d"
  "CMakeFiles/lsds_taxonomy.dir/taxonomy.cpp.o"
  "CMakeFiles/lsds_taxonomy.dir/taxonomy.cpp.o.d"
  "liblsds_taxonomy.a"
  "liblsds_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsds_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
