file(REMOVE_RECURSE
  "liblsds_taxonomy.a"
)
