# Empty dependencies file for lsds_taxonomy.
# This may be replaced when dependencies are built.
