# Empty dependencies file for lsds_hosts.
# This may be replaced when dependencies are built.
