file(REMOVE_RECURSE
  "liblsds_hosts.a"
)
