file(REMOVE_RECURSE
  "CMakeFiles/lsds_hosts.dir/cpu.cpp.o"
  "CMakeFiles/lsds_hosts.dir/cpu.cpp.o.d"
  "CMakeFiles/lsds_hosts.dir/organizations.cpp.o"
  "CMakeFiles/lsds_hosts.dir/organizations.cpp.o.d"
  "CMakeFiles/lsds_hosts.dir/site.cpp.o"
  "CMakeFiles/lsds_hosts.dir/site.cpp.o.d"
  "CMakeFiles/lsds_hosts.dir/storage.cpp.o"
  "CMakeFiles/lsds_hosts.dir/storage.cpp.o.d"
  "liblsds_hosts.a"
  "liblsds_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsds_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
