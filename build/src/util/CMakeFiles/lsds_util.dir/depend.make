# Empty dependencies file for lsds_util.
# This may be replaced when dependencies are built.
