file(REMOVE_RECURSE
  "CMakeFiles/lsds_util.dir/flags.cpp.o"
  "CMakeFiles/lsds_util.dir/flags.cpp.o.d"
  "CMakeFiles/lsds_util.dir/ini.cpp.o"
  "CMakeFiles/lsds_util.dir/ini.cpp.o.d"
  "CMakeFiles/lsds_util.dir/log.cpp.o"
  "CMakeFiles/lsds_util.dir/log.cpp.o.d"
  "CMakeFiles/lsds_util.dir/strings.cpp.o"
  "CMakeFiles/lsds_util.dir/strings.cpp.o.d"
  "CMakeFiles/lsds_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lsds_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/lsds_util.dir/units.cpp.o"
  "CMakeFiles/lsds_util.dir/units.cpp.o.d"
  "liblsds_util.a"
  "liblsds_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsds_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
