file(REMOVE_RECURSE
  "liblsds_util.a"
)
