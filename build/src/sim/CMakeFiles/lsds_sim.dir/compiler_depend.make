# Empty compiler generated dependencies file for lsds_sim.
# This may be replaced when dependencies are built.
