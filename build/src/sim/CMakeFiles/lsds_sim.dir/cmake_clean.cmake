file(REMOVE_RECURSE
  "CMakeFiles/lsds_sim.dir/bricks/bricks.cpp.o"
  "CMakeFiles/lsds_sim.dir/bricks/bricks.cpp.o.d"
  "CMakeFiles/lsds_sim.dir/chicsim/chicsim.cpp.o"
  "CMakeFiles/lsds_sim.dir/chicsim/chicsim.cpp.o.d"
  "CMakeFiles/lsds_sim.dir/gridsim/gridsim.cpp.o"
  "CMakeFiles/lsds_sim.dir/gridsim/gridsim.cpp.o.d"
  "CMakeFiles/lsds_sim.dir/monarc/monarc.cpp.o"
  "CMakeFiles/lsds_sim.dir/monarc/monarc.cpp.o.d"
  "CMakeFiles/lsds_sim.dir/optorsim/optorsim.cpp.o"
  "CMakeFiles/lsds_sim.dir/optorsim/optorsim.cpp.o.d"
  "CMakeFiles/lsds_sim.dir/simg/simg.cpp.o"
  "CMakeFiles/lsds_sim.dir/simg/simg.cpp.o.d"
  "liblsds_sim.a"
  "liblsds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
