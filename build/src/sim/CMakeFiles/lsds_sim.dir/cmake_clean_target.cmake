file(REMOVE_RECURSE
  "liblsds_sim.a"
)
