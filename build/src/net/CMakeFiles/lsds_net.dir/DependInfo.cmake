
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/flow.cpp" "src/net/CMakeFiles/lsds_net.dir/flow.cpp.o" "gcc" "src/net/CMakeFiles/lsds_net.dir/flow.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/lsds_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/lsds_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/net/CMakeFiles/lsds_net.dir/routing.cpp.o" "gcc" "src/net/CMakeFiles/lsds_net.dir/routing.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/lsds_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/lsds_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/transfer.cpp" "src/net/CMakeFiles/lsds_net.dir/transfer.cpp.o" "gcc" "src/net/CMakeFiles/lsds_net.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lsds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lsds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
