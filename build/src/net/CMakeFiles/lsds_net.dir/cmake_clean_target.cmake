file(REMOVE_RECURSE
  "liblsds_net.a"
)
