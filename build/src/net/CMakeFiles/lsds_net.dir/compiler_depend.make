# Empty compiler generated dependencies file for lsds_net.
# This may be replaced when dependencies are built.
