file(REMOVE_RECURSE
  "CMakeFiles/lsds_net.dir/flow.cpp.o"
  "CMakeFiles/lsds_net.dir/flow.cpp.o.d"
  "CMakeFiles/lsds_net.dir/packet.cpp.o"
  "CMakeFiles/lsds_net.dir/packet.cpp.o.d"
  "CMakeFiles/lsds_net.dir/routing.cpp.o"
  "CMakeFiles/lsds_net.dir/routing.cpp.o.d"
  "CMakeFiles/lsds_net.dir/topology.cpp.o"
  "CMakeFiles/lsds_net.dir/topology.cpp.o.d"
  "CMakeFiles/lsds_net.dir/transfer.cpp.o"
  "CMakeFiles/lsds_net.dir/transfer.cpp.o.d"
  "liblsds_net.a"
  "liblsds_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsds_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
