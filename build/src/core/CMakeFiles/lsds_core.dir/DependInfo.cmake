
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/lsds_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/parallel.cpp" "src/core/CMakeFiles/lsds_core.dir/parallel.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/parallel.cpp.o.d"
  "/root/repo/src/core/queues/binary_heap.cpp" "src/core/CMakeFiles/lsds_core.dir/queues/binary_heap.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/queues/binary_heap.cpp.o.d"
  "/root/repo/src/core/queues/calendar_queue.cpp" "src/core/CMakeFiles/lsds_core.dir/queues/calendar_queue.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/queues/calendar_queue.cpp.o.d"
  "/root/repo/src/core/queues/factory.cpp" "src/core/CMakeFiles/lsds_core.dir/queues/factory.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/queues/factory.cpp.o.d"
  "/root/repo/src/core/queues/ladder_queue.cpp" "src/core/CMakeFiles/lsds_core.dir/queues/ladder_queue.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/queues/ladder_queue.cpp.o.d"
  "/root/repo/src/core/queues/sorted_list.cpp" "src/core/CMakeFiles/lsds_core.dir/queues/sorted_list.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/queues/sorted_list.cpp.o.d"
  "/root/repo/src/core/queues/splay_tree.cpp" "src/core/CMakeFiles/lsds_core.dir/queues/splay_tree.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/queues/splay_tree.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/lsds_core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/rng.cpp.o.d"
  "/root/repo/src/core/time_driven.cpp" "src/core/CMakeFiles/lsds_core.dir/time_driven.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/time_driven.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/lsds_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/lsds_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lsds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
