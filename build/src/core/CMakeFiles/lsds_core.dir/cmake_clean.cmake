file(REMOVE_RECURSE
  "CMakeFiles/lsds_core.dir/engine.cpp.o"
  "CMakeFiles/lsds_core.dir/engine.cpp.o.d"
  "CMakeFiles/lsds_core.dir/parallel.cpp.o"
  "CMakeFiles/lsds_core.dir/parallel.cpp.o.d"
  "CMakeFiles/lsds_core.dir/queues/binary_heap.cpp.o"
  "CMakeFiles/lsds_core.dir/queues/binary_heap.cpp.o.d"
  "CMakeFiles/lsds_core.dir/queues/calendar_queue.cpp.o"
  "CMakeFiles/lsds_core.dir/queues/calendar_queue.cpp.o.d"
  "CMakeFiles/lsds_core.dir/queues/factory.cpp.o"
  "CMakeFiles/lsds_core.dir/queues/factory.cpp.o.d"
  "CMakeFiles/lsds_core.dir/queues/ladder_queue.cpp.o"
  "CMakeFiles/lsds_core.dir/queues/ladder_queue.cpp.o.d"
  "CMakeFiles/lsds_core.dir/queues/sorted_list.cpp.o"
  "CMakeFiles/lsds_core.dir/queues/sorted_list.cpp.o.d"
  "CMakeFiles/lsds_core.dir/queues/splay_tree.cpp.o"
  "CMakeFiles/lsds_core.dir/queues/splay_tree.cpp.o.d"
  "CMakeFiles/lsds_core.dir/rng.cpp.o"
  "CMakeFiles/lsds_core.dir/rng.cpp.o.d"
  "CMakeFiles/lsds_core.dir/time_driven.cpp.o"
  "CMakeFiles/lsds_core.dir/time_driven.cpp.o.d"
  "CMakeFiles/lsds_core.dir/trace.cpp.o"
  "CMakeFiles/lsds_core.dir/trace.cpp.o.d"
  "liblsds_core.a"
  "liblsds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
