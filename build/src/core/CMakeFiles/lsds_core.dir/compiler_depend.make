# Empty compiler generated dependencies file for lsds_core.
# This may be replaced when dependencies are built.
