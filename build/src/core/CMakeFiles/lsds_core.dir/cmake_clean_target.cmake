file(REMOVE_RECURSE
  "liblsds_core.a"
)
