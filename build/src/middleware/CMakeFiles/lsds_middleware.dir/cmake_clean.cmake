file(REMOVE_RECURSE
  "CMakeFiles/lsds_middleware.dir/batch_queue.cpp.o"
  "CMakeFiles/lsds_middleware.dir/batch_queue.cpp.o.d"
  "CMakeFiles/lsds_middleware.dir/broker.cpp.o"
  "CMakeFiles/lsds_middleware.dir/broker.cpp.o.d"
  "CMakeFiles/lsds_middleware.dir/dag.cpp.o"
  "CMakeFiles/lsds_middleware.dir/dag.cpp.o.d"
  "CMakeFiles/lsds_middleware.dir/failures.cpp.o"
  "CMakeFiles/lsds_middleware.dir/failures.cpp.o.d"
  "CMakeFiles/lsds_middleware.dir/forecast.cpp.o"
  "CMakeFiles/lsds_middleware.dir/forecast.cpp.o.d"
  "CMakeFiles/lsds_middleware.dir/gis.cpp.o"
  "CMakeFiles/lsds_middleware.dir/gis.cpp.o.d"
  "CMakeFiles/lsds_middleware.dir/monitor.cpp.o"
  "CMakeFiles/lsds_middleware.dir/monitor.cpp.o.d"
  "CMakeFiles/lsds_middleware.dir/replica_catalog.cpp.o"
  "CMakeFiles/lsds_middleware.dir/replica_catalog.cpp.o.d"
  "CMakeFiles/lsds_middleware.dir/replication.cpp.o"
  "CMakeFiles/lsds_middleware.dir/replication.cpp.o.d"
  "CMakeFiles/lsds_middleware.dir/scheduler.cpp.o"
  "CMakeFiles/lsds_middleware.dir/scheduler.cpp.o.d"
  "liblsds_middleware.a"
  "liblsds_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsds_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
