
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middleware/batch_queue.cpp" "src/middleware/CMakeFiles/lsds_middleware.dir/batch_queue.cpp.o" "gcc" "src/middleware/CMakeFiles/lsds_middleware.dir/batch_queue.cpp.o.d"
  "/root/repo/src/middleware/broker.cpp" "src/middleware/CMakeFiles/lsds_middleware.dir/broker.cpp.o" "gcc" "src/middleware/CMakeFiles/lsds_middleware.dir/broker.cpp.o.d"
  "/root/repo/src/middleware/dag.cpp" "src/middleware/CMakeFiles/lsds_middleware.dir/dag.cpp.o" "gcc" "src/middleware/CMakeFiles/lsds_middleware.dir/dag.cpp.o.d"
  "/root/repo/src/middleware/failures.cpp" "src/middleware/CMakeFiles/lsds_middleware.dir/failures.cpp.o" "gcc" "src/middleware/CMakeFiles/lsds_middleware.dir/failures.cpp.o.d"
  "/root/repo/src/middleware/forecast.cpp" "src/middleware/CMakeFiles/lsds_middleware.dir/forecast.cpp.o" "gcc" "src/middleware/CMakeFiles/lsds_middleware.dir/forecast.cpp.o.d"
  "/root/repo/src/middleware/gis.cpp" "src/middleware/CMakeFiles/lsds_middleware.dir/gis.cpp.o" "gcc" "src/middleware/CMakeFiles/lsds_middleware.dir/gis.cpp.o.d"
  "/root/repo/src/middleware/monitor.cpp" "src/middleware/CMakeFiles/lsds_middleware.dir/monitor.cpp.o" "gcc" "src/middleware/CMakeFiles/lsds_middleware.dir/monitor.cpp.o.d"
  "/root/repo/src/middleware/replica_catalog.cpp" "src/middleware/CMakeFiles/lsds_middleware.dir/replica_catalog.cpp.o" "gcc" "src/middleware/CMakeFiles/lsds_middleware.dir/replica_catalog.cpp.o.d"
  "/root/repo/src/middleware/replication.cpp" "src/middleware/CMakeFiles/lsds_middleware.dir/replication.cpp.o" "gcc" "src/middleware/CMakeFiles/lsds_middleware.dir/replication.cpp.o.d"
  "/root/repo/src/middleware/scheduler.cpp" "src/middleware/CMakeFiles/lsds_middleware.dir/scheduler.cpp.o" "gcc" "src/middleware/CMakeFiles/lsds_middleware.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hosts/CMakeFiles/lsds_hosts.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lsds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lsds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lsds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
