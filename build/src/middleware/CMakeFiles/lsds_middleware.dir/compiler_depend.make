# Empty compiler generated dependencies file for lsds_middleware.
# This may be replaced when dependencies are built.
