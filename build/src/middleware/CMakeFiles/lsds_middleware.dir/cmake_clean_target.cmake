file(REMOVE_RECURSE
  "liblsds_middleware.a"
)
