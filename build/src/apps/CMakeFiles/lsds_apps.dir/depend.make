# Empty dependencies file for lsds_apps.
# This may be replaced when dependencies are built.
