file(REMOVE_RECURSE
  "CMakeFiles/lsds_apps.dir/activity.cpp.o"
  "CMakeFiles/lsds_apps.dir/activity.cpp.o.d"
  "CMakeFiles/lsds_apps.dir/swf.cpp.o"
  "CMakeFiles/lsds_apps.dir/swf.cpp.o.d"
  "CMakeFiles/lsds_apps.dir/trace_io.cpp.o"
  "CMakeFiles/lsds_apps.dir/trace_io.cpp.o.d"
  "CMakeFiles/lsds_apps.dir/workload.cpp.o"
  "CMakeFiles/lsds_apps.dir/workload.cpp.o.d"
  "liblsds_apps.a"
  "liblsds_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsds_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
