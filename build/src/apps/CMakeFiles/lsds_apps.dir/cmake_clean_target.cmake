file(REMOVE_RECURSE
  "liblsds_apps.a"
)
