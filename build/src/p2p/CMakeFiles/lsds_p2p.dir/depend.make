# Empty dependencies file for lsds_p2p.
# This may be replaced when dependencies are built.
