file(REMOVE_RECURSE
  "liblsds_p2p.a"
)
