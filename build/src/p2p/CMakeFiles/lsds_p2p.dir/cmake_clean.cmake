file(REMOVE_RECURSE
  "CMakeFiles/lsds_p2p.dir/chord.cpp.o"
  "CMakeFiles/lsds_p2p.dir/chord.cpp.o.d"
  "CMakeFiles/lsds_p2p.dir/gnutella.cpp.o"
  "CMakeFiles/lsds_p2p.dir/gnutella.cpp.o.d"
  "liblsds_p2p.a"
  "liblsds_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsds_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
