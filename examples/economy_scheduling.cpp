// Economy scheduling example (GridSim facade): deadline-and-budget
// constrained brokering over priced heterogeneous resources.
//
//   ./economy_scheduling --jobs=60 --budget=500 --deadline=100
//                        [--strategy=cost|time]
#include <cstdio>

#include "core/engine.hpp"
#include "sim/gridsim/gridsim.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

using namespace lsds;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  sim::gridsim::Config cfg;
  cfg.num_jobs = static_cast<std::size_t>(flags.get_int("jobs", 60));
  cfg.budget = flags.get_double("budget", 1e18);
  cfg.deadline = flags.get_double("deadline", 1e18);
  const std::string strat = util::to_lower(flags.get_string("strategy", "cost"));
  if (strat == "time") {
    cfg.strategy = middleware::DbcStrategy::kTimeOptimization;
  } else if (strat == "cost") {
    cfg.strategy = middleware::DbcStrategy::kCostOptimization;
  } else {
    std::fprintf(stderr, "unknown --strategy=%s (use cost|time)\n", strat.c_str());
    return 1;
  }

  core::Engine engine({.queue = core::QueueKind::kBinaryHeap,
                      .seed = static_cast<std::uint64_t>(flags.get_int("seed", 8))});
  const auto res = sim::gridsim::run(engine, cfg);

  std::printf("strategy:       %s\n", middleware::to_string(cfg.strategy));
  std::printf("resources:      %zu (speeds %g..%g, price ~ speed^%g)\n", cfg.num_resources,
              cfg.speed_min, cfg.speed_max, cfg.price_exponent);
  std::printf("jobs accepted:  %llu\n", static_cast<unsigned long long>(res.accepted));
  std::printf("jobs rejected:  %llu\n", static_cast<unsigned long long>(res.rejected));
  std::printf("jobs completed: %llu\n", static_cast<unsigned long long>(res.completed));
  std::printf("total spend:    %.2f\n", res.cost);
  std::printf("makespan:       %.2f s\n", res.makespan);
  std::printf("mean response:  %.2f s\n", res.response_times.mean());
  if (cfg.deadline < 1e18) {
    std::printf("deadline %.2f s: %s\n", cfg.deadline, res.deadline_met ? "met" : "MISSED");
  }
  return 0;
}
