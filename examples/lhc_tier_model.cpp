// LHC tier-model example (MONARC facade): reproduce the T0/T1 data
// replication study interactively.
//
//   ./lhc_tier_model --link=2.5Gbps --t1=4 --files=60 --file-size=20GB
//                    --interval=40 [--csv]
//
// Prints the replication-agent outcome for one link capacity; --csv dumps
// the backlog time series for plotting.
#include <cstdio>

#include "core/engine.hpp"
#include "sim/monarc/monarc.hpp"
#include "util/flags.hpp"
#include "util/units.hpp"

using namespace lsds;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  sim::monarc::Config cfg;
  cfg.t0_t1_bandwidth = flags.get_rate("link", util::gbps(2.5));
  cfg.num_t1 = static_cast<std::size_t>(flags.get_int("t1", 4));
  cfg.num_files = static_cast<std::size_t>(flags.get_int("files", 60));
  cfg.file_bytes = flags.get_size("file-size", 20e9);
  cfg.production_interval = flags.get_double("interval", 40.0);
  cfg.run_analysis = true;

  core::Engine engine({.queue = core::QueueKind::kCalendarQueue,
                      .seed = static_cast<std::uint64_t>(flags.get_int("seed", 2005))});
  const auto res = sim::monarc::run(engine, cfg);

  const double offered =
      cfg.file_bytes / cfg.production_interval;  // bytes/s per T0-T1 link
  std::printf("tier model: T0 + %zu T1s, link %s, offered %s per link\n", cfg.num_t1,
              util::format_rate(cfg.t0_t1_bandwidth).c_str(),
              util::format_rate(offered).c_str());
  std::printf("files produced:        %llu\n",
              static_cast<unsigned long long>(res.files_produced));
  std::printf("replicas delivered:    %llu\n",
              static_cast<unsigned long long>(res.replicas_delivered));
  std::printf("link utilization:      %.1f%%\n", res.link_utilization * 100);
  std::printf("peak backlog:          %s\n", util::format_size(res.peak_backlog_bytes).c_str());
  std::printf("backlog at prod. end:  %s\n",
              util::format_size(res.backlog_at_production_end).c_str());
  std::printf("mean replication lag:  %s\n",
              util::format_duration(res.replication_lag.mean()).c_str());
  std::printf("post-production drain: %s\n", util::format_duration(res.drain_time).c_str());
  std::printf("mean analysis delay:   %s\n",
              util::format_duration(res.analysis_delays.mean()).c_str());
  std::printf("verdict:               %s\n",
              res.sustainable() ? "replication keeps up" : "link capacity INSUFFICIENT");

  if (flags.get_bool("csv", false)) {
    std::printf("\n# backlog time series (t [s], bytes)\n%s", res.backlog.to_csv().c_str());
  }
  return 0;
}
