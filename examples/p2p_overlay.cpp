// P2P overlay example: structured (Chord DHT) vs unstructured (Gnutella
// flooding) search across network sizes.
//
//   ./p2p_overlay --peers=256 --lookups=200 [--plot=overlay]
//
// Reproduces the classic structured-overlay result: Chord resolves lookups
// in O(log n) hops with one message per hop, while flooding needs O(n)
// messages to reach rare objects. --plot=<basename> writes gnuplot-ready
// <basename>.dat/.gp files.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "p2p/chord.hpp"
#include "p2p/gnutella.hpp"
#include "stats/gnuplot.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

using namespace lsds;

namespace {

struct Row {
  std::size_t peers;
  double chord_hops;
  double chord_latency;
  double flood_messages;
  double flood_success;
};

Row run_size(std::size_t n_peers, int n_lookups, std::uint64_t seed) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = seed});
  core::RngStream topo_rng(seed * 31 + 1);
  auto topo = net::Topology::random_connected(n_peers, n_peers / 2, 1e8, 0.01, topo_rng);
  net::Routing routing(topo);

  // Chord: every node hosts a peer.
  p2p::ChordNetwork chord(eng, routing);
  for (std::size_t i = 0; i < n_peers; ++i) chord.add_peer(static_cast<net::NodeId>(i));
  chord.build();

  // Gnutella: same nodes, random overlay of degree 4, one object placed at
  // a random peer per lookup.
  p2p::GnutellaNetwork flood(eng, routing);
  for (std::size_t i = 0; i < n_peers; ++i) flood.add_peer(static_cast<net::NodeId>(i));
  auto& rng = eng.rng("p2p.example");
  flood.build_random_overlay(4, rng);

  stats::Accumulator hops, latency, messages;
  int found = 0;
  for (int q = 0; q < n_lookups; ++q) {
    const auto origin = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_peers) - 1));
    const auto target = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_peers) - 1));
    const std::string obj = "object-" + std::to_string(q);
    flood.place_object(target, obj);
    chord.lookup(origin, chord.hash_key(obj), [&](const p2p::ChordNetwork::LookupResult& r) {
      if (r.ok) {
        hops.add(static_cast<double>(r.hops));
        latency.add(r.latency);
      }
    });
    flood.search(origin, obj, /*ttl=*/6, [&](const p2p::GnutellaNetwork::SearchResult& r) {
      messages.add(static_cast<double>(r.messages));
      if (r.found) ++found;
    });
  }
  eng.run();
  return Row{n_peers, hops.mean(), latency.mean(), messages.mean(),
             static_cast<double>(found) / n_lookups};
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int lookups = static_cast<int>(flags.get_int("lookups", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  std::vector<std::size_t> sizes{32, 64, 128, 256, 512};
  if (flags.has("peers")) sizes = {static_cast<std::size_t>(flags.get_int("peers", 256))};

  stats::AsciiTable t({"peers", "chord hops (log2 n)", "chord latency [s]", "flood msgs (ttl 6)",
                       "flood success"});
  std::vector<Row> rows;
  for (std::size_t n : sizes) {
    const Row r = run_size(n, lookups, seed);
    rows.push_back(r);
    t.row()
        .cell(std::uint64_t{r.peers})
        .cell(util::strformat("%.2f (%.1f)", r.chord_hops, std::log2(double(r.peers))))
        .cell(r.chord_latency)
        .cell(r.flood_messages)
        .cell(r.flood_success);
  }
  std::printf("%s", t.render().c_str());
  std::printf("shape: chord hops track ~log2(n)/2; flooding messages scale with the\n"
              "covered frontier and its success degrades once ttl stops covering n.\n");

  const std::string plot = flags.get_string("plot", "");
  if (!plot.empty() && rows.size() > 1) {
    stats::PlotWriter pw(plot, "Chord vs flooding search cost");
    pw.set_axis_labels("peers", "cost");
    pw.set_logscale(true, true);
    stats::PlotWriter::Series chord_s{"chord hops", {}, {}}, flood_s{"flood messages", {}, {}};
    for (const auto& r : rows) {
      chord_s.x.push_back(static_cast<double>(r.peers));
      chord_s.y.push_back(r.chord_hops);
      flood_s.x.push_back(static_cast<double>(r.peers));
      flood_s.y.push_back(r.flood_messages);
    }
    pw.add_series(chord_s);
    pw.add_series(flood_s);
    if (pw.write()) std::printf("wrote %s.dat / %s.gp\n", plot.c_str(), plot.c_str());
  }
  return 0;
}
