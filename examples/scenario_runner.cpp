// Scenario runner: drive any facade from an INI scenario file — the
// "configuration over code" workflow a simulation user expects.
//
//   ./scenario_runner examples/scenarios/lhc_2.5gbps.ini
//
// See examples/scenarios/*.ini for the format. The [scenario] section picks
// the facade, seed and event-queue structure; the facade-named section
// holds its parameters (rates/sizes/durations accept units: 2.5Gbps, 20GB,
// 40s).
#include <cstdio>
#include <string>

#include "core/engine.hpp"
#include "middleware/replication.hpp"
#include "sim/bricks/bricks.hpp"
#include "sim/chicsim/chicsim.hpp"
#include "sim/gridsim/gridsim.hpp"
#include "sim/monarc/monarc.hpp"
#include "sim/optorsim/optorsim.hpp"
#include "sim/simg/simg.hpp"
#include "util/flags.hpp"
#include "util/ini.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace lsds;

namespace {

core::QueueKind parse_queue(const std::string& s) {
  if (s == "sorted") return core::QueueKind::kSortedList;
  if (s == "heap") return core::QueueKind::kBinaryHeap;
  if (s == "splay") return core::QueueKind::kSplayTree;
  if (s == "calendar") return core::QueueKind::kCalendarQueue;
  if (s == "ladder") return core::QueueKind::kLadderQueue;
  throw util::ConfigError("unknown queue kind: " + s);
}

int run_bricks(core::Engine& eng, const util::IniConfig& ini) {
  sim::bricks::Config cfg;
  cfg.num_clients = static_cast<std::size_t>(ini.get_int("bricks", "clients", 8));
  cfg.jobs_per_client = static_cast<std::size_t>(ini.get_int("bricks", "jobs_per_client", 20));
  cfg.mean_interarrival = ini.get_duration("bricks", "interarrival", 10);
  cfg.mean_ops = ini.get_double("bricks", "mean_ops", 2000);
  cfg.input_bytes = ini.get_size("bricks", "input", 10e6);
  cfg.output_bytes = ini.get_size("bricks", "output", 1e6);
  cfg.server_cores = static_cast<unsigned>(ini.get_int("bricks", "server_cores", 4));
  cfg.client_bw = ini.get_rate("bricks", "client_bw", 12.5e6);
  const auto res = sim::bricks::run(eng, cfg);
  std::printf("bricks: %llu jobs, mean response %.2f s, server util %.1f%%, makespan %.1f s\n",
              static_cast<unsigned long long>(res.jobs), res.response_times.mean(),
              res.server_utilization * 100, res.makespan);
  return 0;
}

int run_optorsim(core::Engine& eng, const util::IniConfig& ini) {
  sim::optorsim::Config cfg;
  cfg.num_sites = static_cast<std::size_t>(ini.get_int("optorsim", "sites", 6));
  cfg.cache_fraction = ini.get_double("optorsim", "cache_fraction", 0.2);
  const std::string policy = ini.get_string("optorsim", "policy", "lru");
  bool matched = false;
  for (auto p : middleware::kAllReplicationPolicies) {
    if (policy == middleware::to_string(p)) {
      cfg.policy = p;
      matched = true;
    }
  }
  if (!matched) throw util::ConfigError("unknown replication policy: " + policy);
  cfg.workload.num_jobs = static_cast<std::size_t>(ini.get_int("optorsim", "jobs", 300));
  cfg.workload.num_files = static_cast<std::size_t>(ini.get_int("optorsim", "files", 60));
  cfg.workload.zipf_exponent = ini.get_double("optorsim", "zipf", 1.0);
  cfg.workload.mean_interarrival = ini.get_duration("optorsim", "interarrival", 1.5);
  cfg.workload.file_bytes = {apps::SizeDist::kConstant,
                             ini.get_size("optorsim", "file_size", 50e6), 0};
  const auto res = sim::optorsim::run(eng, cfg);
  std::printf(
      "optorsim(%s): %llu jobs, mean job time %.2f s, hit ratio %.2f, network %s, "
      "%llu replications\n",
      policy.c_str(), static_cast<unsigned long long>(res.jobs), res.mean_job_time(),
      res.local_hit_ratio(), util::format_size(res.network_bytes).c_str(),
      static_cast<unsigned long long>(res.replications));
  return 0;
}

int run_monarc(core::Engine& eng, const util::IniConfig& ini) {
  sim::monarc::Config cfg;
  cfg.num_t1 = static_cast<std::size_t>(ini.get_int("monarc", "t1", 4));
  cfg.t0_t1_bandwidth = ini.get_rate("monarc", "link", util::gbps(2.5));
  cfg.num_files = static_cast<std::size_t>(ini.get_int("monarc", "files", 60));
  cfg.file_bytes = ini.get_size("monarc", "file_size", 20e9);
  cfg.production_interval = ini.get_duration("monarc", "interval", 40);
  cfg.run_analysis = ini.get_bool("monarc", "analysis", true);
  const auto res = sim::monarc::run(eng, cfg);
  std::printf(
      "monarc: link %s, util %.0f%%, backlog@prod-end %s, mean lag %.1f s -> %s\n",
      util::format_rate(cfg.t0_t1_bandwidth).c_str(), res.link_utilization * 100,
      util::format_size(res.backlog_at_production_end).c_str(), res.replication_lag.mean(),
      res.sustainable() ? "keeps up" : "INSUFFICIENT");
  return 0;
}

int run_gridsim(core::Engine& eng, const util::IniConfig& ini) {
  sim::gridsim::Config cfg;
  cfg.num_jobs = static_cast<std::size_t>(ini.get_int("gridsim", "jobs", 60));
  cfg.budget = ini.get_double("gridsim", "budget", 1e18);
  cfg.deadline = ini.get_duration("gridsim", "deadline", 1e18);
  cfg.strategy = ini.get_string("gridsim", "strategy", "cost") == "time"
                     ? middleware::DbcStrategy::kTimeOptimization
                     : middleware::DbcStrategy::kCostOptimization;
  const auto res = sim::gridsim::run(eng, cfg);
  std::printf("gridsim(%s): accepted %llu rejected %llu, spend %.1f, makespan %.2f s\n",
              middleware::to_string(cfg.strategy),
              static_cast<unsigned long long>(res.accepted),
              static_cast<unsigned long long>(res.rejected), res.cost, res.makespan);
  return 0;
}

int run_chicsim(core::Engine& eng, const util::IniConfig& ini) {
  sim::chicsim::Config cfg;
  cfg.num_sites = static_cast<std::size_t>(ini.get_int("chicsim", "sites", 6));
  const std::string jp = ini.get_string("chicsim", "job_policy", "job-data-present");
  for (auto p : sim::chicsim::kAllJobPolicies) {
    if (jp == to_string(p)) cfg.job_policy = p;
  }
  const std::string dp = ini.get_string("chicsim", "data_policy", "data-cache");
  for (auto p : sim::chicsim::kAllDataPolicies) {
    if (dp == to_string(p)) cfg.data_policy = p;
  }
  cfg.workload.num_jobs = static_cast<std::size_t>(ini.get_int("chicsim", "jobs", 400));
  cfg.workload.zipf_exponent = ini.get_double("chicsim", "zipf", 0.9);
  const auto res = sim::chicsim::run(eng, cfg);
  std::printf("chicsim(%s,%s): %llu jobs, mean response %.2f s, locality %.2f, network %s\n",
              jp.c_str(), dp.c_str(), static_cast<unsigned long long>(res.jobs),
              res.response_times.mean(), res.locality(),
              util::format_size(res.network_bytes).c_str());
  return 0;
}

int run_simg(core::Engine& eng, const util::IniConfig& ini) {
  sim::simg::Config cfg;
  cfg.num_workers = static_cast<std::size_t>(ini.get_int("simg", "workers", 4));
  cfg.num_tasks = static_cast<std::size_t>(ini.get_int("simg", "tasks", 64));
  cfg.estimate_error = ini.get_double("simg", "estimate_error", 0.3);
  cfg.mode = ini.get_string("simg", "mode", "runtime") == "compile-time"
                 ? sim::simg::SchedulingMode::kCompileTime
                 : sim::simg::SchedulingMode::kRuntime;
  const auto res = sim::simg::run(eng, cfg);
  std::printf("simg(%s): %llu tasks, makespan %.2f s\n", to_string(cfg.mode),
              static_cast<unsigned long long>(res.tasks), res.makespan);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: scenario_runner <scenario.ini>\n");
    return 2;
  }
  try {
    const auto ini = util::IniConfig::load(flags.positional()[0]);
    const std::string facade = ini.get_string("scenario", "facade", "");
    core::Engine::Config ecfg;
    ecfg.seed = static_cast<std::uint64_t>(ini.get_int("scenario", "seed", 42));
    ecfg.queue = parse_queue(ini.get_string("scenario", "queue", "heap"));
    core::Engine engine(ecfg);

    if (facade == "bricks") return run_bricks(engine, ini);
    if (facade == "optorsim") return run_optorsim(engine, ini);
    if (facade == "monarc") return run_monarc(engine, ini);
    if (facade == "gridsim") return run_gridsim(engine, ini);
    if (facade == "chicsim") return run_chicsim(engine, ini);
    if (facade == "simg") return run_simg(engine, ini);
    std::fprintf(stderr, "unknown facade '%s' in [scenario]\n", facade.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 1;
  }
}
