// Scenario runner: drive any registered facade from an INI scenario file —
// the "configuration over code" workflow a simulation user expects.
//
//   ./scenario_runner examples/scenarios/lhc_2.5gbps.ini
//   ./scenario_runner --report=out.json examples/scenarios/chaos_bag.ini
//
// See examples/scenarios/*.ini for the format. The [scenario] section picks
// the facade (resolved through sim::FacadeRegistry), seed and event-queue
// structure; the facade-named section holds its parameters (rates/sizes/
// durations accept units: 2.5Gbps, 20GB, 40s). `strict = true` rejects
// unknown keys with a near-miss suggestion. The [observability] section (or
// a --report= override) turns on the metrics/trace/profiler layer and
// writes a structured RunReport JSON.
#include <cstdio>
#include <string>

#include "core/engine.hpp"
#include "obs/observability.hpp"
#include "obs/report.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"
#include "util/flags.hpp"
#include "util/ini.hpp"
#include "util/strings.hpp"

using namespace lsds;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: scenario_runner [--report=out.json] <scenario.ini>\n");
    return 2;
  }
  try {
    const std::string source = flags.positional()[0];
    const auto ini = util::IniConfig::load(source);
    const std::string facade = ini.get_string("scenario", "facade", "");

    sim::register_builtin_facades();
    const auto& reg = sim::FacadeRegistry::global();
    const auto* entry = reg.find(facade);
    if (!entry) {
      std::fprintf(stderr, "unknown facade '%s' in [scenario]; registered: %s\n",
                   facade.c_str(), util::join(reg.names(), ", ").c_str());
      return 2;
    }
    if (ini.get_bool("scenario", "strict", false)) {
      sim::validate_scenario_keys(ini, *entry);
    }

    core::Engine::Config ecfg;
    ecfg.seed = static_cast<std::uint64_t>(ini.get_int("scenario", "seed", 42));
    const std::string queue = ini.get_string("scenario", "queue", "heap");
    ecfg.queue = sim::facades::parse_queue(queue);
    core::Engine engine(ecfg);

    obs::Options oopts = obs::parse_options(ini);
    if (flags.has("report")) {
      // A --report= flag forces observability on and overrides the path.
      oopts.enabled = true;
      oopts.report_path = flags.get_string("report");
    }
    obs::Observability observability(oopts);
    observability.attach(engine);

    obs::RunReport report;
    report.set_scenario(facade, ecfg.seed, queue, source);
    report.echo_config(ini);

    const int rc = entry->run(engine, ini, report);

    if (observability.enabled()) {
      observability.finalize(engine, report);
      const std::string path = observability.report_path(facade);
      report.write(path);
      std::printf("report: %s\n", path.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 1;
  }
}
