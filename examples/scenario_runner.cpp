// Scenario runner: drive any registered facade from an INI scenario file —
// the "configuration over code" workflow a simulation user expects.
//
//   ./scenario_runner examples/scenarios/lhc_2.5gbps.ini
//   ./scenario_runner --report=out.json examples/scenarios/chaos_bag.ini
//   ./scenario_runner --workers=4 examples/scenarios/lhc_campaign.ini
//
// See examples/scenarios/*.ini for the format. The [scenario] section picks
// the facade (resolved through sim::FacadeRegistry), seed and event-queue
// structure; the facade-named section holds its parameters (rates/sizes/
// durations accept units: 2.5Gbps, 20GB, 40s). `strict = true` rejects
// unknown keys with a near-miss suggestion. The [observability] section (or
// a --report= override) turns on the metrics/trace/profiler layer and
// writes a structured RunReport JSON.
//
// A scenario with a [sweep] or [campaign] section (or a --campaign flag)
// runs in *campaign mode* instead: the parameter grid is expanded, every
// point is replicated with substream seeds on a worker pool (--workers=N
// overrides [campaign] workers without changing the output), and a
// deterministic campaign report (mean ± 95% CI per point and metric) is
// written to --report= or CAMPAIGN_<facade>.json. See exp/campaign.hpp.
//
// With `[campaign] distribute = N` (or --distribute=N) the (point,
// replication) grid is sharded across N worker *processes* — spawned
// `scenario_runner --campaign-worker` subprocesses, or ssh targets from a
// `hosts =` file — with per-shard timeout, bounded retry and shard
// reassignment; --resume skips shards whose partials already landed in
// --partial-dir. The merged report is byte-identical to the in-process
// one. See exp/dist_campaign.hpp.
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/engine.hpp"
#include "exp/campaign.hpp"
#include "exp/dist_campaign.hpp"
#include "obs/observability.hpp"
#include "obs/report.hpp"
#include "sim/facade_registry.hpp"
#include "sim/facades/common.hpp"
#include "util/flags.hpp"
#include "util/ini.hpp"
#include "util/strings.hpp"

using namespace lsds;

namespace {

int run_campaign(const util::IniConfig& ini, const util::Flags& flags) {
  exp::DistConfig dcfg = exp::DistConfig::parse(ini);
  if (flags.has("distribute")) {
    dcfg.processes = static_cast<unsigned>(flags.get_int("distribute", 0));
  }
  if (flags.has("timeout")) dcfg.timeout_sec = flags.get_duration("timeout", dcfg.timeout_sec);
  if (flags.has("retries")) {
    dcfg.retries = static_cast<unsigned>(flags.get_int("retries", dcfg.retries));
  }
  if (flags.has("partial-dir")) dcfg.partial_dir = flags.get_string("partial-dir");
  if (flags.has("worker-binary")) dcfg.worker_binary = flags.get_string("worker-binary");
  if (flags.has("worker-threads")) {
    dcfg.worker_threads = static_cast<unsigned>(flags.get_int("worker-threads", 1));
  }
  if (flags.get_bool("resume", false)) dcfg.resume = true;
  if (flags.get_bool("keep-partials", false)) dcfg.keep_partials = true;
  // Fault-injection hooks for the distexec-smoke CI job: lose one worker
  // (SIGKILL / hang-until-timeout) and prove the report still converges.
  if (flags.has("test-kill-shard")) {
    dcfg.kill_shard = static_cast<std::size_t>(flags.get_int("test-kill-shard", -1));
  }
  if (flags.has("test-hang-shard")) {
    dcfg.hang_shard = static_cast<std::size_t>(flags.get_int("test-hang-shard", -1));
  }

  exp::CampaignResult result;
  if (dcfg.processes > 0) {
    exp::DistributedCampaign distributed(ini, dcfg);
    result = distributed.run();
  } else {
    exp::Campaign campaign(ini);
    if (flags.has("workers")) {
      campaign.set_workers(static_cast<unsigned>(flags.get_int("workers", 1)));
    }
    result = campaign.run();
  }

  for (const auto& point : result.points) {
    std::string params;
    for (const auto& [name, value] : point.params) {
      if (!params.empty()) params += " ";
      params += name + "=" + value;
    }
    std::printf("point %zu%s%s\n", point.index, params.empty() ? "" : ": ", params.c_str());
    for (const auto& [name, ms] : point.metrics) {
      std::printf("  %-32s %.6g ± %.3g  (n=%zu, min %.6g, max %.6g)\n", name.c_str(), ms.mean,
                  ms.ci95, ms.n, ms.min, ms.max);
    }
  }
  std::printf("campaign: %llu runs in %.2f s wall\n",
              static_cast<unsigned long long>(result.runs), result.wall_seconds);
  if (result.distribution) {
    const auto& d = *result.distribution;
    std::printf("distributed: %zu shards over %u processes, %zu resumed, %zu retries, "
                "%zu worker failure%s recovered\n",
                d.shards, d.processes, d.shards_resumed, d.retries_used, d.failures.size(),
                d.failures.size() == 1 ? "" : "s");
  }

  const std::string path = flags.has("report") ? flags.get_string("report")
                                               : "CAMPAIGN_" + result.facade + ".json";
  result.write(path);
  std::printf("report: %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.has("campaign-worker")) {
    // Shard worker of a distributed campaign (spawned by the coordinator):
    // compute grid slots [--shard-begin, --shard-end) of --scenario= and
    // publish the lsds.campaign_partial/1 message at --partial=.
    return exp::run_campaign_worker(flags);
  }
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: scenario_runner [--report=out.json] [--campaign] [--workers=N]\n"
                 "                       [--distribute=N] [--partial-dir=DIR] [--resume]\n"
                 "                       [--timeout=60s] [--retries=K] <scenario.ini>\n");
    return 2;
  }
  try {
    const std::string source = flags.positional()[0];
    const auto ini = util::IniConfig::load(source);
    const std::string facade = ini.get_string("scenario", "facade", "");

    sim::register_builtin_facades();
    const auto& reg = sim::FacadeRegistry::global();
    const auto* entry = reg.find(facade);
    if (!entry) {
      std::fprintf(stderr, "unknown facade '%s' in [scenario]; registered: %s\n",
                   facade.c_str(), util::join(reg.names(), ", ").c_str());
      return 2;
    }
    if (ini.get_bool("scenario", "strict", false)) {
      sim::validate_scenario_keys(ini, *entry);
    }

    const auto sections = ini.sections();
    const bool has_campaign_cfg =
        std::find(sections.begin(), sections.end(), "campaign") != sections.end() ||
        std::find(sections.begin(), sections.end(), "sweep") != sections.end();
    if (has_campaign_cfg || flags.get_bool("campaign", false)) {
      return run_campaign(ini, flags);
    }

    core::Engine::Config ecfg;
    ecfg.seed = static_cast<std::uint64_t>(ini.get_int("scenario", "seed", 42));
    const std::string queue = ini.get_string("scenario", "queue", "heap");
    ecfg.queue = sim::facades::parse_queue(queue);
    core::Engine engine(ecfg);

    obs::Options oopts = obs::parse_options(ini);
    if (flags.has("report")) {
      // A --report= flag forces observability on and overrides the path.
      oopts.enabled = true;
      oopts.report_path = flags.get_string("report");
    }
    obs::Observability observability(oopts);
    observability.attach(engine);

    obs::RunReport report;
    report.set_scenario(facade, ecfg.seed, queue, source);
    report.echo_config(ini);

    const int rc = entry->run(engine, ini, report);

    if (observability.enabled()) {
      observability.finalize(engine, report);
      const std::string path = observability.report_path(facade);
      report.write(path);
      std::printf("report: %s\n", path.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 1;
  }
}
